//! Loom models of the middleware's three core concurrency protocols.
//!
//! Each protocol is modeled twice: the shipped design (explored exhaustively
//! under the preemption bound — must hold on every schedule) and a
//! deliberately buggy variant that drops one ordering guarantee (the checker
//! must find a failing schedule and print a replayable seed). The buggy
//! variants are the regression teeth: if the shim's exploration ever stops
//! finding these injected bugs, these tests fail.
//!
//! The models mirror `daemon.rs` / `journal.rs` / `server.rs` shapes but use
//! loom's types directly — the production `TrackedMutex` wraps parking_lot,
//! which the model checker cannot schedule. Keeping the protocol skeletons
//! in sync with the real code is the point of DESIGN.md §14's table.

use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run a model expected to fail; return the checker's panic message.
fn failure_message(f: impl Fn() + Send + Sync + 'static) -> String {
    let err = catch_unwind(AssertUnwindSafe(move || loom::model(f)))
        .expect_err("model should have failed");
    err.downcast_ref::<String>()
        .cloned()
        .expect("string panic payload")
}

// ---------------------------------------------------------------------------
// Protocol 1: group-commit WAL tickets (journal.rs `SharedJournal`).
//
// Submitters are issued a ticket under the buffer lock at batch-trip time;
// the WAL write for ticket N may only happen once `seq == N`, so file write
// order always equals append order even though the buffer lock is released
// before the (slow, fsyncing) file write.
// ---------------------------------------------------------------------------

struct TicketJournal {
    /// `BufState::next_ticket` — tickets are issued under the buffer lock.
    next_ticket: Mutex<u64>,
    /// WAL write order actually observed (stands in for `FileState`).
    wal: Mutex<Vec<u64>>,
    /// Next ticket allowed to write, with its condvar.
    seq: Mutex<u64>,
    seq_cv: Condvar,
}

impl TicketJournal {
    fn new() -> Self {
        TicketJournal {
            next_ticket: Mutex::new(0),
            wal: Mutex::new(Vec::new()),
            seq: Mutex::new(0),
            seq_cv: Condvar::new(),
        }
    }

    /// `append` + `write_batch`: take a ticket, then write in ticket order.
    fn append_ordered(&self) {
        let ticket = {
            let mut t = self.next_ticket.lock().unwrap();
            let mine = *t;
            *t += 1;
            mine
        };
        // write_batch: wait for our turn…
        let mut s = self.seq.lock().unwrap();
        while *s != ticket {
            s = self.seq_cv.wait(s).unwrap();
        }
        drop(s);
        // …write under the file lock…
        self.wal.lock().unwrap().push(ticket);
        // …and pass the baton (even the error path does this in the real
        // code, or every later writer would wait forever).
        *self.seq.lock().unwrap() += 1;
        self.seq_cv.notify_all();
    }

    /// Injected bug: write immediately after taking the ticket. The buffer
    /// lock is already released, so two submitters can land out of order.
    fn append_unordered(&self) {
        let ticket = {
            let mut t = self.next_ticket.lock().unwrap();
            let mine = *t;
            *t += 1;
            mine
        };
        self.wal.lock().unwrap().push(ticket);
        *self.seq.lock().unwrap() += 1;
        self.seq_cv.notify_all();
    }
}

fn group_commit_model(ordered: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let j = Arc::new(TicketJournal::new());
        let j2 = Arc::clone(&j);
        let h = thread::spawn(move || {
            if ordered {
                j2.append_ordered()
            } else {
                j2.append_unordered()
            }
        });
        if ordered {
            j.append_ordered()
        } else {
            j.append_unordered()
        }
        h.join().unwrap();
        let wal = j.wal.lock().unwrap();
        assert_eq!(
            *wal,
            vec![0, 1],
            "WAL write order must equal ticket (append) order"
        );
    }
}

#[test]
fn group_commit_tickets_keep_wal_in_append_order() {
    loom::model(group_commit_model(true));
}

#[test]
fn group_commit_without_ticket_wait_is_caught() {
    let msg = failure_message(group_commit_model(false));
    assert!(msg.contains("WAL write order"), "unexpected failure: {msg}");
    assert!(msg.contains("LOOM_REPLAY"), "missing replay seed: {msg}");
}

// ---------------------------------------------------------------------------
// Protocol 2: take_batch claim vs cancel + snapshot (daemon.rs).
//
// `take_batch` moves a task from the queue to the in-flight set while
// holding BOTH locks (queue → inflight, the declared rank order), so no
// observer — cancel or the journal snapshot — can see the task in neither
// place. The lost-record recovery bug is exactly the buggy variant below.
// ---------------------------------------------------------------------------

struct MiniQueue {
    queue: Mutex<Vec<u64>>,
    inflight: Mutex<Vec<u64>>,
}

impl MiniQueue {
    fn new(task: u64) -> Self {
        MiniQueue {
            queue: Mutex::new(vec![task]),
            inflight: Mutex::new(Vec::new()),
        }
    }

    /// Claim then immediately requeue (a slice/transient-failure round trip),
    /// holding queue + inflight together for each move, as the daemon does.
    fn claim_and_requeue_atomic(&self) {
        {
            let mut q = self.queue.lock().unwrap();
            let mut inf = self.inflight.lock().unwrap();
            if let Some(t) = q.pop() {
                inf.push(t);
            } else {
                return; // cancelled before we claimed it
            }
        }
        let mut q = self.queue.lock().unwrap();
        let mut inf = self.inflight.lock().unwrap();
        if let Some(t) = inf.pop() {
            q.push(t);
        }
    }

    /// Injected bug: release the queue lock before inserting into inflight —
    /// a window where the task is in *neither* structure.
    fn claim_and_requeue_windowed(&self) {
        let taken = self.queue.lock().unwrap().pop();
        let Some(t) = taken else { return };
        self.inflight.lock().unwrap().push(t);
        let taken = self.inflight.lock().unwrap().pop();
        if let Some(t) = taken {
            self.queue.lock().unwrap().push(t);
        }
    }

    /// Cancel: remove from the queue if still queued (in-flight tasks
    /// report "not queued" to the caller — they cannot be yanked mid-run).
    fn cancel(&self, task: u64) -> bool {
        let mut q = self.queue.lock().unwrap();
        if let Some(i) = q.iter().position(|&t| t == task) {
            q.remove(i);
            true
        } else {
            false
        }
    }

    /// Snapshot both structures in rank order, like `snapshot_state`.
    fn snapshot_count(&self, task: u64) -> usize {
        let q = self.queue.lock().unwrap();
        let inf = self.inflight.lock().unwrap();
        q.iter().filter(|&&t| t == task).count() + inf.iter().filter(|&&t| t == task).count()
    }
}

fn claim_model(atomic: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let q = Arc::new(MiniQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || {
            if atomic {
                q2.claim_and_requeue_atomic()
            } else {
                q2.claim_and_requeue_windowed()
            }
        });
        let cancelled = q.cancel(1);
        let seen = q.snapshot_count(1);
        h.join().unwrap();
        if cancelled {
            // the claim thread found an empty queue and backed off; gone
            assert_eq!(
                q.snapshot_count(1),
                0,
                "cancelled task resurfaced after requeue"
            );
        } else {
            assert_eq!(seen, 1, "uncancelled task invisible to the snapshot");
        }
    }
}

#[test]
fn claimed_task_is_always_visible_to_cancel_and_snapshot() {
    loom::model(claim_model(true));
}

#[test]
fn claim_window_losing_the_task_is_caught() {
    let msg = failure_message(claim_model(false));
    assert!(
        msg.contains("invisible to the snapshot") || msg.contains("resurfaced"),
        "unexpected failure: {msg}"
    );
    assert!(msg.contains("LOOM_REPLAY"), "missing replay seed: {msg}");
}

// ---------------------------------------------------------------------------
// Protocol 3: server slab generation tokens vs connection shutdown
// (server.rs event loop).
//
// Worker completions carry (slot index, generation). The event loop only
// delivers a completion if the slot's current generation matches — a slot
// freed by shutdown and reused by a new connection must never receive a
// stale response. The buggy variant skips the generation check.
// ---------------------------------------------------------------------------

struct Slab {
    /// One slot: (current generation, responses delivered to that conn).
    slot: Mutex<(u64, Vec<&'static str>)>,
}

fn slab_model(check_generation: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let s = Arc::new(Slab {
            slot: Mutex::new((1, Vec::new())), // conn A lives at generation 1
        });
        let s2 = Arc::clone(&s);
        // Worker finishes conn A's request and posts completion (slot 0, gen 1).
        let h = thread::spawn(move || {
            let mut slot = s2.slot.lock().unwrap();
            if !check_generation || slot.0 == 1 {
                slot.1.push("response-for-A");
            }
        });
        // Event loop: conn A hangs up; slot is reused by conn B (gen 2).
        {
            let mut slot = s.slot.lock().unwrap();
            slot.0 = 2;
            slot.1.clear();
        }
        h.join().unwrap();
        let slot = s.slot.lock().unwrap();
        assert!(
            !slot.1.contains(&"response-for-A"),
            "stale completion delivered to the connection that reused the slot"
        );
    }
}

#[test]
fn slab_generation_tokens_drop_stale_completions() {
    loom::model(slab_model(true));
}

#[test]
fn missing_generation_check_is_caught() {
    let msg = failure_message(slab_model(false));
    assert!(
        msg.contains("stale completion"),
        "unexpected failure: {msg}"
    );
    assert!(msg.contains("LOOM_REPLAY"), "missing replay seed: {msg}");
}

// ---------------------------------------------------------------------------
// Protocol 4: ship → ack → promote (journal.rs `FollowerReplica` + daemon.rs
// `promote`).
//
// The follower applies a shipped event to durable storage *before* the ack
// is published: an acknowledgement is a durability promise, and promotion
// trusts it — `promote` reads the last-acked bar and refuses any replica
// whose applied cursor is behind it. If acks could be published before the
// apply landed, a leader crash in that window would lose an event every
// survivor believes is safe.
// ---------------------------------------------------------------------------

struct ShipState {
    /// The follower's durable WAL cursor (`FollowerReplica::apply` has
    /// written and fsynced up to here).
    applied: Mutex<u64>,
    /// The acknowledgement bar visible to the coordinator
    /// (`SharedJournal::ship_ack` → `MiddlewareService::last_acked`).
    acked: Mutex<u64>,
}

fn ship_ack_model(apply_before_ack: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let s = Arc::new(ShipState {
            applied: Mutex::new(0),
            acked: Mutex::new(0),
        });
        let shipper = Arc::clone(&s);
        let h = thread::spawn(move || {
            for seq in 1..=2u64 {
                if apply_before_ack {
                    *shipper.applied.lock().unwrap() = seq;
                    *shipper.acked.lock().unwrap() = seq;
                } else {
                    // Injected bug: the ack races ahead of the durable
                    // apply — the coordinator can now believe in an event
                    // no replica holds.
                    *shipper.acked.lock().unwrap() = seq;
                    *shipper.applied.lock().unwrap() = seq;
                }
            }
        });
        // The promoter races the shipping pump: capture the bar, then read
        // the candidate's cursor — exactly `promote`'s refusal check.
        let bar = *s.acked.lock().unwrap();
        let cursor = *s.applied.lock().unwrap();
        assert!(
            cursor >= bar,
            "acked event must already be durable on the follower"
        );
        h.join().unwrap();
    }
}

#[test]
fn ack_implies_durable_apply_under_promotion_race() {
    loom::model(ship_ack_model(true));
}

#[test]
fn ack_racing_ahead_of_apply_is_caught() {
    let msg = failure_message(ship_ack_model(false));
    assert!(
        msg.contains("durable on the follower"),
        "unexpected failure: {msg}"
    );
    assert!(msg.contains("LOOM_REPLAY"), "missing replay seed: {msg}");
}
