//! Derivative-free classical optimizers for hybrid loops.
//!
//! Variational quantum workflows wrap noisy, expensive cost evaluations, so
//! the two standard choices are implemented from scratch:
//!
//! * [`NelderMead`] — simplex descent; robust on smooth low-dimensional
//!   landscapes (pulse-parameter tuning),
//! * [`Spsa`] — simultaneous-perturbation stochastic approximation; two
//!   evaluations per step regardless of dimension and tolerant of shot
//!   noise, the de-facto standard for QPU-in-the-loop optimization.
//!
//! Both are plain iterators over an objective closure, so they compose with
//! [`hpcqc_core::iterate`] or drive the runtime directly.

use rand::Rng;

/// Result of an optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimResult {
    pub best_params: Vec<f64>,
    pub best_cost: f64,
    pub evaluations: usize,
    pub iterations: usize,
}

/// Nelder–Mead simplex optimizer.
#[derive(Debug, Clone)]
pub struct NelderMead {
    /// Reflection coefficient (standard 1.0).
    pub alpha: f64,
    /// Expansion coefficient (standard 2.0).
    pub gamma: f64,
    /// Contraction coefficient (standard 0.5).
    pub rho: f64,
    /// Shrink coefficient (standard 0.5).
    pub sigma: f64,
    /// Stop when the simplex cost spread falls below this.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            tolerance: 1e-8,
            max_iterations: 500,
        }
    }
}

impl NelderMead {
    /// Minimize `f` starting from `x0`; the initial simplex is `x0` plus one
    /// vertex per dimension offset by `initial_step`.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(
        &self,
        mut f: F,
        x0: &[f64],
        initial_step: f64,
    ) -> OptimResult {
        let n = x0.len();
        assert!(n >= 1, "need at least one parameter");
        let mut evals = 0usize;
        let mut eval = |x: &[f64], evals: &mut usize| {
            *evals += 1;
            f(x)
        };
        // initial simplex
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
        let c0 = eval(x0, &mut evals);
        simplex.push((x0.to_vec(), c0));
        for i in 0..n {
            let mut v = x0.to_vec();
            v[i] += initial_step;
            let c = eval(&v, &mut evals);
            simplex.push((v, c));
        }

        let mut iterations = 0;
        for _ in 0..self.max_iterations {
            iterations += 1;
            simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
            let spread = simplex[n].1 - simplex[0].1;
            if spread.abs() < self.tolerance {
                break;
            }
            // centroid of all but worst
            let mut centroid = vec![0.0; n];
            for (v, _) in &simplex[..n] {
                for (ci, vi) in centroid.iter_mut().zip(v) {
                    *ci += vi / n as f64;
                }
            }
            let worst = simplex[n].clone();
            let lerp = |t: f64| -> Vec<f64> {
                centroid
                    .iter()
                    .zip(&worst.0)
                    .map(|(c, w)| c + t * (c - w))
                    .collect()
            };
            // reflection
            let xr = lerp(self.alpha);
            let cr = eval(&xr, &mut evals);
            if cr < simplex[0].1 {
                // expansion
                let xe = lerp(self.gamma);
                let ce = eval(&xe, &mut evals);
                simplex[n] = if ce < cr { (xe, ce) } else { (xr, cr) };
            } else if cr < simplex[n - 1].1 {
                simplex[n] = (xr, cr);
            } else {
                // contraction (inside)
                let xc = lerp(-self.rho);
                let cc = eval(&xc, &mut evals);
                if cc < simplex[n].1 {
                    simplex[n] = (xc, cc);
                } else {
                    // shrink toward best
                    let best = simplex[0].0.clone();
                    for entry in simplex.iter_mut().skip(1) {
                        let v: Vec<f64> = best
                            .iter()
                            .zip(&entry.0)
                            .map(|(b, x)| b + self.sigma * (x - b))
                            .collect();
                        let c = eval(&v, &mut evals);
                        *entry = (v, c);
                    }
                }
            }
        }
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
        OptimResult {
            best_params: simplex[0].0.clone(),
            best_cost: simplex[0].1,
            evaluations: evals,
            iterations,
        }
    }
}

/// SPSA optimizer.
#[derive(Debug, Clone)]
pub struct Spsa {
    /// Initial step size `a`.
    pub a: f64,
    /// Initial perturbation size `c`.
    pub c: f64,
    /// Step decay exponent (standard 0.602).
    pub alpha: f64,
    /// Perturbation decay exponent (standard 0.101).
    pub gamma: f64,
    /// Stability offset in the step schedule.
    pub big_a: f64,
    /// Number of iterations (2 evaluations each).
    pub iterations: usize,
}

impl Default for Spsa {
    fn default() -> Self {
        Spsa {
            a: 0.2,
            c: 0.1,
            alpha: 0.602,
            gamma: 0.101,
            big_a: 10.0,
            iterations: 100,
        }
    }
}

impl Spsa {
    /// Minimize `f` from `x0` with Rademacher perturbations drawn from `rng`.
    pub fn minimize<F: FnMut(&[f64]) -> f64, R: Rng>(
        &self,
        mut f: F,
        x0: &[f64],
        rng: &mut R,
    ) -> OptimResult {
        let n = x0.len();
        assert!(n >= 1, "need at least one parameter");
        let mut x = x0.to_vec();
        let mut best = x.clone();
        let mut best_cost = f(&x);
        let mut evals = 1usize;
        for k in 0..self.iterations {
            let ak = self.a / (k as f64 + 1.0 + self.big_a).powf(self.alpha);
            let ck = self.c / (k as f64 + 1.0).powf(self.gamma);
            let delta: Vec<f64> = (0..n)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let xp: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi + ck * d).collect();
            let xm: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi - ck * d).collect();
            let fp = f(&xp);
            let fm = f(&xm);
            evals += 2;
            for i in 0..n {
                let g = (fp - fm) / (2.0 * ck * delta[i]);
                x[i] -= ak * g;
            }
            let fx = f(&x);
            evals += 1;
            if fx < best_cost {
                best_cost = fx;
                best = x.clone();
            }
        }
        OptimResult {
            best_params: best,
            best_cost,
            evaluations: evals,
            iterations: self.iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    fn shifted_quartic(x: &[f64]) -> f64 {
        (x[0] - 1.5).powi(4) + (x[1] + 0.5).powi(2)
    }

    #[test]
    fn nelder_mead_minimizes_sphere() {
        let nm = NelderMead::default();
        let r = nm.minimize(sphere, &[2.0, -3.0, 1.0], 0.5);
        assert!(r.best_cost < 1e-6, "cost {}", r.best_cost);
        for p in &r.best_params {
            assert!(p.abs() < 1e-2);
        }
        assert!(r.evaluations > 10);
    }

    #[test]
    fn nelder_mead_finds_shifted_minimum() {
        let nm = NelderMead {
            max_iterations: 1000,
            ..NelderMead::default()
        };
        let r = nm.minimize(shifted_quartic, &[0.0, 0.0], 0.5);
        assert!(
            (r.best_params[0] - 1.5).abs() < 0.05,
            "x0 = {}",
            r.best_params[0]
        );
        assert!(
            (r.best_params[1] + 0.5).abs() < 0.01,
            "x1 = {}",
            r.best_params[1]
        );
    }

    #[test]
    fn nelder_mead_converges_fast_on_1d() {
        let nm = NelderMead::default();
        let r = nm.minimize(|x| (x[0] - 3.0).powi(2), &[0.0], 1.0);
        assert!((r.best_params[0] - 3.0).abs() < 1e-3);
        assert!(r.iterations < 200);
    }

    #[test]
    fn spsa_minimizes_sphere_under_noise() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut noise_rng = ChaCha8Rng::seed_from_u64(7);
        let spsa = Spsa {
            iterations: 300,
            a: 0.5,
            ..Spsa::default()
        };
        let r = spsa.minimize(
            |x| sphere(x) + 0.01 * (noise_rng.gen::<f64>() - 0.5),
            &[1.5, -1.0],
            &mut rng,
        );
        assert!(sphere(&r.best_params) < 0.05, "params {:?}", r.best_params);
    }

    #[test]
    fn spsa_evaluation_budget_is_linear_in_iterations() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let spsa = Spsa {
            iterations: 50,
            ..Spsa::default()
        };
        let r = spsa.minimize(sphere, &[1.0; 10], &mut rng);
        // 1 initial + 3 per iteration, independent of the 10 dimensions
        assert_eq!(r.evaluations, 1 + 3 * 50);
    }

    #[test]
    fn spsa_deterministic_given_seed() {
        let spsa = Spsa::default();
        let r1 = spsa.minimize(sphere, &[1.0, 2.0], &mut ChaCha8Rng::seed_from_u64(5));
        let r2 = spsa.minimize(sphere, &[1.0, 2.0], &mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(r1.best_params, r2.best_params);
    }

    #[test]
    #[should_panic(expected = "at least one parameter")]
    fn empty_parameter_vector_panics() {
        NelderMead::default().minimize(sphere, &[], 0.1);
    }
}
