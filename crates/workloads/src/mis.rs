//! Maximum Independent Set (MIS) on unit-disk graphs — the canonical
//! neutral-atom hybrid workload.
//!
//! Atoms placed at graph vertices with the blockade radius tuned to the
//! graph's unit-disk radius make independent sets the low-energy
//! configurations of the Rydberg Hamiltonian: an adiabatic detuning sweep
//! prepares them, and a classical optimizer tunes the sweep parameters —
//! the hybrid loop the paper's runtime exists to serve.

use hpcqc_core::{Runtime, RuntimeError};
use hpcqc_emulator::{SampleResult, SweepPoint};
use hpcqc_program::{ProgramIr, Pulse, Register, SequenceBuilder, Waveform};
use serde::{Deserialize, Serialize};

/// An undirected graph on register sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    pub n: usize,
    /// Edges as (i, j) with i < j.
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// The unit-disk graph of a register: vertices are atoms, edges connect
    /// pairs closer than `radius` µm.
    pub fn unit_disk(register: &Register, radius: f64) -> Self {
        let edges = register
            .pairs()
            .into_iter()
            .filter(|&(_, _, d)| d < radius)
            .map(|(i, j, _)| (i, j))
            .collect();
        Graph {
            n: register.len(),
            edges,
        }
    }

    /// Is `set` (bitmask) an independent set?
    pub fn is_independent(&self, set: u64) -> bool {
        self.edges
            .iter()
            .all(|&(i, j)| !((set >> i) & 1 == 1 && (set >> j) & 1 == 1))
    }

    /// Number of edges violated by `set`.
    pub fn violations(&self, set: u64) -> usize {
        self.edges
            .iter()
            .filter(|&&(i, j)| (set >> i) & 1 == 1 && (set >> j) & 1 == 1)
            .count()
    }

    /// Exact MIS size by branch and bound (exponential; for ≤ ~30 vertices,
    /// used as ground truth in experiments).
    pub fn exact_mis_size(&self) -> usize {
        assert!(self.n <= 30, "exact MIS limited to 30 vertices");
        // adjacency masks
        let mut adj = vec![0u64; self.n];
        for &(i, j) in &self.edges {
            adj[i] |= 1 << j;
            adj[j] |= 1 << i;
        }
        fn bb(candidates: u64, current: usize, best: &mut usize, adj: &[u64]) {
            if current + (candidates.count_ones() as usize) <= *best {
                return; // bound
            }
            if candidates == 0 {
                *best = (*best).max(current);
                return;
            }
            let v = candidates.trailing_zeros() as usize;
            // branch 1: include v
            let without_nbrs = candidates & !(1u64 << v) & !adj[v];
            bb(without_nbrs, current + 1, best, adj);
            // branch 2: exclude v
            bb(candidates & !(1u64 << v), current, best, adj);
        }
        let mut best = 0;
        bb((1u64 << self.n) - 1, 0, &mut best, &adj);
        best
    }
}

/// Parameters of the adiabatic MIS sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MisSweep {
    /// Total sweep duration, µs.
    pub duration: f64,
    /// Peak Rabi frequency, rad/µs.
    pub omega_max: f64,
    /// Initial (negative) detuning, rad/µs.
    pub delta_start: f64,
    /// Final (positive) detuning, rad/µs.
    pub delta_end: f64,
}

impl Default for MisSweep {
    fn default() -> Self {
        MisSweep {
            duration: 4.0,
            omega_max: 6.0,
            delta_start: -12.0,
            delta_end: 12.0,
        }
    }
}

/// Build the MIS program for a register.
pub fn mis_program(register: &Register, sweep: &MisSweep, shots: u32) -> ProgramIr {
    let quarter = sweep.duration / 4.0;
    let half = sweep.duration / 2.0;
    let mut b = SequenceBuilder::new(register.clone());
    b.add_global_pulse(
        Pulse::new(
            Waveform::ramp(quarter, 0.0, sweep.omega_max).expect("valid ramp"),
            Waveform::constant(quarter, sweep.delta_start).expect("valid constant"),
            0.0,
        )
        .expect("matched durations"),
    );
    b.add_global_pulse(
        Pulse::new(
            Waveform::constant(half, sweep.omega_max).expect("valid constant"),
            Waveform::ramp(half, sweep.delta_start, sweep.delta_end).expect("valid ramp"),
            0.0,
        )
        .expect("matched durations"),
    );
    b.add_global_pulse(
        Pulse::new(
            Waveform::ramp(quarter, sweep.omega_max, 0.0).expect("valid ramp"),
            Waveform::constant(quarter, sweep.delta_end).expect("valid constant"),
            0.0,
        )
        .expect("matched durations"),
    );
    ProgramIr::new(b.build().expect("three pulses"), shots, "mis-workload")
}

/// Score samples against the MIS objective: the expected independent-set
/// size after *classically repairing* violations (greedily dropping one
/// endpoint of each violated edge), plus diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MisScore {
    /// Mean repaired independent-set size.
    pub mean_set_size: f64,
    /// Largest independent set observed (after repair).
    pub best_set_size: usize,
    /// The best set itself (bitmask).
    pub best_set: u64,
    /// Fraction of raw shots that were already independent.
    pub valid_fraction: f64,
}

/// Greedy repair: drop the higher-degree endpoint of each violated edge.
pub fn repair(graph: &Graph, mut set: u64) -> u64 {
    let mut degree = vec![0usize; graph.n];
    for &(i, j) in &graph.edges {
        degree[i] += 1;
        degree[j] += 1;
    }
    loop {
        let mut worst: Option<usize> = None;
        for &(i, j) in &graph.edges {
            if (set >> i) & 1 == 1 && (set >> j) & 1 == 1 {
                let v = if degree[i] >= degree[j] { i } else { j };
                worst = Some(v);
                break;
            }
        }
        match worst {
            Some(v) => set &= !(1u64 << v),
            None => return set,
        }
    }
}

/// Score a sample result against the MIS objective.
pub fn score(graph: &Graph, result: &SampleResult) -> MisScore {
    let mut total = 0.0f64;
    let mut valid = 0u64;
    let mut best_set = 0u64;
    let mut best_size = 0usize;
    let shots = result.shots.max(1) as f64;
    for (&bits, &count) in &result.counts {
        if graph.is_independent(bits) {
            valid += count as u64;
        }
        let repaired = repair(graph, bits);
        let size = repaired.count_ones() as usize;
        total += size as f64 * count as f64;
        if size > best_size {
            best_size = size;
            best_set = repaired;
        }
    }
    MisScore {
        mean_set_size: total / shots,
        best_set_size: best_size,
        best_set,
        valid_fraction: valid as f64 / shots,
    }
}

/// The variational cost to *minimize*: negative mean repaired set size.
pub fn cost(graph: &Graph, result: &SampleResult) -> f64 {
    -score(graph, result).mean_set_size
}

/// One evaluated grid point of a [`sweep_search`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MisSweepTrial {
    /// The parameter scaling applied to the base sweep.
    pub point: SweepPoint,
    /// The MIS score the scaled sweep achieved.
    pub score: MisScore,
}

/// Result of a grid search over sweep-parameter scalings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MisSweepSearch {
    /// All evaluated trials, in grid order (ω-major).
    pub trials: Vec<MisSweepTrial>,
    /// Index into `trials` of the best mean repaired set size.
    pub best: usize,
}

impl MisSweepSearch {
    /// The winning trial.
    pub fn best_trial(&self) -> &MisSweepTrial {
        &self.trials[self.best]
    }
}

/// Grid-search the (Ω, δ) scaling of a base MIS sweep in one batched
/// submission.
///
/// Builds the `omega_scales × delta_scales` grid of [`SweepPoint`]s over the
/// base program and submits it through [`Runtime::run_sweep`], so a backend
/// with a batched engine (the local emulator) amortizes Hamiltonian
/// construction and drive discretization across the whole grid instead of
/// paying it per point — while returning results bit-identical to
/// independent runs.
///
/// Panics if either scale list is empty (the grid would have no points).
pub fn sweep_search(
    rt: &Runtime,
    register: &Register,
    graph: &Graph,
    base: &MisSweep,
    shots: u32,
    omega_scales: &[f64],
    delta_scales: &[f64],
) -> Result<MisSweepSearch, RuntimeError> {
    let template = mis_program(register, base, shots);
    let points: Vec<SweepPoint> = omega_scales
        .iter()
        .flat_map(|&os| {
            delta_scales.iter().map(move |&ds| SweepPoint {
                omega_scale: os,
                delta_scale: ds,
                phase_offset: 0.0,
            })
        })
        .collect();
    let reports = rt.run_sweep(&template, &points)?;
    let trials: Vec<MisSweepTrial> = points
        .into_iter()
        .zip(&reports)
        .map(|(point, report)| MisSweepTrial {
            point,
            score: score(graph, &report.result),
        })
        .collect();
    let best = trials
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.score
                .mean_set_size
                .partial_cmp(&b.score.mean_set_size)
                .expect("finite scores")
        })
        .map(|(i, _)| i)
        .expect("non-empty grid");
    Ok(MisSweepSearch { trials, best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_emulator::{Emulator, SvBackend};

    fn triangle_register() -> Register {
        // equilateral triangle with 6 µm sides: all pairs blockaded at r_b ≈ 8.7
        Register::from_coords(&[(0.0, 0.0), (6.0, 0.0), (3.0, 5.196)]).unwrap()
    }

    #[test]
    fn unit_disk_graph_construction() {
        let reg = Register::linear(4, 6.0).unwrap();
        let g = Graph::unit_disk(&reg, 8.0);
        // nearest neighbours only
        assert_eq!(g.edges, vec![(0, 1), (1, 2), (2, 3)]);
        let g2 = Graph::unit_disk(&reg, 13.0);
        assert_eq!(g2.edges.len(), 5, "NN + NNN edges");
    }

    #[test]
    fn independence_and_violations() {
        let g = Graph {
            n: 3,
            edges: vec![(0, 1), (1, 2)],
        };
        assert!(g.is_independent(0b101));
        assert!(!g.is_independent(0b011));
        assert_eq!(g.violations(0b111), 2);
        assert_eq!(g.violations(0b000), 0);
    }

    #[test]
    fn exact_mis_on_known_graphs() {
        // path of 4: MIS = 2 (ends + one middle... actually {0,2} or {0,3} or {1,3}) = 2
        let path4 = Graph {
            n: 4,
            edges: vec![(0, 1), (1, 2), (2, 3)],
        };
        assert_eq!(path4.exact_mis_size(), 2);
        // 5-cycle: MIS = 2
        let c5 = Graph {
            n: 5,
            edges: vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
        };
        assert_eq!(c5.exact_mis_size(), 2);
        // empty graph: all vertices
        let empty = Graph {
            n: 6,
            edges: vec![],
        };
        assert_eq!(empty.exact_mis_size(), 6);
        // triangle: 1
        let tri = Graph {
            n: 3,
            edges: vec![(0, 1), (1, 2), (0, 2)],
        };
        assert_eq!(tri.exact_mis_size(), 1);
    }

    #[test]
    fn repair_produces_independent_sets() {
        let g = Graph {
            n: 4,
            edges: vec![(0, 1), (1, 2), (2, 3)],
        };
        for set in 0..16u64 {
            let r = repair(&g, set);
            assert!(
                g.is_independent(r),
                "repair({set:04b}) = {r:04b} not independent"
            );
            assert_eq!(r & !set, 0, "repair only removes vertices");
        }
    }

    #[test]
    fn sweep_finds_mis_on_blockaded_triangle() {
        // all three atoms mutually blockaded → MIS size 1; the sweep should
        // produce single-excitation states dominantly.
        let reg = triangle_register();
        let g = Graph::unit_disk(&reg, 8.7);
        assert_eq!(g.exact_mis_size(), 1);
        let ir = mis_program(&reg, &MisSweep::default(), 1000);
        let res = SvBackend::default().run(&ir, 5).unwrap();
        let sc = score(&g, &res);
        assert!(sc.best_set_size == 1, "best {}", sc.best_set_size);
        assert!(
            sc.mean_set_size > 0.5,
            "sweep excites something: {}",
            sc.mean_set_size
        );
        assert!(
            sc.valid_fraction > 0.5,
            "blockade keeps sets valid: {}",
            sc.valid_fraction
        );
    }

    #[test]
    fn sweep_solves_chain_mis() {
        // 5-atom chain, NN blockade: MIS = {0,2,4}, size 3.
        let reg = Register::linear(5, 6.0).unwrap();
        let g = Graph::unit_disk(&reg, 8.7);
        assert_eq!(g.exact_mis_size(), 3);
        let sweep = MisSweep {
            duration: 4.0,
            ..MisSweep::default()
        };
        let ir = mis_program(&reg, &sweep, 1000);
        let res = SvBackend::default().run(&ir, 5).unwrap();
        let sc = score(&g, &res);
        assert_eq!(sc.best_set_size, 3, "adiabatic sweep reaches the MIS");
        assert!(sc.mean_set_size > 2.0, "mean {}", sc.mean_set_size);
        assert!(g.is_independent(sc.best_set));
    }

    #[test]
    fn cost_is_negative_set_size() {
        let g = Graph {
            n: 2,
            edges: vec![],
        };
        let res = SampleResult::from_shots(2, &[0b11, 0b11], "t");
        assert!((cost(&g, &res) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_search_finds_mis_on_chain() {
        use hpcqc_qrmi::{QrmiConfig, ResourceFactory};
        let reg = Register::linear(5, 6.0).unwrap();
        let g = Graph::unit_disk(&reg, 8.7);
        let rt = Runtime::new(
            ResourceFactory::new(7)
                .build_registry(&QrmiConfig::development_default())
                .unwrap(),
        );
        let search = sweep_search(
            &rt,
            &reg,
            &g,
            &MisSweep::default(),
            400,
            &[0.8, 1.0],
            &[0.9, 1.0],
        )
        .unwrap();
        assert_eq!(search.trials.len(), 4);
        // grid is ω-major: trial 3 is (1.0, 1.0), the base sweep itself
        assert_eq!(search.trials[3].point, SweepPoint::identity());
        let best = search.best_trial();
        assert_eq!(best.score.best_set_size, 3, "some scaling reaches the MIS");
        assert!(g.is_independent(best.score.best_set));
        assert!(
            search
                .trials
                .iter()
                .all(|t| t.score.mean_set_size <= best.score.mean_set_size),
            "best is the grid argmax"
        );
    }

    #[test]
    fn program_respects_production_envelope() {
        // default sweep must fit the production device (it's the flagship
        // workload): validate against the hardware spec.
        let reg = Register::linear(6, 6.0).unwrap();
        let ir = mis_program(&reg, &MisSweep::default(), 500);
        let spec = hpcqc_program::DeviceSpec::analog_production();
        let v = hpcqc_program::validate(&ir.sequence, &spec);
        assert!(v.is_empty(), "violations: {v:?}");
    }
}
