//! # hpcqc-workloads — hybrid workloads and workload generators
//!
//! The applications and populations the experiments run:
//!
//! * [`optimizers`] — Nelder–Mead and SPSA, the classical halves of
//!   variational loops,
//! * [`mis`] — Maximum Independent Set via adiabatic sweeps, the canonical
//!   neutral-atom hybrid algorithm (pattern C),
//! * [`sqd`] — SQD-style sample post-processing with rayon-parallel subspace
//!   diagonalization, the classical-heavy pattern B of the paper's §2.4,
//! * [`patterns`] — seeded Table-1 job-population generators feeding the
//!   scheduling experiments.

pub mod mis;
pub mod optimizers;
pub mod patterns;
pub mod sqd;

pub use mis::{
    cost as mis_cost, mis_program, score as mis_score, sweep_search as mis_sweep_search, Graph,
    MisScore, MisSweep, MisSweepSearch, MisSweepTrial,
};
pub use optimizers::{NelderMead, OptimResult, Spsa};
pub use patterns::{generate_job, generate_population, to_batch_spec, Pattern, PatternGenConfig};
pub use sqd::{
    recover_configurations, sqd_pipeline, subspace_diagonalize, IsingProblem, SqdResult,
};
