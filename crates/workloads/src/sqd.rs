//! Sample-based Quantum Diagonalization (SQD)-style post-processing.
//!
//! The paper (§2.4) motivates classical-heavy hybrid patterns with SQD
//! (ref [17]), where bitstring samples from the QPU seed a classical
//! subspace diagonalization parallelized over thousands of nodes. This
//! module reproduces that *workload shape*: configuration recovery over the
//! sampled bitstrings, assembly of the Hamiltonian restricted to the sampled
//! subspace, and an iterative ground-state solve — with the expensive parts
//! parallelized with rayon. It is the genuine Low-QC / High-CC (pattern B)
//! member of the Table-1 taxonomy.

use hpcqc_emulator::SampleResult;
use hpcqc_program::Register;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// An Ising-type problem Hamiltonian on register geometry:
/// `H = Σ_{i<j} J_ij n_i n_j − δ Σ_i n_i − Ω/2 Σ_i σ_x^i` with
/// `J_ij = C6 / r_ij^6`. The transverse Ω term couples configurations that
/// differ by one bit — it is what makes the subspace solve non-trivial.
#[derive(Debug, Clone)]
pub struct IsingProblem {
    pub n: usize,
    pub pair_j: Vec<(usize, usize, f64)>,
    pub delta: f64,
    pub omega: f64,
}

impl IsingProblem {
    /// Build from geometry.
    pub fn from_register(register: &Register, c6: f64, delta: f64, omega: f64) -> Self {
        IsingProblem {
            n: register.len(),
            pair_j: register
                .pairs()
                .into_iter()
                .map(|(i, j, r)| (i, j, c6 / r.powi(6)))
                .collect(),
            delta,
            omega,
        }
    }

    /// Diagonal (classical) energy of a configuration.
    pub fn diagonal_energy(&self, config: u64) -> f64 {
        let mut e = -self.delta * config.count_ones() as f64;
        for &(i, j, jij) in &self.pair_j {
            if (config >> i) & 1 == 1 && (config >> j) & 1 == 1 {
                e += jij;
            }
        }
        e
    }
}

/// Result of the subspace diagonalization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SqdResult {
    /// Ground-state energy estimate in the sampled subspace.
    pub energy: f64,
    /// Number of configurations in the subspace after recovery.
    pub subspace_dim: usize,
    /// Iterations the eigensolver took.
    pub solver_iterations: usize,
    /// The dominant configuration of the subspace ground state.
    pub dominant_config: u64,
}

/// Configuration recovery: take the sampled configurations, then expand by
/// all single-bit flips of the `keep_top` most frequent ones (recovering
/// configurations lost to readout errors — the role recovery plays in SQD).
pub fn recover_configurations(samples: &SampleResult, keep_top: usize) -> Vec<u64> {
    let mut configs: std::collections::BTreeSet<u64> = samples.counts.keys().copied().collect();
    for (bits, _) in samples.top_k(keep_top) {
        for i in 0..samples.n_qubits {
            configs.insert(bits ^ (1 << i));
        }
    }
    configs.into_iter().collect()
}

/// Diagonalize the Hamiltonian restricted to `configs` and return the
/// ground state, via (deflated) inverse-free power iteration on
/// `(σI − H_sub)`. The matrix assembly — `O(dim²)` diagonal-energy and
/// coupling evaluations — is the rayon-parallel classical-heavy kernel.
pub fn subspace_diagonalize(problem: &IsingProblem, configs: &[u64]) -> SqdResult {
    assert!(!configs.is_empty(), "subspace is empty");
    let dim = configs.len();
    let index: std::collections::HashMap<u64, usize> =
        configs.iter().enumerate().map(|(k, &c)| (c, k)).collect();

    // parallel assembly: diagonal energies
    let diag: Vec<f64> = configs
        .par_iter()
        .map(|&c| problem.diagonal_energy(c))
        .collect();
    // off-diagonal: -Ω/2 between configs differing in exactly one bit
    let half_omega = problem.omega / 2.0;
    let couplings: Vec<Vec<(usize, f64)>> = configs
        .par_iter()
        .map(|&c| {
            let mut row = Vec::new();
            for i in 0..problem.n {
                if let Some(&k) = index.get(&(c ^ (1u64 << i))) {
                    row.push((k, -half_omega));
                }
            }
            row
        })
        .collect();

    // spectral shift: σ ≥ max diagonal so (σI − H) is positive and its top
    // eigenvector is H's ground state
    let emax = diag.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let bound = emax + problem.omega * problem.n as f64 + 1.0;
    let matvec = |v: &[f64]| -> Vec<f64> {
        (0..dim)
            .into_par_iter()
            .map(|r| {
                let mut acc = (bound - diag[r]) * v[r];
                for &(k, w) in &couplings[r] {
                    acc -= w * v[k];
                }
                acc
            })
            .collect()
    };

    let mut v = vec![1.0 / (dim as f64).sqrt(); dim];
    let mut lambda_prev = 0.0;
    let mut iterations = 0;
    for it in 0..5000 {
        iterations = it + 1;
        let w = matvec(&v);
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm > 0.0, "power iteration collapsed");
        let lambda: f64 = v.iter().zip(&w).map(|(a, b)| a * b).sum();
        v = w.into_iter().map(|x| x / norm).collect();
        if (lambda - lambda_prev).abs() < 1e-12 * lambda.abs().max(1.0) {
            lambda_prev = lambda;
            break;
        }
        lambda_prev = lambda;
    }
    let energy = bound - lambda_prev;
    let dominant = v
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("finite"))
        .map(|(k, _)| configs[k])
        .expect("non-empty");
    SqdResult {
        energy,
        subspace_dim: dim,
        solver_iterations: iterations,
        dominant_config: dominant,
    }
}

/// The full SQD-style pipeline: recovery + subspace diagonalization.
pub fn sqd_pipeline(problem: &IsingProblem, samples: &SampleResult, keep_top: usize) -> SqdResult {
    let configs = recover_configurations(samples, keep_top);
    subspace_diagonalize(problem, &configs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::units::C6_COEFF;

    fn chain_problem(n: usize) -> IsingProblem {
        let reg = Register::linear(n, 8.0).unwrap();
        IsingProblem::from_register(&reg, C6_COEFF, 2.0, 1.5)
    }

    #[test]
    fn diagonal_energy_matches_hand_computation() {
        let p = chain_problem(3);
        let j_nn = C6_COEFF / 8f64.powi(6);
        assert_eq!(p.diagonal_energy(0b000), 0.0);
        assert!((p.diagonal_energy(0b001) + 2.0).abs() < 1e-12);
        assert!((p.diagonal_energy(0b011) - (j_nn - 4.0)).abs() < 1e-9);
    }

    #[test]
    fn recovery_adds_single_flips() {
        let samples = SampleResult::from_shots(3, &[0b101, 0b101, 0b001], "t");
        let configs = recover_configurations(&samples, 1);
        // top config 0b101 expands by flips: 100, 111, 001
        assert!(configs.contains(&0b101));
        assert!(configs.contains(&0b001));
        assert!(configs.contains(&0b100));
        assert!(configs.contains(&0b111));
    }

    #[test]
    fn full_subspace_matches_exact_ground_state() {
        // For a small system the "subspace" can be the full space: the SQD
        // energy must then equal the exact ground energy from dense
        // diagonalization of the same Hamiltonian.
        let p = chain_problem(3);
        let configs: Vec<u64> = (0..8).collect();
        let r = subspace_diagonalize(&p, &configs);
        // exact: build dense 8x8 and get min eigenvalue by the same shift
        // trick with many iterations on an independent implementation
        let mut h = vec![vec![0.0f64; 8]; 8];
        for (c, row) in h.iter_mut().enumerate() {
            row[c] = p.diagonal_energy(c as u64);
        }
        for c in 0..8u64 {
            for i in 0..3 {
                let f = (c ^ (1 << i)) as usize;
                h[c as usize][f] = -p.omega / 2.0;
            }
        }
        // dense power iteration on (bI - H)
        let b = 100.0;
        let mut v = [1.0f64; 8];
        for _ in 0..20000 {
            let mut w = [0.0f64; 8];
            for r_ in 0..8 {
                w[r_] = (b - h[r_][r_]) * v[r_];
                for c_ in 0..8 {
                    if c_ != r_ {
                        w[r_] -= h[r_][c_] * v[c_];
                    }
                }
            }
            let n = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            for (vi, wi) in v.iter_mut().zip(&w) {
                *vi = wi / n;
            }
        }
        let exact: f64 = {
            let mut hv = [0.0f64; 8];
            for r_ in 0..8 {
                for c_ in 0..8 {
                    hv[r_] += h[r_][c_] * v[c_];
                }
            }
            v.iter().zip(&hv).map(|(a, b)| a * b).sum()
        };
        assert!(
            (r.energy - exact).abs() < 1e-6,
            "sqd {} vs exact {exact}",
            r.energy
        );
        assert_eq!(r.subspace_dim, 8);
    }

    #[test]
    fn larger_subspace_never_raises_energy() {
        // variational property: adding configurations can only lower (or
        // keep) the subspace ground energy.
        let p = chain_problem(4);
        let small: Vec<u64> = vec![0b0000, 0b0001, 0b0010];
        let large: Vec<u64> = (0..16).collect();
        let e_small = subspace_diagonalize(&p, &small).energy;
        let e_large = subspace_diagonalize(&p, &large).energy;
        assert!(
            e_large <= e_small + 1e-9,
            "variational violated: {e_large} > {e_small}"
        );
    }

    #[test]
    fn pipeline_runs_from_samples() {
        let samples = SampleResult::from_shots(4, &[0b0101, 0b0101, 0b1010, 0b0001, 0b0100], "qpu");
        let p = chain_problem(4);
        let r = sqd_pipeline(&p, &samples, 2);
        assert!(r.subspace_dim >= 5, "recovery expanded the subspace");
        assert!(r.energy.is_finite());
        assert!(r.solver_iterations > 0);
    }

    #[test]
    #[should_panic(expected = "subspace is empty")]
    fn empty_subspace_panics() {
        subspace_diagonalize(&chain_problem(2), &[]);
    }

    #[test]
    fn dominant_config_has_negative_energy_drive() {
        // with strong detuning and weak coupling, single-excitation states
        // dominate the ground state over the empty state
        let p = IsingProblem {
            n: 2,
            pair_j: vec![(0, 1, 50.0)],
            delta: 5.0,
            omega: 0.5,
        };
        let configs: Vec<u64> = (0..4).collect();
        let r = subspace_diagonalize(&p, &configs);
        assert!(r.dominant_config == 0b01 || r.dominant_config == 0b10);
        assert!(r.energy < -4.9, "near the single-excitation energy -5");
    }
}
