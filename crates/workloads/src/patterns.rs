//! Table-1 workload generators.
//!
//! Seeded generators producing hybrid-job populations matching the paper's
//! taxonomy (Table 1): pattern A (High-QC / Low-CC), pattern B
//! (Low-QC / High-CC), pattern C (balanced), and mixed populations. These
//! feed both the middleware co-simulation (Table-1/Figure-2 experiments) and
//! the batch-scheduler simulator.

use hpcqc_middleware::{HybridJob, Phase, PriorityClass};
use hpcqc_scheduler::{JobSpec, PatternHint};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The three taxonomy rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// A: dominant quantum load, minor classical pre/post processing.
    A,
    /// B: sparse quantum load, heavy classical load.
    B,
    /// C: comparable loads, fine-grained alternation.
    C,
}

impl Pattern {
    /// The scheduler hint a job of this pattern carries.
    pub fn hint(&self) -> PatternHint {
        match self {
            Pattern::A => PatternHint::QcHeavy,
            Pattern::B => PatternHint::CcHeavy,
            Pattern::C => PatternHint::QcBalanced,
        }
    }

    /// Nominal QPU duty ratio of the pattern.
    pub fn duty(&self) -> f64 {
        match self {
            Pattern::A => 0.9,
            Pattern::B => 0.1,
            Pattern::C => 0.5,
        }
    }
}

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternGenConfig {
    /// Mean total work (quantum + classical) per job, seconds.
    pub mean_total_secs: f64,
    /// Number of QC/CC alternations: A gets 1 quantum block, B gets 1,
    /// C gets this many fine-grained rounds.
    pub balanced_rounds: usize,
    /// Nodes requested per job.
    pub nodes: u32,
    /// Mean inter-arrival time, seconds (exponential); 0 = all at t=0.
    pub mean_interarrival_secs: f64,
}

impl Default for PatternGenConfig {
    fn default() -> Self {
        PatternGenConfig {
            mean_total_secs: 600.0,
            balanced_rounds: 6,
            nodes: 1,
            mean_interarrival_secs: 60.0,
        }
    }
}

fn exp_sample<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen::<f64>().max(1e-12);
    -mean * u.ln()
}

/// Jittered total around the configured mean (±30 %).
fn jittered_total<R: Rng>(rng: &mut R, cfg: &PatternGenConfig) -> f64 {
    cfg.mean_total_secs * (0.7 + 0.6 * rng.gen::<f64>())
}

/// Generate one job of `pattern`.
pub fn generate_job<R: Rng>(
    id: u64,
    pattern: Pattern,
    class: PriorityClass,
    arrival: f64,
    cfg: &PatternGenConfig,
    rng: &mut R,
) -> HybridJob {
    let total = jittered_total(rng, cfg);
    let q_total = total * pattern.duty();
    let c_total = total - q_total;
    let phases = match pattern {
        // A: small classical prologue, one big quantum block, small epilogue
        Pattern::A => vec![
            Phase::Classical(c_total / 2.0),
            Phase::Quantum(q_total),
            Phase::Classical(c_total / 2.0),
        ],
        // B: one short quantum seed, then heavy classical post-processing
        Pattern::B => vec![
            Phase::Classical(c_total * 0.1),
            Phase::Quantum(q_total),
            Phase::Classical(c_total * 0.9),
        ],
        // C: fine-grained alternation (variational loop shape)
        Pattern::C => {
            let rounds = cfg.balanced_rounds.max(1);
            let (qr, cr) = (q_total / rounds as f64, c_total / rounds as f64);
            let mut v = Vec::with_capacity(2 * rounds);
            for _ in 0..rounds {
                v.push(Phase::Classical(cr));
                v.push(Phase::Quantum(qr));
            }
            v
        }
    };
    HybridJob {
        id,
        class,
        hint: pattern.hint(),
        nodes: cfg.nodes,
        phases,
        arrival,
    }
}

/// Generate a seeded population with the given pattern mix
/// (`mix` = fractions for A, B, C; normalized internally) and class mix of
/// 20 % production / 30 % test / 50 % development.
pub fn generate_population(
    count: usize,
    mix: (f64, f64, f64),
    cfg: &PatternGenConfig,
    seed: u64,
) -> Vec<HybridJob> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let total_mix = (mix.0 + mix.1 + mix.2).max(1e-12);
    let (pa, pb) = (mix.0 / total_mix, mix.1 / total_mix);
    let mut arrival = 0.0;
    (0..count as u64)
        .map(|id| {
            let r: f64 = rng.gen();
            let pattern = if r < pa {
                Pattern::A
            } else if r < pa + pb {
                Pattern::B
            } else {
                Pattern::C
            };
            let rc: f64 = rng.gen();
            let class = if rc < 0.2 {
                PriorityClass::Production
            } else if rc < 0.5 {
                PriorityClass::Test
            } else {
                PriorityClass::Development
            };
            arrival += exp_sample(&mut rng, cfg.mean_interarrival_secs);
            generate_job(id, pattern, class, arrival, cfg, &mut rng)
        })
        .collect()
}

/// Convert a hybrid job into the batch-scheduler job spec it would submit
/// (wall time = total work with 50 % margin, partition from its class,
/// hint forwarded, QPU GRES units proportional to its duty per §3.5).
pub fn to_batch_spec(job: &HybridJob, gres_pool: u32) -> JobSpec {
    let total = job.qpu_secs() + job.classical_secs();
    let gres_units = ((job.duty() * gres_pool as f64).ceil() as u32).clamp(1, gres_pool);
    JobSpec {
        name: format!("hybrid-{}", job.id),
        user: format!("user{}", job.id % 7),
        partition: job.class.partition().to_string(),
        nodes: job.nodes,
        gres: [("qpu".to_string(), gres_units)].into(),
        licenses: Default::default(),
        time_limit_secs: total * 1.5,
        actual_runtime_secs: total,
        hint: job.hint,
        expected_qpu_secs: Some(job.qpu_secs()),
        // the runtime layer knows the workload: a mildly padded prediction
        // (§4 two-way communication; 10% safety margin)
        predicted_runtime_secs: Some(total * 1.1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_duties_ordered() {
        assert!(Pattern::A.duty() > Pattern::C.duty());
        assert!(Pattern::C.duty() > Pattern::B.duty());
        assert_eq!(Pattern::A.hint(), PatternHint::QcHeavy);
        assert_eq!(Pattern::B.hint(), PatternHint::CcHeavy);
        assert_eq!(Pattern::C.hint(), PatternHint::QcBalanced);
    }

    #[test]
    fn generated_jobs_match_pattern_duty() {
        let cfg = PatternGenConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for (pattern, lo, hi) in [
            (Pattern::A, 0.85, 0.95),
            (Pattern::B, 0.05, 0.15),
            (Pattern::C, 0.45, 0.55),
        ] {
            let j = generate_job(1, pattern, PriorityClass::Test, 0.0, &cfg, &mut rng);
            let d = j.duty();
            assert!(d >= lo && d <= hi, "{pattern:?}: duty {d}");
        }
    }

    #[test]
    fn balanced_jobs_alternate_finely() {
        let cfg = PatternGenConfig {
            balanced_rounds: 5,
            ..PatternGenConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let j = generate_job(1, Pattern::C, PriorityClass::Test, 0.0, &cfg, &mut rng);
        assert_eq!(j.phases.len(), 10);
        let quantum_blocks = j
            .phases
            .iter()
            .filter(|p| matches!(p, Phase::Quantum(_)))
            .count();
        assert_eq!(quantum_blocks, 5);
    }

    #[test]
    fn population_is_seeded_and_mixed() {
        let cfg = PatternGenConfig::default();
        let a = generate_population(100, (1.0, 1.0, 1.0), &cfg, 42);
        let b = generate_population(100, (1.0, 1.0, 1.0), &cfg, 42);
        assert_eq!(a, b, "same seed, same population");
        let c = generate_population(100, (1.0, 1.0, 1.0), &cfg, 43);
        assert_ne!(a, c, "different seed differs");
        // mix covers all three hints
        let hints: std::collections::HashSet<_> = a.iter().map(|j| j.hint).collect();
        assert_eq!(hints.len(), 3);
        // arrivals increase
        for w in a.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
        // all classes present
        let classes: std::collections::HashSet<_> = a.iter().map(|j| j.class).collect();
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn pure_mix_produces_single_pattern() {
        let cfg = PatternGenConfig::default();
        let pop = generate_population(50, (1.0, 0.0, 0.0), &cfg, 7);
        assert!(pop.iter().all(|j| j.hint == PatternHint::QcHeavy));
    }

    #[test]
    fn batch_spec_scales_gres_with_duty() {
        let cfg = PatternGenConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = generate_job(
            1,
            Pattern::A,
            PriorityClass::Production,
            0.0,
            &cfg,
            &mut rng,
        );
        let b = generate_job(
            2,
            Pattern::B,
            PriorityClass::Development,
            0.0,
            &cfg,
            &mut rng,
        );
        let sa = to_batch_spec(&a, 10);
        let sb = to_batch_spec(&b, 10);
        assert!(sa.gres["qpu"] > sb.gres["qpu"]);
        assert!(sa.gres["qpu"] <= 10);
        assert!(sb.gres["qpu"] >= 1);
        assert_eq!(sa.partition, "production");
        assert_eq!(sb.partition, "development");
        assert!(sa.time_limit_secs > sa.actual_runtime_secs);
        assert_eq!(sa.expected_qpu_secs, Some(a.qpu_secs()));
    }
}
