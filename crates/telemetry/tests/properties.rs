//! Property-based tests on the observability stack.

use hpcqc_telemetry::{
    labels, Agg, CusumDetector, Detection, Registry, TimeSeriesDb, ZScoreDetector,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn downsample_count_conserves_points(
        values in proptest::collection::vec(-100.0f64..100.0, 1..200),
        step in 1.0f64..50.0,
    ) {
        let db = TimeSeriesDb::new();
        for (t, v) in values.iter().enumerate() {
            db.append("s", t as f64, *v);
        }
        let to = values.len() as f64;
        let counted: f64 = db
            .downsample("s", 0.0, to, step, Agg::Count)
            .iter()
            .map(|p| p.value)
            .sum();
        prop_assert_eq!(counted as usize, values.len());
    }

    #[test]
    fn downsample_mean_within_min_max(
        values in proptest::collection::vec(-100.0f64..100.0, 2..100),
        step in 1.0f64..20.0,
    ) {
        let db = TimeSeriesDb::new();
        for (t, v) in values.iter().enumerate() {
            db.append("s", t as f64, *v);
        }
        let to = values.len() as f64;
        let means = db.downsample("s", 0.0, to, step, Agg::Mean);
        let mins = db.downsample("s", 0.0, to, step, Agg::Min);
        let maxs = db.downsample("s", 0.0, to, step, Agg::Max);
        prop_assert_eq!(means.len(), mins.len());
        for ((m, lo), hi) in means.iter().zip(&mins).zip(&maxs) {
            prop_assert!(m.value >= lo.value - 1e-12 && m.value <= hi.value + 1e-12);
        }
    }

    #[test]
    fn stats_std_is_zero_iff_constant(
        value in -50.0f64..50.0,
        n in 1usize..50,
    ) {
        let db = TimeSeriesDb::new();
        for t in 0..n {
            db.append("s", t as f64, value);
        }
        let (mean, std) = db.stats("s", 0.0, n as f64).unwrap();
        prop_assert!((mean - value).abs() < 1e-12);
        prop_assert!(std.abs() < 1e-12);
    }

    #[test]
    fn range_queries_are_slices(
        values in proptest::collection::vec(-10.0f64..10.0, 1..100),
        lo in 0usize..100,
        span in 0usize..100,
    ) {
        let db = TimeSeriesDb::new();
        for (t, v) in values.iter().enumerate() {
            db.append("s", t as f64, *v);
        }
        let from = lo as f64;
        let to = (lo + span) as f64;
        let pts = db.range("s", from, to);
        // every returned point is inside the window and in order
        for p in &pts {
            prop_assert!(p.ts >= from && p.ts <= to);
        }
        for w in pts.windows(2) {
            prop_assert!(w[0].ts <= w[1].ts);
        }
        // count matches the arithmetic expectation
        let expect = values
            .iter()
            .enumerate()
            .filter(|(t, _)| (*t as f64) >= from && (*t as f64) <= to)
            .count();
        prop_assert_eq!(pts.len(), expect);
    }

    #[test]
    fn detectors_never_fire_on_constant_series(
        value in -10.0f64..10.0,
        n in 10usize..200,
    ) {
        let mut z = ZScoreDetector::new(5, 3.0);
        let mut c = CusumDetector::new(5, 0.01, 0.1);
        for _ in 0..n {
            prop_assert!(!matches!(z.update(value), Detection::Drift { .. }), "z-score false alarm");
            prop_assert!(!matches!(c.update(value), Detection::Drift { .. }), "cusum false alarm");
        }
    }

    #[test]
    fn zscore_always_fires_on_huge_outlier(
        baseline in -5.0f64..5.0,
        n in 10usize..50,
    ) {
        let mut z = ZScoreDetector::new(5, 4.0).with_min_std(0.1);
        for _ in 0..n {
            z.update(baseline);
        }
        prop_assert!(matches!(z.update(baseline + 1000.0), Detection::Drift { .. }), "outlier missed");
    }

    #[test]
    fn counter_sums_match(
        increments in proptest::collection::vec(0.0f64..10.0, 1..50),
    ) {
        let r = Registry::new();
        let l = labels(&[("k", "v")]);
        for &inc in &increments {
            r.counter_add("c_total", "test", l.clone(), inc);
        }
        let total: f64 = increments.iter().sum();
        prop_assert!((r.get_value("c_total", &l).unwrap() - total).abs() < 1e-9);
        // exposition contains the series exactly once
        let text = r.expose();
        let hits = text.lines().filter(|ln| ln.starts_with("c_total{")).count();
        prop_assert_eq!(hits, 1);
    }
}
