//! Calibration-drift detection.
//!
//! QPU calibration parameters (Rabi frequency, detuning offset, detection
//! error) fluctuate and drift over time (paper §2.5). Two standard online
//! detectors are provided:
//!
//! * [`ZScoreDetector`] — flags a sample whose z-score against a trailing
//!   baseline window exceeds a threshold (good for step changes / outliers),
//! * [`CusumDetector`] — cumulative-sum detector accumulating small
//!   persistent deviations (good for slow drifts the z-score misses).
//!
//! Both are deterministic, allocation-light state machines fed one sample at
//! a time, so they run inside the observability daemon's collection loop.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Outcome of feeding one sample into a detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Detection {
    /// Not enough history yet to judge.
    Warmup,
    /// Sample consistent with baseline.
    Normal,
    /// Drift/step detected at this sample.
    Drift { score: f64 },
}

/// Rolling z-score detector with a trailing baseline window.
#[derive(Debug, Clone)]
pub struct ZScoreDetector {
    window: VecDeque<f64>,
    /// Baseline length (samples).
    capacity: usize,
    /// |z| above this flags drift.
    threshold: f64,
    /// Floor on the baseline σ to avoid division blow-ups on quiet series.
    min_std: f64,
}

impl ZScoreDetector {
    /// A detector with a `capacity`-sample baseline and a z threshold.
    pub fn new(capacity: usize, threshold: f64) -> Self {
        assert!(capacity >= 2, "baseline needs at least 2 samples");
        assert!(threshold > 0.0);
        ZScoreDetector {
            window: VecDeque::with_capacity(capacity),
            capacity,
            threshold,
            min_std: 1e-9,
        }
    }

    /// Override the σ floor (useful when the metric's natural scale is tiny).
    pub fn with_min_std(mut self, min_std: f64) -> Self {
        self.min_std = min_std;
        self
    }

    /// Feed a sample; drifting samples are NOT absorbed into the baseline
    /// (so a step change keeps firing until the operator recalibrates or the
    /// detector is reset).
    pub fn update(&mut self, value: f64) -> Detection {
        if self.window.len() < self.capacity {
            self.window.push_back(value);
            return Detection::Warmup;
        }
        let n = self.window.len() as f64;
        let mean = self.window.iter().sum::<f64>() / n;
        let var = self.window.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt().max(self.min_std);
        let z = (value - mean) / std;
        if z.abs() > self.threshold {
            Detection::Drift { score: z }
        } else {
            self.window.pop_front();
            self.window.push_back(value);
            Detection::Normal
        }
    }

    /// Drop all history (e.g. after a recalibration event).
    pub fn reset(&mut self) {
        self.window.clear();
    }
}

/// Two-sided CUSUM detector for slow persistent drifts.
///
/// Tracks `S⁺ = max(0, S⁺ + (x − μ₀ − k))` and `S⁻ = max(0, S⁻ − (x − μ₀ + k))`
/// and fires when either exceeds `h`. `μ₀` is learned from the first
/// `warmup` samples.
#[derive(Debug, Clone)]
pub struct CusumDetector {
    /// Reference mean; `None` until warmup completes.
    mu0: Option<f64>,
    warmup_buf: Vec<f64>,
    warmup: usize,
    /// Slack parameter (insensitivity band) in metric units.
    k: f64,
    /// Decision threshold in metric units.
    h: f64,
    s_pos: f64,
    s_neg: f64,
}

impl CusumDetector {
    /// `warmup` samples establish the reference mean; `k` is the slack and
    /// `h` the decision threshold, both in the metric's units.
    pub fn new(warmup: usize, k: f64, h: f64) -> Self {
        assert!(warmup >= 1);
        assert!(k >= 0.0 && h > 0.0);
        CusumDetector {
            mu0: None,
            warmup_buf: Vec::with_capacity(warmup),
            warmup,
            k,
            h,
            s_pos: 0.0,
            s_neg: 0.0,
        }
    }

    /// Feed one sample.
    pub fn update(&mut self, value: f64) -> Detection {
        let mu0 = match self.mu0 {
            Some(m) => m,
            None => {
                self.warmup_buf.push(value);
                if self.warmup_buf.len() < self.warmup {
                    return Detection::Warmup;
                }
                let m = self.warmup_buf.iter().sum::<f64>() / self.warmup_buf.len() as f64;
                self.mu0 = Some(m);
                self.warmup_buf.clear();
                return Detection::Warmup;
            }
        };
        let dev = value - mu0;
        self.s_pos = (self.s_pos + dev - self.k).max(0.0);
        self.s_neg = (self.s_neg - dev - self.k).max(0.0);
        let score = self.s_pos.max(self.s_neg);
        if score > self.h {
            Detection::Drift { score }
        } else {
            Detection::Normal
        }
    }

    /// Reset accumulators and re-learn the reference mean.
    pub fn reset(&mut self) {
        self.mu0 = None;
        self.warmup_buf.clear();
        self.s_pos = 0.0;
        self.s_neg = 0.0;
    }

    /// Current reference mean once learned.
    pub fn reference(&self) -> Option<f64> {
        self.mu0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscore_warms_up_then_accepts_baseline() {
        let mut d = ZScoreDetector::new(5, 4.0);
        for i in 0..5 {
            assert_eq!(d.update(1.0 + 0.01 * i as f64), Detection::Warmup);
        }
        assert_eq!(d.update(1.02), Detection::Normal);
    }

    #[test]
    fn zscore_detects_step_change() {
        let mut d = ZScoreDetector::new(10, 4.0).with_min_std(0.01);
        for i in 0..10 {
            d.update(1.0 + 0.001 * (i % 3) as f64);
        }
        match d.update(2.0) {
            Detection::Drift { score } => assert!(score > 4.0),
            other => panic!("expected drift, got {other:?}"),
        }
        // keeps firing: baseline not polluted by the outlier
        assert!(matches!(d.update(2.0), Detection::Drift { .. }));
    }

    #[test]
    fn zscore_reset_clears_history() {
        let mut d = ZScoreDetector::new(3, 3.0);
        d.update(1.0);
        d.update(1.0);
        d.update(1.0);
        d.reset();
        assert_eq!(d.update(100.0), Detection::Warmup);
    }

    #[test]
    fn zscore_ignores_noise_within_threshold() {
        let mut d = ZScoreDetector::new(20, 5.0);
        // noisy but stationary series
        let vals: Vec<f64> = (0..200)
            .map(|i| 1.0 + 0.05 * ((i * 37 % 11) as f64 - 5.0) / 5.0)
            .collect();
        let mut drifts = 0;
        for v in vals {
            if matches!(d.update(v), Detection::Drift { .. }) {
                drifts += 1;
            }
        }
        assert_eq!(drifts, 0, "stationary noise must not alarm");
    }

    #[test]
    fn cusum_detects_slow_drift_zscore_would_miss() {
        // drift of +0.2% per sample: each step is < 1σ of the noise, but the
        // cumulative deviation grows without bound.
        let mut cusum = CusumDetector::new(20, 0.005, 0.05);
        let mut z = ZScoreDetector::new(20, 6.0).with_min_std(0.002);
        let mut cusum_fired_at = None;
        let mut z_fired_at = None;
        for i in 0..400 {
            let noise = 0.002 * ((i * 31 % 7) as f64 - 3.0) / 3.0;
            let v = if i < 100 {
                1.0 + noise
            } else {
                1.0 + noise + 0.0002 * (i - 100) as f64
            };
            if cusum_fired_at.is_none() {
                if let Detection::Drift { .. } = cusum.update(v) {
                    cusum_fired_at = Some(i);
                }
            }
            if z_fired_at.is_none() {
                if let Detection::Drift { .. } = z.update(v) {
                    z_fired_at = Some(i);
                }
            }
        }
        let c = cusum_fired_at.expect("CUSUM must catch the slow drift");
        assert!(c > 100, "fires only after the drift starts, fired at {c}");
        if let Some(zf) = z_fired_at {
            assert!(
                c <= zf,
                "CUSUM ({c}) should beat z-score ({zf}) on slow drift"
            );
        }
    }

    #[test]
    fn cusum_two_sided() {
        let mut d = CusumDetector::new(5, 0.0, 1.0);
        for _ in 0..5 {
            d.update(10.0);
        }
        assert_eq!(d.reference(), Some(10.0));
        // downward shift
        let mut fired = false;
        for _ in 0..5 {
            if matches!(d.update(9.5), Detection::Drift { .. }) {
                fired = true;
                break;
            }
        }
        assert!(fired, "downward drift detected");
    }

    #[test]
    fn cusum_stable_series_never_fires() {
        let mut d = CusumDetector::new(10, 0.05, 1.0);
        for i in 0..500 {
            let v = 5.0 + 0.01 * ((i % 5) as f64 - 2.0);
            assert!(
                !matches!(d.update(v), Detection::Drift { .. }),
                "false alarm at sample {i}"
            );
        }
    }

    #[test]
    fn cusum_reset_relearns_reference() {
        let mut d = CusumDetector::new(3, 0.0, 0.5);
        for _ in 0..3 {
            d.update(1.0);
        }
        d.reset();
        assert_eq!(d.reference(), None);
        for _ in 0..3 {
            d.update(2.0);
        }
        assert_eq!(d.reference(), Some(2.0));
        // new baseline accepted
        assert_eq!(d.update(2.0), Detection::Normal);
    }
}
