//! Lock-contention metrics bridge: `hpcqc_sync` → [`Registry`].
//!
//! Every [`hpcqc_sync::TrackedMutex`] / `TrackedRwLock` keeps always-on
//! acquisition counters and log₂ wait/hold-time histograms. This module
//! folds those per-lock-instance stats into Prometheus gauges on scrape
//! (daemon `metrics_text` calls [`export_lock_metrics`] before rendering),
//! so per-lock contention and hold-time tails land on `GET /metrics` next
//! to the daemon's own series.
//!
//! Stats are aggregated **by lock name**: test suites and multi-daemon
//! processes create many instances of e.g. `middleware.daemon.queue`, and
//! operators care about the lock, not the instance. Gauges (not counters)
//! because each scrape re-publishes an absolute snapshot.

use crate::metrics::{labels, Registry};
use hpcqc_sync::{all_lock_stats, histogram_quantile_ns, BUCKETS};
use std::collections::BTreeMap;

/// Aggregated snapshot of one lock name across all live instances.
struct NameAgg {
    rank: u32,
    acquisitions: u64,
    contended: u64,
    wait: [u64; BUCKETS],
    hold: [u64; BUCKETS],
}

fn aggregate() -> BTreeMap<&'static str, NameAgg> {
    let mut by_name: BTreeMap<&'static str, NameAgg> = BTreeMap::new();
    for s in all_lock_stats() {
        let agg = by_name.entry(s.name).or_insert_with(|| NameAgg {
            rank: s.rank,
            acquisitions: 0,
            contended: 0,
            wait: [0; BUCKETS],
            hold: [0; BUCKETS],
        });
        agg.acquisitions += s.acquisitions();
        agg.contended += s.contended();
        let (w, h) = (s.wait_histogram(), s.hold_histogram());
        for i in 0..BUCKETS {
            agg.wait[i] += w[i];
            agg.hold[i] += h[i];
        }
    }
    by_name
}

/// Publish per-lock stats into `reg` as gauges, labeled by lock name.
///
/// Exported series (durations in seconds, quantiles upper-bound estimates
/// from the log₂ histograms, good to 2×):
///
/// * `lock_acquisitions{lock=..}` / `lock_contended_acquisitions{lock=..}`
/// * `lock_rank{lock=..}` — the declared hierarchy rank
/// * `lock_wait_seconds{lock=..,quantile="0.5"|"0.99"}`
/// * `lock_hold_seconds{lock=..,quantile="0.5"|"0.99"}`
pub fn export_lock_metrics(reg: &Registry) {
    for (name, agg) in aggregate() {
        let l = labels(&[("lock", name)]);
        reg.gauge_set(
            "lock_acquisitions",
            "Total acquisitions of each tracked lock",
            l.clone(),
            agg.acquisitions as f64,
        );
        reg.gauge_set(
            "lock_contended_acquisitions",
            "Acquisitions that had to wait for another holder",
            l.clone(),
            agg.contended as f64,
        );
        reg.gauge_set(
            "lock_rank",
            "Declared lock-hierarchy rank (see DESIGN.md §14)",
            l,
            agg.rank as f64,
        );
        for (q, qs) in [(0.5, "0.5"), (0.99, "0.99")] {
            let ql = labels(&[("lock", name), ("quantile", qs)]);
            reg.gauge_set(
                "lock_wait_seconds",
                "Lock acquisition wait time (log2-histogram quantile)",
                ql.clone(),
                histogram_quantile_ns(&agg.wait, q) / 1e9,
            );
            reg.gauge_set(
                "lock_hold_seconds",
                "Lock hold time (log2-histogram quantile)",
                ql,
                histogram_quantile_ns(&agg.hold, q) / 1e9,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_sync::TrackedMutex;

    #[test]
    fn lock_metrics_land_in_the_registry() {
        let m = TrackedMutex::new("telemetry.test.export", 9_999, 0u32);
        {
            let mut g = m.lock();
            *g += 1;
        }
        let reg = Registry::new();
        export_lock_metrics(&reg);
        let text = reg.expose();
        assert!(
            text.contains("lock_acquisitions{lock=\"telemetry.test.export\"} 1"),
            "missing acquisition gauge:\n{text}"
        );
        assert!(text.contains("lock_rank{lock=\"telemetry.test.export\"} 9999"));
        assert!(
            text.contains("lock_hold_seconds{lock=\"telemetry.test.export\",quantile=\"0.99\"}"),
            "missing hold-time quantile:\n{text}"
        );
        // the registry itself is a tracked lock; it must self-report
        assert!(text.contains("lock_acquisitions{lock=\"telemetry.registry\"}"));
    }

    #[test]
    fn instances_aggregate_by_name() {
        let a = TrackedMutex::new("telemetry.test.agg", 9_998, ());
        let b = TrackedMutex::new("telemetry.test.agg", 9_998, ());
        drop(a.lock());
        drop(b.lock());
        drop(b.lock());
        let reg = Registry::new();
        export_lock_metrics(&reg);
        assert!(
            reg.expose()
                .contains("lock_acquisitions{lock=\"telemetry.test.agg\"} 3"),
            "3 acquisitions across 2 instances must sum"
        );
    }
}
