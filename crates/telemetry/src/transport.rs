//! Typed metrics for the REST transport (the event-loop HTTP server).
//!
//! The readiness-driven front end reports connection lifecycle, keep-alive
//! reuse, backpressure (accept pauses, load-shed rejections) and deadline
//! enforcement through this facade, following the same one-registry pattern
//! as [`DurabilityMetrics`](crate::DurabilityMetrics): the whole transport
//! story is visible from `/metrics` next to the scheduler and durability
//! counters (§3.6).

use crate::metrics::{labels, Labels, Registry};

/// Shared-handle facade over a [`Registry`] for HTTP transport counters.
#[derive(Debug, Clone, Default)]
pub struct TransportMetrics {
    registry: Registry,
}

impl TransportMetrics {
    /// Wrap an existing registry (shared by handle).
    pub fn new(registry: Registry) -> Self {
        TransportMetrics { registry }
    }

    /// The underlying registry (for exposition or further instrumentation).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A connection was accepted into the connection table.
    pub fn accepted(&self) {
        self.registry.counter_add(
            "http_connections_accepted_total",
            "TCP connections accepted by the REST front end",
            Labels::new(),
            1.0,
        );
        self.registry.gauge_add(
            "http_connections_active",
            "Currently open REST connections",
            Labels::new(),
            1.0,
        );
    }

    /// A connection left the table (any reason).
    pub fn closed(&self) {
        self.registry.counter_add(
            "http_connections_closed_total",
            "REST connections closed",
            Labels::new(),
            1.0,
        );
        self.registry.gauge_add(
            "http_connections_active",
            "Currently open REST connections",
            Labels::new(),
            -1.0,
        );
    }

    /// A connection was rejected at the accept gate (table full): the
    /// load-shed 503 path.
    pub fn rejected(&self) {
        self.registry.counter_add(
            "http_connections_rejected_total",
            "Connections rejected with 503 at the accept gate",
            Labels::new(),
            1.0,
        );
    }

    /// The listener was taken out of the poll set (connection table full).
    pub fn accept_paused(&self) {
        self.registry.counter_add(
            "http_accept_pauses_total",
            "Times the listener was paused under connection backpressure",
            Labels::new(),
            1.0,
        );
    }

    /// The listener was re-armed after the table drained.
    pub fn accept_resumed(&self) {
        self.registry.counter_add(
            "http_accept_resumes_total",
            "Times the listener resumed after backpressure released",
            Labels::new(),
            1.0,
        );
    }

    /// A request was served on an already-used connection (keep-alive hit).
    pub fn keepalive_reuse(&self) {
        self.registry.counter_add(
            "http_keepalive_reuse_total",
            "Requests served over a reused keep-alive connection",
            Labels::new(),
            1.0,
        );
    }

    /// A connection was closed by the deadline sweeper (`kind` is
    /// `"read"` for slow/partial requests — the slowloris defense — or
    /// `"idle"` for keep-alive connections idle past the window).
    pub fn deadline_close(&self, kind: &str) {
        self.registry.counter_add(
            "http_deadline_closes_total",
            "Connections closed by the read/idle deadline sweeper",
            labels(&[("kind", kind)]),
            1.0,
        );
    }

    /// A response left the server; `status` is bucketed by class.
    pub fn request(&self, status: u16) {
        let class = match status {
            100..=199 => "1xx",
            200..=299 => "2xx",
            300..=399 => "3xx",
            400..=499 => "4xx",
            _ => "5xx",
        };
        self.registry.counter_add(
            "http_requests_total",
            "HTTP responses sent, by status class",
            labels(&[("code", class)]),
            1.0,
        );
    }

    /// Convenience for tests and the admin surface: read one counter back.
    pub fn value(&self, name: &str) -> f64 {
        self.registry.get_value(name, &Labels::new()).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_counters_share_one_registry() {
        let m = TransportMetrics::new(Registry::new());
        m.accepted();
        m.accepted();
        m.closed();
        m.rejected();
        m.accept_paused();
        m.accept_resumed();
        m.keepalive_reuse();
        m.deadline_close("read");
        m.deadline_close("idle");
        m.request(201);
        m.request(503);
        let text = m.registry().expose();
        assert!(text.contains("http_connections_accepted_total 2"));
        assert!(text.contains("http_connections_closed_total 1"));
        assert!(text.contains("http_connections_active 1"));
        assert!(text.contains("http_connections_rejected_total 1"));
        assert!(text.contains("http_accept_pauses_total 1"));
        assert!(text.contains("http_accept_resumes_total 1"));
        assert!(text.contains("http_keepalive_reuse_total 1"));
        assert!(text.contains("http_deadline_closes_total{kind=\"read\"} 1"));
        assert!(text.contains("http_deadline_closes_total{kind=\"idle\"} 1"));
        assert!(text.contains("http_requests_total{code=\"2xx\"} 1"));
        assert!(text.contains("http_requests_total{code=\"5xx\"} 1"));
    }

    #[test]
    fn value_reads_unlabelled_counters() {
        let m = TransportMetrics::default();
        assert_eq!(m.value("http_connections_accepted_total"), 0.0);
        m.accepted();
        assert_eq!(m.value("http_connections_accepted_total"), 1.0);
        assert_eq!(m.value("http_connections_active"), 1.0);
    }
}
