//! Typed metrics for the static-analysis (lint) path.
//!
//! The middleware daemon runs the `hpcqc-analysis` pipeline on every
//! submission; this facade gives those events stable metric names in the
//! shared [`Registry`]: per-lint-code diagnostic counters, Error-level
//! rejections, stale-validation detections, and the user-hint vs.
//! inferred-hint cross-check outcomes.

use crate::metrics::{labels, Registry};

/// Shared-handle facade over a [`Registry`] for analyzer counters.
#[derive(Debug, Clone, Default)]
pub struct LintMetrics {
    registry: Registry,
}

impl LintMetrics {
    /// Wrap an existing registry (shared by handle).
    pub fn new(registry: Registry) -> Self {
        LintMetrics { registry }
    }

    /// The underlying registry (for exposition or further instrumentation).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// One diagnostic of `code` at `severity` was emitted for a submission.
    pub fn diagnostic(&self, code: &str, severity: &str) {
        self.registry.counter_add(
            "analysis_diagnostics_total",
            "Diagnostics emitted by the static analyzer, by lint code",
            labels(&[("code", code), ("severity", severity)]),
            1.0,
        );
    }

    /// A submission was rejected because the analyzer found Errors.
    pub fn rejection(&self, class: &str) {
        self.registry.counter_add(
            "daemon_lint_rejections_total",
            "Submissions rejected on Error-level diagnostics",
            labels(&[("class", class)]),
            1.0,
        );
    }

    /// A submission arrived validated against a stale spec revision.
    pub fn stale_validation(&self) {
        self.registry.counter_add(
            "daemon_stale_validation_total",
            "Submissions whose client-side validation was stale",
            labels(&[]),
            1.0,
        );
    }

    /// The user-declared hint disagreed with the inferred pattern.
    pub fn hint_mismatch(&self, declared: &str, inferred: &str) {
        self.registry.counter_add(
            "daemon_hint_mismatch_total",
            "User pattern hints contradicted by static inference",
            labels(&[("declared", declared), ("inferred", inferred)]),
            1.0,
        );
    }

    /// No user hint was declared; the daemon adopted the inferred pattern.
    pub fn hint_adopted(&self, inferred: &str) {
        self.registry.counter_add(
            "daemon_hint_adopted_total",
            "Inferred pattern hints adopted for unhinted submissions",
            labels(&[("hint", inferred)]),
            1.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_one_registry() {
        let m = LintMetrics::new(Registry::new());
        m.diagnostic("HQ0106", "error");
        m.diagnostic("HQ0106", "error");
        m.diagnostic("HQ0501", "hint");
        m.rejection("development");
        m.stale_validation();
        m.hint_mismatch("cc-heavy", "qc-heavy");
        m.hint_adopted("qc-balanced");
        let text = m.registry().expose();
        assert!(text.contains("analysis_diagnostics_total{code=\"HQ0106\",severity=\"error\"} 2"));
        assert!(text.contains("analysis_diagnostics_total{code=\"HQ0501\",severity=\"hint\"} 1"));
        assert!(text.contains("daemon_lint_rejections_total{class=\"development\"} 1"));
        assert!(text.contains("daemon_stale_validation_total 1"));
        assert!(text
            .contains("daemon_hint_mismatch_total{declared=\"cc-heavy\",inferred=\"qc-heavy\"} 1"));
        assert!(text.contains("daemon_hint_adopted_total{hint=\"qc-balanced\"} 1"));
    }

    #[test]
    fn clones_share_storage() {
        let m = LintMetrics::default();
        let m2 = m.clone();
        m.stale_validation();
        m2.stale_validation();
        assert!(m
            .registry()
            .expose()
            .contains("daemon_stale_validation_total 2"));
    }
}
