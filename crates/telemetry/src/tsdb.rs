//! A small in-memory time-series database (the InfluxDB stand-in).
//!
//! Stores append-only `(timestamp, value)` points per series, with retention
//! trimming, range queries and downsampling. The observability harness uses
//! it to record QPU calibration telemetry and feed the drift detectors; the
//! middleware daemon exposes range queries through its admin API.

use hpcqc_sync::{rank, TrackedMutex as Mutex};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One data point. Timestamps are seconds (simulated or wall clock — the
/// database is agnostic) and must be appended in non-decreasing order per
/// series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    pub ts: f64,
    pub value: f64,
}

/// Aggregation used by [`TimeSeriesDb::downsample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Agg {
    Mean,
    Min,
    Max,
    Last,
    Count,
}

#[derive(Debug, Default)]
struct Series {
    points: Vec<Point>,
}

/// Thread-safe, clonable handle to the database.
#[derive(Debug, Clone)]
pub struct TimeSeriesDb {
    inner: Arc<Mutex<BTreeMap<String, Series>>>,
    /// Points older than `now − retention` are trimmed on insert when set.
    retention_secs: Option<f64>,
}

impl Default for TimeSeriesDb {
    fn default() -> Self {
        TimeSeriesDb {
            inner: Arc::new(Mutex::new("telemetry.tsdb", rank::TSDB, BTreeMap::new())),
            retention_secs: None,
        }
    }
}

impl TimeSeriesDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Database that keeps only the trailing `secs` of data per series.
    pub fn with_retention(secs: f64) -> Self {
        TimeSeriesDb {
            retention_secs: Some(secs),
            ..TimeSeriesDb::default()
        }
    }

    /// Append a point. Panics if `ts` is older than the series tail
    /// (out-of-order writes indicate a bug in the producer).
    pub fn append(&self, series: &str, ts: f64, value: f64) {
        let mut map = self.inner.lock();
        let s = map.entry(series.to_string()).or_default();
        if let Some(last) = s.points.last() {
            assert!(
                ts >= last.ts,
                "out-of-order append to {series:?}: {ts} < {}",
                last.ts
            );
        }
        s.points.push(Point { ts, value });
        if let Some(ret) = self.retention_secs {
            let cutoff = ts - ret;
            let keep_from = s.points.partition_point(|p| p.ts < cutoff);
            if keep_from > 0 {
                s.points.drain(..keep_from);
            }
        }
    }

    /// Names of all series, sorted.
    pub fn series_names(&self) -> Vec<String> {
        self.inner.lock().keys().cloned().collect()
    }

    /// All points of `series` in `[from, to]`.
    pub fn range(&self, series: &str, from: f64, to: f64) -> Vec<Point> {
        let map = self.inner.lock();
        match map.get(series) {
            None => Vec::new(),
            Some(s) => {
                let lo = s.points.partition_point(|p| p.ts < from);
                let hi = s.points.partition_point(|p| p.ts <= to);
                s.points[lo..hi].to_vec()
            }
        }
    }

    /// The most recent point of a series.
    pub fn last(&self, series: &str) -> Option<Point> {
        self.inner
            .lock()
            .get(series)
            .and_then(|s| s.points.last().copied())
    }

    /// Number of stored points in a series.
    pub fn len(&self, series: &str) -> usize {
        self.inner.lock().get(series).map_or(0, |s| s.points.len())
    }

    /// True when the series is missing or empty.
    pub fn is_empty(&self, series: &str) -> bool {
        self.len(series) == 0
    }

    /// Downsample `[from, to)` into windows of `step` seconds aggregated by
    /// `agg`. Windows with no data are omitted. Each returned point carries
    /// the window start as its timestamp.
    pub fn downsample(&self, series: &str, from: f64, to: f64, step: f64, agg: Agg) -> Vec<Point> {
        assert!(step > 0.0, "step must be positive");
        let pts = self.range(series, from, to);
        let mut out = Vec::new();
        let mut idx = 0usize;
        let mut win_start = from;
        while win_start < to {
            let win_end = (win_start + step).min(to);
            let begin = idx;
            while idx < pts.len() && pts[idx].ts < win_end {
                idx += 1;
            }
            let window = &pts[begin..idx];
            if !window.is_empty() {
                let value = match agg {
                    Agg::Mean => window.iter().map(|p| p.value).sum::<f64>() / window.len() as f64,
                    Agg::Min => window.iter().map(|p| p.value).fold(f64::INFINITY, f64::min),
                    Agg::Max => window
                        .iter()
                        .map(|p| p.value)
                        .fold(f64::NEG_INFINITY, f64::max),
                    Agg::Last => window.last().expect("non-empty").value,
                    Agg::Count => window.len() as f64,
                };
                out.push(Point {
                    ts: win_start,
                    value,
                });
            }
            win_start = win_end;
        }
        out
    }

    /// Mean and (population) standard deviation over a range — the inputs to
    /// the z-score drift detector.
    pub fn stats(&self, series: &str, from: f64, to: f64) -> Option<(f64, f64)> {
        let pts = self.range(series, from, to);
        if pts.is_empty() {
            return None;
        }
        let n = pts.len() as f64;
        let mean = pts.iter().map(|p| p.value).sum::<f64>() / n;
        let var = pts.iter().map(|p| (p.value - mean).powi(2)).sum::<f64>() / n;
        Some((mean, var.sqrt()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_range() {
        let db = TimeSeriesDb::new();
        for t in 0..10 {
            db.append("omega", t as f64, t as f64 * 2.0);
        }
        let r = db.range("omega", 2.0, 5.0);
        assert_eq!(r.len(), 4);
        assert_eq!(
            r[0],
            Point {
                ts: 2.0,
                value: 4.0
            }
        );
        assert_eq!(
            r[3],
            Point {
                ts: 5.0,
                value: 10.0
            }
        );
        assert!(db.range("missing", 0.0, 10.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_append_panics() {
        let db = TimeSeriesDb::new();
        db.append("s", 5.0, 1.0);
        db.append("s", 4.0, 1.0);
    }

    #[test]
    fn last_and_len() {
        let db = TimeSeriesDb::new();
        assert!(db.last("s").is_none());
        assert!(db.is_empty("s"));
        db.append("s", 1.0, 10.0);
        db.append("s", 2.0, 20.0);
        assert_eq!(
            db.last("s"),
            Some(Point {
                ts: 2.0,
                value: 20.0
            })
        );
        assert_eq!(db.len("s"), 2);
    }

    #[test]
    fn retention_trims_old_points() {
        let db = TimeSeriesDb::with_retention(10.0);
        for t in 0..30 {
            db.append("s", t as f64, 0.0);
        }
        // cutoff at 29 - 10 = 19: points 19..=29 remain
        assert_eq!(db.len("s"), 11);
        assert_eq!(db.range("s", 0.0, 100.0)[0].ts, 19.0);
    }

    #[test]
    fn downsample_mean_min_max() {
        let db = TimeSeriesDb::new();
        for t in 0..10 {
            db.append("s", t as f64, t as f64);
        }
        let mean = db.downsample("s", 0.0, 10.0, 5.0, Agg::Mean);
        assert_eq!(mean.len(), 2);
        assert!((mean[0].value - 2.0).abs() < 1e-12); // mean of 0..=4
        assert!((mean[1].value - 7.0).abs() < 1e-12); // mean of 5..=9
        let mx = db.downsample("s", 0.0, 10.0, 5.0, Agg::Max);
        assert_eq!(mx[0].value, 4.0);
        assert_eq!(mx[1].value, 9.0);
        let mn = db.downsample("s", 0.0, 10.0, 5.0, Agg::Min);
        assert_eq!(mn[0].value, 0.0);
        let cnt = db.downsample("s", 0.0, 10.0, 5.0, Agg::Count);
        assert_eq!(cnt[0].value, 5.0);
        let last = db.downsample("s", 0.0, 10.0, 5.0, Agg::Last);
        assert_eq!(last[1].value, 9.0);
    }

    #[test]
    fn downsample_skips_empty_windows() {
        let db = TimeSeriesDb::new();
        db.append("s", 0.0, 1.0);
        db.append("s", 9.0, 2.0);
        let out = db.downsample("s", 0.0, 12.0, 3.0, Agg::Mean);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].ts, 0.0);
        assert_eq!(out[1].ts, 9.0);
    }

    #[test]
    fn stats_mean_std() {
        let db = TimeSeriesDb::new();
        for (t, v) in [
            (0.0, 2.0),
            (1.0, 4.0),
            (2.0, 4.0),
            (3.0, 4.0),
            (4.0, 5.0),
            (5.0, 5.0),
            (6.0, 7.0),
            (7.0, 9.0),
        ] {
            db.append("s", t, v);
        }
        let (mean, std) = db.stats("s", 0.0, 10.0).unwrap();
        assert!((mean - 5.0).abs() < 1e-12);
        assert!((std - 2.0).abs() < 1e-12);
        assert!(db.stats("s", 100.0, 200.0).is_none());
    }

    #[test]
    fn series_names_sorted() {
        let db = TimeSeriesDb::new();
        db.append("b", 0.0, 0.0);
        db.append("a", 0.0, 0.0);
        assert_eq!(db.series_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn concurrent_appends_to_distinct_series() {
        let db = TimeSeriesDb::new();
        let hs: Vec<_> = (0..4)
            .map(|k| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for t in 0..500 {
                        db.append(&format!("s{k}"), t as f64, 1.0);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        for k in 0..4 {
            assert_eq!(db.len(&format!("s{k}")), 500);
        }
    }
}
