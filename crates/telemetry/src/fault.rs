//! Typed metrics for the fault-injection and recovery path.
//!
//! The fault injector (qrmi), the runtime's retry/fallback machinery (core)
//! and the daemon's requeue logic (middleware) all report through this one
//! facade so every layer's recovery activity lands in a single registry with
//! consistent metric names. The underlying [`Registry`] is shared by handle,
//! so a test (or the `/metrics` endpoint) sees the whole story: how many
//! faults were injected, how many retries they cost, how much backoff was
//! paid, and whether graceful degradation kicked in.

use crate::metrics::{labels, Registry};

/// Shared-handle facade over a [`Registry`] for fault/recovery counters.
#[derive(Debug, Clone, Default)]
pub struct FaultMetrics {
    registry: Registry,
}

impl FaultMetrics {
    /// Wrap an existing registry (shared by handle).
    pub fn new(registry: Registry) -> Self {
        FaultMetrics { registry }
    }

    /// The underlying registry (for exposition or further instrumentation).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// An injected fault fired on `resource`. `kind` is one of
    /// `acquire_denied`, `task_failed`, `task_stuck`, `result_fetch`.
    pub fn fault_injected(&self, resource: &str, kind: &str) {
        self.registry.counter_add(
            "qrmi_faults_injected_total",
            "Faults injected at the QRMI boundary",
            labels(&[("resource", resource), ("kind", kind)]),
            1.0,
        );
    }

    /// A retryable failure of operation `op` on `resource` triggered a retry.
    pub fn retry(&self, resource: &str, op: &str) {
        self.registry.counter_add(
            "runtime_retries_total",
            "Retries after transient QRMI failures",
            labels(&[("resource", resource), ("op", op)]),
            1.0,
        );
    }

    /// Backoff delay (seconds, simulated) paid before a retry on `resource`.
    pub fn backoff(&self, resource: &str, secs: f64) {
        self.registry.counter_add(
            "runtime_backoff_seconds_total",
            "Cumulative backoff delay before retries",
            labels(&[("resource", resource)]),
            secs,
        );
    }

    /// The retry budget for `resource` ran out without success.
    pub fn budget_exhausted(&self, resource: &str) {
        self.registry.counter_add(
            "runtime_retry_budget_exhausted_total",
            "Attempt/backoff budgets exhausted without success",
            labels(&[("resource", resource)]),
            1.0,
        );
    }

    /// Graceful degradation: execution moved from `from` to `to`.
    pub fn fallback(&self, from: &str, to: &str) {
        self.registry.counter_add(
            "runtime_fallbacks_total",
            "Graceful-degradation fallbacks to an alternate resource",
            labels(&[("from", from), ("to", to)]),
            1.0,
        );
    }

    /// The daemon requeued a failed task for another attempt.
    pub fn requeue(&self, class: &str) {
        self.registry.counter_add(
            "daemon_task_requeues_total",
            "Tasks requeued after an execution failure",
            labels(&[("class", class)]),
            1.0,
        );
    }

    /// A task hit the poison cap and was failed permanently.
    pub fn poisoned(&self, class: &str) {
        self.registry.counter_add(
            "daemon_tasks_poisoned_total",
            "Tasks failed permanently after exhausting requeue attempts",
            labels(&[("class", class)]),
            1.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_one_registry() {
        let m = FaultMetrics::new(Registry::new());
        m.fault_injected("emu", "acquire_denied");
        m.fault_injected("emu", "acquire_denied");
        m.retry("emu", "acquire");
        m.backoff("emu", 1.5);
        m.backoff("emu", 0.5);
        m.fallback("qpu-cloud", "emu-local");
        m.requeue("test");
        m.poisoned("development");
        m.budget_exhausted("qpu-cloud");
        let text = m.registry().expose();
        assert!(
            text.contains("qrmi_faults_injected_total{kind=\"acquire_denied\",resource=\"emu\"} 2")
        );
        assert!(text.contains("runtime_backoff_seconds_total{resource=\"emu\"} 2"));
        assert!(text.contains("runtime_fallbacks_total{from=\"qpu-cloud\",to=\"emu-local\"} 1"));
        assert!(text.contains("daemon_task_requeues_total{class=\"test\"} 1"));
        assert!(text.contains("daemon_tasks_poisoned_total{class=\"development\"} 1"));
        assert!(text.contains("runtime_retry_budget_exhausted_total{resource=\"qpu-cloud\"} 1"));
    }

    #[test]
    fn clones_share_storage() {
        let m = FaultMetrics::default();
        let m2 = m.clone();
        m.retry("r", "poll");
        m2.retry("r", "poll");
        assert!(m
            .registry()
            .expose()
            .contains("runtime_retries_total{op=\"poll\",resource=\"r\"} 2"));
    }
}
