//! Typed metrics for control-plane replication and failover.
//!
//! The leader→follower journal shipping stream, follower promotion and the
//! gateway's shard failover all report through this facade, mirroring how
//! [`DurabilityMetrics`](crate::DurabilityMetrics) unifies the single-node
//! durability story: one registry handle, consistent metric names, and the
//! whole replication picture visible from `/metrics`.

use crate::metrics::{labels, Labels, Registry};

/// Histogram bounds for failover duration (seconds). Failover is promote +
/// first successful serve; the quick-profile target is < 0.5 s.
const FAILOVER_BOUNDS: &[f64] = &[0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0];

/// Shared-handle facade over a [`Registry`] for replication counters.
#[derive(Debug, Clone, Default)]
pub struct ReplicationMetrics {
    registry: Registry,
}

impl ReplicationMetrics {
    /// Wrap an existing registry (shared by handle).
    pub fn new(registry: Registry) -> Self {
        ReplicationMetrics { registry }
    }

    /// The underlying registry (for exposition or further instrumentation).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A batch (or snapshot) of `records` records / `bytes` bytes was shipped
    /// to a follower.
    pub fn shipped(&self, records: usize, bytes: usize) {
        self.registry.counter_add(
            "replication_shipped_records_total",
            "Journal records shipped to followers",
            Labels::new(),
            records as f64,
        );
        self.registry.counter_add(
            "replication_shipped_bytes_total",
            "Journal bytes shipped to followers",
            Labels::new(),
            bytes as f64,
        );
    }

    /// A follower acknowledged `records` records / `bytes` bytes as durably
    /// applied.
    pub fn acked(&self, records: usize, bytes: usize) {
        self.registry.counter_add(
            "replication_acked_records_total",
            "Journal records acked by followers",
            Labels::new(),
            records as f64,
        );
        self.registry.counter_add(
            "replication_acked_bytes_total",
            "Journal bytes acked by followers",
            Labels::new(),
            bytes as f64,
        );
    }

    /// Current shipped-but-unacked gap.
    pub fn lag(&self, records: u64, bytes: u64) {
        self.registry.gauge_set(
            "replication_lag_records",
            "Journal records shipped but not yet acked",
            Labels::new(),
            records as f64,
        );
        self.registry.gauge_set(
            "replication_lag_bytes",
            "Journal bytes shipped but not yet acked",
            Labels::new(),
            bytes as f64,
        );
    }

    /// A shipped event was rejected by a follower (`reason`: `checksum`,
    /// `sequence`, `offset`).
    pub fn rejected(&self, reason: &str) {
        self.registry.counter_add(
            "replication_rejected_events_total",
            "Shipped events rejected by follower validation",
            labels(&[("reason", reason)]),
            1.0,
        );
    }

    /// A follower was promoted to leader.
    pub fn promotion(&self) {
        self.registry.counter_add(
            "replication_promotions_total",
            "Followers promoted to leader",
            Labels::new(),
            1.0,
        );
    }

    /// A promotion was refused (follower behind the last-acked offset).
    pub fn promotion_refused(&self) {
        self.registry.counter_add(
            "replication_promotions_refused_total",
            "Promotions refused because the follower was behind the last ack",
            Labels::new(),
            1.0,
        );
    }

    /// Failover completed end to end (promote through first serve).
    pub fn failover_duration(&self, secs: f64) {
        self.registry.histogram_observe(
            "replication_failover_seconds",
            "Failover duration: promotion through first successful serve",
            Labels::new(),
            FAILOVER_BOUNDS,
            secs,
        );
    }

    /// The gateway failed a shard's traffic over to its follower.
    pub fn shard_failover(&self, shard: &str) {
        self.registry.counter_add(
            "gateway_shard_failovers_total",
            "Shard traffic failovers performed by the gateway",
            labels(&[("shard", shard)]),
            1.0,
        );
    }

    /// One gateway readiness probe finished (`ready` per the shard's reply).
    pub fn probe(&self, shard: &str, ready: bool) {
        self.registry.counter_add(
            "gateway_probes_total",
            "Gateway readiness probes, by shard and outcome",
            labels(&[
                ("shard", shard),
                ("ready", if ready { "yes" } else { "no" }),
            ]),
            1.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_one_registry() {
        let m = ReplicationMetrics::new(Registry::new());
        m.shipped(8, 512);
        m.shipped(2, 128);
        m.acked(8, 512);
        m.lag(2, 128);
        m.rejected("checksum");
        m.promotion();
        m.promotion_refused();
        m.failover_duration(0.12);
        m.shard_failover("s0");
        m.probe("s0", true);
        m.probe("s0", false);
        let text = m.registry().expose();
        assert!(text.contains("replication_shipped_records_total 10"));
        assert!(text.contains("replication_shipped_bytes_total 640"));
        assert!(text.contains("replication_acked_records_total 8"));
        assert!(text.contains("replication_acked_bytes_total 512"));
        assert!(text.contains("replication_lag_records 2"));
        assert!(text.contains("replication_lag_bytes 128"));
        assert!(text.contains("replication_rejected_events_total{reason=\"checksum\"} 1"));
        assert!(text.contains("replication_promotions_total 1"));
        assert!(text.contains("replication_promotions_refused_total 1"));
        assert!(text.contains("replication_failover_seconds_count"));
        assert!(text.contains("gateway_shard_failovers_total{shard=\"s0\"} 1"));
        assert!(text.contains("gateway_probes_total{ready=\"yes\",shard=\"s0\"} 1"));
    }

    #[test]
    fn lag_gauge_overwrites() {
        let m = ReplicationMetrics::default();
        m.lag(10, 1000);
        m.lag(0, 0);
        let text = m.registry().expose();
        assert!(text.contains("replication_lag_records 0"));
        assert!(text.contains("replication_lag_bytes 0"));
    }
}
