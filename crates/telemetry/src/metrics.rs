//! Metrics registry with Prometheus text exposition.
//!
//! The middleware daemon and the virtual QPU publish their state through
//! this registry; the `/metrics` REST endpoint renders it in the Prometheus
//! exposition format so the QPU plugs into a hosting site's existing
//! observability stack unchanged (paper §3.6).

use hpcqc_sync::{rank, TrackedMutex as Mutex};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Sorted label set; BTreeMap gives deterministic exposition output.
pub type Labels = BTreeMap<String, String>;

/// Build a label set from `&[(&str, &str)]`.
pub fn labels(pairs: &[(&str, &str)]) -> Labels {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[derive(Debug, Clone, PartialEq)]
enum MetricValue {
    Counter(f64),
    Gauge(f64),
    Histogram {
        buckets: Vec<(f64, u64)>,
        sum: f64,
        count: u64,
    },
}

#[derive(Debug, Clone)]
struct MetricFamily {
    help: String,
    kind: &'static str,
    /// label-set → value
    series: BTreeMap<Labels, MetricValue>,
}

/// Thread-safe metrics registry.
///
/// Cloning shares the underlying storage, so components hold cheap handles.
#[derive(Debug, Clone)]
pub struct Registry {
    families: Arc<Mutex<BTreeMap<String, MetricFamily>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            families: Arc::new(Mutex::new(
                "telemetry.registry",
                rank::REGISTRY,
                BTreeMap::new(),
            )),
        }
    }
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn with_family<R>(
        &self,
        name: &str,
        help: &str,
        kind: &'static str,
        f: impl FnOnce(&mut MetricFamily) -> R,
    ) -> R {
        let mut fams = self.families.lock();
        let fam = fams
            .entry(name.to_string())
            .or_insert_with(|| MetricFamily {
                help: help.to_string(),
                kind,
                series: BTreeMap::new(),
            });
        assert_eq!(
            fam.kind, kind,
            "metric {name:?} registered as {} but used as {kind}",
            fam.kind
        );
        f(fam)
    }

    /// Increment a counter by `v` (must be ≥ 0).
    pub fn counter_add(&self, name: &str, help: &str, lbls: Labels, v: f64) {
        assert!(v >= 0.0, "counters are monotonic; got increment {v}");
        self.with_family(name, help, "counter", |fam| {
            match fam.series.entry(lbls).or_insert(MetricValue::Counter(0.0)) {
                MetricValue::Counter(c) => *c += v,
                _ => unreachable!("kind checked by with_family"),
            }
        });
    }

    /// Set a gauge to `v`.
    pub fn gauge_set(&self, name: &str, help: &str, lbls: Labels, v: f64) {
        self.with_family(name, help, "gauge", |fam| {
            fam.series.insert(lbls, MetricValue::Gauge(v));
        });
    }

    /// Add `delta` to a gauge (creating it at 0).
    pub fn gauge_add(&self, name: &str, help: &str, lbls: Labels, delta: f64) {
        self.with_family(name, help, "gauge", |fam| {
            match fam.series.entry(lbls).or_insert(MetricValue::Gauge(0.0)) {
                MetricValue::Gauge(g) => *g += delta,
                _ => unreachable!(),
            }
        });
    }

    /// Observe a value into a histogram with the given bucket upper bounds
    /// (+Inf is implicit). Bounds must be sorted ascending.
    pub fn histogram_observe(&self, name: &str, help: &str, lbls: Labels, bounds: &[f64], v: f64) {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must ascend"
        );
        self.with_family(name, help, "histogram", |fam| {
            let entry = fam
                .series
                .entry(lbls)
                .or_insert_with(|| MetricValue::Histogram {
                    buckets: bounds.iter().map(|&b| (b, 0)).collect(),
                    sum: 0.0,
                    count: 0,
                });
            match entry {
                MetricValue::Histogram {
                    buckets,
                    sum,
                    count,
                } => {
                    for (bound, c) in buckets.iter_mut() {
                        if v <= *bound {
                            *c += 1;
                        }
                    }
                    *sum += v;
                    *count += 1;
                }
                _ => unreachable!(),
            }
        });
    }

    /// Read a counter/gauge value back (tests and internal consumers).
    pub fn get_value(&self, name: &str, lbls: &Labels) -> Option<f64> {
        let fams = self.families.lock();
        match fams.get(name)?.series.get(lbls)? {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(*v),
            MetricValue::Histogram { sum, .. } => Some(*sum),
        }
    }

    /// Histogram quantile estimate by linear interpolation within buckets.
    pub fn histogram_quantile(&self, name: &str, lbls: &Labels, q: f64) -> Option<f64> {
        let fams = self.families.lock();
        match fams.get(name)?.series.get(lbls)? {
            MetricValue::Histogram { buckets, count, .. } => {
                if *count == 0 {
                    return None;
                }
                let target = q.clamp(0.0, 1.0) * *count as f64;
                let mut prev_bound = 0.0;
                let mut prev_cum = 0u64;
                for &(bound, cum) in buckets {
                    if cum as f64 >= target {
                        let in_bucket = (cum - prev_cum) as f64;
                        let frac = if in_bucket > 0.0 {
                            (target - prev_cum as f64) / in_bucket
                        } else {
                            0.0
                        };
                        return Some(prev_bound + frac * (bound - prev_bound));
                    }
                    prev_bound = bound;
                    prev_cum = cum;
                }
                Some(prev_bound) // everything above the last finite bucket
            }
            _ => None,
        }
    }

    /// Render every family in the Prometheus text exposition format v0.0.4.
    pub fn expose(&self) -> String {
        let fams = self.families.lock();
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            out.push_str(&format!("# HELP {name} {}\n", fam.help));
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind));
            for (lbls, value) in &fam.series {
                match value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                        out.push_str(&format!("{name}{} {v}\n", render_labels(lbls)));
                    }
                    MetricValue::Histogram {
                        buckets,
                        sum,
                        count,
                    } => {
                        for (bound, c) in buckets {
                            let mut le = lbls.clone();
                            le.insert("le".to_string(), fmt_float(*bound));
                            out.push_str(&format!("{name}_bucket{} {c}\n", render_labels(&le)));
                        }
                        let mut le = lbls.clone();
                        le.insert("le".to_string(), "+Inf".to_string());
                        out.push_str(&format!("{name}_bucket{} {count}\n", render_labels(&le)));
                        out.push_str(&format!("{name}_sum{} {sum}\n", render_labels(lbls)));
                        out.push_str(&format!("{name}_count{} {count}\n", render_labels(lbls)));
                    }
                }
            }
        }
        out
    }
}

fn fmt_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn render_labels(lbls: &Labels) -> String {
    if lbls.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = lbls
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", inner.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let r = Registry::new();
        let l = labels(&[("device", "qpu0")]);
        r.counter_add("jobs_total", "jobs", l.clone(), 1.0);
        r.counter_add("jobs_total", "jobs", l.clone(), 2.0);
        assert_eq!(r.get_value("jobs_total", &l), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn counter_rejects_negative() {
        let r = Registry::new();
        r.counter_add("x", "", Labels::new(), -1.0);
    }

    #[test]
    fn gauge_set_and_add() {
        let r = Registry::new();
        let l = Labels::new();
        r.gauge_set("queue_depth", "depth", l.clone(), 5.0);
        r.gauge_add("queue_depth", "depth", l.clone(), -2.0);
        assert_eq!(r.get_value("queue_depth", &l), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter_add("m", "", Labels::new(), 1.0);
        r.gauge_set("m", "", Labels::new(), 1.0);
    }

    #[test]
    fn separate_label_sets_are_separate_series() {
        let r = Registry::new();
        r.counter_add("jobs", "", labels(&[("user", "a")]), 1.0);
        r.counter_add("jobs", "", labels(&[("user", "b")]), 5.0);
        assert_eq!(r.get_value("jobs", &labels(&[("user", "a")])), Some(1.0));
        assert_eq!(r.get_value("jobs", &labels(&[("user", "b")])), Some(5.0));
    }

    #[test]
    fn histogram_buckets_and_quantile() {
        let r = Registry::new();
        let l = Labels::new();
        let bounds = [1.0, 5.0, 10.0];
        for v in [0.5, 0.7, 3.0, 4.0, 7.0, 20.0] {
            r.histogram_observe("latency", "s", l.clone(), &bounds, v);
        }
        // median is in the (1,5] bucket
        let q50 = r.histogram_quantile("latency", &l, 0.5).unwrap();
        assert!(q50 > 1.0 && q50 <= 5.0, "q50={q50}");
        let q100 = r.histogram_quantile("latency", &l, 1.0).unwrap();
        assert!(q100 >= 10.0);
        assert!(r.histogram_quantile("latency", &l, 0.0).unwrap() <= 1.0);
    }

    #[test]
    fn exposition_format_counter_gauge() {
        let r = Registry::new();
        r.counter_add(
            "qpu_jobs_total",
            "Total jobs",
            labels(&[("device", "qpu0")]),
            7.0,
        );
        r.gauge_set("qpu_up", "Device availability", Labels::new(), 1.0);
        let text = r.expose();
        assert!(text.contains("# HELP qpu_jobs_total Total jobs"));
        assert!(text.contains("# TYPE qpu_jobs_total counter"));
        assert!(text.contains("qpu_jobs_total{device=\"qpu0\"} 7"));
        assert!(text.contains("# TYPE qpu_up gauge"));
        assert!(text.contains("qpu_up 1"));
    }

    #[test]
    fn exposition_format_histogram() {
        let r = Registry::new();
        r.histogram_observe("wait", "wait s", Labels::new(), &[1.0, 2.0], 1.5);
        let text = r.expose();
        assert!(text.contains("wait_bucket{le=\"1.0\"} 0"));
        assert!(text.contains("wait_bucket{le=\"2.0\"} 1"));
        assert!(text.contains("wait_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("wait_sum 1.5"));
        assert!(text.contains("wait_count 1"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.gauge_set("g", "", labels(&[("k", "a\"b")]), 1.0);
        assert!(r.expose().contains("k=\"a\\\"b\""));
    }

    #[test]
    fn registry_clone_shares_state() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter_add("c", "", Labels::new(), 1.0);
        r2.counter_add("c", "", Labels::new(), 1.0);
        assert_eq!(r.get_value("c", &Labels::new()), Some(2.0));
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        let r = Registry::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.counter_add("n", "", Labels::new(), 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.get_value("n", &Labels::new()), Some(8000.0));
    }
}
