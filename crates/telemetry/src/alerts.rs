//! Alert rules evaluated against the time-series database.
//!
//! The hosting-site operations team expresses QPU health conditions as
//! threshold rules over telemetry series ("alert when detection error mean
//! over the last 5 minutes exceeds 3 %"); the [`AlertManager`] evaluates them
//! on each collection tick and keeps the firing state with proper
//! pending→firing→resolved transitions, mirroring how Prometheus alerting
//! behaves so site runbooks transfer directly.

use crate::tsdb::TimeSeriesDb;
use serde::{Deserialize, Serialize};

/// Comparison operator of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    GreaterThan,
    LessThan,
}

/// A threshold rule over the trailing mean of one series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRule {
    /// Unique rule name (e.g. `"qpu_detection_error_high"`).
    pub name: String,
    /// Series the rule watches.
    pub series: String,
    /// Trailing window (seconds) whose mean is compared.
    pub window_secs: f64,
    /// Comparison direction.
    pub cmp: Cmp,
    /// Threshold the windowed mean is compared against.
    pub threshold: f64,
    /// The condition must hold for this long before the alert fires
    /// (Prometheus `for:`).
    pub for_secs: f64,
}

/// Lifecycle state of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertState {
    /// Condition false.
    Inactive,
    /// Condition true but not yet for `for_secs`.
    Pending,
    /// Condition held long enough; alert is active.
    Firing,
}

/// A state transition worth notifying about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertEvent {
    pub rule: String,
    pub at: f64,
    pub state: AlertState,
    /// Windowed mean that triggered the evaluation.
    pub value: f64,
}

struct RuleState {
    rule: AlertRule,
    state: AlertState,
    pending_since: Option<f64>,
}

/// Evaluates rules against a [`TimeSeriesDb`] and tracks firing state.
pub struct AlertManager {
    db: TimeSeriesDb,
    rules: Vec<RuleState>,
}

impl AlertManager {
    pub fn new(db: TimeSeriesDb) -> Self {
        AlertManager {
            db,
            rules: Vec::new(),
        }
    }

    /// Register a rule. Panics on duplicate names.
    pub fn add_rule(&mut self, rule: AlertRule) {
        assert!(
            !self.rules.iter().any(|r| r.rule.name == rule.name),
            "duplicate alert rule {:?}",
            rule.name
        );
        self.rules.push(RuleState {
            rule,
            state: AlertState::Inactive,
            pending_since: None,
        });
    }

    /// Current state of a rule by name.
    pub fn state(&self, name: &str) -> Option<AlertState> {
        self.rules
            .iter()
            .find(|r| r.rule.name == name)
            .map(|r| r.state)
    }

    /// Evaluate every rule at time `now`; returns the transitions that
    /// occurred (new pending, fired, resolved).
    pub fn evaluate(&mut self, now: f64) -> Vec<AlertEvent> {
        let mut events = Vec::new();
        for rs in &mut self.rules {
            let rule = &rs.rule;
            let stats = self.db.stats(&rule.series, now - rule.window_secs, now);
            let Some((mean, _)) = stats else {
                continue; // no data: hold current state
            };
            let breached = match rule.cmp {
                Cmp::GreaterThan => mean > rule.threshold,
                Cmp::LessThan => mean < rule.threshold,
            };
            let new_state = if breached {
                let since = *rs.pending_since.get_or_insert(now);
                if now - since >= rule.for_secs {
                    AlertState::Firing
                } else {
                    AlertState::Pending
                }
            } else {
                rs.pending_since = None;
                AlertState::Inactive
            };
            if new_state != rs.state {
                rs.state = new_state;
                events.push(AlertEvent {
                    rule: rule.name.clone(),
                    at: now,
                    state: new_state,
                    value: mean,
                });
            }
        }
        events
    }

    /// Names of currently firing alerts.
    pub fn firing(&self) -> Vec<String> {
        self.rules
            .iter()
            .filter(|r| r.state == AlertState::Firing)
            .map(|r| r.rule.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr_with_rule(for_secs: f64) -> (TimeSeriesDb, AlertManager) {
        let db = TimeSeriesDb::new();
        let mut m = AlertManager::new(db.clone());
        m.add_rule(AlertRule {
            name: "err_high".into(),
            series: "detection_error".into(),
            window_secs: 10.0,
            cmp: Cmp::GreaterThan,
            threshold: 0.05,
            for_secs,
        });
        (db, m)
    }

    #[test]
    fn inactive_while_healthy() {
        let (db, mut m) = mgr_with_rule(0.0);
        for t in 0..20 {
            db.append("detection_error", t as f64, 0.01);
        }
        assert!(m.evaluate(20.0).is_empty());
        assert_eq!(m.state("err_high"), Some(AlertState::Inactive));
        assert!(m.firing().is_empty());
    }

    #[test]
    fn fires_immediately_with_zero_for() {
        let (db, mut m) = mgr_with_rule(0.0);
        for t in 0..20 {
            db.append("detection_error", t as f64, 0.2);
        }
        let ev = m.evaluate(20.0);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].state, AlertState::Firing);
        assert!(ev[0].value > 0.05);
        assert_eq!(m.firing(), vec!["err_high".to_string()]);
    }

    #[test]
    fn pending_then_firing_with_for_duration() {
        let (db, mut m) = mgr_with_rule(5.0);
        for t in 0..40 {
            db.append("detection_error", t as f64, 0.2);
        }
        let ev = m.evaluate(20.0);
        assert_eq!(ev[0].state, AlertState::Pending);
        // still pending before for_secs elapses
        assert!(m.evaluate(23.0).is_empty());
        assert_eq!(m.state("err_high"), Some(AlertState::Pending));
        let ev = m.evaluate(25.5);
        assert_eq!(ev[0].state, AlertState::Firing);
    }

    #[test]
    fn resolves_when_condition_clears() {
        let (db, mut m) = mgr_with_rule(0.0);
        for t in 0..10 {
            db.append("detection_error", t as f64, 0.2);
        }
        m.evaluate(10.0);
        assert_eq!(m.state("err_high"), Some(AlertState::Firing));
        // healthy data fills the window
        for t in 10..30 {
            db.append("detection_error", t as f64, 0.01);
        }
        let ev = m.evaluate(30.0);
        assert_eq!(ev[0].state, AlertState::Inactive);
        assert!(m.firing().is_empty());
    }

    #[test]
    fn pending_resets_if_condition_flaps() {
        let (db, mut m) = mgr_with_rule(10.0);
        for t in 0..10 {
            db.append("detection_error", t as f64, 0.2);
        }
        m.evaluate(10.0); // pending since 10
        for t in 10..25 {
            db.append("detection_error", t as f64, 0.01);
        }
        m.evaluate(25.0); // back to inactive
        assert_eq!(m.state("err_high"), Some(AlertState::Inactive));
        for t in 25..40 {
            db.append("detection_error", t as f64, 0.2);
        }
        let ev = m.evaluate(40.0);
        assert_eq!(ev[0].state, AlertState::Pending, "for-timer restarted");
    }

    #[test]
    fn less_than_rules_catch_degrading_fidelity() {
        let db = TimeSeriesDb::new();
        let mut m = AlertManager::new(db.clone());
        m.add_rule(AlertRule {
            name: "fidelity_low".into(),
            series: "fidelity".into(),
            window_secs: 5.0,
            cmp: Cmp::LessThan,
            threshold: 0.95,
            for_secs: 0.0,
        });
        for t in 0..10 {
            db.append("fidelity", t as f64, 0.90);
        }
        let ev = m.evaluate(10.0);
        assert_eq!(ev[0].state, AlertState::Firing);
    }

    #[test]
    fn no_data_holds_state() {
        let (db, mut m) = mgr_with_rule(0.0);
        for t in 0..10 {
            db.append("detection_error", t as f64, 0.2);
        }
        m.evaluate(10.0);
        // evaluating far in the future where the window is empty: unchanged
        assert!(m.evaluate(1000.0).is_empty());
        assert_eq!(m.state("err_high"), Some(AlertState::Firing));
    }

    #[test]
    #[should_panic(expected = "duplicate alert rule")]
    fn duplicate_rule_panics() {
        let (_, mut m) = mgr_with_rule(0.0);
        m.add_rule(AlertRule {
            name: "err_high".into(),
            series: "x".into(),
            window_secs: 1.0,
            cmp: Cmp::GreaterThan,
            threshold: 0.0,
            for_secs: 0.0,
        });
    }
}
