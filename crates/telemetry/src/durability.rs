//! Typed metrics for the daemon's durability layer.
//!
//! The write-ahead journal, snapshot compaction, crash recovery and
//! idempotent-submission machinery (middleware) all report through this one
//! facade, mirroring how [`FaultMetrics`](crate::FaultMetrics) unifies the
//! recovery path: one registry handle, consistent metric names, and the
//! whole durability story visible from `/metrics`.

use crate::metrics::{labels, Labels, Registry};

/// Shared-handle facade over a [`Registry`] for durability counters.
#[derive(Debug, Clone, Default)]
pub struct DurabilityMetrics {
    registry: Registry,
}

impl DurabilityMetrics {
    /// Wrap an existing registry (shared by handle).
    pub fn new(registry: Registry) -> Self {
        DurabilityMetrics { registry }
    }

    /// The underlying registry (for exposition or further instrumentation).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// One WAL record appended (`bytes` framed bytes; `fsynced` whether this
    /// append hit stable storage).
    pub fn append(&self, bytes: usize, fsynced: bool) {
        self.registry.counter_add(
            "journal_appends_total",
            "Write-ahead journal records appended",
            Labels::new(),
            1.0,
        );
        self.registry.counter_add(
            "journal_bytes_total",
            "Write-ahead journal bytes written",
            Labels::new(),
            bytes as f64,
        );
        if fsynced {
            self.fsync();
        }
    }

    /// An explicit WAL fsync.
    pub fn fsync(&self) {
        self.registry.counter_add(
            "journal_fsyncs_total",
            "Write-ahead journal fsyncs",
            Labels::new(),
            1.0,
        );
    }

    /// A compaction snapshot was written and the WAL truncated.
    pub fn snapshot(&self) {
        self.registry.counter_add(
            "journal_snapshots_total",
            "Compaction snapshots written",
            Labels::new(),
            1.0,
        );
    }

    /// Recovery replay finished: wall-clock duration, records replayed, and
    /// torn-tail bytes discarded.
    pub fn replay(&self, duration_secs: f64, records: usize, truncated_bytes: usize) {
        self.registry.gauge_set(
            "journal_replay_seconds",
            "Wall-clock duration of the last journal replay",
            Labels::new(),
            duration_secs,
        );
        self.registry.counter_add(
            "journal_replayed_records_total",
            "Journal records replayed during recovery",
            Labels::new(),
            records as f64,
        );
        if truncated_bytes > 0 {
            self.registry.counter_add(
                "journal_truncated_bytes_total",
                "Torn/corrupt WAL tail bytes discarded at recovery",
                Labels::new(),
                truncated_bytes as f64,
            );
        }
    }

    /// Tasks restored into the queue by recovery.
    pub fn recovered_tasks(&self, n: usize) {
        self.registry.counter_add(
            "daemon_recovered_tasks_total",
            "Queued tasks restored by journal recovery",
            Labels::new(),
            n as f64,
        );
    }

    /// Tasks that were mid-dispatch at crash time and were requeued.
    pub fn requeued_on_recovery(&self, n: usize) {
        self.registry.counter_add(
            "daemon_recovery_requeued_total",
            "Mid-dispatch tasks requeued by journal recovery",
            Labels::new(),
            n as f64,
        );
    }

    /// Sessions restored by recovery.
    pub fn recovered_sessions(&self, n: usize) {
        self.registry.counter_add(
            "daemon_recovered_sessions_total",
            "Sessions restored by journal recovery",
            Labels::new(),
            n as f64,
        );
    }

    /// A submission was deduplicated against a journaled idempotency key.
    pub fn deduped(&self, class: &str) {
        self.registry.counter_add(
            "daemon_idempotent_hits_total",
            "Submissions deduplicated by idempotency key",
            labels(&[("class", class)]),
            1.0,
        );
    }

    /// A graceful drain finished: tasks dispatched during the drain window
    /// and tasks left safely journaled for the next start.
    pub fn drained(&self, dispatched: usize, pending: usize) {
        self.registry.counter_add(
            "daemon_drain_dispatched_total",
            "Tasks dispatched during graceful drain",
            Labels::new(),
            dispatched as f64,
        );
        self.registry.counter_add(
            "daemon_drain_pending_total",
            "Tasks left journaled at the end of graceful drain",
            Labels::new(),
            pending as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_one_registry() {
        let m = DurabilityMetrics::new(Registry::new());
        m.append(64, true);
        m.append(32, false);
        m.snapshot();
        m.replay(0.25, 7, 3);
        m.recovered_tasks(4);
        m.requeued_on_recovery(1);
        m.recovered_sessions(2);
        m.deduped("production");
        m.drained(3, 2);
        let text = m.registry().expose();
        assert!(text.contains("journal_appends_total 2"));
        assert!(text.contains("journal_bytes_total 96"));
        assert!(text.contains("journal_fsyncs_total 1"));
        assert!(text.contains("journal_snapshots_total 1"));
        assert!(text.contains("journal_replayed_records_total 7"));
        assert!(text.contains("journal_truncated_bytes_total 3"));
        assert!(text.contains("daemon_recovered_tasks_total 4"));
        assert!(text.contains("daemon_recovery_requeued_total 1"));
        assert!(text.contains("daemon_recovered_sessions_total 2"));
        assert!(text.contains("daemon_idempotent_hits_total{class=\"production\"} 1"));
        assert!(text.contains("daemon_drain_dispatched_total 3"));
        assert!(text.contains("daemon_drain_pending_total 2"));
    }

    #[test]
    fn zero_truncation_emits_no_truncated_counter() {
        let m = DurabilityMetrics::default();
        m.replay(0.1, 2, 0);
        assert!(!m
            .registry()
            .expose()
            .contains("journal_truncated_bytes_total"));
    }
}
