//! # hpcqc-telemetry — the observability stack
//!
//! Stand-in for the Prometheus / InfluxDB / Grafana triplet the paper builds
//! its monitoring on (§3.6):
//!
//! * [`Registry`] — counters, gauges and histograms with label sets, rendered
//!   in the genuine Prometheus text exposition format by [`Registry::expose`],
//! * [`TimeSeriesDb`] — append-only time series with retention, range queries
//!   and downsampling (the InfluxDB role),
//! * [`ZScoreDetector`] / [`CusumDetector`] — online calibration-drift
//!   detection (§2.5's "detect degradation trends"),
//! * [`AlertManager`] — Prometheus-style threshold alert rules with
//!   pending → firing → resolved lifecycle.

pub mod alerts;
pub mod drift;
pub mod durability;
pub mod fault;
pub mod lint;
pub mod metrics;
pub mod replication;
pub mod sync;
pub mod transport;
pub mod tsdb;

pub use alerts::{AlertEvent, AlertManager, AlertRule, AlertState, Cmp};
pub use drift::{CusumDetector, Detection, ZScoreDetector};
pub use durability::DurabilityMetrics;
pub use fault::FaultMetrics;
pub use lint::LintMetrics;
pub use metrics::{labels, Labels, Registry};
pub use replication::ReplicationMetrics;
pub use sync::export_lock_metrics;
pub use transport::TransportMetrics;
pub use tsdb::{Agg, Point, TimeSeriesDb};
