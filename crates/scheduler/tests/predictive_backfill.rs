//! The §4 "richer two-way scheduler-runtime communication" experiment:
//! backfill decisions made from runtime-provided predictions instead of
//! padded time limits enable more aggressive backfilling.
//!
//! The classic situation: the *hole* in the schedule is tight (the running
//! job's end is well-characterized), and a backfill candidate would really
//! fit — but its padded wall-time limit says it wouldn't. Limit-based
//! conservative backfill must refuse it; prediction-based backfill can take
//! the hole.

use hpcqc_scheduler::{standard_partitions, Cluster, JobSpec, SchedPolicy, SlurmSim};

fn sim(predictive: bool) -> SlurmSim {
    SlurmSim::new(
        Cluster::new(4),
        standard_partitions(),
        SchedPolicy {
            backfill: true,
            preemption: false,
            predictive_backfill: predictive,
        },
    )
}

/// A: 3-node runner with an accurate limit (hole ends ≈ t=110).
/// B: 4-node blocker (reserves the whole machine at the shadow time).
/// C: 1-node filler,真 runtime 80 s — fits the hole — but its limit is
/// padded to 300 s; its prediction (90 s) is honest.
fn scenario(predictive: bool, c_has_prediction: bool) -> (SlurmSim, u64, u64, u64) {
    let mut s = sim(predictive);
    let a = s
        .submit_at(
            JobSpec::classical("a", "u", "test", 3, 100.0)
                .with_time_limit(110.0)
                .with_prediction(105.0),
            0.0,
        )
        .unwrap();
    let b = s
        .submit_at(
            JobSpec::classical("b", "u", "test", 4, 50.0)
                .with_time_limit(60.0)
                .with_prediction(55.0),
            1.0,
        )
        .unwrap();
    let mut c_spec = JobSpec::classical("c", "u", "test", 1, 80.0).with_time_limit(300.0);
    if c_has_prediction {
        c_spec = c_spec.with_prediction(90.0);
    }
    let c = s.submit_at(c_spec, 2.0).unwrap();
    (s, a, b, c)
}

#[test]
fn limit_based_backfill_refuses_padded_candidate() {
    let (mut s, _a, b, c) = scenario(false, true);
    s.run_to_completion();
    // C's padded limit (2 + 300) crosses the shadow (110): refused; it waits
    // for A's real end at t=100
    let c_start = s.job(c).unwrap().start_time.unwrap();
    assert!(
        c_start >= 100.0,
        "C must not backfill on limits: started {c_start}"
    );
    let b_start = s.job(b).unwrap().start_time.unwrap();
    assert!(b_start >= 100.0);
}

#[test]
fn predictive_backfill_takes_the_hole() {
    let (mut s, _a, b, c) = scenario(true, true);
    s.run_to_completion();
    // prediction-based: C (predicted 90) ends before the shadow (≈105) →
    // backfilled immediately
    let c_start = s.job(c).unwrap().start_time.unwrap();
    assert!(
        (c_start - 2.0).abs() < 1e-9,
        "C backfilled at submit, started {c_start}"
    );
    // and the reservation holder B still starts when A really finishes
    let b_start = s.job(b).unwrap().start_time.unwrap();
    assert!((b_start - 100.0).abs() < 1e-9, "B start {b_start}");
}

#[test]
fn jobs_without_predictions_fall_back_to_limits() {
    // predictive policy, but C carries no prediction: its padded limit is
    // all the scheduler has, so the refusal matches the limit-based run
    let (mut s, _a, _b, c) = scenario(true, false);
    s.run_to_completion();
    assert!(s.job(c).unwrap().start_time.unwrap() >= 100.0);
}

#[test]
fn predictive_backfill_improves_utilization_on_padded_workloads() {
    // repeated rounds of the blocked-hole scenario: an accurate 3-node
    // runner, a 4-node blocker, and a padded 1-node filler that only
    // prediction-based backfill slots into the hole.
    let run = |predictive: bool| -> f64 {
        let mut s = sim(predictive);
        for k in 0..6 {
            let t0 = k as f64 * 200.0;
            s.submit_at(
                JobSpec::classical("big", "u", "test", 3, 100.0)
                    .with_time_limit(110.0)
                    .with_prediction(105.0),
                t0,
            )
            .unwrap();
            s.submit_at(
                JobSpec::classical("wide", "u", "test", 4, 50.0)
                    .with_time_limit(60.0)
                    .with_prediction(55.0),
                t0 + 1.0,
            )
            .unwrap();
            s.submit_at(
                JobSpec::classical("fill", "u", "test", 1, 80.0)
                    .with_time_limit(300.0)
                    .with_prediction(90.0),
                t0 + 2.0,
            )
            .unwrap();
        }
        s.run_to_completion();
        s.node_utilization()
    };
    let limit_util = run(false);
    let pred_util = run(true);
    assert!(
        pred_util > limit_util + 0.02,
        "predictive {pred_util:.3} should beat limit-based {limit_util:.3}"
    );
}

#[test]
fn misprediction_delays_but_never_breaks() {
    // a lying prediction (too short) must not violate safety: everything
    // still completes, within limits, with the blocker starting when the
    // liar actually releases.
    let mut s = sim(true);
    let liar = s
        .submit_at(
            JobSpec::classical("liar", "u", "test", 3, 200.0)
                .with_time_limit(400.0)
                .with_prediction(50.0), // wildly optimistic
            0.0,
        )
        .unwrap();
    let wide = s
        .submit_at(
            JobSpec::classical("wide", "u", "test", 4, 30.0).with_prediction(35.0),
            1.0,
        )
        .unwrap();
    let fill = s
        .submit_at(
            JobSpec::classical("fill", "u", "test", 1, 40.0)
                .with_time_limit(45.0)
                .with_prediction(42.0),
            2.0,
        )
        .unwrap();
    s.run_to_completion();
    for id in [liar, wide, fill] {
        let j = s.job(id).unwrap();
        assert_eq!(j.state, hpcqc_scheduler::JobState::Completed, "job {id}");
    }
    assert!(s.job(wide).unwrap().start_time.unwrap() >= 200.0);
}
