//! Property-based tests on the batch scheduler: safety and liveness under
//! arbitrary job streams.

use hpcqc_scheduler::{
    standard_partitions, AccountingSummary, Cluster, JobSpec, JobState, SchedPolicy, SlurmSim,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ArbJob {
    partition: usize,
    nodes: u32,
    gres: u32,
    runtime: f64,
    limit_factor: f64,
    arrival: f64,
}

fn arb_job() -> impl Strategy<Value = ArbJob> {
    (
        0usize..3,
        1u32..6,
        0u32..8,
        1.0f64..500.0,
        0.5f64..3.0,
        0.0f64..2000.0,
    )
        .prop_map(
            |(partition, nodes, gres, runtime, limit_factor, arrival)| ArbJob {
                partition,
                nodes,
                gres,
                runtime,
                limit_factor,
                arrival,
            },
        )
}

fn spec_of(j: &ArbJob) -> JobSpec {
    let partition = ["production", "test", "development"][j.partition];
    let mut s = JobSpec::classical("p", "u", partition, j.nodes, j.runtime)
        .with_time_limit(j.runtime * j.limit_factor);
    if j.gres > 0 {
        s = s.with_gres("qpu", j.gres);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_accepted_job_reaches_a_terminal_state(
        jobs in proptest::collection::vec(arb_job(), 1..40),
        backfill in any::<bool>(),
        preemption in any::<bool>(),
    ) {
        let cluster = Cluster::new(8).with_gres("qpu", 10);
        let mut sim = SlurmSim::new(
            cluster,
            standard_partitions(),
            SchedPolicy { backfill, preemption, ..SchedPolicy::default() },
        );
        let mut accepted = Vec::new();
        let mut sorted = jobs.clone();
        sorted.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).unwrap());
        for j in &sorted {
            match sim.submit_at(spec_of(j), j.arrival) {
                Ok(id) => accepted.push(id),
                Err(e) => {
                    // only unsatisfiable requests may be rejected
                    prop_assert!(
                        j.nodes > 8 || j.gres > 10,
                        "rejected a satisfiable job: {e}"
                    );
                }
            }
        }
        sim.run_to_completion();
        for id in accepted {
            let job = sim.job(id).unwrap();
            prop_assert!(
                job.state.is_terminal(),
                "job {id} stuck in {:?}",
                job.state
            );
            let start = job.start_time.expect("terminal jobs started");
            let end = job.end_time.expect("terminal jobs ended");
            prop_assert!(start >= job.submit_time - 1e-9, "started before submit");
            prop_assert!(end >= start - 1e-9, "ended before start");
            // time limits honored: run duration ≤ limit (+ float slack)
            prop_assert!(
                end - start <= job.spec.time_limit_secs + 1e-6,
                "job {id} ran past its limit"
            );
            if job.state == JobState::Timeout {
                prop_assert!(
                    job.spec.actual_runtime_secs > job.spec.time_limit_secs,
                    "timeout state requires runtime beyond limit"
                );
            }
        }
        // utilization numbers are sane
        let u = sim.node_utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "node util {u}");
        let g = sim.gres_utilization("qpu").unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&g), "gres util {g}");
    }

    #[test]
    fn accounting_summary_is_consistent(
        jobs in proptest::collection::vec(arb_job(), 1..30),
    ) {
        let cluster = Cluster::new(8).with_gres("qpu", 10);
        let mut sim = SlurmSim::new(cluster, standard_partitions(), SchedPolicy::default());
        let mut n_accepted = 0;
        let mut sorted = jobs.clone();
        sorted.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).unwrap());
        for j in &sorted {
            if sim.submit_at(spec_of(j), j.arrival).is_ok() {
                n_accepted += 1;
            }
        }
        sim.run_to_completion();
        let summary = AccountingSummary::from_jobs(sim.jobs());
        prop_assert_eq!(
            summary.completed + summary.timed_out + summary.cancelled,
            n_accepted
        );
        prop_assert!(summary.overall.p95_wait_secs >= 0.0);
        prop_assert!(summary.overall.p95_wait_secs <= summary.overall.max_wait_secs + 1e-9);
        prop_assert!(summary.overall.mean_wait_secs <= summary.overall.max_wait_secs + 1e-9);
        let per_class: usize = summary.by_partition.values().map(|w| w.count).sum();
        prop_assert_eq!(per_class, summary.overall.count);
    }

    #[test]
    fn cluster_pool_arithmetic_never_goes_negative(
        ops in proptest::collection::vec((1u32..5, 0u32..6, any::<bool>()), 1..50),
    ) {
        let mut cluster = Cluster::new(8).with_gres("qpu", 10);
        let mut live: Vec<u64> = Vec::new();
        let mut next = 1u64;
        for (nodes, gres, release_first) in ops {
            if release_first {
                if let Some(id) = live.pop() {
                    cluster.release(id);
                }
            }
            let mut spec = JobSpec::classical("x", "u", "test", nodes, 1.0);
            if gres > 0 {
                spec = spec.with_gres("qpu", gres);
            }
            if cluster.allocate(next, &spec).is_ok() {
                live.push(next);
                next += 1;
            }
            prop_assert!(cluster.free_nodes() <= 8);
            prop_assert!(cluster.free_gres("qpu").unwrap() <= 10);
        }
    }
}
