//! Discrete-event simulation core.
//!
//! A minimal, deterministic event queue shared by the batch-scheduler
//! simulator and the co-simulation harnesses: events carry an `f64` timestamp
//! (seconds) and fire in time order, with a monotonically increasing sequence
//! number breaking ties so runs are reproducible regardless of insertion
//! pattern.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic future-event list with a simulation clock.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: f64,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `event` at absolute time `t`. Panics if `t` is in the past
    /// or not finite — scheduling into the past is always a logic error.
    pub fn schedule_at(&mut self, t: f64, event: E) {
        assert!(t.is_finite(), "event time must be finite, got {t}");
        assert!(
            t >= self.now,
            "cannot schedule into the past: {t} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            time: t,
            seq,
            event,
        });
    }

    /// Schedule `event` `dt` seconds from now.
    pub fn schedule_in(&mut self, dt: f64, event: E) {
        assert!(dt >= 0.0, "negative delay {dt}");
        let t = self.now + dt;
        self.schedule_at(t, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Advance the clock to `t` without processing events. Panics if an
    /// event earlier than `t` is still pending (it must be popped first) or
    /// if `t` would move the clock backwards.
    pub fn advance_to(&mut self, t: f64) {
        assert!(t.is_finite() && t >= self.now, "cannot rewind clock to {t}");
        if let Some(next) = self.peek_time() {
            assert!(
                next >= t,
                "event at {next} pending before advance target {t}"
            );
        }
        self.now = t;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(3.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.now(), 1.0);
        assert_eq!(q.pop(), Some((3.0, "b")));
        assert_eq!(q.pop(), Some((5.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(2.0, "first");
        q.schedule_at(2.0, "second");
        q.schedule_at(2.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, "x");
        q.pop();
        q.schedule_in(5.0, "y");
        assert_eq!(q.pop(), Some((15.0, "y")));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, "x");
        q.pop();
        q.schedule_at(5.0, "y");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_panics() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule_at(f64::NAN, "x");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule_at(4.0, 1u32);
        q.schedule_at(2.0, 2u32);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.now(), 0.0, "peek does not advance the clock");
    }
}
