//! Malleable jobs: grow/shrink node allocations at run time.
//!
//! The paper (§2.4, ref [25]) identifies malleability as the key unexplored
//! lever for hybrid-cluster utilization: a classical post-processing job
//! that can *shrink* when the cluster is contended and *grow* into idle
//! nodes wastes neither. This module adds the mechanism to the batch
//! simulator:
//!
//! * a [`MalleableSpec`] on a job declares `min_nodes..=max_nodes` and the
//!   job's total work in **node-seconds** (perfect-scaling model: running on
//!   `k` nodes proceeds `k` node-seconds per second — the optimistic bound
//!   malleability papers use as the reference),
//! * [`MalleableSim`] wraps the rigid cluster with resize passes: on every
//!   event it first grows malleable jobs into free nodes, and shrinks them
//!   (down to `min_nodes`) when a queued job needs the space.
//!
//! The simulator tracks remaining work explicitly and reschedules each
//! job's completion event whenever its width changes.

use crate::job::JobId;
use crate::sim::EventQueue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Malleability declaration for one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MalleableSpec {
    /// Smallest allocation the job can run on.
    pub min_nodes: u32,
    /// Largest allocation it can exploit.
    pub max_nodes: u32,
    /// Total work, node-seconds.
    pub work_node_secs: f64,
}

impl MalleableSpec {
    pub fn new(min_nodes: u32, max_nodes: u32, work_node_secs: f64) -> Self {
        assert!(min_nodes >= 1 && max_nodes >= min_nodes, "bad node range");
        assert!(work_node_secs > 0.0, "work must be positive");
        MalleableSpec {
            min_nodes,
            max_nodes,
            work_node_secs,
        }
    }
}

/// A malleable job submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MalleableJob {
    pub name: String,
    pub spec: MalleableSpec,
    pub arrival: f64,
}

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MalleableState {
    Pending,
    Running,
    Completed,
}

/// Record of one job in the malleable simulator.
#[derive(Debug, Clone)]
pub struct MalleableRecord {
    pub job: MalleableJob,
    pub state: MalleableState,
    /// Current width (0 while pending).
    pub nodes: u32,
    /// Remaining work, node-seconds (valid as of `last_update`).
    pub remaining: f64,
    pub start_time: Option<f64>,
    pub end_time: Option<f64>,
    /// Number of grow/shrink events applied.
    pub resizes: u32,
}

#[derive(Debug, Clone)]
enum Ev {
    Arrival(JobId),
    /// Completion; stale if the generation doesn't match.
    Done(JobId, u32),
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MalleableReport {
    pub makespan_secs: f64,
    /// Time-weighted node utilization.
    pub node_utilization: f64,
    pub mean_turnaround_secs: f64,
    pub total_resizes: u32,
    pub completed: usize,
}

/// Discrete-event simulator for a pool of (possibly) malleable jobs.
///
/// When `enable_malleability` is false, jobs run rigidly at `min_nodes` —
/// the ablation baseline.
pub struct MalleableSim {
    total_nodes: u32,
    records: BTreeMap<JobId, MalleableRecord>,
    gen: BTreeMap<JobId, u32>,
    events: EventQueue<Ev>,
    pending: Vec<JobId>,
    next_id: JobId,
    enable_malleability: bool,
    node_secs_used: f64,
    last_t: f64,
}

impl MalleableSim {
    pub fn new(total_nodes: u32, enable_malleability: bool) -> Self {
        MalleableSim {
            total_nodes,
            records: BTreeMap::new(),
            gen: BTreeMap::new(),
            events: EventQueue::new(),
            pending: Vec::new(),
            next_id: 1,
            enable_malleability,
            node_secs_used: 0.0,
            last_t: 0.0,
        }
    }

    /// Submit a job (arrival at its declared time).
    pub fn submit(&mut self, job: MalleableJob) -> JobId {
        assert!(
            job.spec.min_nodes <= self.total_nodes,
            "job cannot fit the cluster even at minimum width"
        );
        let id = self.next_id;
        self.next_id += 1;
        self.events.schedule_at(job.arrival, Ev::Arrival(id));
        self.records.insert(
            id,
            MalleableRecord {
                remaining: job.spec.work_node_secs,
                job,
                state: MalleableState::Pending,
                nodes: 0,
                start_time: None,
                end_time: None,
                resizes: 0,
            },
        );
        self.gen.insert(id, 0);
        id
    }

    /// Read a record.
    pub fn record(&self, id: JobId) -> Option<&MalleableRecord> {
        self.records.get(&id)
    }

    fn free_nodes(&self) -> u32 {
        let used: u32 = self
            .records
            .values()
            .filter(|r| r.state == MalleableState::Running)
            .map(|r| r.nodes)
            .sum();
        self.total_nodes - used
    }

    /// Progress all running jobs to `now` and charge utilization.
    fn advance_work(&mut self, now: f64) {
        let dt = now - self.last_t;
        if dt > 0.0 {
            for r in self.records.values_mut() {
                if r.state == MalleableState::Running {
                    r.remaining -= r.nodes as f64 * dt;
                    if r.remaining < 0.0 {
                        r.remaining = 0.0; // completion event is imminent
                    }
                    self.node_secs_used += r.nodes as f64 * dt;
                }
            }
        }
        self.last_t = now;
    }

    /// Reschedule a running job's completion from its current width.
    fn reschedule_done(&mut self, id: JobId, now: f64) {
        let gen = self.gen.get_mut(&id).expect("gen exists");
        *gen += 1;
        let g = *gen;
        let r = &self.records[&id];
        debug_assert!(r.nodes >= 1);
        let finish_in = r.remaining / r.nodes as f64;
        self.events.schedule_at(now + finish_in, Ev::Done(id, g));
    }

    /// Set a running job's width, rescheduling completion.
    fn resize(&mut self, id: JobId, nodes: u32, now: f64) {
        let r = self.records.get_mut(&id).expect("job exists");
        if r.nodes == nodes {
            return;
        }
        r.nodes = nodes;
        r.resizes += 1;
        self.reschedule_done(id, now);
    }

    /// The scheduling pass: shrink to admit, start pending, grow into slack.
    fn schedule_pass(&mut self, now: f64) {
        // 1. try to admit pending jobs (FIFO by arrival), shrinking running
        //    malleable jobs toward min_nodes when needed.
        self.pending.sort_by(|&a, &b| {
            self.records[&a]
                .job
                .arrival
                .partial_cmp(&self.records[&b].job.arrival)
                .expect("finite")
                .then(a.cmp(&b))
        });
        let pending = self.pending.clone();
        for id in pending {
            let need = self.records[&id].job.spec.min_nodes;
            let mut free = self.free_nodes();
            if free < need && self.enable_malleability {
                // only shrink if reclamation can actually satisfy the
                // request — otherwise a failed admission would churn
                // resize events on every pass
                let reclaimable: u32 = self
                    .records
                    .values()
                    .filter(|r| r.state == MalleableState::Running)
                    .map(|r| r.nodes - r.job.spec.min_nodes)
                    .sum();
                if free + reclaimable >= need {
                    // shrink the widest running jobs first
                    let mut running: Vec<(u32, JobId)> = self
                        .records
                        .iter()
                        .filter(|(_, r)| r.state == MalleableState::Running)
                        .map(|(&jid, r)| (r.nodes, jid))
                        .collect();
                    running.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                    for (width, jid) in running {
                        if free >= need {
                            break;
                        }
                        let min = self.records[&jid].job.spec.min_nodes;
                        let give = (width - min).min(need - free);
                        if give > 0 {
                            self.resize(jid, width - give, now);
                            free += give;
                        }
                    }
                }
            }
            if free >= need {
                self.pending.retain(|&p| p != id);
                let r = self.records.get_mut(&id).expect("job exists");
                r.state = MalleableState::Running;
                r.nodes = need;
                r.start_time = Some(now);
                self.reschedule_done(id, now);
            } else {
                break; // FIFO head blocking
            }
        }
        // 2. grow running malleable jobs into remaining slack, fair-share:
        //    one node at a time round-robin until no slack or all capped.
        if self.enable_malleability {
            loop {
                let free = self.free_nodes();
                if free == 0 {
                    break;
                }
                let mut grew = false;
                let ids: Vec<JobId> = self
                    .records
                    .iter()
                    .filter(|(_, r)| r.state == MalleableState::Running)
                    .map(|(&jid, _)| jid)
                    .collect();
                for jid in ids {
                    if self.free_nodes() == 0 {
                        break;
                    }
                    let (cur, max) = {
                        let r = &self.records[&jid];
                        (r.nodes, r.job.spec.max_nodes)
                    };
                    if cur < max {
                        self.resize(jid, cur + 1, now);
                        grew = true;
                    }
                }
                if !grew {
                    break;
                }
            }
        }
    }

    /// Run to completion and report.
    pub fn run(mut self) -> MalleableReport {
        while let Some((t, ev)) = self.events.pop() {
            self.advance_work(t);
            match ev {
                Ev::Arrival(id) => {
                    self.pending.push(id);
                }
                Ev::Done(id, g) => {
                    if self.gen.get(&id) == Some(&g)
                        && self.records[&id].state == MalleableState::Running
                    {
                        let r = self.records.get_mut(&id).expect("job exists");
                        debug_assert!(r.remaining < 1e-6, "work left: {}", r.remaining);
                        r.state = MalleableState::Completed;
                        r.nodes = 0;
                        r.end_time = Some(t);
                    }
                }
            }
            self.schedule_pass(t);
        }
        let makespan = self
            .records
            .values()
            .filter_map(|r| r.end_time)
            .fold(0.0f64, f64::max);
        let completed = self
            .records
            .values()
            .filter(|r| r.state == MalleableState::Completed)
            .count();
        let turnarounds: Vec<f64> = self
            .records
            .values()
            .filter_map(|r| r.end_time.map(|e| e - r.job.arrival))
            .collect();
        MalleableReport {
            makespan_secs: makespan,
            node_utilization: if makespan > 0.0 {
                self.node_secs_used / (self.total_nodes as f64 * makespan)
            } else {
                0.0
            },
            mean_turnaround_secs: if turnarounds.is_empty() {
                0.0
            } else {
                turnarounds.iter().sum::<f64>() / turnarounds.len() as f64
            },
            total_resizes: self.records.values().map(|r| r.resizes).sum(),
            completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str, min: u32, max: u32, work: f64, arrival: f64) -> MalleableJob {
        MalleableJob {
            name: name.into(),
            spec: MalleableSpec::new(min, max, work),
            arrival,
        }
    }

    #[test]
    fn single_malleable_job_uses_whole_cluster() {
        let mut sim = MalleableSim::new(8, true);
        let id = sim.submit(job("a", 1, 8, 800.0, 0.0));
        let report = sim.run();
        // 800 node-seconds on 8 nodes = 100 s
        assert!((report.makespan_secs - 100.0).abs() < 1e-6);
        assert!((report.node_utilization - 1.0).abs() < 1e-9);
        assert_eq!(report.completed, 1);
        let _ = id;
    }

    #[test]
    fn rigid_job_sticks_to_min_nodes() {
        let mut sim = MalleableSim::new(8, false);
        sim.submit(job("a", 2, 8, 800.0, 0.0));
        let report = sim.run();
        // rigid at 2 nodes: 400 s
        assert!((report.makespan_secs - 400.0).abs() < 1e-6);
        assert_eq!(report.total_resizes, 0);
    }

    #[test]
    fn growth_is_fair_shared_between_jobs() {
        let mut sim = MalleableSim::new(8, true);
        let a = sim.submit(job("a", 1, 8, 400.0, 0.0));
        let b = sim.submit(job("b", 1, 8, 400.0, 0.0));
        // both should run at width 4 and finish at t=100 together
        let _ = (a, b);
        let report = sim.run();
        assert!(
            (report.makespan_secs - 100.0).abs() < 1e-6,
            "{}",
            report.makespan_secs
        );
        assert!((report.node_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn running_jobs_shrink_to_admit_newcomer() {
        let mut sim = MalleableSim::new(8, true);
        // first job grows to 8; second (min 4) arrives at t=10
        sim.submit(job("wide", 1, 8, 1600.0, 0.0));
        let late = sim.submit(job("late", 4, 4, 400.0, 10.0));
        let report = sim.run();
        assert_eq!(report.completed, 2);
        // the late job started at its arrival, not after `wide` finished
        // (which would be t=200 rigidly)
        let _ = late;
        assert!(
            report.makespan_secs < 300.0,
            "makespan {}",
            report.makespan_secs
        );
        assert!(report.total_resizes >= 2, "grow + shrink happened");
        assert!(report.node_utilization > 0.95);
    }

    #[test]
    fn without_malleability_newcomer_waits() {
        let run = |mall: bool| {
            let mut sim = MalleableSim::new(8, mall);
            sim.submit(job("wide", 6, 8, 1200.0, 0.0));
            sim.submit(job("late", 4, 4, 400.0, 10.0));
            sim.run()
        };
        let rigid = run(false);
        let malleable = run(true);
        assert!(
            malleable.mean_turnaround_secs < rigid.mean_turnaround_secs,
            "malleable {} vs rigid {}",
            malleable.mean_turnaround_secs,
            rigid.mean_turnaround_secs
        );
        assert!(malleable.node_utilization > rigid.node_utilization);
    }

    #[test]
    fn work_is_conserved_under_resizes() {
        let mut sim = MalleableSim::new(4, true);
        let ids: Vec<_> = (0..5)
            .map(|i| {
                sim.submit(job(
                    &format!("j{i}"),
                    1,
                    4,
                    100.0 + 50.0 * i as f64,
                    5.0 * i as f64,
                ))
            })
            .collect();
        let report = sim.run();
        assert_eq!(report.completed, ids.len());
        // total node-seconds delivered == total work submitted
        let total_work: f64 = (0..5).map(|i| 100.0 + 50.0 * i as f64).sum();
        let delivered = report.node_utilization * 4.0 * report.makespan_secs;
        assert!(
            (delivered - total_work).abs() < 1e-6,
            "delivered {delivered} vs submitted {total_work}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversized_min_rejected() {
        let mut sim = MalleableSim::new(4, true);
        sim.submit(job("big", 5, 8, 100.0, 0.0));
    }

    #[test]
    fn completion_times_scale_inverse_to_width() {
        // one rigid narrow job + cluster slack: a malleable job finishes
        // earlier than the same job rigid
        let run = |mall: bool| {
            let mut sim = MalleableSim::new(8, mall);
            let id = sim.submit(job("j", 2, 8, 1600.0, 0.0));
            let report = sim.run();
            let _ = (id, &report);
            report.makespan_secs
        };
        assert!((run(false) - 800.0).abs() < 1e-6);
        assert!((run(true) - 200.0).abs() < 1e-6);
    }
}
