//! Cluster resources: nodes and global GRES/license pools.

use crate::job::{JobId, JobSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The physical cluster the scheduler allocates from.
///
/// Nodes are homogeneous and allocated whole (the common HPC configuration
/// and the one the paper's Figure 2 depicts: classical nodes + one quantum
/// access node whose QPU is reached through GRES/licenses).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    /// Total node count.
    pub total_nodes: u32,
    /// Global GRES pools: name → capacity (e.g. `"qpu" → 10` for the ten
    /// 10 %-timeshare units of §3.5).
    pub gres_capacity: BTreeMap<String, u32>,
    /// License pools, identical semantics.
    pub license_capacity: BTreeMap<String, u32>,
    /// Nodes currently allocated, per job.
    allocations: BTreeMap<JobId, Allocation>,
}

/// What one running job holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    pub nodes: u32,
    pub gres: BTreeMap<String, u32>,
    pub licenses: BTreeMap<String, u32>,
}

/// Why an allocation attempt failed.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocError {
    NotEnoughNodes {
        requested: u32,
        free: u32,
    },
    NotEnoughGres {
        name: String,
        requested: u32,
        free: u32,
    },
    NotEnoughLicenses {
        name: String,
        requested: u32,
        free: u32,
    },
    UnknownPool {
        kind: &'static str,
        name: String,
    },
    AlreadyAllocated(JobId),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::NotEnoughNodes { requested, free } => {
                write!(f, "requested {requested} nodes, {free} free")
            }
            AllocError::NotEnoughGres {
                name,
                requested,
                free,
            } => {
                write!(f, "requested {requested} gres/{name}, {free} free")
            }
            AllocError::NotEnoughLicenses {
                name,
                requested,
                free,
            } => {
                write!(f, "requested {requested} licenses/{name}, {free} free")
            }
            AllocError::UnknownPool { kind, name } => write!(f, "no {kind} pool named {name:?}"),
            AllocError::AlreadyAllocated(id) => write!(f, "job {id} already holds an allocation"),
        }
    }
}

impl Cluster {
    /// A cluster with `nodes` homogeneous nodes and no pools.
    pub fn new(nodes: u32) -> Self {
        Cluster {
            total_nodes: nodes,
            gres_capacity: BTreeMap::new(),
            license_capacity: BTreeMap::new(),
            allocations: BTreeMap::new(),
        }
    }

    /// Add a global GRES pool.
    pub fn with_gres(mut self, name: &str, capacity: u32) -> Self {
        self.gres_capacity.insert(name.into(), capacity);
        self
    }

    /// Add a license pool.
    pub fn with_licenses(mut self, name: &str, capacity: u32) -> Self {
        self.license_capacity.insert(name.into(), capacity);
        self
    }

    /// Free node count.
    pub fn free_nodes(&self) -> u32 {
        let used: u32 = self.allocations.values().map(|a| a.nodes).sum();
        self.total_nodes - used
    }

    /// Free units in a GRES pool.
    pub fn free_gres(&self, name: &str) -> Option<u32> {
        let cap = *self.gres_capacity.get(name)?;
        let used: u32 = self
            .allocations
            .values()
            .map(|a| a.gres.get(name).copied().unwrap_or(0))
            .sum();
        Some(cap - used)
    }

    /// Free units in a license pool.
    pub fn free_licenses(&self, name: &str) -> Option<u32> {
        let cap = *self.license_capacity.get(name)?;
        let used: u32 = self
            .allocations
            .values()
            .map(|a| a.licenses.get(name).copied().unwrap_or(0))
            .sum();
        Some(cap - used)
    }

    /// Check whether `spec` could run right now (without allocating).
    pub fn fits(&self, spec: &JobSpec) -> Result<(), AllocError> {
        let free = self.free_nodes();
        if spec.nodes > free {
            return Err(AllocError::NotEnoughNodes {
                requested: spec.nodes,
                free,
            });
        }
        for (name, &req) in &spec.gres {
            match self.free_gres(name) {
                None => {
                    return Err(AllocError::UnknownPool {
                        kind: "gres",
                        name: name.clone(),
                    })
                }
                Some(f) if req > f => {
                    return Err(AllocError::NotEnoughGres {
                        name: name.clone(),
                        requested: req,
                        free: f,
                    })
                }
                _ => {}
            }
        }
        for (name, &req) in &spec.licenses {
            match self.free_licenses(name) {
                None => {
                    return Err(AllocError::UnknownPool {
                        kind: "license",
                        name: name.clone(),
                    })
                }
                Some(f) if req > f => {
                    return Err(AllocError::NotEnoughLicenses {
                        name: name.clone(),
                        requested: req,
                        free: f,
                    })
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Allocate resources for `job_id`.
    pub fn allocate(&mut self, job_id: JobId, spec: &JobSpec) -> Result<(), AllocError> {
        if self.allocations.contains_key(&job_id) {
            return Err(AllocError::AlreadyAllocated(job_id));
        }
        self.fits(spec)?;
        self.allocations.insert(
            job_id,
            Allocation {
                nodes: spec.nodes,
                gres: spec.gres.clone(),
                licenses: spec.licenses.clone(),
            },
        );
        Ok(())
    }

    /// Release a job's allocation (no-op if it holds none).
    pub fn release(&mut self, job_id: JobId) {
        self.allocations.remove(&job_id);
    }

    /// The allocation a job holds, if any.
    pub fn allocation(&self, job_id: JobId) -> Option<&Allocation> {
        self.allocations.get(&job_id)
    }

    /// Node-utilization fraction right now.
    pub fn node_utilization(&self) -> f64 {
        if self.total_nodes == 0 {
            return 0.0;
        }
        (self.total_nodes - self.free_nodes()) as f64 / self.total_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(8)
            .with_gres("qpu", 10)
            .with_licenses("qpu_share", 4)
    }

    fn spec(nodes: u32) -> JobSpec {
        JobSpec::classical("j", "u", "p", nodes, 10.0)
    }

    #[test]
    fn allocate_and_release_nodes() {
        let mut c = cluster();
        c.allocate(1, &spec(5)).unwrap();
        assert_eq!(c.free_nodes(), 3);
        assert!((c.node_utilization() - 5.0 / 8.0).abs() < 1e-12);
        c.release(1);
        assert_eq!(c.free_nodes(), 8);
    }

    #[test]
    fn oversubscription_rejected() {
        let mut c = cluster();
        c.allocate(1, &spec(6)).unwrap();
        match c.allocate(2, &spec(3)) {
            Err(AllocError::NotEnoughNodes {
                requested: 3,
                free: 2,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn double_allocation_rejected() {
        let mut c = cluster();
        c.allocate(1, &spec(1)).unwrap();
        assert_eq!(
            c.allocate(1, &spec(1)),
            Err(AllocError::AlreadyAllocated(1))
        );
    }

    #[test]
    fn gres_pool_accounting() {
        let mut c = cluster();
        let s = spec(1).with_gres("qpu", 6);
        c.allocate(1, &s).unwrap();
        assert_eq!(c.free_gres("qpu"), Some(4));
        let s2 = spec(1).with_gres("qpu", 5);
        assert!(matches!(
            c.allocate(2, &s2),
            Err(AllocError::NotEnoughGres {
                requested: 5,
                free: 4,
                ..
            })
        ));
        c.release(1);
        assert_eq!(c.free_gres("qpu"), Some(10));
    }

    #[test]
    fn license_pool_accounting() {
        let mut c = cluster();
        c.allocate(1, &spec(1).with_license("qpu_share", 3))
            .unwrap();
        assert_eq!(c.free_licenses("qpu_share"), Some(1));
        assert!(matches!(
            c.allocate(2, &spec(1).with_license("qpu_share", 2)),
            Err(AllocError::NotEnoughLicenses { .. })
        ));
    }

    #[test]
    fn unknown_pool_rejected() {
        let mut c = cluster();
        assert!(matches!(
            c.allocate(1, &spec(1).with_gres("gpu", 1)),
            Err(AllocError::UnknownPool { kind: "gres", .. })
        ));
        assert!(matches!(
            c.allocate(2, &spec(1).with_license("matlab", 1)),
            Err(AllocError::UnknownPool {
                kind: "license",
                ..
            })
        ));
    }

    #[test]
    fn fits_does_not_allocate() {
        let c = cluster();
        assert!(c.fits(&spec(8)).is_ok());
        assert_eq!(c.free_nodes(), 8);
    }

    #[test]
    fn release_unknown_job_is_noop() {
        let mut c = cluster();
        c.release(99);
        assert_eq!(c.free_nodes(), 8);
    }
}
