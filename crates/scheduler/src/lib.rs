//! # hpcqc-scheduler — the batch scheduler simulator (Slurm stand-in)
//!
//! Everything the paper's architecture consumes from the HPC resource
//! manager, runnable at thousands of simulated cluster-days per second:
//!
//! * [`EventQueue`] — deterministic discrete-event core,
//! * [`Cluster`] — homogeneous nodes + global GRES/license pools (the §3.5
//!   "10 licenses = 10 % QPU timeshares" mechanism),
//! * [`SlurmSim`] — partitions with priorities, FIFO + conservative backfill,
//!   partition preemption with requeue, time limits, cancellation,
//! * [`AccountingSummary`] — per-partition wait/turnaround statistics and
//!   utilization, feeding the Table-1 and Figure-2 experiments.

pub mod accounting;
pub mod cluster;
pub mod job;
pub mod malleable;
pub mod sim;
pub mod slurm;

pub use accounting::{AccountingSummary, WaitStats};
pub use cluster::{AllocError, Allocation, Cluster};
pub use job::{Job, JobId, JobSpec, JobState, PatternHint};
pub use malleable::{MalleableJob, MalleableReport, MalleableSim, MalleableSpec, MalleableState};
pub use sim::EventQueue;
pub use slurm::{standard_partitions, Partition, SchedError, SchedPolicy, SlurmSim};
