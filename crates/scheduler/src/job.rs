//! Batch jobs and their resource requests.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Unique job identifier assigned by the scheduler.
pub type JobId = u64;

/// Table-1 workload-pattern hint a job may carry (paper §3.5: `--hint=`).
/// Consumed by the middleware's pattern-aware interleaver, transparently
/// forwarded by the batch layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternHint {
    /// Pattern A: QPU-dominant, minor classical pre/post processing.
    QcHeavy,
    /// Pattern B: sparse quantum, heavy classical load.
    CcHeavy,
    /// Pattern C: comparable quantum and classical load.
    QcBalanced,
    /// No hint supplied.
    None,
}

impl PatternHint {
    /// Parse the `--hint=` string form. Tolerant of surrounding whitespace
    /// and letter case — REST clients send `"QC-Heavy"`, `" qc-heavy\n"` and
    /// friends, and silently dropping their hint to `None` mis-schedules the
    /// job.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "qc-heavy" => Some(PatternHint::QcHeavy),
            "cc-heavy" => Some(PatternHint::CcHeavy),
            "qc-balanced" => Some(PatternHint::QcBalanced),
            "none" => Some(PatternHint::None),
            _ => None,
        }
    }

    /// The canonical `--hint=` string form (inverse of [`PatternHint::parse`]).
    pub fn as_str(&self) -> &'static str {
        match self {
            PatternHint::QcHeavy => "qc-heavy",
            PatternHint::CcHeavy => "cc-heavy",
            PatternHint::QcBalanced => "qc-balanced",
            PatternHint::None => "none",
        }
    }
}

/// What a job asks the batch scheduler for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Human-readable name.
    pub name: String,
    /// Submitting user.
    pub user: String,
    /// Target partition (must exist).
    pub partition: String,
    /// Whole nodes requested.
    pub nodes: u32,
    /// Generic resources from global pools, e.g. `{"qpu": 2}` for 2 of the
    /// 10 QPU timeshare units of §3.5.
    pub gres: BTreeMap<String, u32>,
    /// License counts, same pool semantics as GRES.
    pub licenses: BTreeMap<String, u32>,
    /// Wall-time limit (s); the job is killed at `start + time_limit`.
    pub time_limit_secs: f64,
    /// The job's *actual* runtime (s) — known to the simulator, not to the
    /// scheduler (which only sees the limit, as in real Slurm).
    pub actual_runtime_secs: f64,
    /// Workload-pattern scheduler hint.
    pub hint: PatternHint,
    /// Expected QPU busy seconds (optional richer hint from §3.5).
    pub expected_qpu_secs: Option<f64>,
    /// Predicted total runtime from the runtime layer (§4: two-way
    /// scheduler-runtime communication). When present and the policy enables
    /// predictive backfill, reservations use this instead of the (padded)
    /// time limit, allowing more aggressive backfilling.
    pub predicted_runtime_secs: Option<f64>,
}

impl JobSpec {
    /// A minimal classical job.
    pub fn classical(name: &str, user: &str, partition: &str, nodes: u32, runtime: f64) -> Self {
        JobSpec {
            name: name.into(),
            user: user.into(),
            partition: partition.into(),
            nodes,
            gres: BTreeMap::new(),
            licenses: BTreeMap::new(),
            time_limit_secs: runtime * 2.0,
            actual_runtime_secs: runtime,
            hint: PatternHint::None,
            expected_qpu_secs: None,
            predicted_runtime_secs: None,
        }
    }

    /// Add a GRES request.
    pub fn with_gres(mut self, name: &str, count: u32) -> Self {
        self.gres.insert(name.into(), count);
        self
    }

    /// Add a license request.
    pub fn with_license(mut self, name: &str, count: u32) -> Self {
        self.licenses.insert(name.into(), count);
        self
    }

    /// Set the pattern hint.
    pub fn with_hint(mut self, hint: PatternHint) -> Self {
        self.hint = hint;
        self
    }

    /// Set an explicit time limit.
    pub fn with_time_limit(mut self, secs: f64) -> Self {
        self.time_limit_secs = secs;
        self
    }

    /// Attach a runtime-provided runtime prediction (§4).
    pub fn with_prediction(mut self, secs: f64) -> Self {
        self.predicted_runtime_secs = Some(secs);
        self
    }
}

/// Lifecycle state of a job in the batch system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the queue.
    Pending,
    /// Allocated and executing.
    Running,
    /// Finished within its limit.
    Completed,
    /// Killed at its time limit.
    Timeout,
    /// Removed by the user or an operator while pending or running.
    Cancelled,
    /// Preempted by a higher-priority partition; returned to the queue.
    Preempted,
}

impl JobState {
    /// Terminal states never transition again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Timeout | JobState::Cancelled
        )
    }
}

/// A job record inside the scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    pub id: JobId,
    pub spec: JobSpec,
    pub state: JobState,
    pub submit_time: f64,
    /// Set when the job (last) started.
    pub start_time: Option<f64>,
    /// Set when the job reached a terminal state.
    pub end_time: Option<f64>,
    /// How many times the job was preempted and requeued.
    pub preemptions: u32,
}

impl Job {
    pub fn new(id: JobId, spec: JobSpec, submit_time: f64) -> Self {
        Job {
            id,
            spec,
            state: JobState::Pending,
            submit_time,
            start_time: None,
            end_time: None,
            preemptions: 0,
        }
    }

    /// Queue wait: from submission to (last) start.
    pub fn wait_secs(&self) -> Option<f64> {
        self.start_time.map(|s| s - self.submit_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let s = JobSpec::classical("vqe", "alice", "prod", 4, 100.0)
            .with_gres("qpu", 2)
            .with_license("qpu_share", 1)
            .with_hint(PatternHint::QcBalanced)
            .with_time_limit(500.0);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.gres["qpu"], 2);
        assert_eq!(s.licenses["qpu_share"], 1);
        assert_eq!(s.hint, PatternHint::QcBalanced);
        assert_eq!(s.time_limit_secs, 500.0);
    }

    #[test]
    fn hint_parse_roundtrip() {
        assert_eq!(PatternHint::parse("qc-heavy"), Some(PatternHint::QcHeavy));
        assert_eq!(PatternHint::parse("cc-heavy"), Some(PatternHint::CcHeavy));
        assert_eq!(
            PatternHint::parse("qc-balanced"),
            Some(PatternHint::QcBalanced)
        );
        assert_eq!(PatternHint::parse("none"), Some(PatternHint::None));
        assert_eq!(PatternHint::parse("gpu-heavy"), None);
    }

    #[test]
    fn hint_parse_is_case_and_whitespace_tolerant() {
        assert_eq!(PatternHint::parse("QC-Heavy"), Some(PatternHint::QcHeavy));
        assert_eq!(
            PatternHint::parse("  cc-heavy\n"),
            Some(PatternHint::CcHeavy)
        );
        assert_eq!(
            PatternHint::parse("\tQC-BALANCED "),
            Some(PatternHint::QcBalanced)
        );
        assert_eq!(PatternHint::parse("NONE"), Some(PatternHint::None));
        assert_eq!(
            PatternHint::parse("qc heavy"),
            None,
            "separator still matters"
        );
    }

    #[test]
    fn hint_as_str_roundtrips() {
        for h in [
            PatternHint::QcHeavy,
            PatternHint::CcHeavy,
            PatternHint::QcBalanced,
            PatternHint::None,
        ] {
            assert_eq!(PatternHint::parse(h.as_str()), Some(h));
        }
    }

    #[test]
    fn terminal_states() {
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Timeout.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(!JobState::Pending.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Preempted.is_terminal());
    }

    #[test]
    fn wait_time_computed_from_start() {
        let mut j = Job::new(1, JobSpec::classical("x", "u", "p", 1, 10.0), 100.0);
        assert_eq!(j.wait_secs(), None);
        j.start_time = Some(130.0);
        assert_eq!(j.wait_secs(), Some(30.0));
    }

    #[test]
    fn default_time_limit_covers_runtime() {
        let s = JobSpec::classical("x", "u", "p", 1, 50.0);
        assert!(s.time_limit_secs >= s.actual_runtime_secs);
    }
}
