//! The batch scheduler simulator (the Slurm stand-in).
//!
//! Implements the slice of Slurm the paper's architecture leans on:
//! partitions with priorities (§3.3 maps job classes to partitions), FIFO
//! dispatch with **conservative backfill**, partition-based **preemption**
//! (requeue), global GRES and license pools (§3.5's 10×10 % QPU timeshares),
//! and accounting. Scheduling decisions use job *time limits* — the actual
//! runtime is only known to the simulation, exactly as in a real system.

use crate::cluster::Cluster;
use crate::job::{Job, JobId, JobSpec, JobState};
use crate::sim::EventQueue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A Slurm partition: a named queue with a priority tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    pub name: String,
    /// Higher runs first; ties broken by submit time.
    pub priority: u32,
    /// Whether jobs here may preempt (requeue) jobs from lower-priority
    /// partitions when resources are short.
    pub preempts_lower: bool,
}

/// The §3.3 standard layout: production ≻ test ≻ development, production
/// preempting.
pub fn standard_partitions() -> Vec<Partition> {
    vec![
        Partition {
            name: "production".into(),
            priority: 300,
            preempts_lower: true,
        },
        Partition {
            name: "test".into(),
            priority: 200,
            preempts_lower: false,
        },
        Partition {
            name: "development".into(),
            priority: 100,
            preempts_lower: false,
        },
    ]
}

#[derive(Debug, Clone)]
enum SimEvent {
    Submit(JobId),
    /// Job end; carries the run generation so preempted runs' stale end
    /// events are ignored.
    End(JobId, u32),
}

/// Errors from the scheduler API.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    UnknownPartition(String),
    /// The request can never fit the cluster, even when idle.
    Unsatisfiable(String),
    UnknownJob(JobId),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::UnknownPartition(p) => write!(f, "unknown partition {p:?}"),
            SchedError::Unsatisfiable(m) => write!(f, "request can never run: {m}"),
            SchedError::UnknownJob(id) => write!(f, "unknown job {id}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Scheduler feature toggles (ablations for the Table-1 experiments).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedPolicy {
    /// Conservative backfill behind the highest-priority blocked job.
    pub backfill: bool,
    /// Partition-priority preemption (requeue).
    pub preemption: bool,
    /// Use runtime-provided predictions (`JobSpec::predicted_runtime_secs`)
    /// instead of time limits when computing backfill reservations — the
    /// §4 "richer two-way communication" experiment. Jobs without a
    /// prediction fall back to their limit.
    pub predictive_backfill: bool,
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy {
            backfill: true,
            preemption: true,
            predictive_backfill: false,
        }
    }
}

/// Time-weighted utilization accumulator.
#[derive(Debug, Clone, Default)]
struct UtilAccum {
    last_t: f64,
    node_secs: f64,
    gres_secs: BTreeMap<String, f64>,
}

/// The batch scheduler simulator.
pub struct SlurmSim {
    cluster: Cluster,
    partitions: BTreeMap<String, Partition>,
    jobs: BTreeMap<JobId, Job>,
    run_gen: BTreeMap<JobId, u32>,
    pending: Vec<JobId>,
    events: EventQueue<SimEvent>,
    next_id: JobId,
    policy: SchedPolicy,
    util: UtilAccum,
}

impl SlurmSim {
    pub fn new(cluster: Cluster, partitions: Vec<Partition>, policy: SchedPolicy) -> Self {
        SlurmSim {
            cluster,
            partitions: partitions
                .into_iter()
                .map(|p| (p.name.clone(), p))
                .collect(),
            jobs: BTreeMap::new(),
            run_gen: BTreeMap::new(),
            pending: Vec::new(),
            events: EventQueue::new(),
            next_id: 1,
            policy,
            util: UtilAccum::default(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.events.now()
    }

    /// Read access to a job record.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// All job records (accounting).
    pub fn jobs(&self) -> impl Iterator<Item = &Job> + Clone {
        self.jobs.values()
    }

    /// The cluster state (inspection).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Queue a job for submission at absolute time `at` (≥ now).
    pub fn submit_at(&mut self, spec: JobSpec, at: f64) -> Result<JobId, SchedError> {
        if !self.partitions.contains_key(&spec.partition) {
            return Err(SchedError::UnknownPartition(spec.partition.clone()));
        }
        // reject requests that can never fit an idle cluster
        let idle = {
            let mut c = self.cluster.clone();
            for id in self.jobs.keys() {
                c.release(*id);
            }
            c
        };
        if let Err(e) = idle.fits(&spec) {
            return Err(SchedError::Unsatisfiable(e.to_string()));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(id, Job::new(id, spec, at));
        self.run_gen.insert(id, 0);
        self.events.schedule_at(at, SimEvent::Submit(id));
        Ok(id)
    }

    /// Cancel a pending or running job.
    pub fn cancel(&mut self, id: JobId) -> Result<(), SchedError> {
        let now = self.now();
        let state = self.jobs.get(&id).ok_or(SchedError::UnknownJob(id))?.state;
        match state {
            JobState::Pending | JobState::Preempted => {
                let job = self.jobs.get_mut(&id).expect("checked above");
                job.state = JobState::Cancelled;
                job.end_time = Some(now);
                self.pending.retain(|&p| p != id);
                Ok(())
            }
            JobState::Running => {
                self.accumulate_util();
                let job = self.jobs.get_mut(&id).expect("checked above");
                job.state = JobState::Cancelled;
                job.end_time = Some(now);
                *self.run_gen.get_mut(&id).expect("gen exists") += 1; // stale End
                self.cluster.release(id);
                self.schedule_pass();
                Ok(())
            }
            _ => Err(SchedError::UnknownJob(id)),
        }
    }

    fn accumulate_util(&mut self) {
        let now = self.now();
        let dt = now - self.util.last_t;
        if dt > 0.0 {
            let used_nodes = self.cluster.total_nodes - self.cluster.free_nodes();
            self.util.node_secs += used_nodes as f64 * dt;
            for (name, &cap) in &self.cluster.gres_capacity.clone() {
                let used = cap - self.cluster.free_gres(name).expect("known pool");
                *self.util.gres_secs.entry(name.clone()).or_insert(0.0) += used as f64 * dt;
            }
        }
        self.util.last_t = now;
    }

    /// Process all events up to and including time `t`, then advance the
    /// clock to `t` so subsequent external actions (cancel, submit) are
    /// stamped correctly.
    pub fn run_until(&mut self, t: f64) {
        while let Some(next) = self.events.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        self.events.advance_to(t);
        self.accumulate_util();
    }

    /// Process every remaining event.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Process one event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((_, ev)) = self.events.pop() else {
            return false;
        };
        self.accumulate_util();
        match ev {
            SimEvent::Submit(id) => {
                if self.jobs[&id].state == JobState::Pending {
                    self.pending.push(id);
                    self.schedule_pass();
                }
            }
            SimEvent::End(id, gen) => {
                if self.run_gen.get(&id) == Some(&gen) && self.jobs[&id].state == JobState::Running
                {
                    let now = self.now();
                    let job = self.jobs.get_mut(&id).expect("job exists");
                    let limit_hit = job.spec.actual_runtime_secs > job.spec.time_limit_secs + 1e-9;
                    job.state = if limit_hit {
                        JobState::Timeout
                    } else {
                        JobState::Completed
                    };
                    job.end_time = Some(now);
                    self.cluster.release(id);
                    self.schedule_pass();
                }
            }
        }
        true
    }

    /// Priority-ordered view of the pending queue.
    fn ordered_pending(&self) -> Vec<JobId> {
        let mut v = self.pending.clone();
        v.sort_by(|&a, &b| {
            let ja = &self.jobs[&a];
            let jb = &self.jobs[&b];
            let pa = self.partitions[&ja.spec.partition].priority;
            let pb = self.partitions[&jb.spec.partition].priority;
            pb.cmp(&pa)
                .then(ja.submit_time.partial_cmp(&jb.submit_time).expect("finite"))
                .then(a.cmp(&b))
        });
        v
    }

    fn start_job(&mut self, id: JobId) {
        let now = self.now();
        let spec = self.jobs[&id].spec.clone();
        self.cluster
            .allocate(id, &spec)
            .expect("caller checked fit");
        let job = self.jobs.get_mut(&id).expect("job exists");
        job.state = JobState::Running;
        job.start_time = Some(now);
        self.pending.retain(|&p| p != id);
        let gen = *self.run_gen.get(&id).expect("gen exists");
        let run_for = spec.actual_runtime_secs.min(spec.time_limit_secs);
        self.events.schedule_in(run_for, SimEvent::End(id, gen));
    }

    fn preempt_job(&mut self, id: JobId) {
        self.cluster.release(id);
        let gen = self.run_gen.get_mut(&id).expect("gen exists");
        *gen += 1; // invalidate the scheduled End
        let job = self.jobs.get_mut(&id).expect("job exists");
        job.state = JobState::Pending;
        job.start_time = None;
        job.preemptions += 1;
        // requeue keeps original submit time → aging preserved
        self.pending.push(id);
    }

    /// The horizon used for reservations: the runtime's prediction when
    /// predictive backfill is on (falling back to the limit), else the limit.
    fn planning_runtime(&self, spec: &JobSpec) -> f64 {
        if self.policy.predictive_backfill {
            spec.predicted_runtime_secs.unwrap_or(spec.time_limit_secs)
        } else {
            spec.time_limit_secs
        }
    }

    /// Earliest time the blocked `spec` could start, assuming running jobs
    /// hold resources until their planning horizon (time limits, or runtime
    /// predictions under predictive backfill), plus the hypothetical cluster
    /// state then.
    fn shadow_time(&self, spec: &JobSpec) -> f64 {
        let now = self.now();
        let mut releases: Vec<(f64, JobId)> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .map(|j| {
                let start = j.start_time.expect("running job started");
                (start + self.planning_runtime(&j.spec), j.id)
            })
            .collect();
        releases.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut c = self.cluster.clone();
        if c.fits(spec).is_ok() {
            return now;
        }
        for (t, id) in releases {
            c.release(id);
            if c.fits(spec).is_ok() {
                return t.max(now);
            }
        }
        f64::INFINITY // unreachable: submit_at validated against idle cluster
    }

    /// One scheduling pass: start what fits in priority order, preempt for
    /// entitled blocked jobs, then conservatively backfill behind the
    /// highest-priority blocker.
    fn schedule_pass(&mut self) {
        let now = self.now();
        loop {
            let order = self.ordered_pending();
            let mut advanced = false;
            let mut blocker: Option<JobId> = None;
            // FIFO within priority: only the head of the pending order may
            // start or preempt; anything else waits behind it (or backfills).
            if let Some(id) = order.into_iter().next() {
                let spec = self.jobs[&id].spec.clone();
                if self.cluster.fits(&spec).is_ok() {
                    self.start_job(id);
                    advanced = true; // re-derive ordering after each start
                } else {
                    // try preemption for entitled partitions
                    let part = &self.partitions[&spec.partition];
                    let plan = (self.policy.preemption && part.preempts_lower)
                        .then(|| self.preemption_plan(&spec, part.priority))
                        .flatten();
                    if let Some(victims) = plan {
                        for v in victims {
                            self.preempt_job(v);
                        }
                        self.start_job(id);
                        advanced = true;
                    } else {
                        blocker = Some(id);
                    }
                }
            }
            if advanced {
                continue;
            }
            // backfill behind the blocker
            if let (true, Some(head)) = (self.policy.backfill, blocker) {
                let head_spec = self.jobs[&head].spec.clone();
                let shadow = self.shadow_time(&head_spec);
                let order = self.ordered_pending();
                let mut started_any = false;
                for id in order {
                    if id == head {
                        continue;
                    }
                    let spec = self.jobs[&id].spec.clone();
                    if self.cluster.fits(&spec).is_ok()
                        && now + self.planning_runtime(&spec) <= shadow + 1e-9
                    {
                        self.start_job(id);
                        started_any = true;
                        break; // resources changed: re-evaluate from scratch
                    }
                }
                if started_any {
                    continue;
                }
            }
            break;
        }
    }

    /// Find the cheapest set of lower-priority running jobs whose removal
    /// lets `spec` fit. Victims are taken lowest-priority-first, most
    /// recently started first (minimizing lost work). Returns `None` when
    /// even preempting everything eligible doesn't help.
    fn preemption_plan(&self, spec: &JobSpec, above_priority: u32) -> Option<Vec<JobId>> {
        let mut candidates: Vec<(u32, f64, JobId)> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .filter(|j| self.partitions[&j.spec.partition].priority < above_priority)
            .map(|j| {
                (
                    self.partitions[&j.spec.partition].priority,
                    j.start_time.expect("running"),
                    j.id,
                )
            })
            .collect();
        // lowest priority first; among equals, latest start first
        candidates.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(b.1.partial_cmp(&a.1).expect("finite"))
                .then(a.2.cmp(&b.2))
        });
        let mut c = self.cluster.clone();
        let mut victims = Vec::new();
        if c.fits(spec).is_ok() {
            return Some(victims); // caller shouldn't hit this, but harmless
        }
        for (_, _, id) in candidates {
            c.release(id);
            victims.push(id);
            if c.fits(spec).is_ok() {
                return Some(victims);
            }
        }
        None
    }

    /// Time-weighted node utilization over the simulation so far.
    pub fn node_utilization(&self) -> f64 {
        let t = self.util.last_t;
        if t <= 0.0 {
            return 0.0;
        }
        self.util.node_secs / (self.cluster.total_nodes as f64 * t)
    }

    /// Time-weighted utilization of one GRES pool.
    pub fn gres_utilization(&self, name: &str) -> Option<f64> {
        let t = self.util.last_t;
        let cap = *self.cluster.gres_capacity.get(name)?;
        if t <= 0.0 || cap == 0 {
            return Some(0.0);
        }
        Some(self.util.gres_secs.get(name).copied().unwrap_or(0.0) / (cap as f64 * t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(nodes: u32) -> SlurmSim {
        SlurmSim::new(
            Cluster::new(nodes).with_gres("qpu", 10),
            standard_partitions(),
            SchedPolicy::default(),
        )
    }

    fn spec(part: &str, nodes: u32, runtime: f64) -> JobSpec {
        JobSpec::classical("j", "u", part, nodes, runtime)
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut s = sim(4);
        let id = s.submit_at(spec("production", 2, 100.0), 0.0).unwrap();
        s.run_to_completion();
        let j = s.job(id).unwrap();
        assert_eq!(j.state, JobState::Completed);
        assert_eq!(j.start_time, Some(0.0));
        assert_eq!(j.end_time, Some(100.0));
        assert_eq!(j.wait_secs(), Some(0.0));
    }

    #[test]
    fn unknown_partition_rejected() {
        let mut s = sim(4);
        assert!(matches!(
            s.submit_at(spec("gpu", 1, 10.0), 0.0),
            Err(SchedError::UnknownPartition(_))
        ));
    }

    #[test]
    fn impossible_request_rejected_at_submit() {
        let mut s = sim(4);
        assert!(matches!(
            s.submit_at(spec("production", 5, 10.0), 0.0),
            Err(SchedError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn fifo_ordering_within_partition() {
        let mut s = sim(2);
        let a = s.submit_at(spec("test", 2, 100.0), 0.0).unwrap();
        let b = s.submit_at(spec("test", 2, 50.0), 1.0).unwrap();
        s.run_to_completion();
        assert_eq!(s.job(a).unwrap().start_time, Some(0.0));
        assert_eq!(s.job(b).unwrap().start_time, Some(100.0));
    }

    #[test]
    fn higher_priority_partition_jumps_queue() {
        let mut s = sim(2);
        // occupy the cluster, then queue dev before prod
        s.submit_at(spec("test", 2, 100.0), 0.0).unwrap();
        let dev = s.submit_at(spec("development", 2, 10.0), 1.0).unwrap();
        let prod = s.submit_at(spec("production", 2, 10.0), 2.0).unwrap();
        s.run_to_completion();
        let prod_start = s.job(prod).unwrap().start_time.unwrap();
        let dev_start = s.job(dev).unwrap().start_time.unwrap();
        assert!(
            prod_start < dev_start,
            "production starts before development"
        );
    }

    #[test]
    fn production_preempts_development() {
        let mut s = sim(2);
        let dev = s.submit_at(spec("development", 2, 1000.0), 0.0).unwrap();
        let prod = s.submit_at(spec("production", 2, 10.0), 5.0).unwrap();
        s.run_to_completion();
        let dev_job = s.job(dev).unwrap();
        let prod_job = s.job(prod).unwrap();
        assert_eq!(
            prod_job.start_time,
            Some(5.0),
            "production starts immediately"
        );
        assert_eq!(dev_job.preemptions, 1);
        assert_eq!(
            dev_job.state,
            JobState::Completed,
            "dev requeued and finished"
        );
        assert!(
            dev_job.end_time.unwrap() > 1000.0,
            "dev restarted after preemption"
        );
    }

    #[test]
    fn preemption_disabled_makes_production_wait() {
        let mut s = SlurmSim::new(
            Cluster::new(2),
            standard_partitions(),
            SchedPolicy {
                backfill: true,
                preemption: false,
                ..SchedPolicy::default()
            },
        );
        let dev = s.submit_at(spec("development", 2, 1000.0), 0.0).unwrap();
        let prod = s.submit_at(spec("production", 2, 10.0), 5.0).unwrap();
        s.run_to_completion();
        assert_eq!(s.job(dev).unwrap().preemptions, 0);
        assert!(s.job(prod).unwrap().start_time.unwrap() >= 1000.0);
    }

    #[test]
    fn test_partition_does_not_preempt() {
        let mut s = sim(2);
        let dev = s.submit_at(spec("development", 2, 100.0), 0.0).unwrap();
        let test = s.submit_at(spec("test", 2, 10.0), 5.0).unwrap();
        s.run_to_completion();
        assert_eq!(s.job(dev).unwrap().preemptions, 0);
        assert!(s.job(test).unwrap().start_time.unwrap() >= 100.0);
    }

    #[test]
    fn backfill_fills_hole_without_delaying_head() {
        let mut s = sim(4);
        // A: 3 nodes running until t=100 (limit 200)
        let a = s
            .submit_at(spec("test", 3, 100.0).with_time_limit(100.0), 0.0)
            .unwrap();
        // B: 4 nodes — blocked until A ends (shadow = 100)
        let b = s.submit_at(spec("test", 4, 50.0), 1.0).unwrap();
        // C: 1 node, 20 s limit — fits now and ends before the shadow time
        let c = s
            .submit_at(spec("test", 1, 20.0).with_time_limit(20.0), 2.0)
            .unwrap();
        s.run_to_completion();
        assert_eq!(s.job(c).unwrap().start_time, Some(2.0), "C backfilled");
        assert_eq!(s.job(b).unwrap().start_time, Some(100.0), "B undelayed");
        assert_eq!(s.job(a).unwrap().state, JobState::Completed);
    }

    #[test]
    fn backfill_refuses_job_that_would_delay_head() {
        let mut s = sim(4);
        s.submit_at(spec("test", 3, 100.0).with_time_limit(100.0), 0.0)
            .unwrap();
        let b = s.submit_at(spec("test", 4, 50.0), 1.0).unwrap();
        // D fits now but its limit (500) crosses the shadow time (100)
        let d = s
            .submit_at(spec("test", 1, 400.0).with_time_limit(500.0), 2.0)
            .unwrap();
        s.run_to_completion();
        assert_eq!(
            s.job(b).unwrap().start_time,
            Some(100.0),
            "head start preserved"
        );
        assert!(
            s.job(d).unwrap().start_time.unwrap() >= 100.0,
            "D not backfilled across the reservation"
        );
    }

    #[test]
    fn no_backfill_policy_leaves_hole() {
        let mut s = SlurmSim::new(
            Cluster::new(4),
            standard_partitions(),
            SchedPolicy {
                backfill: false,
                preemption: true,
                ..SchedPolicy::default()
            },
        );
        s.submit_at(spec("test", 3, 100.0).with_time_limit(100.0), 0.0)
            .unwrap();
        s.submit_at(spec("test", 4, 50.0), 1.0).unwrap();
        let c = s
            .submit_at(spec("test", 1, 20.0).with_time_limit(20.0), 2.0)
            .unwrap();
        s.run_to_completion();
        assert!(
            s.job(c).unwrap().start_time.unwrap() > 2.0,
            "no backfill without policy"
        );
    }

    #[test]
    fn timeout_kills_job_at_limit() {
        let mut s = sim(2);
        let id = s
            .submit_at(spec("test", 1, 500.0).with_time_limit(100.0), 0.0)
            .unwrap();
        s.run_to_completion();
        let j = s.job(id).unwrap();
        assert_eq!(j.state, JobState::Timeout);
        assert_eq!(j.end_time, Some(100.0));
    }

    #[test]
    fn cancel_pending_and_running() {
        let mut s = sim(1);
        let a = s.submit_at(spec("test", 1, 100.0), 0.0).unwrap();
        let b = s.submit_at(spec("test", 1, 100.0), 0.0).unwrap();
        s.run_until(10.0);
        s.cancel(b).unwrap(); // pending
        s.cancel(a).unwrap(); // running
        s.run_to_completion();
        assert_eq!(s.job(a).unwrap().state, JobState::Cancelled);
        assert_eq!(s.job(b).unwrap().state, JobState::Cancelled);
        assert!(
            matches!(s.cancel(a), Err(SchedError::UnknownJob(_))),
            "double cancel"
        );
    }

    #[test]
    fn cancel_running_frees_resources_for_next() {
        let mut s = sim(1);
        let a = s.submit_at(spec("test", 1, 1000.0), 0.0).unwrap();
        let b = s.submit_at(spec("test", 1, 10.0), 1.0).unwrap();
        s.run_until(5.0);
        s.cancel(a).unwrap();
        s.run_to_completion();
        assert_eq!(s.job(b).unwrap().start_time, Some(5.0));
        assert_eq!(s.job(b).unwrap().state, JobState::Completed);
    }

    #[test]
    fn gres_pool_serializes_qpu_jobs() {
        let mut s = sim(8);
        // each wants 6 of 10 qpu units: can't overlap
        let a = s
            .submit_at(spec("test", 1, 50.0).with_gres("qpu", 6), 0.0)
            .unwrap();
        let b = s
            .submit_at(spec("test", 1, 50.0).with_gres("qpu", 6), 0.0)
            .unwrap();
        s.run_to_completion();
        let (sa, sb) = (
            s.job(a).unwrap().start_time.unwrap(),
            s.job(b).unwrap().start_time.unwrap(),
        );
        assert!((sa - sb).abs() >= 50.0 - 1e-9, "qpu-heavy jobs serialized");
    }

    #[test]
    fn gres_shares_allow_concurrency_within_pool() {
        let mut s = sim(8);
        // 5 + 5 = 10 units: both run at once
        let a = s
            .submit_at(spec("test", 1, 50.0).with_gres("qpu", 5), 0.0)
            .unwrap();
        let b = s
            .submit_at(spec("test", 1, 50.0).with_gres("qpu", 5), 0.0)
            .unwrap();
        s.run_to_completion();
        assert_eq!(s.job(a).unwrap().start_time, Some(0.0));
        assert_eq!(s.job(b).unwrap().start_time, Some(0.0));
    }

    #[test]
    fn utilization_accounting() {
        let mut s = sim(4);
        // 2 nodes busy for 100 s, then idle until t=200 (forced by a late noop job)
        s.submit_at(spec("test", 2, 100.0), 0.0).unwrap();
        s.submit_at(spec("test", 1, 0.0), 200.0).unwrap();
        s.run_to_completion();
        // node-seconds: 2*100 = 200 over 4 nodes * 200 s = 800 → 0.25
        assert!(
            (s.node_utilization() - 0.25).abs() < 1e-9,
            "got {}",
            s.node_utilization()
        );
    }

    #[test]
    fn gres_utilization_accounting() {
        let mut s = sim(4);
        s.submit_at(spec("test", 1, 100.0).with_gres("qpu", 5), 0.0)
            .unwrap();
        s.submit_at(spec("test", 1, 0.0), 200.0).unwrap();
        s.run_to_completion();
        // 5 units * 100 s / (10 units * 200 s) = 0.25
        assert!((s.gres_utilization("qpu").unwrap() - 0.25).abs() < 1e-9);
        assert!(s.gres_utilization("gpu").is_none());
    }

    #[test]
    fn preempted_job_keeps_original_submit_time_for_aging() {
        let mut s = sim(2);
        let dev = s.submit_at(spec("development", 2, 100.0), 0.0).unwrap();
        s.submit_at(spec("production", 2, 10.0), 5.0).unwrap();
        s.run_to_completion();
        let j = s.job(dev).unwrap();
        assert_eq!(j.submit_time, 0.0);
        assert_eq!(j.preemptions, 1);
        // total turnaround includes the rerun
        assert!(j.end_time.unwrap() >= 5.0 + 10.0 + 100.0 - 1e-9);
    }

    #[test]
    fn run_until_stops_at_time() {
        let mut s = sim(2);
        let a = s.submit_at(spec("test", 1, 100.0), 0.0).unwrap();
        s.run_until(50.0);
        assert_eq!(s.job(a).unwrap().state, JobState::Running);
        s.run_to_completion();
        assert_eq!(s.job(a).unwrap().state, JobState::Completed);
    }
}
