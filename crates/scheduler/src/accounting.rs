//! Accounting summaries over completed simulations (the `sacct` role).

use crate::job::{Job, JobState};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Wait/turnaround statistics for one group of jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct WaitStats {
    pub count: usize,
    pub mean_wait_secs: f64,
    pub p95_wait_secs: f64,
    pub max_wait_secs: f64,
    pub mean_turnaround_secs: f64,
}

/// Percentile by the nearest-rank method on a sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

impl WaitStats {
    /// Compute over jobs that actually started.
    pub fn from_jobs<'a>(jobs: impl Iterator<Item = &'a Job>) -> Self {
        let mut waits = Vec::new();
        let mut turnarounds = Vec::new();
        for j in jobs {
            if let (Some(w), Some(end)) = (j.wait_secs(), j.end_time) {
                waits.push(w);
                turnarounds.push(end - j.submit_time);
            }
        }
        if waits.is_empty() {
            return WaitStats::default();
        }
        waits.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = waits.len() as f64;
        WaitStats {
            count: waits.len(),
            mean_wait_secs: waits.iter().sum::<f64>() / n,
            p95_wait_secs: percentile(&waits, 95.0),
            max_wait_secs: *waits.last().expect("non-empty"),
            mean_turnaround_secs: turnarounds.iter().sum::<f64>() / n,
        }
    }
}

/// Full accounting summary of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AccountingSummary {
    /// Per-partition wait statistics.
    pub by_partition: BTreeMap<String, WaitStats>,
    /// Overall wait statistics.
    pub overall: WaitStats,
    /// Completed / timed-out / cancelled counts.
    pub completed: usize,
    pub timed_out: usize,
    pub cancelled: usize,
    /// Total preemption events.
    pub preemptions: u32,
    /// End of the last job (makespan).
    pub makespan_secs: f64,
}

impl AccountingSummary {
    /// Summarize a finished set of job records.
    pub fn from_jobs<'a>(jobs: impl Iterator<Item = &'a Job> + Clone) -> Self {
        let mut by_partition: BTreeMap<String, Vec<&Job>> = BTreeMap::new();
        let mut completed = 0;
        let mut timed_out = 0;
        let mut cancelled = 0;
        let mut preemptions = 0;
        let mut makespan: f64 = 0.0;
        for j in jobs.clone() {
            by_partition
                .entry(j.spec.partition.clone())
                .or_default()
                .push(j);
            match j.state {
                JobState::Completed => completed += 1,
                JobState::Timeout => timed_out += 1,
                JobState::Cancelled => cancelled += 1,
                _ => {}
            }
            preemptions += j.preemptions;
            if let Some(e) = j.end_time {
                makespan = makespan.max(e);
            }
        }
        AccountingSummary {
            by_partition: by_partition
                .into_iter()
                .map(|(k, v)| (k, WaitStats::from_jobs(v.into_iter())))
                .collect(),
            overall: WaitStats::from_jobs(jobs),
            completed,
            timed_out,
            cancelled,
            preemptions,
            makespan_secs: makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn job(id: u64, part: &str, submit: f64, start: f64, end: f64, state: JobState) -> Job {
        let mut j = Job::new(
            id,
            JobSpec::classical("j", "u", part, 1, end - start),
            submit,
        );
        j.start_time = Some(start);
        j.end_time = Some(end);
        j.state = state;
        j
    }

    #[test]
    fn wait_stats_basic() {
        let jobs = [
            job(1, "p", 0.0, 10.0, 20.0, JobState::Completed),
            job(2, "p", 0.0, 30.0, 40.0, JobState::Completed),
        ];
        let s = WaitStats::from_jobs(jobs.iter());
        assert_eq!(s.count, 2);
        assert!((s.mean_wait_secs - 20.0).abs() < 1e-12);
        assert!((s.max_wait_secs - 30.0).abs() < 1e-12);
        assert!((s.mean_turnaround_secs - 30.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 1.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn summary_groups_by_partition_and_counts_states() {
        let jobs = [
            job(1, "production", 0.0, 0.0, 10.0, JobState::Completed),
            job(2, "development", 0.0, 50.0, 60.0, JobState::Completed),
            job(3, "development", 0.0, 70.0, 80.0, JobState::Timeout),
            {
                let mut j = job(4, "development", 0.0, 5.0, 6.0, JobState::Cancelled);
                j.preemptions = 2;
                j
            },
        ];
        let s = AccountingSummary::from_jobs(jobs.iter());
        assert_eq!(s.completed, 2);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.preemptions, 2);
        assert_eq!(s.makespan_secs, 80.0);
        assert_eq!(s.by_partition["production"].count, 1);
        assert_eq!(s.by_partition["development"].count, 3);
        assert!(
            s.by_partition["production"].mean_wait_secs
                < s.by_partition["development"].mean_wait_secs
        );
    }

    #[test]
    fn jobs_that_never_started_excluded_from_waits() {
        let mut never = Job::new(9, JobSpec::classical("x", "u", "p", 1, 5.0), 0.0);
        never.state = JobState::Cancelled;
        never.end_time = Some(3.0);
        let jobs = [never];
        let s = AccountingSummary::from_jobs(jobs.iter());
        assert_eq!(s.overall.count, 0);
        assert_eq!(s.cancelled, 1);
    }
}
