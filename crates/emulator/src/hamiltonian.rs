//! The Rydberg Hamiltonian driving the analog emulators.
//!
//! For `n` atoms with positions from the [`Register`], the Hamiltonian of the
//! globally driven analog device is (ħ = 1, units rad/µs):
//!
//! ```text
//! H(t) = Σ_i Ω(t)/2 (cos φ σ_x^i − sin φ σ_y^i)  −  δ(t) Σ_i n_i
//!        + Σ_{i<j} C6/r_ij^6 · n_i n_j
//! ```
//!
//! where `n_i = |r⟩⟨r|_i` is the Rydberg-number operator. Bit `i` of a basis
//! index set to 1 denotes atom `i` in the Rydberg state.

use hpcqc_program::sequence::GLOBAL_CHANNEL;
use hpcqc_program::{Register, Sequence};

/// Precomputed time-independent structure of the Rydberg Hamiltonian.
///
/// The diagonal splits into the interaction part (fixed by geometry) and the
/// occupation count (multiplied by −δ(t) at evolution time); the off-diagonal
/// drive couples states differing by one bit with strength Ω(t)/2·e^{±iφ}.
#[derive(Debug, Clone)]
pub struct RydbergHamiltonian {
    /// Number of atoms.
    pub n: usize,
    /// Interaction energy of every basis state: `interaction[b] = Σ_{i<j∈b} U_ij`.
    pub interaction_diag: Vec<f64>,
    /// Popcount of every basis state (cached; −δ(t)·popcount term).
    pub occupation: Vec<u32>,
    /// Pairwise interaction strengths `U_ij = C6 / r_ij^6` (upper triangle).
    pub pair_u: Vec<(usize, usize, f64)>,
}

impl RydbergHamiltonian {
    /// Build the static parts from geometry. `c6` in rad·µs⁻¹·µm⁶.
    ///
    /// Memory is `O(2^n)`; callers (the state-vector backend) bound `n`.
    pub fn new(register: &Register, c6: f64) -> Self {
        let n = register.len();
        assert!(
            n <= 26,
            "state-vector Hamiltonian limited to 26 qubits, got {n}"
        );
        let dim = 1usize << n;
        let pair_u: Vec<(usize, usize, f64)> = register
            .pairs()
            .into_iter()
            .map(|(i, j, r)| (i, j, c6 / r.powi(6)))
            .collect();

        let mut interaction_diag = vec![0.0f64; dim];
        let mut occupation = vec![0u32; dim];
        for b in 0..dim {
            occupation[b] = (b as u64).count_ones();
            let mut e = 0.0;
            for &(i, j, u) in &pair_u {
                if (b >> i) & 1 == 1 && (b >> j) & 1 == 1 {
                    e += u;
                }
            }
            interaction_diag[b] = e;
        }
        RydbergHamiltonian {
            n,
            interaction_diag,
            occupation,
            pair_u,
        }
    }

    /// Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        1 << self.n
    }

    /// Full diagonal at drive detuning `delta`: `interaction − δ·occupation`.
    pub fn diagonal(&self, delta: f64) -> Vec<f64> {
        self.interaction_diag
            .iter()
            .zip(&self.occupation)
            .map(|(&u, &k)| u - delta * k as f64)
            .collect()
    }

    /// A conservative bound on the spectral norm at drive `(omega, delta)`:
    /// used to pick stable integrator steps.
    pub fn energy_scale(&self, omega: f64, delta: f64) -> f64 {
        let max_int = self.interaction_diag.iter().cloned().fold(0.0f64, f64::max);
        max_int + delta.abs() * self.n as f64 + omega.abs() * self.n as f64 / 2.0
    }
}

/// The drive values of a [`Sequence`] discretized on a fixed grid, ready for
/// time stepping. Samples are taken at step midpoints (midpoint rule), which
/// matches the 2nd-order accuracy of the Trotter/RK interiors.
#[derive(Debug, Clone)]
pub struct DiscretizedDrive {
    /// Step size in µs.
    pub dt: f64,
    /// Per-step `(omega, delta, phase)` at the step midpoint.
    pub steps: Vec<(f64, f64, f64)>,
}

impl DiscretizedDrive {
    /// Number of steps a grid capped at `max_dt` needs for `total` µs.
    /// Crate-visible so the batch runner can key its grid cache by the same
    /// step count an independent run would compute.
    pub(crate) fn steps_for(total: f64, max_dt: f64) -> usize {
        (total / max_dt).ceil().max(1.0) as usize
    }

    /// Discretize the global channel of `seq` into steps of at most `max_dt`.
    pub fn from_sequence(seq: &Sequence, max_dt: f64) -> Self {
        let total = seq.duration();
        let nsteps = Self::steps_for(total, max_dt);
        let dt = total / nsteps as f64;
        let steps = (0..nsteps)
            .map(|k| {
                let t = (k as f64 + 0.5) * dt;
                seq.drive_at(GLOBAL_CHANNEL, t)
            })
            .collect();
        DiscretizedDrive { dt, steps }
    }

    /// Reuse this discretization if a `max_dt` cap of `dt_bound` would
    /// produce the same grid, otherwise re-discretize `seq` on the finer
    /// grid. The grid is fully determined by the step count, so the reuse
    /// case is exact — callers avoid sampling the whole schedule twice.
    pub fn refined(self, seq: &Sequence, dt_bound: f64) -> Self {
        if Self::steps_for(seq.duration(), dt_bound) == self.steps.len() {
            self
        } else {
            Self::from_sequence(seq, dt_bound)
        }
    }

    /// The largest |Ω| and |δ| over the schedule — used for step control.
    pub fn max_drive(&self) -> (f64, f64) {
        let mut om = 0.0f64;
        let mut de = 0.0f64;
        for &(o, d, _) in &self.steps {
            om = om.max(o.abs());
            de = de.max(d.abs());
        }
        (om, de)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::units::C6_COEFF;
    use hpcqc_program::{Pulse, SequenceBuilder};

    fn chain(n: usize, spacing: f64) -> Register {
        Register::linear(n, spacing).unwrap()
    }

    #[test]
    fn interaction_diag_counts_pairs() {
        let h = RydbergHamiltonian::new(&chain(3, 10.0), C6_COEFF);
        let u_nn = C6_COEFF / 10.0f64.powi(6);
        let u_nnn = C6_COEFF / 20.0f64.powi(6);
        assert_eq!(h.dim(), 8);
        assert_eq!(h.interaction_diag[0b000], 0.0);
        assert_eq!(h.interaction_diag[0b001], 0.0, "single excitation: no pair");
        assert!((h.interaction_diag[0b011] - u_nn).abs() < 1e-12);
        assert!((h.interaction_diag[0b101] - u_nnn).abs() < 1e-12);
        assert!(
            (h.interaction_diag[0b111] - (2.0 * u_nn + u_nnn)).abs() < 1e-12,
            "all three atoms: two NN pairs + one NNN pair"
        );
    }

    #[test]
    fn occupation_is_popcount() {
        let h = RydbergHamiltonian::new(&chain(4, 8.0), C6_COEFF);
        assert_eq!(h.occupation[0b0000], 0);
        assert_eq!(h.occupation[0b1011], 3);
        assert_eq!(h.occupation[0b1111], 4);
    }

    #[test]
    fn diagonal_applies_detuning() {
        let h = RydbergHamiltonian::new(&chain(2, 10.0), C6_COEFF);
        let d = h.diagonal(2.0);
        assert_eq!(d[0b00], 0.0);
        assert!((d[0b01] + 2.0).abs() < 1e-12);
        let u = C6_COEFF / 1e6;
        assert!((d[0b11] - (u - 4.0)).abs() < 1e-9);
    }

    #[test]
    fn energy_scale_bounds_diagonal() {
        let h = RydbergHamiltonian::new(&chain(3, 6.0), C6_COEFF);
        let scale = h.energy_scale(5.0, 10.0);
        for (k, &u) in h.interaction_diag.iter().enumerate() {
            let e = (u - 10.0 * h.occupation[k] as f64).abs();
            assert!(e <= scale + 1e-9, "state {k}: |E|={e} > bound {scale}");
        }
    }

    #[test]
    fn discretized_drive_covers_sequence() {
        let reg = chain(2, 8.0);
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(1.0, 4.0, -1.0, 0.5).unwrap());
        b.add_global_pulse(Pulse::constant(1.0, 2.0, 1.0, 0.0).unwrap());
        let seq = b.build().unwrap();
        let dd = DiscretizedDrive::from_sequence(&seq, 0.01);
        assert!((dd.dt * dd.steps.len() as f64 - 2.0).abs() < 1e-9);
        // first half drives (4, -1, 0.5), second half (2, 1, 0)
        let first = dd.steps[dd.steps.len() / 4];
        assert_eq!(first, (4.0, -1.0, 0.5));
        let second = dd.steps[3 * dd.steps.len() / 4];
        assert_eq!(second, (2.0, 1.0, 0.0));
        assert_eq!(dd.max_drive(), (4.0, 1.0));
    }

    #[test]
    fn refined_reuses_or_rebuilds_grid() {
        let reg = chain(2, 8.0);
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(1.0, 2.0, 0.0, 0.0).unwrap());
        let seq = b.build().unwrap();
        let coarse = DiscretizedDrive::from_sequence(&seq, 1e-2);
        // Same cap → same step count → the grid is reused as-is.
        let same = coarse.clone().refined(&seq, 1e-2);
        assert_eq!(same.steps.len(), coarse.steps.len());
        assert_eq!(same.dt, coarse.dt);
        // Tighter cap → re-discretized, exactly matching a direct build.
        let finer = coarse.refined(&seq, 1e-3);
        let direct = DiscretizedDrive::from_sequence(&seq, 1e-3);
        assert_eq!(finer.steps.len(), 1000);
        assert_eq!(finer.dt, direct.dt);
        assert_eq!(finer.steps, direct.steps);
    }

    #[test]
    #[should_panic(expected = "26 qubits")]
    fn too_many_qubits_panics() {
        let reg = chain(27, 6.0);
        RydbergHamiltonian::new(&reg, C6_COEFF);
    }
}
