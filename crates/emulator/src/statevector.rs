//! Exact state-vector emulation of analog programs (EMU-SV stand-in).
//!
//! Integrates the time-dependent Schrödinger equation `dψ/dt = −i H(t) ψ`
//! with a classical RK4 integrator and a matrix-free `H·ψ` kernel. The
//! diagonal (interaction + detuning) and the bit-flip drive are applied
//! directly on the amplitudes; rayon parallelizes the kernel over basis
//! states for larger registers.

use crate::hamiltonian::{DiscretizedDrive, RydbergHamiltonian};
use hpcqc_program::Sequence;
use num_complex::Complex64;
use rayon::prelude::*;

/// Parallelization threshold: below this dimension the rayon overhead
/// outweighs the work and the kernel runs sequentially.
const PAR_DIM_THRESHOLD: usize = 1 << 12;

/// A normalized quantum state over `n` qubits.
#[derive(Debug, Clone)]
pub struct StateVector {
    /// Number of qubits.
    pub n: usize,
    /// `2^n` amplitudes, basis index bit `i` = atom `i` in Rydberg state.
    pub amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-ground state `|00…0⟩`.
    pub fn ground(n: usize) -> Self {
        assert!(n <= 26, "state-vector limited to 26 qubits, got {n}");
        let mut amps = vec![Complex64::new(0.0, 0.0); 1 << n];
        amps[0] = Complex64::new(1.0, 0.0);
        StateVector { n, amps }
    }

    /// ⟨ψ|ψ⟩ — should stay 1 under unitary evolution.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalize (corrects integrator drift; a no-op within tolerance).
    pub fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 0.0 {
            let inv = 1.0 / n;
            for a in &mut self.amps {
                *a *= inv;
            }
        }
    }

    /// Probability of each basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability that atom `i` is in the Rydberg state.
    pub fn rydberg_population(&self, i: usize) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .filter(|(b, _)| (b >> i) & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Two-point Rydberg correlator ⟨n_i n_j⟩.
    pub fn rydberg_correlation(&self, i: usize, j: usize) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .filter(|(b, _)| (b >> i) & 1 == 1 && (b >> j) & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Energy expectation ⟨ψ|H(ω,δ,φ)|ψ⟩ at instantaneous drive values.
    pub fn energy(&self, h: &RydbergHamiltonian, omega: f64, delta: f64, phase: f64) -> f64 {
        let hpsi = apply_h(h, &self.amps, omega, delta, phase);
        self.amps
            .iter()
            .zip(&hpsi)
            .map(|(a, b)| (a.conj() * b).re)
            .sum()
    }

    /// Fidelity |⟨self|other⟩|².
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n);
        let ov: Complex64 = self
            .amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * b)
            .sum();
        ov.norm_sqr()
    }
}

/// Matrix-free `H(ω,δ,φ)·ψ`.
///
/// Off-diagonal convention: the drive term is
/// `Ω/2 Σ_i (e^{iφ}|g⟩⟨r|_i + e^{−iφ}|r⟩⟨g|_i)`, so the matrix element that
/// *creates* an excitation on atom `i` (g→r, bit 0→1) carries `e^{−iφ}`.
pub fn apply_h(
    h: &RydbergHamiltonian,
    psi: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
) -> Vec<Complex64> {
    let dim = psi.len();
    debug_assert_eq!(dim, h.dim());
    let half = omega / 2.0;
    let up = Complex64::from_polar(half, -phase); // ⟨b|H|b with bit i cleared⟩
    let down = Complex64::from_polar(half, phase);

    let kernel = |b: usize| {
        let mut out =
            psi[b] * Complex64::new(h.interaction_diag[b] - delta * h.occupation[b] as f64, 0.0);
        if omega != 0.0 {
            for i in 0..h.n {
                let flipped = b ^ (1 << i);
                // if bit i is set in b, the source state had it clear: creation
                let coeff = if (b >> i) & 1 == 1 { up } else { down };
                out += coeff * psi[flipped];
            }
        }
        out
    };

    if dim >= PAR_DIM_THRESHOLD {
        (0..dim).into_par_iter().map(kernel).collect()
    } else {
        (0..dim).map(kernel).collect()
    }
}

fn axpy(y: &mut [Complex64], a: Complex64, x: &[Complex64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Evolve `state` through one RK4 step of `dt` at fixed drive values
/// (the drive is piecewise-constant over the step — midpoint sampled).
pub fn rk4_step(
    h: &RydbergHamiltonian,
    state: &mut StateVector,
    omega: f64,
    delta: f64,
    phase: f64,
    dt: f64,
) {
    let mi = Complex64::new(0.0, -1.0);
    let f = |psi: &[Complex64]| -> Vec<Complex64> {
        let mut hp = apply_h(h, psi, omega, delta, phase);
        for v in &mut hp {
            *v *= mi;
        }
        hp
    };
    let k1 = f(&state.amps);
    let mut tmp = state.amps.clone();
    axpy(&mut tmp, Complex64::new(dt / 2.0, 0.0), &k1);
    let k2 = f(&tmp);
    tmp.copy_from_slice(&state.amps);
    axpy(&mut tmp, Complex64::new(dt / 2.0, 0.0), &k2);
    let k3 = f(&tmp);
    tmp.copy_from_slice(&state.amps);
    axpy(&mut tmp, Complex64::new(dt, 0.0), &k3);
    let k4 = f(&tmp);
    let c = dt / 6.0;
    for i in 0..state.amps.len() {
        state.amps[i] += Complex64::new(c, 0.0) * (k1[i] + 2.0 * (k2[i] + k3[i]) + k4[i]);
    }
}

/// Integrator configuration for the state-vector backend.
#[derive(Debug, Clone)]
pub struct SvConfig {
    /// Hard cap on the time step (µs); the effective step also respects the
    /// stability criterion `dt ≤ stability_factor / energy_scale`.
    pub max_dt: f64,
    /// Safety factor in the adaptive step bound (dimensionless).
    pub stability_factor: f64,
}

impl Default for SvConfig {
    fn default() -> Self {
        SvConfig {
            max_dt: 1e-3,
            stability_factor: 0.1,
        }
    }
}

/// Run the full program and return the final state.
pub fn evolve_sequence(seq: &Sequence, c6: f64, cfg: &SvConfig) -> StateVector {
    let h = RydbergHamiltonian::new(&seq.register, c6);
    let mut state = StateVector::ground(seq.register.len());

    // Choose a step honoring both the user cap and the energy scale of the
    // strongest drive in the schedule.
    let probe = DiscretizedDrive::from_sequence(seq, cfg.max_dt);
    let (omax, dmax) = probe.max_drive();
    let scale = h.energy_scale(omax, dmax).max(1e-9);
    let dt_bound = (cfg.stability_factor / scale).min(cfg.max_dt);
    let drive = DiscretizedDrive::from_sequence(seq, dt_bound);

    for &(omega, delta, phase) in &drive.steps {
        rk4_step(&h, &mut state, omega, delta, phase, drive.dt);
    }
    state.renormalize();
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::units::C6_COEFF;
    use hpcqc_program::{Pulse, Register, SequenceBuilder, Waveform};

    fn single_atom_seq(duration: f64, omega: f64, delta: f64) -> Sequence {
        let reg = Register::from_coords(&[(0.0, 0.0)]).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(duration, omega, delta, 0.0).unwrap());
        b.build().unwrap()
    }

    #[test]
    fn ground_state_is_normalized() {
        let s = StateVector::ground(3);
        assert_eq!(s.amps.len(), 8);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
        assert_eq!(s.rydberg_population(0), 0.0);
    }

    #[test]
    fn rabi_oscillation_single_atom() {
        // Resonant drive: P_r(t) = sin²(Ωt/2). Pick Ωt = π for full transfer.
        let omega = 4.0;
        let t_pi = std::f64::consts::PI / omega;
        let seq = single_atom_seq(t_pi, omega, 0.0);
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let p = s.rydberg_population(0);
        assert!((p - 1.0).abs() < 1e-6, "π-pulse transfer: got {p}");
    }

    #[test]
    fn half_pi_pulse_gives_half_population() {
        let omega = 4.0;
        let t = std::f64::consts::PI / (2.0 * omega);
        let seq = single_atom_seq(t, omega, 0.0);
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        assert!((s.rydberg_population(0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn detuned_rabi_reduced_contrast() {
        // Generalized Rabi: max transfer = Ω²/(Ω²+δ²).
        let omega: f64 = 2.0;
        let delta: f64 = 2.0;
        let gen = (omega * omega + delta * delta).sqrt();
        let t = std::f64::consts::PI / gen; // half generalized period
        let seq = single_atom_seq(t, omega, delta);
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let expected = omega * omega / (gen * gen);
        assert!(
            (s.rydberg_population(0) - expected).abs() < 1e-5,
            "got {}, expected {expected}",
            s.rydberg_population(0)
        );
    }

    #[test]
    fn norm_preserved_through_evolution() {
        let reg = Register::linear(4, 8.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(
            Pulse::new(
                Waveform::ramp(0.5, 0.0, 6.0).unwrap(),
                Waveform::ramp(0.5, -8.0, 8.0).unwrap(),
                0.3,
            )
            .unwrap(),
        );
        let seq = b.build().unwrap();
        let h = RydbergHamiltonian::new(&seq.register, C6_COEFF);
        let mut state = StateVector::ground(4);
        let drive = DiscretizedDrive::from_sequence(&seq, 1e-3);
        for &(o, d, p) in &drive.steps {
            rk4_step(&h, &mut state, o, d, p, drive.dt);
        }
        assert!(
            (state.norm_sqr() - 1.0).abs() < 1e-8,
            "norm drift: {}",
            state.norm_sqr()
        );
    }

    #[test]
    fn blockade_suppresses_double_excitation() {
        // Two atoms well inside the blockade radius driven by a π-pulse on
        // the collective enhanced frequency: ⟨n₀n₁⟩ stays tiny.
        let omega: f64 = 4.0;
        let spacing = 4.0; // blockade radius at Ω=4 is (C6/4)^{1/6} ≈ 10.6 µm
        let reg = Register::linear(2, spacing).unwrap();
        let mut b = SequenceBuilder::new(reg);
        let t = std::f64::consts::PI / (omega * 2f64.sqrt());
        b.add_global_pulse(Pulse::constant(t, omega, 0.0, 0.0).unwrap());
        let seq = b.build().unwrap();
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let double = s.rydberg_correlation(0, 1);
        assert!(double < 0.01, "blockade violated: ⟨n0 n1⟩ = {double}");
        // and the symmetric single-excitation state is reached
        let single = s.rydberg_population(0) + s.rydberg_population(1) - 2.0 * double;
        assert!(single > 0.9, "collective excitation missing: {single}");
    }

    #[test]
    fn no_blockade_at_large_distance() {
        // Far-separated atoms behave independently: π-pulse excites both.
        let omega = 4.0;
        let reg = Register::linear(2, 60.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        let t = std::f64::consts::PI / omega;
        b.add_global_pulse(Pulse::constant(t, omega, 0.0, 0.0).unwrap());
        let seq = b.build().unwrap();
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        assert!(
            s.rydberg_correlation(0, 1) > 0.95,
            "independent atoms both excite"
        );
    }

    #[test]
    fn energy_conserved_under_constant_drive() {
        let reg = Register::linear(3, 7.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 3.0, 1.0, 0.0).unwrap());
        let seq = b.build().unwrap();
        let h = RydbergHamiltonian::new(&seq.register, C6_COEFF);
        let mut state = StateVector::ground(3);
        let drive = DiscretizedDrive::from_sequence(&seq, 1e-3);
        let mut energies = Vec::new();
        for &(o, d, p) in &drive.steps {
            rk4_step(&h, &mut state, o, d, p, drive.dt);
            energies.push(state.energy(&h, o, d, p));
        }
        let e0 = energies[0];
        for e in &energies {
            assert!((e - e0).abs() < 1e-6, "energy drift under constant H");
        }
    }

    #[test]
    fn phase_affects_axis_but_not_population_from_ground() {
        // From |0…0⟩, a phase rotation of the drive changes the Bloch axis
        // but not the excitation probability.
        let omega = 3.0;
        let t = 0.4;
        let reg = Register::from_coords(&[(0.0, 0.0)]).unwrap();
        let mk = |phase: f64| {
            let mut b = SequenceBuilder::new(reg.clone());
            b.add_global_pulse(Pulse::constant(t, omega, 0.0, phase).unwrap());
            evolve_sequence(&b.build().unwrap(), C6_COEFF, &SvConfig::default())
        };
        let p0 = mk(0.0).rydberg_population(0);
        let p1 = mk(1.3).rydberg_population(0);
        assert!((p0 - p1).abs() < 1e-9);
    }

    #[test]
    fn fidelity_of_identical_evolutions_is_one() {
        let seq = single_atom_seq(0.3, 2.0, 1.0);
        let a = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let b = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }
}
