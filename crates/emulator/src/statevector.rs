//! Exact state-vector emulation of analog programs (EMU-SV stand-in).
//!
//! Integrates the time-dependent Schrödinger equation `dψ/dt = −i H(t) ψ`
//! with a classical RK4 integrator and a matrix-free `H·ψ` kernel. The hot
//! path is allocation-free: [`apply_h_into`] writes into a caller-provided
//! buffer (rayon-split over disjoint mutable output chunks, so amplitudes
//! are bit-identical for any worker count) and [`SvWorkspace`] keeps the
//! RK4 scratch vectors alive across every step of a sequence.
//!
//! The hot passes run on SIMD lanes ([`simd::f64x4`]) by default: four
//! consecutive basis states per iteration (one *bit-pair block* — bits 0
//! and 1 resolved by in-register shuffles, higher bits by contiguous block
//! loads), with an AVX2 instantiation selected at runtime on x86-64. Every
//! lane operation is the exact IEEE-754 scalar operation in the same order,
//! so SIMD results are bit-identical to the scalar reference kernels
//! ([`SvKernel::Scalar`]) — asserted by the parity tests below.

use crate::hamiltonian::{DiscretizedDrive, RydbergHamiltonian};
use hpcqc_program::Sequence;
use num_complex::Complex64;
use rayon::prelude::*;
use simd::f64x4;

/// Hard cap of the dense method: `2^26` amplitudes ≈ 1 GiB of state.
pub const SV_MAX_QUBITS: usize = 26;

/// Parallelization threshold: below this dimension the fork overhead
/// outweighs the work and the kernel runs sequentially.
const PAR_DIM_THRESHOLD: usize = 1 << 12;

/// Output-chunk length for the parallel kernel split. Fixed (rather than
/// derived from the worker count) so the partition is machine-independent.
const PAR_CHUNK_LEN: usize = 1 << 11;

const ZERO: Complex64 = Complex64::new(0.0, 0.0);

/// A normalized quantum state over `n` qubits.
#[derive(Debug, Clone)]
pub struct StateVector {
    /// Number of qubits.
    pub n: usize,
    /// `2^n` amplitudes, basis index bit `i` = atom `i` in Rydberg state.
    pub amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-ground state `|00…0⟩`.
    pub fn ground(n: usize) -> Self {
        assert!(
            n <= SV_MAX_QUBITS,
            "state-vector limited to {SV_MAX_QUBITS} qubits, got {n}"
        );
        let mut amps = vec![Complex64::new(0.0, 0.0); 1 << n];
        amps[0] = Complex64::new(1.0, 0.0);
        StateVector { n, amps }
    }

    /// ⟨ψ|ψ⟩ — should stay 1 under unitary evolution.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalize (corrects integrator drift; a no-op within tolerance).
    pub fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 0.0 {
            let inv = 1.0 / n;
            for a in &mut self.amps {
                *a *= inv;
            }
        }
    }

    /// Probability of each basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability that atom `i` is in the Rydberg state.
    pub fn rydberg_population(&self, i: usize) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .filter(|(b, _)| (b >> i) & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Two-point Rydberg correlator ⟨n_i n_j⟩.
    pub fn rydberg_correlation(&self, i: usize, j: usize) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .filter(|(b, _)| (b >> i) & 1 == 1 && (b >> j) & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Energy expectation ⟨ψ|H(ω,δ,φ)|ψ⟩ at instantaneous drive values.
    pub fn energy(&self, h: &RydbergHamiltonian, omega: f64, delta: f64, phase: f64) -> f64 {
        let hpsi = apply_h(h, &self.amps, omega, delta, phase);
        self.amps
            .iter()
            .zip(&hpsi)
            .map(|(a, b)| (a.conj() * b).re)
            .sum()
    }

    /// Fidelity |⟨self|other⟩|².
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n);
        let ov: Complex64 = self
            .amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * b)
            .sum();
        ov.norm_sqr()
    }
}

/// One contiguous slice of the `H·ψ` kernel: fills `out` with
/// `(H ψ)[base..base + out.len()]`.
///
/// The off-diagonal sum is split by source-bit value so each basis state
/// costs `n` complex additions plus two complex multiplies, instead of `n`
/// complex multiplies.
#[inline]
fn apply_h_chunk(
    h: &RydbergHamiltonian,
    psi: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
    base: usize,
    out: &mut [Complex64],
) {
    let half = omega / 2.0;
    let up = Complex64::from_polar(half, -phase); // ⟨b|H|b with bit i cleared⟩
    let down = Complex64::from_polar(half, phase);
    let n = h.n;
    for (k, slot) in out.iter_mut().enumerate() {
        let b = base + k;
        let diag = h.interaction_diag[b] - delta * h.occupation[b] as f64;
        let p = psi[b];
        let mut acc = Complex64::new(diag * p.re, diag * p.im);
        if omega != 0.0 {
            // s[1]: neighbours reached by clearing a set bit (creation side),
            // s[0]: neighbours reached by setting a clear bit.
            let mut s = [ZERO; 2];
            for i in 0..n {
                s[(b >> i) & 1] += psi[b ^ (1 << i)];
            }
            acc += up * s[1] + down * s[0];
        }
        *slot = acc;
    }
}

/// Kernel selection for the state-vector hot passes.
///
/// Both variants produce bit-identical amplitudes: the SIMD lane kernels
/// perform exactly the scalar IEEE-754 operations in the same order, only
/// packed four `f64` lanes at a time (see the parity tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SvKernel {
    /// SIMD lane kernels, with AVX-512/AVX2 instantiations picked at
    /// runtime on x86-64 and a portable scalar-per-lane fallback elsewhere.
    #[default]
    Auto,
    /// The scalar reference loops (pre-SIMD behavior) — the parity baseline
    /// and the honest "sequential execution" comparator in benchmarks.
    Scalar,
}

/// Reinterpret interleaved complex amplitudes as raw `f64` lanes
/// (`[re0, im0, re1, im1, …]`).
#[inline(always)]
fn complex_as_f64(psi: &[Complex64]) -> &[f64] {
    // SAFETY: the shimmed `Complex<f64>` is `#[repr(C)] { re, im }`, so a
    // slice of `len` complex numbers is layout-identical to `2·len` f64s.
    unsafe { std::slice::from_raw_parts(psi.as_ptr() as *const f64, psi.len() * 2) }
}

/// Mutable counterpart of [`complex_as_f64`].
#[inline(always)]
fn complex_as_f64_mut(out: &mut [Complex64]) -> &mut [f64] {
    // SAFETY: as in `complex_as_f64`; the borrow is exclusive.
    unsafe { std::slice::from_raw_parts_mut(out.as_mut_ptr() as *mut f64, out.len() * 2) }
}

/// Multiplication by a complex constant on interleaved `[re, im, re, im]`
/// lanes: `v·re_v + swap_within_pairs(v)·im_v` with the imaginary part
/// sign-folded per lane. Each lane result is the exact scalar complex
/// product (IEEE multiplication commutes bitwise and `a + (−b) ≡ a − b`).
#[derive(Clone, Copy)]
struct CMul {
    re: f64x4,
    im: f64x4,
}

impl CMul {
    #[inline(always)]
    fn new(c: Complex64) -> Self {
        CMul {
            re: f64x4::splat(c.re),
            im: f64x4::from_array([-c.im, c.im, -c.im, c.im]),
        }
    }

    #[inline(always)]
    fn apply(self, v: f64x4) -> f64x4 {
        v * self.re + v.swap_within_pairs() * self.im
    }
}

/// SIMD instantiation of [`apply_h_chunk`]: identical arithmetic on blocks
/// of four consecutive basis states (one *bit-pair block*). Bits 0 and 1 of
/// the basis index are resolved by in-register shuffles; every higher bit
/// addresses a contiguous neighbour block, so the gather of the scalar loop
/// becomes two aligned vector loads per bit. The per-lane accumulation
/// order is the scalar loop's order (ascending bit index), so the output
/// is bit-identical. Loads and stores are unchecked — bounds checks in the
/// neighbour loop would otherwise outnumber the arithmetic.
///
/// # Safety
/// Requires `psi.len() == h.dim() == 2^h.n` with `h.n ≥ 2`, `base % 4 == 0`,
/// `out.len() % 4 == 0`, and `base + out.len() ≤ psi.len()` (then every
/// neighbour index `b ^ (1 << i)`, `i < h.n`, stays in bounds).
#[inline(always)]
unsafe fn apply_h_chunk_lanes(
    h: &RydbergHamiltonian,
    psi: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
    base: usize,
    out: &mut [Complex64],
) {
    debug_assert!(h.n >= 2);
    debug_assert_eq!(psi.len(), h.dim());
    debug_assert_eq!(base % 4, 0);
    debug_assert_eq!(out.len() % 4, 0);
    debug_assert!(base + out.len() <= psi.len());
    let half = omega / 2.0;
    let up = CMul::new(Complex64::from_polar(half, -phase));
    let down = CMul::new(Complex64::from_polar(half, phase));
    let n = h.n;
    let drive = omega != 0.0;
    let psip = complex_as_f64(psi).as_ptr();
    let outp = complex_as_f64_mut(out).as_mut_ptr();
    let diagp = h.interaction_diag.as_ptr();
    let occp = h.occupation.as_ptr();
    let nblocks = out.len() / 4;
    for blk in 0..nblocks {
        let b0 = base + 4 * blk;
        let p_lo = f64x4::from_ptr(psip.add(2 * b0));
        let p_hi = f64x4::from_ptr(psip.add(2 * b0 + 4));
        let diag = |k: usize| diagp.add(b0 + k).read() - delta * occp.add(b0 + k).read() as f64;
        let (d0, d1, d2, d3) = (diag(0), diag(1), diag(2), diag(3));
        let mut acc_lo = f64x4::from_array([d0, d0, d1, d1]) * p_lo;
        let mut acc_hi = f64x4::from_array([d2, d2, d3, d3]) * p_hi;
        if drive {
            let mut s0_lo = f64x4::splat(0.0);
            let mut s1_lo = f64x4::splat(0.0);
            let mut s0_hi = f64x4::splat(0.0);
            let mut s1_hi = f64x4::splat(0.0);
            // Bit 0: the neighbour of each state is its partner complex in
            // the same vector. Even states (low lanes) accumulate it into
            // s0, odd states (high lanes) into s1; the blend-after-add via
            // merge_halves keeps the untouched lanes' exact bit patterns.
            let sw_lo = p_lo.rotate_pairs();
            let sw_hi = p_hi.rotate_pairs();
            s0_lo = f64x4::merge_halves(s0_lo + sw_lo, s0_lo);
            s1_lo = f64x4::merge_halves(s1_lo, s1_lo + sw_lo);
            s0_hi = f64x4::merge_halves(s0_hi + sw_hi, s0_hi);
            s1_hi = f64x4::merge_halves(s1_hi, s1_hi + sw_hi);
            // Bit 1: the lo pair's neighbours are the hi pair and vice
            // versa — full-width adds, classes are uniform per vector.
            s0_lo = s0_lo + p_hi;
            s1_hi = s1_hi + p_lo;
            // Bits ≥ 2: the XOR-neighbour of an aligned 4-block is the
            // contiguous 4-block at `b0 ^ (1 << i)`, with one source-bit
            // class for the whole block.
            for i in 2..n {
                let nb = psip.add(2 * (b0 ^ (1 << i)));
                let n_lo = f64x4::from_ptr(nb);
                let n_hi = f64x4::from_ptr(nb.add(4));
                if (b0 >> i) & 1 == 0 {
                    s0_lo = s0_lo + n_lo;
                    s0_hi = s0_hi + n_hi;
                } else {
                    s1_lo = s1_lo + n_lo;
                    s1_hi = s1_hi + n_hi;
                }
            }
            acc_lo = acc_lo + (up.apply(s1_lo) + down.apply(s0_lo));
            acc_hi = acc_hi + (up.apply(s1_hi) + down.apply(s0_hi));
        }
        acc_lo.write_ptr(outp.add(8 * blk));
        acc_hi.write_ptr(outp.add(8 * blk + 4));
    }
}

/// Hand-written AVX2 instantiation of [`apply_h_chunk_lanes`].
///
/// The portable lane kernel leaves LLVM free to re-pack the `[f64; 4]`
/// semantics, which in practice shreds the neighbour loop into half-width
/// shuffles; the intrinsics pin the codegen to full-width `vaddpd`/
/// `vmulpd`. Every intrinsic is the exact IEEE-754 lane operation of the
/// scalar reference in the same order — `vblendvpd` keeps the untouched
/// accumulator's bit pattern (branch-free class select), and no FMA is
/// emitted — so the output stays bit-identical.
///
/// # Safety
/// Same contract as [`apply_h_chunk_lanes`], plus AVX2 must be available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments, clippy::missing_transmute_annotations)]
unsafe fn apply_h_chunk_avx2(
    h: &RydbergHamiltonian,
    psi: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
    base: usize,
    out: &mut [Complex64],
) {
    use std::arch::x86_64::*;
    debug_assert!(h.n >= 2);
    debug_assert_eq!(psi.len(), h.dim());
    debug_assert!(
        base.is_multiple_of(4) && out.len().is_multiple_of(4) && base + out.len() <= psi.len()
    );
    let half = omega / 2.0;
    let up = Complex64::from_polar(half, -phase);
    let down = Complex64::from_polar(half, phase);
    let n = h.n;
    let drive = omega != 0.0;
    let psip = complex_as_f64(psi).as_ptr();
    let outp = complex_as_f64_mut(out).as_mut_ptr();
    let diagp = h.interaction_diag.as_ptr();
    let occp = h.occupation.as_ptr();
    let delta_v = _mm256_set1_pd(delta);
    let up_re = _mm256_set1_pd(up.re);
    let up_im = _mm256_setr_pd(-up.im, up.im, -up.im, up.im);
    let down_re = _mm256_set1_pd(down.re);
    let down_im = _mm256_setr_pd(-down.im, down.im, -down.im, down.im);
    let nblocks = out.len() / 4;
    for blk in 0..nblocks {
        let b0 = base + 4 * blk;
        let p_lo = _mm256_loadu_pd(psip.add(2 * b0));
        let p_hi = _mm256_loadu_pd(psip.add(2 * b0 + 4));
        // d[k] = interaction_diag[b0+k] − δ·(occupation[b0+k] as f64);
        // the i32→f64 convert is exact (occupation ≤ n ≤ 26).
        let occ4 = _mm256_cvtepi32_pd(_mm_loadu_si128(occp.add(b0) as *const __m128i));
        let dvec = _mm256_sub_pd(_mm256_loadu_pd(diagp.add(b0)), _mm256_mul_pd(delta_v, occ4));
        let d_lo = _mm256_permute4x64_pd(dvec, 0x50); // [d0,d0,d1,d1]
        let d_hi = _mm256_permute4x64_pd(dvec, 0xFA); // [d2,d2,d3,d3]
        let mut acc_lo = _mm256_mul_pd(d_lo, p_lo);
        let mut acc_hi = _mm256_mul_pd(d_hi, p_hi);
        if drive {
            let zero = _mm256_setzero_pd();
            let mut s0_lo = zero;
            let mut s1_lo = zero;
            let mut s0_hi = zero;
            let mut s1_hi = zero;
            // Bit 0: partner complex within each vector; constant blends
            // route even states to s0 and odd states to s1.
            let sw_lo = _mm256_permute2f128_pd(p_lo, p_lo, 0x01);
            let sw_hi = _mm256_permute2f128_pd(p_hi, p_hi, 0x01);
            s0_lo = _mm256_blend_pd(_mm256_add_pd(s0_lo, sw_lo), s0_lo, 0b1100);
            s1_lo = _mm256_blend_pd(s1_lo, _mm256_add_pd(s1_lo, sw_lo), 0b1100);
            s0_hi = _mm256_blend_pd(_mm256_add_pd(s0_hi, sw_hi), s0_hi, 0b1100);
            s1_hi = _mm256_blend_pd(s1_hi, _mm256_add_pd(s1_hi, sw_hi), 0b1100);
            // Bit 1: cross lo/hi adds, uniform class per vector.
            s0_lo = _mm256_add_pd(s0_lo, p_hi);
            s1_hi = _mm256_add_pd(s1_hi, p_lo);
            // Bits ≥ 2: contiguous neighbour blocks; the class select is a
            // branch-free accumulator blend (the class bit pattern defeats
            // the branch predictor), keeping the idle accumulator's exact
            // bits.
            for i in 2..n {
                let nbp = psip.add(2 * (b0 ^ (1 << i)));
                let n_lo = _mm256_loadu_pd(nbp);
                let n_hi = _mm256_loadu_pd(nbp.add(4));
                let bit = ((b0 >> i) & 1) as i64;
                let m = _mm256_castsi256_pd(_mm256_set1_epi64x(bit.wrapping_neg()));
                s0_lo = _mm256_blendv_pd(_mm256_add_pd(s0_lo, n_lo), s0_lo, m);
                s1_lo = _mm256_blendv_pd(s1_lo, _mm256_add_pd(s1_lo, n_lo), m);
                s0_hi = _mm256_blendv_pd(_mm256_add_pd(s0_hi, n_hi), s0_hi, m);
                s1_hi = _mm256_blendv_pd(s1_hi, _mm256_add_pd(s1_hi, n_hi), m);
            }
            // acc += up·s1 + down·s0, complex multiply on interleaved lanes
            // (v·re + swap_within_pairs(v)·±im), exactly as CMul::apply.
            let t_lo = _mm256_add_pd(
                _mm256_add_pd(
                    _mm256_mul_pd(s1_lo, up_re),
                    _mm256_mul_pd(_mm256_permute_pd(s1_lo, 0x5), up_im),
                ),
                _mm256_add_pd(
                    _mm256_mul_pd(s0_lo, down_re),
                    _mm256_mul_pd(_mm256_permute_pd(s0_lo, 0x5), down_im),
                ),
            );
            let t_hi = _mm256_add_pd(
                _mm256_add_pd(
                    _mm256_mul_pd(s1_hi, up_re),
                    _mm256_mul_pd(_mm256_permute_pd(s1_hi, 0x5), up_im),
                ),
                _mm256_add_pd(
                    _mm256_mul_pd(s0_hi, down_re),
                    _mm256_mul_pd(_mm256_permute_pd(s0_hi, 0x5), down_im),
                ),
            );
            acc_lo = _mm256_add_pd(acc_lo, t_lo);
            acc_hi = _mm256_add_pd(acc_hi, t_hi);
        }
        _mm256_storeu_pd(outp.add(8 * blk), acc_lo);
        _mm256_storeu_pd(outp.add(8 * blk + 4), acc_hi);
    }
}

/// Hand-written AVX-512F instantiation of [`apply_h_chunk_lanes`].
///
/// One 512-bit register holds a whole bit-pair block (four interleaved
/// complex amplitudes), halving the register count of the AVX2 kernel, and
/// the per-class accumulation uses native masked adds
/// (`_mm512_mask_add_pd`): lanes outside the mask pass the accumulator's
/// exact bit pattern through, which is precisely the blend-after-add the
/// bit-identity argument needs — in a single instruction. No FMA is
/// emitted, every lane op is the scalar IEEE-754 op in the scalar order.
///
/// # Safety
/// Same contract as [`apply_h_chunk_lanes`], plus AVX-512F availability.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn apply_h_chunk_avx512(
    h: &RydbergHamiltonian,
    psi: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
    base: usize,
    out: &mut [Complex64],
) {
    use std::arch::x86_64::*;
    debug_assert!(h.n >= 2);
    debug_assert_eq!(psi.len(), h.dim());
    debug_assert!(
        base.is_multiple_of(4) && out.len().is_multiple_of(4) && base + out.len() <= psi.len()
    );
    let half = omega / 2.0;
    let up = Complex64::from_polar(half, -phase);
    let down = Complex64::from_polar(half, phase);
    let n = h.n;
    let drive = omega != 0.0;
    let psip = complex_as_f64(psi).as_ptr();
    let outp = complex_as_f64_mut(out).as_mut_ptr();
    let diagp = h.interaction_diag.as_ptr();
    let occp = h.occupation.as_ptr();
    let delta_v = _mm256_set1_pd(delta);
    // Duplicates [d0,d1,d2,d3,·,·,·,·] into [d0,d0,d1,d1,d2,d2,d3,d3].
    let dup_idx = _mm512_setr_epi64(0, 0, 1, 1, 2, 2, 3, 3);
    let up_re = _mm512_set1_pd(up.re);
    #[rustfmt::skip]
    let up_im = _mm512_setr_pd(-up.im, up.im, -up.im, up.im, -up.im, up.im, -up.im, up.im);
    let down_re = _mm512_set1_pd(down.re);
    #[rustfmt::skip]
    let down_im = _mm512_setr_pd(
        -down.im, down.im, -down.im, down.im, -down.im, down.im, -down.im, down.im,
    );
    let nblocks = out.len() / 4;
    for blk in 0..nblocks {
        let b0 = base + 4 * blk;
        // 128-bit lane k of `p` = complex amplitude of state b0+k.
        let p = _mm512_loadu_pd(psip.add(2 * b0));
        let occ4 = _mm256_cvtepi32_pd(_mm_loadu_si128(occp.add(b0) as *const __m128i));
        let dvec = _mm256_sub_pd(_mm256_loadu_pd(diagp.add(b0)), _mm256_mul_pd(delta_v, occ4));
        let d = _mm512_permutexvar_pd(dup_idx, _mm512_castpd256_pd512(dvec));
        let mut acc = _mm512_mul_pd(d, p);
        if drive {
            let zero = _mm512_setzero_pd();
            let mut s0 = zero;
            let mut s1 = zero;
            // Bit 0: partner complex is the adjacent 128-bit lane within
            // each 256-bit half; even states (lanes 0,1,4,5) class to s0,
            // odd states (lanes 2,3,6,7) to s1.
            let sw = _mm512_shuffle_f64x2(p, p, 0xB1); // lanes [1,0,3,2]
            s0 = _mm512_mask_add_pd(s0, 0x33, s0, sw);
            s1 = _mm512_mask_add_pd(s1, 0xCC, s1, sw);
            // Bit 1: partner is the other 256-bit half; states b0,b0+1
            // (low half) class to s0, states b0+2,b0+3 to s1.
            let sw2 = _mm512_shuffle_f64x2(p, p, 0x4E); // lanes [2,3,0,1]
            s0 = _mm512_mask_add_pd(s0, 0x0F, s0, sw2);
            s1 = _mm512_mask_add_pd(s1, 0xF0, s1, sw2);
            // Bits ≥ 2: contiguous neighbour blocks, one class per block;
            // the all-or-nothing mask keeps the idle accumulator untouched
            // (bit-exact) with no blend instruction at all.
            for i in 2..n {
                let nb = _mm512_loadu_pd(psip.add(2 * (b0 ^ (1 << i))));
                let m1: __mmask8 = 0u8.wrapping_sub(((b0 >> i) & 1) as u8);
                s0 = _mm512_mask_add_pd(s0, !m1, s0, nb);
                s1 = _mm512_mask_add_pd(s1, m1, s1, nb);
            }
            // acc += up·s1 + down·s0 on interleaved lanes, as CMul::apply.
            let t = _mm512_add_pd(
                _mm512_add_pd(
                    _mm512_mul_pd(s1, up_re),
                    _mm512_mul_pd(_mm512_permute_pd(s1, 0x55), up_im),
                ),
                _mm512_add_pd(
                    _mm512_mul_pd(s0, down_re),
                    _mm512_mul_pd(_mm512_permute_pd(s0, 0x55), down_im),
                ),
            );
            acc = _mm512_add_pd(acc, t);
        }
        _mm512_storeu_pd(outp.add(8 * blk), acc);
    }
}

/// Per-chunk kernel selection: scalar reference, or the SIMD lane kernel
/// (AVX-512F- or AVX2-compiled when the CPU supports it). Registers of
/// fewer than two atoms fall back to the scalar loop (no bit-pair block
/// exists).
#[allow(clippy::too_many_arguments)]
fn apply_h_chunk_dispatch(
    h: &RydbergHamiltonian,
    psi: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
    base: usize,
    out: &mut [Complex64],
    kernel: SvKernel,
) {
    if kernel == SvKernel::Scalar || h.n < 2 {
        apply_h_chunk(h, psi, omega, delta, phase, base, out);
        return;
    }
    debug_assert_eq!(psi.len(), h.dim());
    debug_assert!(
        base.is_multiple_of(4) && out.len().is_multiple_of(4) && base + out.len() <= psi.len()
    );
    #[cfg(target_arch = "x86_64")]
    {
        if simd::avx512_available() {
            // SAFETY: AVX-512F support was just verified at runtime; the
            // lane-kernel contract holds — callers pass 4-aligned chunks of
            // a `2^n ≥ 4` dimensional state whose length
            // `apply_h_into_with` asserted.
            unsafe { apply_h_chunk_avx512(h, psi, omega, delta, phase, base, out) };
            return;
        }
        if simd::avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime; lane-kernel
            // contract as above.
            unsafe { apply_h_chunk_avx2(h, psi, omega, delta, phase, base, out) };
            return;
        }
    }
    // SAFETY: lane-kernel contract as above.
    unsafe { apply_h_chunk_lanes(h, psi, omega, delta, phase, base, out) };
}

/// Matrix-free `H(ω,δ,φ)·ψ` into a caller-provided buffer.
///
/// Off-diagonal convention: the drive term is
/// `Ω/2 Σ_i (e^{iφ}|g⟩⟨r|_i + e^{−iφ}|r⟩⟨g|_i)`, so the matrix element that
/// *creates* an excitation on atom `i` (g→r, bit 0→1) carries `e^{−iφ}`.
///
/// Large dimensions are split over disjoint mutable output chunks; every
/// output element is computed independently, so the result is bit-identical
/// to [`apply_h_into_serial`] for any worker count. Runs the default
/// ([`SvKernel::Auto`]) kernel; see [`apply_h_into_with`] to pick one.
pub fn apply_h_into(
    h: &RydbergHamiltonian,
    psi: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
    out: &mut [Complex64],
) {
    apply_h_into_with(h, psi, omega, delta, phase, out, SvKernel::default());
}

/// [`apply_h_into`] with an explicit kernel selection.
pub fn apply_h_into_with(
    h: &RydbergHamiltonian,
    psi: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
    out: &mut [Complex64],
    kernel: SvKernel,
) {
    let dim = psi.len();
    assert_eq!(
        dim,
        h.dim(),
        "state dimension must match the Hamiltonian dimension"
    );
    assert_eq!(
        out.len(),
        dim,
        "output buffer must match the state dimension"
    );
    if dim >= PAR_DIM_THRESHOLD {
        out.par_chunks_mut(PAR_CHUNK_LEN)
            .enumerate()
            .for_each(|(ci, chunk)| {
                apply_h_chunk_dispatch(
                    h,
                    psi,
                    omega,
                    delta,
                    phase,
                    ci * PAR_CHUNK_LEN,
                    chunk,
                    kernel,
                );
            });
    } else {
        apply_h_chunk_dispatch(h, psi, omega, delta, phase, 0, out, kernel);
    }
}

/// Forced-sequential, forced-scalar reference for [`apply_h_into`] — used
/// by equivalence tests and available for debugging parallel-split or SIMD
/// regressions.
pub fn apply_h_into_serial(
    h: &RydbergHamiltonian,
    psi: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
    out: &mut [Complex64],
) {
    assert_eq!(
        psi.len(),
        h.dim(),
        "state dimension must match the Hamiltonian dimension"
    );
    assert_eq!(out.len(), psi.len());
    apply_h_chunk(h, psi, omega, delta, phase, 0, out);
}

/// Allocating convenience wrapper around [`apply_h_into`].
pub fn apply_h(
    h: &RydbergHamiltonian,
    psi: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
) -> Vec<Complex64> {
    let mut out = vec![ZERO; psi.len()];
    apply_h_into(h, psi, omega, delta, phase, &mut out);
    out
}

/// Reusable scratch buffers for the RK4 integrator: the four stage
/// derivatives plus the stage-input vector. Allocated once per state
/// dimension and reused across every step of [`evolve_sequence_ws`].
#[derive(Debug, Clone, Default)]
pub struct SvWorkspace {
    k1: Vec<Complex64>,
    k2: Vec<Complex64>,
    k3: Vec<Complex64>,
    k4: Vec<Complex64>,
    tmp: Vec<Complex64>,
    /// Second stage-input buffer: the fused RK4 passes alternate their
    /// stage output between `tmp` and `tmp2` so no pass writes the buffer
    /// its own `H·ψ` gather is still reading.
    tmp2: Vec<Complex64>,
}

impl SvWorkspace {
    /// Empty workspace; buffers grow on first use and then persist.
    pub fn new() -> Self {
        SvWorkspace::default()
    }

    fn ensure(&mut self, dim: usize) {
        for buf in [
            &mut self.k1,
            &mut self.k2,
            &mut self.k3,
            &mut self.k4,
            &mut self.tmp,
            &mut self.tmp2,
        ] {
            if buf.len() != dim {
                buf.clear();
                buf.resize(dim, ZERO);
            }
        }
    }
}

/// SIMD instantiation of the `out = ψ + c·k` stage pass — two complex
/// elements per lane vector, same per-element expression as the scalar
/// loop.
///
/// # Safety
/// Requires `chunk.len() % 2 == 0`, `k_chunk.len() == chunk.len()`, and
/// `base + chunk.len() ≤ psi.len()` (`k_chunk` is the K-slice for the same
/// index range, passed chunk-local so the fused passes can hand over the
/// cache-hot block they just wrote).
#[inline(always)]
unsafe fn stage_input_chunk_lanes(
    psi: &[Complex64],
    k_chunk: &[Complex64],
    c: Complex64,
    base: usize,
    chunk: &mut [Complex64],
) {
    debug_assert_eq!(chunk.len() % 2, 0);
    debug_assert_eq!(chunk.len(), k_chunk.len());
    debug_assert!(base + chunk.len() <= psi.len());
    let cm = CMul::new(c);
    let psip = complex_as_f64(psi).as_ptr();
    let kp = complex_as_f64(k_chunk).as_ptr();
    let outp = complex_as_f64_mut(chunk).as_mut_ptr();
    for j in 0..chunk.len() / 2 {
        let p = f64x4::from_ptr(psip.add(2 * base + 4 * j));
        let kv = f64x4::from_ptr(kp.add(4 * j));
        (p + cm.apply(kv)).write_ptr(outp.add(4 * j));
    }
}

/// Hand-written AVX2 instantiation of [`stage_input_chunk_lanes`] — exact
/// IEEE lane ops, no FMA, bit-identical to the scalar loop.
///
/// # Safety
/// Same contract as [`stage_input_chunk_lanes`], plus AVX2 availability.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn stage_input_chunk_avx2(
    psi: &[Complex64],
    k_chunk: &[Complex64],
    c: Complex64,
    base: usize,
    chunk: &mut [Complex64],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(chunk.len() % 2, 0);
    debug_assert_eq!(chunk.len(), k_chunk.len());
    debug_assert!(base + chunk.len() <= psi.len());
    let c_re = _mm256_set1_pd(c.re);
    let c_im = _mm256_setr_pd(-c.im, c.im, -c.im, c.im);
    let psip = complex_as_f64(psi).as_ptr();
    let kp = complex_as_f64(k_chunk).as_ptr();
    let outp = complex_as_f64_mut(chunk).as_mut_ptr();
    for j in 0..chunk.len() / 2 {
        let p = _mm256_loadu_pd(psip.add(2 * base + 4 * j));
        let kv = _mm256_loadu_pd(kp.add(4 * j));
        let ck = _mm256_add_pd(
            _mm256_mul_pd(kv, c_re),
            _mm256_mul_pd(_mm256_permute_pd(kv, 0x5), c_im),
        );
        _mm256_storeu_pd(outp.add(4 * j), _mm256_add_pd(p, ck));
    }
}

/// Hand-written AVX-512F instantiation of [`stage_input_chunk_lanes`] —
/// four complex elements per iteration, same IEEE ops in the same order.
///
/// # Safety
/// Same contract as [`stage_input_chunk_lanes`], plus `chunk.len() % 4 == 0`
/// and AVX-512F availability.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn stage_input_chunk_avx512(
    psi: &[Complex64],
    k_chunk: &[Complex64],
    c: Complex64,
    base: usize,
    chunk: &mut [Complex64],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(chunk.len() % 4, 0);
    debug_assert_eq!(chunk.len(), k_chunk.len());
    debug_assert!(base + chunk.len() <= psi.len());
    let c_re = _mm512_set1_pd(c.re);
    #[rustfmt::skip]
    let c_im = _mm512_setr_pd(-c.im, c.im, -c.im, c.im, -c.im, c.im, -c.im, c.im);
    let psip = complex_as_f64(psi).as_ptr();
    let kp = complex_as_f64(k_chunk).as_ptr();
    let outp = complex_as_f64_mut(chunk).as_mut_ptr();
    for j in 0..chunk.len() / 4 {
        let p = _mm512_loadu_pd(psip.add(2 * base + 8 * j));
        let kv = _mm512_loadu_pd(kp.add(8 * j));
        let ck = _mm512_add_pd(
            _mm512_mul_pd(kv, c_re),
            _mm512_mul_pd(_mm512_permute_pd(kv, 0x55), c_im),
        );
        _mm512_storeu_pd(outp.add(8 * j), _mm512_add_pd(p, ck));
    }
}

/// # Safety
/// Same contract as [`stage_input_chunk_lanes`].
#[inline]
unsafe fn stage_input_chunk_dispatch(
    psi: &[Complex64],
    k_chunk: &[Complex64],
    c: Complex64,
    base: usize,
    chunk: &mut [Complex64],
) {
    #[cfg(target_arch = "x86_64")]
    {
        if chunk.len().is_multiple_of(4) && simd::avx512_available() {
            // SAFETY: AVX-512F verified at runtime, length divisibility just
            // checked; contract forwarded from the caller.
            unsafe { stage_input_chunk_avx512(psi, k_chunk, c, base, chunk) };
            return;
        }
        if simd::avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime; contract
            // forwarded from the caller.
            unsafe { stage_input_chunk_avx2(psi, k_chunk, c, base, chunk) };
            return;
        }
    }
    // SAFETY: contract forwarded from the caller.
    unsafe { stage_input_chunk_lanes(psi, k_chunk, c, base, chunk) }
}

/// `out = psi + c·k`, chunk-parallel for large dimensions (elementwise, so
/// bit-identical for any worker count and for either kernel).
fn stage_input_into(
    psi: &[Complex64],
    k: &[Complex64],
    c: Complex64,
    out: &mut [Complex64],
    kernel: SvKernel,
) {
    // The lane pass handles two complex elements per vector, so it needs an
    // even length; odd dimensions (only dim = 1 here) go scalar.
    debug_assert!(psi.len() >= out.len() && k.len() >= out.len());
    let use_lanes = kernel != SvKernel::Scalar && out.len() >= 2 && out.len().is_multiple_of(2);
    let fill = |base: usize, chunk: &mut [Complex64]| {
        if use_lanes {
            // SAFETY: chunks come from an even-length `out` split at an even
            // chunk size, and `psi`/`k` are at least as long as `out`.
            unsafe {
                stage_input_chunk_dispatch(psi, &k[base..base + chunk.len()], c, base, chunk)
            };
        } else {
            for (j, slot) in chunk.iter_mut().enumerate() {
                let b = base + j;
                *slot = psi[b] + c * k[b];
            }
        }
    };
    if out.len() >= PAR_DIM_THRESHOLD {
        out.par_chunks_mut(PAR_CHUNK_LEN)
            .enumerate()
            .for_each(|(ci, chunk)| fill(ci * PAR_CHUNK_LEN, chunk));
    } else {
        fill(0, out);
    }
}

/// SIMD instantiation of the RK4 combine pass:
/// `ψ += c·(K1 + 2(K2 + K3) + K4)`, two complex elements per vector with
/// the scalar expression's association order.
///
/// # Safety
/// Requires `chunk.len() % 2 == 0`, `k4_chunk.len() == chunk.len()`, and
/// `base + chunk.len()` within the length of each of `k1`–`k3` (`k4_chunk`
/// is the K4-slice for the same index range, chunk-local so the fused
/// final pass can hand over the cache-hot block it just wrote).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn combine_chunk_lanes(
    k1: &[Complex64],
    k2: &[Complex64],
    k3: &[Complex64],
    k4_chunk: &[Complex64],
    c: Complex64,
    base: usize,
    chunk: &mut [Complex64],
) {
    debug_assert_eq!(chunk.len() % 2, 0);
    debug_assert_eq!(chunk.len(), k4_chunk.len());
    debug_assert!(base + chunk.len() <= k1.len().min(k2.len()).min(k3.len()));
    let cm = CMul::new(c);
    let two = f64x4::splat(2.0);
    let k1p = complex_as_f64(k1).as_ptr();
    let k2p = complex_as_f64(k2).as_ptr();
    let k3p = complex_as_f64(k3).as_ptr();
    let k4p = complex_as_f64(k4_chunk).as_ptr();
    let outp = complex_as_f64_mut(chunk).as_mut_ptr();
    for j in 0..chunk.len() / 2 {
        let off = 2 * base + 4 * j;
        let v1 = f64x4::from_ptr(k1p.add(off));
        let v2 = f64x4::from_ptr(k2p.add(off));
        let v3 = f64x4::from_ptr(k3p.add(off));
        let v4 = f64x4::from_ptr(k4p.add(4 * j));
        let o = outp.add(4 * j);
        let cur = f64x4::from_ptr(o);
        let sum = v1 + (v2 + v3) * two + v4;
        (cur + cm.apply(sum)).write_ptr(o);
    }
}

/// Hand-written AVX2 instantiation of [`combine_chunk_lanes`] — exact IEEE
/// lane ops in the scalar expression's association order, no FMA.
///
/// # Safety
/// Same contract as [`combine_chunk_lanes`], plus AVX2 availability.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn combine_chunk_avx2(
    k1: &[Complex64],
    k2: &[Complex64],
    k3: &[Complex64],
    k4_chunk: &[Complex64],
    c: Complex64,
    base: usize,
    chunk: &mut [Complex64],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(chunk.len() % 2, 0);
    debug_assert_eq!(chunk.len(), k4_chunk.len());
    debug_assert!(base + chunk.len() <= k1.len().min(k2.len()).min(k3.len()));
    let c_re = _mm256_set1_pd(c.re);
    let c_im = _mm256_setr_pd(-c.im, c.im, -c.im, c.im);
    let two = _mm256_set1_pd(2.0);
    let k1p = complex_as_f64(k1).as_ptr();
    let k2p = complex_as_f64(k2).as_ptr();
    let k3p = complex_as_f64(k3).as_ptr();
    let k4p = complex_as_f64(k4_chunk).as_ptr();
    let outp = complex_as_f64_mut(chunk).as_mut_ptr();
    for j in 0..chunk.len() / 2 {
        let off = 2 * base + 4 * j;
        let v1 = _mm256_loadu_pd(k1p.add(off));
        let v2 = _mm256_loadu_pd(k2p.add(off));
        let v3 = _mm256_loadu_pd(k3p.add(off));
        let v4 = _mm256_loadu_pd(k4p.add(4 * j));
        let o = outp.add(4 * j);
        let cur = _mm256_loadu_pd(o);
        // K1 + 2(K2 + K3) + K4, association order of the scalar loop
        let sum = _mm256_add_pd(
            _mm256_add_pd(v1, _mm256_mul_pd(_mm256_add_pd(v2, v3), two)),
            v4,
        );
        let csum = _mm256_add_pd(
            _mm256_mul_pd(sum, c_re),
            _mm256_mul_pd(_mm256_permute_pd(sum, 0x5), c_im),
        );
        _mm256_storeu_pd(o, _mm256_add_pd(cur, csum));
    }
}

/// Hand-written AVX-512F instantiation of [`combine_chunk_lanes`] — four
/// complex elements per iteration, scalar association order, no FMA.
///
/// # Safety
/// Same contract as [`combine_chunk_lanes`], plus `chunk.len() % 4 == 0`
/// and AVX-512F availability.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn combine_chunk_avx512(
    k1: &[Complex64],
    k2: &[Complex64],
    k3: &[Complex64],
    k4_chunk: &[Complex64],
    c: Complex64,
    base: usize,
    chunk: &mut [Complex64],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(chunk.len() % 4, 0);
    debug_assert_eq!(chunk.len(), k4_chunk.len());
    debug_assert!(base + chunk.len() <= k1.len().min(k2.len()).min(k3.len()));
    let c_re = _mm512_set1_pd(c.re);
    #[rustfmt::skip]
    let c_im = _mm512_setr_pd(-c.im, c.im, -c.im, c.im, -c.im, c.im, -c.im, c.im);
    let two = _mm512_set1_pd(2.0);
    let k1p = complex_as_f64(k1).as_ptr();
    let k2p = complex_as_f64(k2).as_ptr();
    let k3p = complex_as_f64(k3).as_ptr();
    let k4p = complex_as_f64(k4_chunk).as_ptr();
    let outp = complex_as_f64_mut(chunk).as_mut_ptr();
    for j in 0..chunk.len() / 4 {
        let off = 2 * base + 8 * j;
        let v1 = _mm512_loadu_pd(k1p.add(off));
        let v2 = _mm512_loadu_pd(k2p.add(off));
        let v3 = _mm512_loadu_pd(k3p.add(off));
        let v4 = _mm512_loadu_pd(k4p.add(8 * j));
        let o = outp.add(8 * j);
        let cur = _mm512_loadu_pd(o);
        // K1 + 2(K2 + K3) + K4, association order of the scalar loop
        let sum = _mm512_add_pd(
            _mm512_add_pd(v1, _mm512_mul_pd(_mm512_add_pd(v2, v3), two)),
            v4,
        );
        let csum = _mm512_add_pd(
            _mm512_mul_pd(sum, c_re),
            _mm512_mul_pd(_mm512_permute_pd(sum, 0x55), c_im),
        );
        _mm512_storeu_pd(o, _mm512_add_pd(cur, csum));
    }
}

/// # Safety
/// Same contract as [`combine_chunk_lanes`].
#[inline]
#[allow(clippy::too_many_arguments)]
unsafe fn combine_chunk_dispatch(
    k1: &[Complex64],
    k2: &[Complex64],
    k3: &[Complex64],
    k4_chunk: &[Complex64],
    c: Complex64,
    base: usize,
    chunk: &mut [Complex64],
) {
    #[cfg(target_arch = "x86_64")]
    {
        if chunk.len().is_multiple_of(4) && simd::avx512_available() {
            // SAFETY: AVX-512F verified at runtime, length divisibility just
            // checked; contract forwarded from the caller.
            unsafe { combine_chunk_avx512(k1, k2, k3, k4_chunk, c, base, chunk) };
            return;
        }
        if simd::avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime; contract
            // forwarded from the caller.
            unsafe { combine_chunk_avx2(k1, k2, k3, k4_chunk, c, base, chunk) };
            return;
        }
    }
    // SAFETY: contract forwarded from the caller.
    unsafe { combine_chunk_lanes(k1, k2, k3, k4_chunk, c, base, chunk) }
}

/// Shared pointer to a second output buffer of a fused pass. Each worker
/// writes only its own chunk's index range, so ranges never overlap.
struct SendPtr(*mut Complex64);
// SAFETY: the pointer is only dereferenced inside `from_raw_parts_mut`
// windows that are disjoint per chunk (the same partition as the
// `par_chunks_mut` driving the pass).
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Fused RK4 pass: `k_out = H·input`, and per chunk — while the freshly
/// written K-block is cache-hot — the next stage input
/// `stage_out = ψ + c·k_out`.
///
/// `stage_out` must be a buffer distinct from `input` (the `H·ψ` gather of
/// other chunks still reads all of `input`); the caller alternates two
/// stage buffers to guarantee this. Every element of `stage_out` is
/// computed from fully written inputs, so fusion changes neither values
/// nor bits relative to running the two passes back-to-back.
#[allow(clippy::too_many_arguments)]
fn apply_h_stage_pass(
    h: &RydbergHamiltonian,
    input: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
    k_out: &mut [Complex64],
    psi: &[Complex64],
    c: Complex64,
    stage_out: &mut [Complex64],
    kernel: SvKernel,
) {
    let dim = input.len();
    debug_assert!(k_out.len() == dim && stage_out.len() == dim && psi.len() == dim);
    let sp = SendPtr(stage_out.as_mut_ptr());
    let sp = &sp; // capture the Sync wrapper, not the raw pointer field
    let pass = |base: usize, kchunk: &mut [Complex64]| {
        apply_h_chunk_dispatch(h, input, omega, delta, phase, base, kchunk, kernel);
        // SAFETY: disjoint per-chunk window of `stage_out` (same partition
        // as the pass itself).
        let schunk = unsafe { std::slice::from_raw_parts_mut(sp.0.add(base), kchunk.len()) };
        if kernel != SvKernel::Scalar && kchunk.len() >= 2 && kchunk.len().is_multiple_of(2) {
            // SAFETY: even chunk of an even-length buffer; `psi` spans the
            // full dimension and `kchunk` is the matching K-slice.
            unsafe { stage_input_chunk_dispatch(psi, kchunk, c, base, schunk) };
        } else {
            for (j, slot) in schunk.iter_mut().enumerate() {
                *slot = psi[base + j] + c * kchunk[j];
            }
        }
    };
    if dim >= PAR_DIM_THRESHOLD {
        k_out
            .par_chunks_mut(PAR_CHUNK_LEN)
            .enumerate()
            .for_each(|(ci, chunk)| pass(ci * PAR_CHUNK_LEN, chunk));
    } else {
        pass(0, k_out);
    }
}

/// Fused final RK4 pass: `k_out = H·input`, and per chunk — K4 still
/// cache-hot — the combine update `ψ += c·(K1 + 2(K2+K3) + K4)`.
///
/// `psi` is not an input of this pass's `H·ψ` gather (`input` is the last
/// stage vector), so updating it per chunk is safe; K1–K3 are only read.
#[allow(clippy::too_many_arguments)]
fn apply_h_combine_pass(
    h: &RydbergHamiltonian,
    input: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
    k_out: &mut [Complex64],
    k1: &[Complex64],
    k2: &[Complex64],
    k3: &[Complex64],
    c: Complex64,
    psi: &mut [Complex64],
    kernel: SvKernel,
) {
    let dim = input.len();
    debug_assert!(k_out.len() == dim && psi.len() == dim);
    debug_assert!(k1.len() == dim && k2.len() == dim && k3.len() == dim);
    let pp = SendPtr(psi.as_mut_ptr());
    let pp = &pp; // capture the Sync wrapper, not the raw pointer field
    let pass = |base: usize, kchunk: &mut [Complex64]| {
        apply_h_chunk_dispatch(h, input, omega, delta, phase, base, kchunk, kernel);
        // SAFETY: disjoint per-chunk window of `psi` (same partition as the
        // pass itself).
        let pchunk = unsafe { std::slice::from_raw_parts_mut(pp.0.add(base), kchunk.len()) };
        if kernel != SvKernel::Scalar && kchunk.len() >= 2 && kchunk.len().is_multiple_of(2) {
            // SAFETY: even chunk of an even-length buffer; K1–K3 span the
            // full dimension and `kchunk` is the matching K4-slice.
            unsafe { combine_chunk_dispatch(k1, k2, k3, kchunk, c, base, pchunk) };
        } else {
            for (j, slot) in pchunk.iter_mut().enumerate() {
                let b = base + j;
                *slot += c * (k1[b] + 2.0 * (k2[b] + k3[b]) + kchunk[j]);
            }
        }
    };
    if dim >= PAR_DIM_THRESHOLD {
        k_out
            .par_chunks_mut(PAR_CHUNK_LEN)
            .enumerate()
            .for_each(|(ci, chunk)| pass(ci * PAR_CHUNK_LEN, chunk));
    } else {
        pass(0, k_out);
    }
}

/// Evolve `state` through one RK4 step of `dt` at fixed drive values
/// (the drive is piecewise-constant over the step — midpoint sampled),
/// reusing the workspace buffers.
///
/// The stage derivatives are stored as `K = H·ψ` (without the `−i` of the
/// Schrödinger right-hand side); the `−i` is folded into the purely
/// imaginary stage/update coefficients, which removes one full pass over
/// the state per stage.
pub fn rk4_step_ws(
    h: &RydbergHamiltonian,
    state: &mut StateVector,
    omega: f64,
    delta: f64,
    phase: f64,
    dt: f64,
    ws: &mut SvWorkspace,
) {
    rk4_step_ws_with(h, state, omega, delta, phase, dt, ws, SvKernel::default());
}

/// [`rk4_step_ws`] with an explicit kernel selection — the batch runner and
/// benchmark comparators thread [`SvKernel::Scalar`] through here.
#[allow(clippy::too_many_arguments)]
pub fn rk4_step_ws_with(
    h: &RydbergHamiltonian,
    state: &mut StateVector,
    omega: f64,
    delta: f64,
    phase: f64,
    dt: f64,
    ws: &mut SvWorkspace,
    kernel: SvKernel,
) {
    let dim = state.amps.len();
    ws.ensure(dim);
    let c_half = Complex64::new(0.0, -dt / 2.0);
    let c_full = Complex64::new(0.0, -dt);
    let c_comb = Complex64::new(0.0, -dt / 6.0);

    if kernel == SvKernel::Scalar {
        // Unfused reference sequence (the pre-SIMD pass structure, kept as
        // the honest sequential comparator). Identical bits to the fused
        // path below — every element is computed from fully written inputs
        // with the same per-element expressions either way.
        apply_h_into_with(h, &state.amps, omega, delta, phase, &mut ws.k1, kernel);
        stage_input_into(&state.amps, &ws.k1, c_half, &mut ws.tmp, kernel);
        apply_h_into_with(h, &ws.tmp, omega, delta, phase, &mut ws.k2, kernel);
        stage_input_into(&state.amps, &ws.k2, c_half, &mut ws.tmp, kernel);
        apply_h_into_with(h, &ws.tmp, omega, delta, phase, &mut ws.k3, kernel);
        stage_input_into(&state.amps, &ws.k3, c_full, &mut ws.tmp, kernel);
        apply_h_into_with(h, &ws.tmp, omega, delta, phase, &mut ws.k4, kernel);
        // ψ += (−i dt/6) (K1 + 2 K2 + 2 K3 + K4)
        let (k1, k2, k3, k4) = (&ws.k1, &ws.k2, &ws.k3, &ws.k4);
        let combine = |base: usize, chunk: &mut [Complex64]| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                let b = base + j;
                *slot += c_comb * (k1[b] + 2.0 * (k2[b] + k3[b]) + k4[b]);
            }
        };
        if dim >= PAR_DIM_THRESHOLD {
            state
                .amps
                .par_chunks_mut(PAR_CHUNK_LEN)
                .enumerate()
                .for_each(|(ci, chunk)| combine(ci * PAR_CHUNK_LEN, chunk));
        } else {
            combine(0, &mut state.amps);
        }
        return;
    }

    // Fused passes: each stage input (and the final combine) is formed per
    // chunk right after the chunk's K-block is written, while it is still
    // cache-hot — one pass over memory per stage instead of two. Stage
    // outputs alternate between `tmp` and `tmp2` because the H·ψ gather of
    // a pass reads its entire input buffer across chunk boundaries.
    let psi = &mut state.amps;
    let (k1, k2, k3, k4) = (&mut ws.k1, &mut ws.k2, &mut ws.k3, &mut ws.k4);
    let (tmp, tmp2) = (&mut ws.tmp, &mut ws.tmp2);
    apply_h_stage_pass(h, psi, omega, delta, phase, k1, psi, c_half, tmp, kernel);
    apply_h_stage_pass(h, tmp, omega, delta, phase, k2, psi, c_half, tmp2, kernel);
    apply_h_stage_pass(h, tmp2, omega, delta, phase, k3, psi, c_full, tmp, kernel);
    apply_h_combine_pass(
        h, tmp, omega, delta, phase, k4, k1, k2, k3, c_comb, psi, kernel,
    );
}

/// One RK4 step with a throwaway workspace — compatibility wrapper for
/// callers stepping a handful of times; hot loops should hold an
/// [`SvWorkspace`] and call [`rk4_step_ws`].
pub fn rk4_step(
    h: &RydbergHamiltonian,
    state: &mut StateVector,
    omega: f64,
    delta: f64,
    phase: f64,
    dt: f64,
) {
    let mut ws = SvWorkspace::new();
    rk4_step_ws(h, state, omega, delta, phase, dt, &mut ws);
}

/// Integrator configuration for the state-vector backend.
#[derive(Debug, Clone)]
pub struct SvConfig {
    /// Hard cap on the time step (µs); the effective step also respects the
    /// stability criterion `dt ≤ stability_factor / energy_scale`.
    pub max_dt: f64,
    /// Safety factor in the adaptive step bound (dimensionless).
    pub stability_factor: f64,
    /// Which hot-pass kernel to run; amplitudes are identical either way.
    pub kernel: SvKernel,
}

impl Default for SvConfig {
    fn default() -> Self {
        SvConfig {
            max_dt: 1e-3,
            stability_factor: 0.1,
            kernel: SvKernel::Auto,
        }
    }
}

/// Run the full program and return the final state.
pub fn evolve_sequence(seq: &Sequence, c6: f64, cfg: &SvConfig) -> StateVector {
    let mut ws = SvWorkspace::new();
    evolve_sequence_ws(seq, c6, cfg, &mut ws)
}

/// Run the full program reusing the caller's workspace: the RK4 scratch
/// buffers stay alive across all steps (and across calls, for hot loops
/// that evolve many sequences of the same register size).
pub fn evolve_sequence_ws(
    seq: &Sequence,
    c6: f64,
    cfg: &SvConfig,
    ws: &mut SvWorkspace,
) -> StateVector {
    let h = RydbergHamiltonian::new(&seq.register, c6);
    evolve_sequence_ws_h(&h, seq, cfg, ws)
}

/// [`evolve_sequence_ws`] with a pre-built Hamiltonian: sweep runners share
/// one `h` across many sequences on the *same register* (building it is
/// `O(2^n · pairs)` — pure waste to repeat when only the drive changes).
pub(crate) fn evolve_sequence_ws_h(
    h: &RydbergHamiltonian,
    seq: &Sequence,
    cfg: &SvConfig,
    ws: &mut SvWorkspace,
) -> StateVector {
    // Choose a step honoring both the user cap and the energy scale of the
    // strongest drive in the schedule. The coarse probe is reused as the
    // stepping grid whenever the stability bound does not force a finer one.
    let probe = DiscretizedDrive::from_sequence(seq, cfg.max_dt);
    let (omax, dmax) = probe.max_drive();
    let scale = h.energy_scale(omax, dmax).max(1e-9);
    let dt_bound = (cfg.stability_factor / scale).min(cfg.max_dt);
    let drive = probe.refined(seq, dt_bound);
    evolve_drive_ws(h, &drive, cfg, ws)
}

/// Step the ground state through an already-discretized drive. The final
/// leg shared by the sequence path and the batch fast path (which builds
/// the grid by transforming a template instead of re-sampling waveforms).
pub(crate) fn evolve_drive_ws(
    h: &RydbergHamiltonian,
    drive: &DiscretizedDrive,
    cfg: &SvConfig,
    ws: &mut SvWorkspace,
) -> StateVector {
    let mut state = StateVector::ground(h.n);
    for &(omega, delta, phase) in &drive.steps {
        rk4_step_ws_with(h, &mut state, omega, delta, phase, drive.dt, ws, cfg.kernel);
    }
    state.renormalize();
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::units::C6_COEFF;
    use hpcqc_program::{Pulse, Register, SequenceBuilder, Waveform};

    fn single_atom_seq(duration: f64, omega: f64, delta: f64) -> Sequence {
        let reg = Register::from_coords(&[(0.0, 0.0)]).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(duration, omega, delta, 0.0).unwrap());
        b.build().unwrap()
    }

    #[test]
    fn ground_state_is_normalized() {
        let s = StateVector::ground(3);
        assert_eq!(s.amps.len(), 8);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
        assert_eq!(s.rydberg_population(0), 0.0);
    }

    #[test]
    fn rabi_oscillation_single_atom() {
        // Resonant drive: P_r(t) = sin²(Ωt/2). Pick Ωt = π for full transfer.
        let omega = 4.0;
        let t_pi = std::f64::consts::PI / omega;
        let seq = single_atom_seq(t_pi, omega, 0.0);
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let p = s.rydberg_population(0);
        assert!((p - 1.0).abs() < 1e-6, "π-pulse transfer: got {p}");
    }

    #[test]
    fn half_pi_pulse_gives_half_population() {
        let omega = 4.0;
        let t = std::f64::consts::PI / (2.0 * omega);
        let seq = single_atom_seq(t, omega, 0.0);
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        assert!((s.rydberg_population(0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn detuned_rabi_reduced_contrast() {
        // Generalized Rabi: max transfer = Ω²/(Ω²+δ²).
        let omega: f64 = 2.0;
        let delta: f64 = 2.0;
        let gen = (omega * omega + delta * delta).sqrt();
        let t = std::f64::consts::PI / gen; // half generalized period
        let seq = single_atom_seq(t, omega, delta);
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let expected = omega * omega / (gen * gen);
        assert!(
            (s.rydberg_population(0) - expected).abs() < 1e-5,
            "got {}, expected {expected}",
            s.rydberg_population(0)
        );
    }

    #[test]
    fn norm_preserved_through_evolution() {
        let reg = Register::linear(4, 8.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(
            Pulse::new(
                Waveform::ramp(0.5, 0.0, 6.0).unwrap(),
                Waveform::ramp(0.5, -8.0, 8.0).unwrap(),
                0.3,
            )
            .unwrap(),
        );
        let seq = b.build().unwrap();
        let h = RydbergHamiltonian::new(&seq.register, C6_COEFF);
        let mut state = StateVector::ground(4);
        let drive = DiscretizedDrive::from_sequence(&seq, 1e-3);
        for &(o, d, p) in &drive.steps {
            rk4_step(&h, &mut state, o, d, p, drive.dt);
        }
        assert!(
            (state.norm_sqr() - 1.0).abs() < 1e-8,
            "norm drift: {}",
            state.norm_sqr()
        );
    }

    #[test]
    fn blockade_suppresses_double_excitation() {
        // Two atoms well inside the blockade radius driven by a π-pulse on
        // the collective enhanced frequency: ⟨n₀n₁⟩ stays tiny.
        let omega: f64 = 4.0;
        let spacing = 4.0; // blockade radius at Ω=4 is (C6/4)^{1/6} ≈ 10.6 µm
        let reg = Register::linear(2, spacing).unwrap();
        let mut b = SequenceBuilder::new(reg);
        let t = std::f64::consts::PI / (omega * 2f64.sqrt());
        b.add_global_pulse(Pulse::constant(t, omega, 0.0, 0.0).unwrap());
        let seq = b.build().unwrap();
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let double = s.rydberg_correlation(0, 1);
        assert!(double < 0.01, "blockade violated: ⟨n0 n1⟩ = {double}");
        // and the symmetric single-excitation state is reached
        let single = s.rydberg_population(0) + s.rydberg_population(1) - 2.0 * double;
        assert!(single > 0.9, "collective excitation missing: {single}");
    }

    #[test]
    fn no_blockade_at_large_distance() {
        // Far-separated atoms behave independently: π-pulse excites both.
        let omega = 4.0;
        let reg = Register::linear(2, 60.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        let t = std::f64::consts::PI / omega;
        b.add_global_pulse(Pulse::constant(t, omega, 0.0, 0.0).unwrap());
        let seq = b.build().unwrap();
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        assert!(
            s.rydberg_correlation(0, 1) > 0.95,
            "independent atoms both excite"
        );
    }

    #[test]
    fn energy_conserved_under_constant_drive() {
        let reg = Register::linear(3, 7.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 3.0, 1.0, 0.0).unwrap());
        let seq = b.build().unwrap();
        let h = RydbergHamiltonian::new(&seq.register, C6_COEFF);
        let mut state = StateVector::ground(3);
        let drive = DiscretizedDrive::from_sequence(&seq, 1e-3);
        let mut energies = Vec::new();
        for &(o, d, p) in &drive.steps {
            rk4_step(&h, &mut state, o, d, p, drive.dt);
            energies.push(state.energy(&h, o, d, p));
        }
        let e0 = energies[0];
        for e in &energies {
            assert!((e - e0).abs() < 1e-6, "energy drift under constant H");
        }
    }

    #[test]
    fn phase_affects_axis_but_not_population_from_ground() {
        // From |0…0⟩, a phase rotation of the drive changes the Bloch axis
        // but not the excitation probability.
        let omega = 3.0;
        let t = 0.4;
        let reg = Register::from_coords(&[(0.0, 0.0)]).unwrap();
        let mk = |phase: f64| {
            let mut b = SequenceBuilder::new(reg.clone());
            b.add_global_pulse(Pulse::constant(t, omega, 0.0, phase).unwrap());
            evolve_sequence(&b.build().unwrap(), C6_COEFF, &SvConfig::default())
        };
        let p0 = mk(0.0).rydberg_population(0);
        let p1 = mk(1.3).rydberg_population(0);
        assert!((p0 - p1).abs() < 1e-9);
    }

    #[test]
    fn fidelity_of_identical_evolutions_is_one() {
        let seq = single_atom_seq(0.3, 2.0, 1.0);
        let a = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let b = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    /// Deterministic pseudo-random amplitudes (xorshift64) — keeps the
    /// kernel-equivalence tests independent of the rand crate's API.
    fn pseudo_random_amps(dim: usize, mut x: u64) -> Vec<Complex64> {
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..dim).map(|_| Complex64::new(step(), step())).collect()
    }

    #[test]
    fn parallel_kernel_matches_serial_bit_for_bit() {
        // dim 2^13 = 8192 ≥ PAR_DIM_THRESHOLD, so apply_h_into takes the
        // chunk-split path; amplitudes must equal the forced-serial kernel
        // exactly (not approximately).
        let n = 13;
        let reg = Register::linear(n, 7.0).unwrap();
        let h = RydbergHamiltonian::new(&reg, C6_COEFF);
        let psi = pseudo_random_amps(h.dim(), 0x5EED_CAFE);
        let mut par = vec![ZERO; h.dim()];
        let mut ser = vec![ZERO; h.dim()];
        apply_h_into(&h, &psi, 3.2, -1.1, 0.7, &mut par);
        apply_h_into_serial(&h, &psi, 3.2, -1.1, 0.7, &mut ser);
        assert!(par.iter().any(|a| a.norm_sqr() > 0.0));
        assert_eq!(par, ser);
        // Ω = 0 takes the diagonal-only fast path — same contract.
        apply_h_into(&h, &psi, 0.0, 2.5, 0.0, &mut par);
        apply_h_into_serial(&h, &psi, 0.0, 2.5, 0.0, &mut ser);
        assert_eq!(par, ser);
    }

    #[test]
    fn simd_kernel_matches_scalar_bit_for_bit() {
        // Small odd/even register sizes exercise the serial SIMD path
        // (below PAR_DIM_THRESHOLD) against the scalar reference, including
        // the Ω = 0 diagonal fast path and a negative phase.
        for n in [2usize, 3, 5, 8] {
            let reg = Register::linear(n, 6.5).unwrap();
            let h = RydbergHamiltonian::new(&reg, C6_COEFF);
            let psi = pseudo_random_amps(h.dim(), 0xABCD_0001 + n as u64);
            let mut auto_out = vec![ZERO; h.dim()];
            let mut scalar_out = vec![ZERO; h.dim()];
            for &(o, d, p) in &[(3.2, -1.1, 0.7), (0.0, 2.5, 0.0), (1.0, 0.0, -2.2)] {
                apply_h_into_with(&h, &psi, o, d, p, &mut auto_out, SvKernel::Auto);
                apply_h_into_with(&h, &psi, o, d, p, &mut scalar_out, SvKernel::Scalar);
                assert_eq!(auto_out, scalar_out, "n={n} drive=({o},{d},{p})");
            }
        }
    }

    #[test]
    fn evolve_auto_and_scalar_kernels_bit_identical() {
        // Full-integrator parity: the SIMD hot passes must reproduce the
        // scalar evolution exactly, not approximately.
        let reg = Register::linear(5, 7.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.3, 3.0, -1.5, 0.4).unwrap());
        let seq = b.build().unwrap();
        let scalar_cfg = SvConfig {
            kernel: SvKernel::Scalar,
            ..SvConfig::default()
        };
        let a = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let s = evolve_sequence(&seq, C6_COEFF, &scalar_cfg);
        assert_eq!(a.amps, s.amps);
    }

    #[test]
    #[should_panic(expected = "state dimension must match the Hamiltonian")]
    fn apply_h_into_rejects_mismatched_dimension() {
        // Regression: this used to be a debug_assert, so release builds
        // would read garbage diagonals instead of panicking.
        let reg = Register::linear(3, 7.0).unwrap();
        let h = RydbergHamiltonian::new(&reg, C6_COEFF);
        let psi = vec![ZERO; 16]; // 4-qubit state against a 3-qubit H
        let mut out = vec![ZERO; 16];
        apply_h_into(&h, &psi, 1.0, 0.0, 0.0, &mut out);
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let mk_seq = |n: usize| {
            let reg = Register::linear(n, 8.0).unwrap();
            let mut b = SequenceBuilder::new(reg);
            b.add_global_pulse(Pulse::constant(0.2, 3.0, 0.5, 0.3).unwrap());
            b.build().unwrap()
        };
        let seq = mk_seq(4);
        let fresh = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let mut ws = SvWorkspace::new();
        let first = evolve_sequence_ws(&seq, C6_COEFF, &SvConfig::default(), &mut ws);
        let second = evolve_sequence_ws(&seq, C6_COEFF, &SvConfig::default(), &mut ws);
        assert_eq!(fresh.amps, first.amps, "workspace path diverges");
        assert_eq!(first.amps, second.amps, "dirty workspace leaks state");
        // Switching register size resizes the scratch without contamination.
        let small = mk_seq(3);
        let with_ws = evolve_sequence_ws(&small, C6_COEFF, &SvConfig::default(), &mut ws);
        let without = evolve_sequence(&small, C6_COEFF, &SvConfig::default());
        assert_eq!(with_ws.amps, without.amps);
    }

    #[test]
    fn rk4_step_compat_wrapper_matches_workspace_step() {
        let reg = Register::linear(3, 7.0).unwrap();
        let h = RydbergHamiltonian::new(&reg, C6_COEFF);
        let mut a = StateVector::ground(3);
        let mut b = StateVector::ground(3);
        let mut ws = SvWorkspace::new();
        for _ in 0..5 {
            rk4_step(&h, &mut a, 3.0, 1.0, 0.2, 1e-3);
            rk4_step_ws(&h, &mut b, 3.0, 1.0, 0.2, 1e-3, &mut ws);
        }
        assert_eq!(a.amps, b.amps);
    }

    #[test]
    #[should_panic(expected = "26 qubits")]
    fn ground_rejects_oversized_register() {
        StateVector::ground(SV_MAX_QUBITS + 1);
    }
}
