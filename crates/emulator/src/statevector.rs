//! Exact state-vector emulation of analog programs (EMU-SV stand-in).
//!
//! Integrates the time-dependent Schrödinger equation `dψ/dt = −i H(t) ψ`
//! with a classical RK4 integrator and a matrix-free `H·ψ` kernel. The hot
//! path is allocation-free: [`apply_h_into`] writes into a caller-provided
//! buffer (rayon-split over disjoint mutable output chunks, so amplitudes
//! are bit-identical for any worker count) and [`SvWorkspace`] keeps the
//! RK4 scratch vectors alive across every step of a sequence.

use crate::hamiltonian::{DiscretizedDrive, RydbergHamiltonian};
use hpcqc_program::Sequence;
use num_complex::Complex64;
use rayon::prelude::*;

/// Hard cap of the dense method: `2^26` amplitudes ≈ 1 GiB of state.
pub const SV_MAX_QUBITS: usize = 26;

/// Parallelization threshold: below this dimension the fork overhead
/// outweighs the work and the kernel runs sequentially.
const PAR_DIM_THRESHOLD: usize = 1 << 12;

/// Output-chunk length for the parallel kernel split. Fixed (rather than
/// derived from the worker count) so the partition is machine-independent.
const PAR_CHUNK_LEN: usize = 1 << 11;

const ZERO: Complex64 = Complex64::new(0.0, 0.0);

/// A normalized quantum state over `n` qubits.
#[derive(Debug, Clone)]
pub struct StateVector {
    /// Number of qubits.
    pub n: usize,
    /// `2^n` amplitudes, basis index bit `i` = atom `i` in Rydberg state.
    pub amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-ground state `|00…0⟩`.
    pub fn ground(n: usize) -> Self {
        assert!(
            n <= SV_MAX_QUBITS,
            "state-vector limited to {SV_MAX_QUBITS} qubits, got {n}"
        );
        let mut amps = vec![Complex64::new(0.0, 0.0); 1 << n];
        amps[0] = Complex64::new(1.0, 0.0);
        StateVector { n, amps }
    }

    /// ⟨ψ|ψ⟩ — should stay 1 under unitary evolution.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalize (corrects integrator drift; a no-op within tolerance).
    pub fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 0.0 {
            let inv = 1.0 / n;
            for a in &mut self.amps {
                *a *= inv;
            }
        }
    }

    /// Probability of each basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability that atom `i` is in the Rydberg state.
    pub fn rydberg_population(&self, i: usize) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .filter(|(b, _)| (b >> i) & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Two-point Rydberg correlator ⟨n_i n_j⟩.
    pub fn rydberg_correlation(&self, i: usize, j: usize) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .filter(|(b, _)| (b >> i) & 1 == 1 && (b >> j) & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Energy expectation ⟨ψ|H(ω,δ,φ)|ψ⟩ at instantaneous drive values.
    pub fn energy(&self, h: &RydbergHamiltonian, omega: f64, delta: f64, phase: f64) -> f64 {
        let hpsi = apply_h(h, &self.amps, omega, delta, phase);
        self.amps
            .iter()
            .zip(&hpsi)
            .map(|(a, b)| (a.conj() * b).re)
            .sum()
    }

    /// Fidelity |⟨self|other⟩|².
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n);
        let ov: Complex64 = self
            .amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * b)
            .sum();
        ov.norm_sqr()
    }
}

/// One contiguous slice of the `H·ψ` kernel: fills `out` with
/// `(H ψ)[base..base + out.len()]`.
///
/// The off-diagonal sum is split by source-bit value so each basis state
/// costs `n` complex additions plus two complex multiplies, instead of `n`
/// complex multiplies.
#[inline]
fn apply_h_chunk(
    h: &RydbergHamiltonian,
    psi: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
    base: usize,
    out: &mut [Complex64],
) {
    let half = omega / 2.0;
    let up = Complex64::from_polar(half, -phase); // ⟨b|H|b with bit i cleared⟩
    let down = Complex64::from_polar(half, phase);
    let n = h.n;
    for (k, slot) in out.iter_mut().enumerate() {
        let b = base + k;
        let diag = h.interaction_diag[b] - delta * h.occupation[b] as f64;
        let p = psi[b];
        let mut acc = Complex64::new(diag * p.re, diag * p.im);
        if omega != 0.0 {
            // s[1]: neighbours reached by clearing a set bit (creation side),
            // s[0]: neighbours reached by setting a clear bit.
            let mut s = [ZERO; 2];
            for i in 0..n {
                s[(b >> i) & 1] += psi[b ^ (1 << i)];
            }
            acc += up * s[1] + down * s[0];
        }
        *slot = acc;
    }
}

/// Matrix-free `H(ω,δ,φ)·ψ` into a caller-provided buffer.
///
/// Off-diagonal convention: the drive term is
/// `Ω/2 Σ_i (e^{iφ}|g⟩⟨r|_i + e^{−iφ}|r⟩⟨g|_i)`, so the matrix element that
/// *creates* an excitation on atom `i` (g→r, bit 0→1) carries `e^{−iφ}`.
///
/// Large dimensions are split over disjoint mutable output chunks; every
/// output element is computed independently, so the result is bit-identical
/// to [`apply_h_into_serial`] for any worker count.
pub fn apply_h_into(
    h: &RydbergHamiltonian,
    psi: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
    out: &mut [Complex64],
) {
    let dim = psi.len();
    debug_assert_eq!(dim, h.dim());
    assert_eq!(
        out.len(),
        dim,
        "output buffer must match the state dimension"
    );
    if dim >= PAR_DIM_THRESHOLD {
        out.par_chunks_mut(PAR_CHUNK_LEN)
            .enumerate()
            .for_each(|(ci, chunk)| {
                apply_h_chunk(h, psi, omega, delta, phase, ci * PAR_CHUNK_LEN, chunk);
            });
    } else {
        apply_h_chunk(h, psi, omega, delta, phase, 0, out);
    }
}

/// Forced-sequential reference for [`apply_h_into`] — used by equivalence
/// tests and available for debugging parallel-split regressions.
pub fn apply_h_into_serial(
    h: &RydbergHamiltonian,
    psi: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
    out: &mut [Complex64],
) {
    assert_eq!(out.len(), psi.len());
    apply_h_chunk(h, psi, omega, delta, phase, 0, out);
}

/// Allocating convenience wrapper around [`apply_h_into`].
pub fn apply_h(
    h: &RydbergHamiltonian,
    psi: &[Complex64],
    omega: f64,
    delta: f64,
    phase: f64,
) -> Vec<Complex64> {
    let mut out = vec![ZERO; psi.len()];
    apply_h_into(h, psi, omega, delta, phase, &mut out);
    out
}

/// Reusable scratch buffers for the RK4 integrator: the four stage
/// derivatives plus the stage-input vector. Allocated once per state
/// dimension and reused across every step of [`evolve_sequence_ws`].
#[derive(Debug, Clone, Default)]
pub struct SvWorkspace {
    k1: Vec<Complex64>,
    k2: Vec<Complex64>,
    k3: Vec<Complex64>,
    k4: Vec<Complex64>,
    tmp: Vec<Complex64>,
}

impl SvWorkspace {
    /// Empty workspace; buffers grow on first use and then persist.
    pub fn new() -> Self {
        SvWorkspace::default()
    }

    fn ensure(&mut self, dim: usize) {
        for buf in [
            &mut self.k1,
            &mut self.k2,
            &mut self.k3,
            &mut self.k4,
            &mut self.tmp,
        ] {
            if buf.len() != dim {
                buf.clear();
                buf.resize(dim, ZERO);
            }
        }
    }
}

/// `out = psi + c·k`, chunk-parallel for large dimensions (elementwise, so
/// bit-identical for any worker count).
fn stage_input_into(psi: &[Complex64], k: &[Complex64], c: Complex64, out: &mut [Complex64]) {
    let fill = |base: usize, chunk: &mut [Complex64]| {
        for (j, slot) in chunk.iter_mut().enumerate() {
            let b = base + j;
            *slot = psi[b] + c * k[b];
        }
    };
    if out.len() >= PAR_DIM_THRESHOLD {
        out.par_chunks_mut(PAR_CHUNK_LEN)
            .enumerate()
            .for_each(|(ci, chunk)| fill(ci * PAR_CHUNK_LEN, chunk));
    } else {
        fill(0, out);
    }
}

/// Evolve `state` through one RK4 step of `dt` at fixed drive values
/// (the drive is piecewise-constant over the step — midpoint sampled),
/// reusing the workspace buffers.
///
/// The stage derivatives are stored as `K = H·ψ` (without the `−i` of the
/// Schrödinger right-hand side); the `−i` is folded into the purely
/// imaginary stage/update coefficients, which removes one full pass over
/// the state per stage.
pub fn rk4_step_ws(
    h: &RydbergHamiltonian,
    state: &mut StateVector,
    omega: f64,
    delta: f64,
    phase: f64,
    dt: f64,
    ws: &mut SvWorkspace,
) {
    let dim = state.amps.len();
    ws.ensure(dim);
    apply_h_into(h, &state.amps, omega, delta, phase, &mut ws.k1);
    stage_input_into(
        &state.amps,
        &ws.k1,
        Complex64::new(0.0, -dt / 2.0),
        &mut ws.tmp,
    );
    apply_h_into(h, &ws.tmp, omega, delta, phase, &mut ws.k2);
    stage_input_into(
        &state.amps,
        &ws.k2,
        Complex64::new(0.0, -dt / 2.0),
        &mut ws.tmp,
    );
    apply_h_into(h, &ws.tmp, omega, delta, phase, &mut ws.k3);
    stage_input_into(&state.amps, &ws.k3, Complex64::new(0.0, -dt), &mut ws.tmp);
    apply_h_into(h, &ws.tmp, omega, delta, phase, &mut ws.k4);

    // ψ += (−i dt/6) (K1 + 2 K2 + 2 K3 + K4)
    let c = Complex64::new(0.0, -dt / 6.0);
    let (k1, k2, k3, k4) = (&ws.k1, &ws.k2, &ws.k3, &ws.k4);
    let combine = |base: usize, chunk: &mut [Complex64]| {
        for (j, slot) in chunk.iter_mut().enumerate() {
            let b = base + j;
            *slot += c * (k1[b] + 2.0 * (k2[b] + k3[b]) + k4[b]);
        }
    };
    if dim >= PAR_DIM_THRESHOLD {
        state
            .amps
            .par_chunks_mut(PAR_CHUNK_LEN)
            .enumerate()
            .for_each(|(ci, chunk)| combine(ci * PAR_CHUNK_LEN, chunk));
    } else {
        combine(0, &mut state.amps);
    }
}

/// One RK4 step with a throwaway workspace — compatibility wrapper for
/// callers stepping a handful of times; hot loops should hold an
/// [`SvWorkspace`] and call [`rk4_step_ws`].
pub fn rk4_step(
    h: &RydbergHamiltonian,
    state: &mut StateVector,
    omega: f64,
    delta: f64,
    phase: f64,
    dt: f64,
) {
    let mut ws = SvWorkspace::new();
    rk4_step_ws(h, state, omega, delta, phase, dt, &mut ws);
}

/// Integrator configuration for the state-vector backend.
#[derive(Debug, Clone)]
pub struct SvConfig {
    /// Hard cap on the time step (µs); the effective step also respects the
    /// stability criterion `dt ≤ stability_factor / energy_scale`.
    pub max_dt: f64,
    /// Safety factor in the adaptive step bound (dimensionless).
    pub stability_factor: f64,
}

impl Default for SvConfig {
    fn default() -> Self {
        SvConfig {
            max_dt: 1e-3,
            stability_factor: 0.1,
        }
    }
}

/// Run the full program and return the final state.
pub fn evolve_sequence(seq: &Sequence, c6: f64, cfg: &SvConfig) -> StateVector {
    let mut ws = SvWorkspace::new();
    evolve_sequence_ws(seq, c6, cfg, &mut ws)
}

/// Run the full program reusing the caller's workspace: the RK4 scratch
/// buffers stay alive across all steps (and across calls, for hot loops
/// that evolve many sequences of the same register size).
pub fn evolve_sequence_ws(
    seq: &Sequence,
    c6: f64,
    cfg: &SvConfig,
    ws: &mut SvWorkspace,
) -> StateVector {
    let h = RydbergHamiltonian::new(&seq.register, c6);
    let mut state = StateVector::ground(seq.register.len());

    // Choose a step honoring both the user cap and the energy scale of the
    // strongest drive in the schedule. The coarse probe is reused as the
    // stepping grid whenever the stability bound does not force a finer one.
    let probe = DiscretizedDrive::from_sequence(seq, cfg.max_dt);
    let (omax, dmax) = probe.max_drive();
    let scale = h.energy_scale(omax, dmax).max(1e-9);
    let dt_bound = (cfg.stability_factor / scale).min(cfg.max_dt);
    let drive = probe.refined(seq, dt_bound);

    for &(omega, delta, phase) in &drive.steps {
        rk4_step_ws(&h, &mut state, omega, delta, phase, drive.dt, ws);
    }
    state.renormalize();
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::units::C6_COEFF;
    use hpcqc_program::{Pulse, Register, SequenceBuilder, Waveform};

    fn single_atom_seq(duration: f64, omega: f64, delta: f64) -> Sequence {
        let reg = Register::from_coords(&[(0.0, 0.0)]).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(duration, omega, delta, 0.0).unwrap());
        b.build().unwrap()
    }

    #[test]
    fn ground_state_is_normalized() {
        let s = StateVector::ground(3);
        assert_eq!(s.amps.len(), 8);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
        assert_eq!(s.rydberg_population(0), 0.0);
    }

    #[test]
    fn rabi_oscillation_single_atom() {
        // Resonant drive: P_r(t) = sin²(Ωt/2). Pick Ωt = π for full transfer.
        let omega = 4.0;
        let t_pi = std::f64::consts::PI / omega;
        let seq = single_atom_seq(t_pi, omega, 0.0);
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let p = s.rydberg_population(0);
        assert!((p - 1.0).abs() < 1e-6, "π-pulse transfer: got {p}");
    }

    #[test]
    fn half_pi_pulse_gives_half_population() {
        let omega = 4.0;
        let t = std::f64::consts::PI / (2.0 * omega);
        let seq = single_atom_seq(t, omega, 0.0);
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        assert!((s.rydberg_population(0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn detuned_rabi_reduced_contrast() {
        // Generalized Rabi: max transfer = Ω²/(Ω²+δ²).
        let omega: f64 = 2.0;
        let delta: f64 = 2.0;
        let gen = (omega * omega + delta * delta).sqrt();
        let t = std::f64::consts::PI / gen; // half generalized period
        let seq = single_atom_seq(t, omega, delta);
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let expected = omega * omega / (gen * gen);
        assert!(
            (s.rydberg_population(0) - expected).abs() < 1e-5,
            "got {}, expected {expected}",
            s.rydberg_population(0)
        );
    }

    #[test]
    fn norm_preserved_through_evolution() {
        let reg = Register::linear(4, 8.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(
            Pulse::new(
                Waveform::ramp(0.5, 0.0, 6.0).unwrap(),
                Waveform::ramp(0.5, -8.0, 8.0).unwrap(),
                0.3,
            )
            .unwrap(),
        );
        let seq = b.build().unwrap();
        let h = RydbergHamiltonian::new(&seq.register, C6_COEFF);
        let mut state = StateVector::ground(4);
        let drive = DiscretizedDrive::from_sequence(&seq, 1e-3);
        for &(o, d, p) in &drive.steps {
            rk4_step(&h, &mut state, o, d, p, drive.dt);
        }
        assert!(
            (state.norm_sqr() - 1.0).abs() < 1e-8,
            "norm drift: {}",
            state.norm_sqr()
        );
    }

    #[test]
    fn blockade_suppresses_double_excitation() {
        // Two atoms well inside the blockade radius driven by a π-pulse on
        // the collective enhanced frequency: ⟨n₀n₁⟩ stays tiny.
        let omega: f64 = 4.0;
        let spacing = 4.0; // blockade radius at Ω=4 is (C6/4)^{1/6} ≈ 10.6 µm
        let reg = Register::linear(2, spacing).unwrap();
        let mut b = SequenceBuilder::new(reg);
        let t = std::f64::consts::PI / (omega * 2f64.sqrt());
        b.add_global_pulse(Pulse::constant(t, omega, 0.0, 0.0).unwrap());
        let seq = b.build().unwrap();
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let double = s.rydberg_correlation(0, 1);
        assert!(double < 0.01, "blockade violated: ⟨n0 n1⟩ = {double}");
        // and the symmetric single-excitation state is reached
        let single = s.rydberg_population(0) + s.rydberg_population(1) - 2.0 * double;
        assert!(single > 0.9, "collective excitation missing: {single}");
    }

    #[test]
    fn no_blockade_at_large_distance() {
        // Far-separated atoms behave independently: π-pulse excites both.
        let omega = 4.0;
        let reg = Register::linear(2, 60.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        let t = std::f64::consts::PI / omega;
        b.add_global_pulse(Pulse::constant(t, omega, 0.0, 0.0).unwrap());
        let seq = b.build().unwrap();
        let s = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        assert!(
            s.rydberg_correlation(0, 1) > 0.95,
            "independent atoms both excite"
        );
    }

    #[test]
    fn energy_conserved_under_constant_drive() {
        let reg = Register::linear(3, 7.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 3.0, 1.0, 0.0).unwrap());
        let seq = b.build().unwrap();
        let h = RydbergHamiltonian::new(&seq.register, C6_COEFF);
        let mut state = StateVector::ground(3);
        let drive = DiscretizedDrive::from_sequence(&seq, 1e-3);
        let mut energies = Vec::new();
        for &(o, d, p) in &drive.steps {
            rk4_step(&h, &mut state, o, d, p, drive.dt);
            energies.push(state.energy(&h, o, d, p));
        }
        let e0 = energies[0];
        for e in &energies {
            assert!((e - e0).abs() < 1e-6, "energy drift under constant H");
        }
    }

    #[test]
    fn phase_affects_axis_but_not_population_from_ground() {
        // From |0…0⟩, a phase rotation of the drive changes the Bloch axis
        // but not the excitation probability.
        let omega = 3.0;
        let t = 0.4;
        let reg = Register::from_coords(&[(0.0, 0.0)]).unwrap();
        let mk = |phase: f64| {
            let mut b = SequenceBuilder::new(reg.clone());
            b.add_global_pulse(Pulse::constant(t, omega, 0.0, phase).unwrap());
            evolve_sequence(&b.build().unwrap(), C6_COEFF, &SvConfig::default())
        };
        let p0 = mk(0.0).rydberg_population(0);
        let p1 = mk(1.3).rydberg_population(0);
        assert!((p0 - p1).abs() < 1e-9);
    }

    #[test]
    fn fidelity_of_identical_evolutions_is_one() {
        let seq = single_atom_seq(0.3, 2.0, 1.0);
        let a = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let b = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    /// Deterministic pseudo-random amplitudes (xorshift64) — keeps the
    /// kernel-equivalence tests independent of the rand crate's API.
    fn pseudo_random_amps(dim: usize, mut x: u64) -> Vec<Complex64> {
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..dim).map(|_| Complex64::new(step(), step())).collect()
    }

    #[test]
    fn parallel_kernel_matches_serial_bit_for_bit() {
        // dim 2^13 = 8192 ≥ PAR_DIM_THRESHOLD, so apply_h_into takes the
        // chunk-split path; amplitudes must equal the forced-serial kernel
        // exactly (not approximately).
        let n = 13;
        let reg = Register::linear(n, 7.0).unwrap();
        let h = RydbergHamiltonian::new(&reg, C6_COEFF);
        let psi = pseudo_random_amps(h.dim(), 0x5EED_CAFE);
        let mut par = vec![ZERO; h.dim()];
        let mut ser = vec![ZERO; h.dim()];
        apply_h_into(&h, &psi, 3.2, -1.1, 0.7, &mut par);
        apply_h_into_serial(&h, &psi, 3.2, -1.1, 0.7, &mut ser);
        assert!(par.iter().any(|a| a.norm_sqr() > 0.0));
        assert_eq!(par, ser);
        // Ω = 0 takes the diagonal-only fast path — same contract.
        apply_h_into(&h, &psi, 0.0, 2.5, 0.0, &mut par);
        apply_h_into_serial(&h, &psi, 0.0, 2.5, 0.0, &mut ser);
        assert_eq!(par, ser);
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let mk_seq = |n: usize| {
            let reg = Register::linear(n, 8.0).unwrap();
            let mut b = SequenceBuilder::new(reg);
            b.add_global_pulse(Pulse::constant(0.2, 3.0, 0.5, 0.3).unwrap());
            b.build().unwrap()
        };
        let seq = mk_seq(4);
        let fresh = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let mut ws = SvWorkspace::new();
        let first = evolve_sequence_ws(&seq, C6_COEFF, &SvConfig::default(), &mut ws);
        let second = evolve_sequence_ws(&seq, C6_COEFF, &SvConfig::default(), &mut ws);
        assert_eq!(fresh.amps, first.amps, "workspace path diverges");
        assert_eq!(first.amps, second.amps, "dirty workspace leaks state");
        // Switching register size resizes the scratch without contamination.
        let small = mk_seq(3);
        let with_ws = evolve_sequence_ws(&small, C6_COEFF, &SvConfig::default(), &mut ws);
        let without = evolve_sequence(&small, C6_COEFF, &SvConfig::default());
        assert_eq!(with_ws.amps, without.amps);
    }

    #[test]
    fn rk4_step_compat_wrapper_matches_workspace_step() {
        let reg = Register::linear(3, 7.0).unwrap();
        let h = RydbergHamiltonian::new(&reg, C6_COEFF);
        let mut a = StateVector::ground(3);
        let mut b = StateVector::ground(3);
        let mut ws = SvWorkspace::new();
        for _ in 0..5 {
            rk4_step(&h, &mut a, 3.0, 1.0, 0.2, 1e-3);
            rk4_step_ws(&h, &mut b, 3.0, 1.0, 0.2, 1e-3, &mut ws);
        }
        assert_eq!(a.amps, b.amps);
    }

    #[test]
    #[should_panic(expected = "26 qubits")]
    fn ground_rejects_oversized_register() {
        StateVector::ground(SV_MAX_QUBITS + 1);
    }
}
