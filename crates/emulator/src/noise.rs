//! Measurement (SPAM) noise applied to sampled bitstrings.
//!
//! Neutral-atom readout is destructive fluorescence imaging with two
//! asymmetric error channels: a ground-state atom detected as Rydberg
//! (`epsilon`, "false positive") and a Rydberg atom detected as ground
//! (`epsilon_prime`, "false negative" — dominated by Rydberg decay during
//! imaging). The virtual QPU applies this model to its samples; emulators
//! can optionally enable it to rehearse noisy conditions during development.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// State-preparation-and-measurement error model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpamNoise {
    /// P(measure 1 | state 0).
    pub epsilon: f64,
    /// P(measure 0 | state 1).
    pub epsilon_prime: f64,
}

impl SpamNoise {
    /// Typical production values for neutral-atom readout.
    pub fn typical() -> Self {
        SpamNoise {
            epsilon: 0.01,
            epsilon_prime: 0.03,
        }
    }

    /// No noise (identity channel).
    pub fn none() -> Self {
        SpamNoise {
            epsilon: 0.0,
            epsilon_prime: 0.0,
        }
    }

    /// Validate probabilities are in [0, 1].
    pub fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.epsilon) && (0.0..=1.0).contains(&self.epsilon_prime)
    }

    /// Apply the channel to one measured bitstring over `n` qubits.
    pub fn apply<R: Rng>(&self, bitstring: u64, n: usize, rng: &mut R) -> u64 {
        if self.epsilon == 0.0 && self.epsilon_prime == 0.0 {
            return bitstring;
        }
        let mut out = bitstring;
        for i in 0..n {
            let bit = (bitstring >> i) & 1;
            let flip_p = if bit == 0 {
                self.epsilon
            } else {
                self.epsilon_prime
            };
            if flip_p > 0.0 && rng.gen::<f64>() < flip_p {
                out ^= 1 << i;
            }
        }
        out
    }

    /// The expected *measured* occupation given a true occupation `p`:
    /// `p_meas = p (1 − ε′) + (1 − p) ε`. Used by tests and by result
    /// un-biasing utilities.
    pub fn biased_occupation(&self, p_true: f64) -> f64 {
        p_true * (1.0 - self.epsilon_prime) + (1.0 - p_true) * self.epsilon
    }

    /// Invert [`Self::biased_occupation`] to estimate the true occupation from
    /// a measured one (clamped to [0, 1]). Returns `None` when the channel is
    /// non-invertible (`ε + ε′ = 1`).
    pub fn unbias_occupation(&self, p_meas: f64) -> Option<f64> {
        let denom = 1.0 - self.epsilon - self.epsilon_prime;
        if denom.abs() < 1e-12 {
            return None;
        }
        Some(((p_meas - self.epsilon) / denom).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn no_noise_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let n = SpamNoise::none();
        for b in [0u64, 0b1010, u64::MAX >> 1] {
            assert_eq!(n.apply(b, 20, &mut rng), b);
        }
    }

    #[test]
    fn typical_is_valid() {
        assert!(SpamNoise::typical().is_valid());
        assert!(!SpamNoise {
            epsilon: -0.1,
            epsilon_prime: 0.0
        }
        .is_valid());
        assert!(!SpamNoise {
            epsilon: 0.0,
            epsilon_prime: 1.5
        }
        .is_valid());
    }

    #[test]
    fn flip_rates_match_parameters() {
        let noise = SpamNoise {
            epsilon: 0.05,
            epsilon_prime: 0.2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let trials = 100_000;
        let mut zeros_flipped = 0u32;
        let mut ones_flipped = 0u32;
        for _ in 0..trials {
            // one qubit in 0, one in 1 (bits 0 and 1 of 0b10)
            let out = noise.apply(0b10, 2, &mut rng);
            if out & 1 == 1 {
                zeros_flipped += 1;
            }
            if (out >> 1) & 1 == 0 {
                ones_flipped += 1;
            }
        }
        let f0 = zeros_flipped as f64 / trials as f64;
        let f1 = ones_flipped as f64 / trials as f64;
        assert!((f0 - 0.05).abs() < 0.005, "false-positive rate {f0}");
        assert!((f1 - 0.2).abs() < 0.01, "false-negative rate {f1}");
    }

    #[test]
    fn bias_and_unbias_roundtrip() {
        let n = SpamNoise::typical();
        for p in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let biased = n.biased_occupation(p);
            let rec = n.unbias_occupation(biased).unwrap();
            assert!(
                (rec - p).abs() < 1e-12,
                "p={p}: biased {biased}, recovered {rec}"
            );
        }
    }

    #[test]
    fn degenerate_channel_not_invertible() {
        let n = SpamNoise {
            epsilon: 0.5,
            epsilon_prime: 0.5,
        };
        assert!(n.unbias_occupation(0.5).is_none());
    }

    #[test]
    fn deterministic_with_seed() {
        let noise = SpamNoise::typical();
        let mut r1 = ChaCha8Rng::seed_from_u64(9);
        let mut r2 = ChaCha8Rng::seed_from_u64(9);
        for b in 0..64u64 {
            assert_eq!(noise.apply(b, 6, &mut r1), noise.apply(b, 6, &mut r2));
        }
    }
}
