//! # hpcqc-emulator — classical emulators for analog neutral-atom programs
//!
//! Rust stand-in for the vendor's open-source emulator suite (paper ref [5]):
//!
//! * [`SvBackend`] — exact state-vector integration of the Rydberg
//!   Hamiltonian (RK4, matrix-free, rayon-parallel kernel), up to ~20 qubits.
//! * [`MpsBackend`] — matrix-product-state TEBD with a configurable bond
//!   dimension `χ`; `χ = 1` is the product-state "mock QPU" mode the paper's
//!   footnote 3 describes for end-to-end testing at arbitrary size.
//!
//! Both implement the [`Emulator`] trait and return the backend-independent
//! [`SampleResult`], so the QRMI layer and the runtime treat them exactly
//! like hardware.

pub mod backend;
pub mod batch;
pub mod hamiltonian;
pub mod linalg;
pub mod mps;
pub mod noise;
pub mod result;
pub mod statevector;

pub use backend::{
    sampling_distribution, Emulator, EmulatorError, MpsBackend, SvBackend, SvPhaseTimings,
};
pub use batch::{BatchRunner, SweepPoint};
pub use hamiltonian::{DiscretizedDrive, RydbergHamiltonian};
pub use mps::{Mps, MpsConfig};
pub use noise::SpamNoise;
pub use result::{Counts, SampleResult};
pub use statevector::{
    evolve_sequence, evolve_sequence_ws, StateVector, SvConfig, SvKernel, SvWorkspace,
    SV_MAX_QUBITS,
};
