//! Batched parameter-sweep execution over one program template.
//!
//! Hybrid workloads (variational loops, phase-diagram scans, QAOA-style
//! parameter searches) run the *same* program shape many times with
//! different drive parameters. Submitting each point as an independent run
//! repeats work that depends only on the template: building the
//! [`RydbergHamiltonian`] (fixed by the register), allocating RK4
//! workspaces, and discretizing the schedule. [`BatchRunner`] executes a
//! whole sweep with those shared, and — for all-constant templates — builds
//! every point's stepping grid by transforming the template's grid instead
//! of re-sampling waveforms.
//!
//! The defining contract, asserted bit-for-bit by the tests: a sweep over
//! `N` points with base seed `s` returns exactly what `N` independent
//! [`Emulator::run`] calls on the materialized programs with seeds
//! `s, s+1, …, s+N−1` would return. Batching is an execution strategy, not
//! a semantic: per-point validation, integration grids, and the
//! counter-derived per-shot RNG streams are all identical to the
//! sequential path.

use crate::backend::{sample_outcomes, sampling_distribution, Emulator, EmulatorError, SvBackend};
use crate::hamiltonian::{DiscretizedDrive, RydbergHamiltonian};
use crate::result::SampleResult;
use crate::statevector::{evolve_drive_ws, evolve_sequence_ws_h, SvWorkspace, SV_MAX_QUBITS};
use hpcqc_program::sequence::GLOBAL_CHANNEL;
use hpcqc_program::{ProgramIr, Pulse, Sequence, TimedPulse, Waveform};
use rand::distributions::Distribution;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One parameter assignment of a sweep: a pointwise transform applied to a
/// template [`Sequence`]. Durations and geometry are never changed, so every
/// materialized program shares the template's register, schedule timing, and
/// Hamiltonian structure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Multiplier on the Rabi amplitude waveform Ω(t).
    pub omega_scale: f64,
    /// Multiplier on the detuning waveform δ(t).
    pub delta_scale: f64,
    /// Additive offset on every pulse's carrier phase (rad).
    pub phase_offset: f64,
}

impl SweepPoint {
    /// The point that materializes the template unchanged.
    pub fn identity() -> Self {
        SweepPoint {
            omega_scale: 1.0,
            delta_scale: 1.0,
            phase_offset: 0.0,
        }
    }

    /// Apply this point to a template: scale amplitude and detuning
    /// waveforms pointwise, offset each pulse's phase. Channels, start
    /// times, durations, register, and measurement basis are untouched.
    pub fn materialize(&self, template: &Sequence) -> Sequence {
        Sequence {
            register: template.register.clone(),
            measurement_basis: template.measurement_basis.clone(),
            pulses: template
                .pulses
                .iter()
                .map(|tp| TimedPulse {
                    channel: tp.channel.clone(),
                    start: tp.start,
                    pulse: Pulse {
                        amplitude: tp.pulse.amplitude.scaled(self.omega_scale),
                        detuning: tp.pulse.detuning.scaled(self.delta_scale),
                        phase: tp.pulse.phase + self.phase_offset,
                    },
                })
                .collect(),
        }
    }
}

/// Is every global-channel pulse of the template constant in both amplitude
/// and detuning? Only then does `sample(t) · factor` equal
/// `scaled(factor).sample(t)` bit-for-bit (a constant's sample *is* its
/// stored value), which is what licenses the grid-transform fast path.
fn is_constant_template(seq: &Sequence) -> bool {
    seq.pulses
        .iter()
        .filter(|tp| tp.channel == GLOBAL_CHANNEL)
        .all(|tp| {
            matches!(tp.pulse.amplitude, Waveform::Constant { .. })
                && matches!(tp.pulse.detuning, Waveform::Constant { .. })
        })
}

/// A template's drive sources on a midpoint grid: `Some((Ω, δ, φ))` inside
/// a global pulse, `None` in an idle gap.
type TemplateGrid = Vec<Option<(f64, f64, f64)>>;

/// The template's drive sources on an `nsteps` midpoint grid:
/// `Some((Ω, δ, φ))` holds the stored constants of the global pulse
/// covering the step midpoint (the same pulse `drive_at` would select);
/// `None` marks an idle gap, where the drive is exactly `(0, 0, 0)`.
fn constant_grid(seq: &Sequence, nsteps: usize) -> TemplateGrid {
    let total = seq.duration();
    let dt = total / nsteps as f64;
    (0..nsteps)
        .map(|k| {
            let t = (k as f64 + 0.5) * dt;
            for tp in &seq.pulses {
                if tp.channel != GLOBAL_CHANNEL {
                    continue;
                }
                let end = tp.start + tp.pulse.duration();
                if t >= tp.start && t <= end {
                    let (o, d) = match (&tp.pulse.amplitude, &tp.pulse.detuning) {
                        (
                            Waveform::Constant { value: o, .. },
                            Waveform::Constant { value: d, .. },
                        ) => (*o, *d),
                        _ => unreachable!("constant_grid requires a constant template"),
                    };
                    return Some((o, d, tp.pulse.phase));
                }
            }
            None
        })
        .collect()
}

/// Transform a template grid into the drive steps of one sweep point. The
/// arithmetic mirrors [`SweepPoint::materialize`] + constant-waveform
/// sampling operation-for-operation, so the result is bit-identical to
/// discretizing the materialized sequence.
fn transform_grid(grid: &[Option<(f64, f64, f64)>], point: &SweepPoint) -> Vec<(f64, f64, f64)> {
    grid.iter()
        .map(|src| match src {
            Some((o, d, p)) => (
                o * point.omega_scale,
                d * point.delta_scale,
                p + point.phase_offset,
            ),
            None => (0.0, 0.0, 0.0),
        })
        .collect()
}

/// Executes sweeps on a state-vector backend with template-level work
/// shared across points: one Hamiltonian build, one workspace allocation,
/// and (for constant templates) one schedule discretization per distinct
/// step count instead of one per point.
pub struct BatchRunner<'a> {
    backend: &'a SvBackend,
}

impl<'a> BatchRunner<'a> {
    /// A runner borrowing the backend's configuration, noise, and limits.
    pub fn new(backend: &'a SvBackend) -> Self {
        BatchRunner { backend }
    }

    /// Run `template` at every sweep point, seeds `seed_base + k`.
    ///
    /// Fails fast with the first point's error (the same error `N`
    /// sequential runs would hit first): every point is validated against
    /// the device spec individually, because a scaled drive can violate
    /// limits the template satisfies.
    pub fn run_sweep(
        &self,
        template: &ProgramIr,
        points: &[SweepPoint],
        seed_base: u64,
    ) -> Result<Vec<SampleResult>, EmulatorError> {
        let seq = &template.sequence;
        let n = seq.num_qubits();
        let limit = self.backend.max_qubits.min(SV_MAX_QUBITS);
        if n > limit {
            return Err(EmulatorError::TooLarge { qubits: n, limit });
        }
        let spec = self.backend.spec();
        let cfg = &self.backend.config;
        let h = RydbergHamiltonian::new(&seq.register, spec.c6_coefficient);
        let mut ws = SvWorkspace::new();

        let fast = is_constant_template(seq);
        let total = seq.duration();
        let probe_steps = DiscretizedDrive::steps_for(total, cfg.max_dt);
        // Template grids by step count; the probe grid is shared by every
        // point, finer grids appear only when a point's stronger drive
        // tightens the stability bound.
        let mut grids: HashMap<usize, TemplateGrid> = HashMap::new();

        let mut results = Vec::with_capacity(points.len());
        for (k, point) in points.iter().enumerate() {
            let seed = seed_base.wrapping_add(k as u64);
            let seq_k = point.materialize(seq);
            let violations = hpcqc_program::validate(&seq_k, &spec);
            if !violations.is_empty() {
                return Err(EmulatorError::Validation(violations));
            }
            let state = if fast {
                let probe_grid = grids
                    .entry(probe_steps)
                    .or_insert_with(|| constant_grid(seq, probe_steps));
                let probe = DiscretizedDrive {
                    dt: total / probe_steps as f64,
                    steps: transform_grid(probe_grid, point),
                };
                // Step control exactly as `evolve_sequence_ws_h`: bound from
                // this point's own drive extrema, reuse the probe grid when
                // the bound doesn't force a finer one.
                let (omax, dmax) = probe.max_drive();
                let scale = h.energy_scale(omax, dmax).max(1e-9);
                let dt_bound = (cfg.stability_factor / scale).min(cfg.max_dt);
                let nsteps = DiscretizedDrive::steps_for(total, dt_bound);
                let drive = if nsteps == probe_steps {
                    probe
                } else {
                    let grid = grids
                        .entry(nsteps)
                        .or_insert_with(|| constant_grid(seq, nsteps));
                    DiscretizedDrive {
                        dt: total / nsteps as f64,
                        steps: transform_grid(grid, point),
                    }
                };
                evolve_drive_ws(&h, &drive, cfg, &mut ws)
            } else {
                // General templates (ramps, Blackman, …): scaling does not
                // commute with sampling at the bit level, so discretize the
                // materialized sequence — the Hamiltonian and workspace are
                // still shared.
                evolve_sequence_ws_h(&h, &seq_k, cfg, &mut ws)
            };
            let probs = state.probabilities();
            let dist = sampling_distribution(&probs)?;
            let outcomes = sample_outcomes(template.shots, n, seed, &self.backend.noise, |rng| {
                dist.sample(rng) as u64
            });
            results.push(SampleResult::from_shots(n, &outcomes, self.backend.name()));
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::SpamNoise;
    use hpcqc_program::{Register, SequenceBuilder};

    /// QAOA-style all-constant template: alternating drive layers with
    /// distinct phases on a blockaded chain.
    fn constant_template(n: usize, shots: u32) -> ProgramIr {
        let reg = Register::linear(n, 10.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.1, 4.0, 1.0, 0.0).unwrap());
        b.add_global_pulse(Pulse::constant(0.1, 3.0, -2.0, 0.7).unwrap());
        b.add_global_pulse(Pulse::constant(0.1, 4.0, 1.5, 1.9).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "batch-test")
    }

    /// Template with ramps: exercises the general (re-discretizing) path.
    fn ramp_template(n: usize, shots: u32) -> ProgramIr {
        let reg = Register::linear(n, 10.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(
            Pulse::new(
                Waveform::ramp(0.2, 0.0, 4.0).unwrap(),
                Waveform::ramp(0.2, -2.0, 2.0).unwrap(),
                0.3,
            )
            .unwrap(),
        );
        ProgramIr::new(b.build().unwrap(), shots, "batch-test")
    }

    fn grid_points(n: usize) -> Vec<SweepPoint> {
        (0..n)
            .map(|k| SweepPoint {
                omega_scale: 0.5 + 0.05 * k as f64,
                delta_scale: -1.5 + 0.1 * k as f64,
                phase_offset: 0.2 * k as f64,
            })
            .collect()
    }

    fn sequential_reference(
        backend: &SvBackend,
        template: &ProgramIr,
        points: &[SweepPoint],
        seed_base: u64,
    ) -> Vec<SampleResult> {
        points
            .iter()
            .enumerate()
            .map(|(k, p)| {
                let mut ir = template.clone();
                ir.sequence = p.materialize(&template.sequence);
                backend
                    .run(&ir, seed_base.wrapping_add(k as u64))
                    .expect("sequential run succeeds")
            })
            .collect()
    }

    #[test]
    fn identity_point_materializes_template_unchanged() {
        let tpl = constant_template(3, 10).sequence;
        assert_eq!(SweepPoint::identity().materialize(&tpl), tpl);
        let tpl = ramp_template(3, 10).sequence;
        assert_eq!(SweepPoint::identity().materialize(&tpl), tpl);
    }

    #[test]
    fn materialize_scales_values_not_timing() {
        let tpl = constant_template(2, 10).sequence;
        let p = SweepPoint {
            omega_scale: 0.5,
            delta_scale: -2.0,
            phase_offset: 1.0,
        };
        let m = p.materialize(&tpl);
        assert_eq!(m.duration(), tpl.duration());
        assert_eq!(m.pulses.len(), tpl.pulses.len());
        for (a, b) in m.pulses.iter().zip(&tpl.pulses) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.pulse.duration(), b.pulse.duration());
            assert_eq!(a.pulse.phase, b.pulse.phase + 1.0);
        }
        let (o, d, _) = m.drive_at(GLOBAL_CHANNEL, 0.05);
        assert_eq!(o, 4.0 * 0.5);
        assert_eq!(d, 1.0 * -2.0);
    }

    #[test]
    fn batched_constant_sweep_matches_sequential_runs_bit_for_bit() {
        // The tentpole contract: a 32-point sweep through the BatchRunner
        // equals 32 independent backend runs exactly — same counts, same
        // per-shot streams, fast path and all.
        let backend = SvBackend::default();
        let tpl = constant_template(6, 64);
        let points = grid_points(32);
        let seed_base = 1234;
        let batched = BatchRunner::new(&backend)
            .run_sweep(&tpl, &points, seed_base)
            .unwrap();
        let sequential = sequential_reference(&backend, &tpl, &points, seed_base);
        assert_eq!(batched.len(), 32);
        assert_eq!(batched, sequential);
    }

    #[test]
    fn batched_ramp_sweep_matches_sequential_runs_bit_for_bit() {
        // General path (per-point discretization): same contract.
        let backend = SvBackend::default();
        let tpl = ramp_template(4, 50);
        let points = grid_points(6);
        let batched = BatchRunner::new(&backend)
            .run_sweep(&tpl, &points, 9)
            .unwrap();
        let sequential = sequential_reference(&backend, &tpl, &points, 9);
        assert_eq!(batched, sequential);
    }

    #[test]
    fn batched_sweep_with_noise_matches_sequential() {
        // SPAM draws come from the same per-shot streams as the outcome
        // draw; the batch path must reproduce them too.
        let backend = SvBackend {
            noise: SpamNoise {
                epsilon: 0.03,
                epsilon_prime: 0.07,
            },
            ..SvBackend::default()
        };
        let tpl = constant_template(4, 100);
        let points = grid_points(5);
        let batched = BatchRunner::new(&backend)
            .run_sweep(&tpl, &points, 77)
            .unwrap();
        let sequential = sequential_reference(&backend, &tpl, &points, 77);
        assert_eq!(batched, sequential);
    }

    #[test]
    fn emulator_trait_sweep_agrees_with_batch_runner() {
        // `SvBackend::run_sweep` routes through the BatchRunner; the trait's
        // default (sequential) implementation must agree with it.
        let backend = SvBackend::default();
        let tpl = constant_template(5, 40);
        let points = grid_points(8);
        let via_trait = backend.run_sweep(&tpl, &points, 5).unwrap();
        let sequential = sequential_reference(&backend, &tpl, &points, 5);
        assert_eq!(via_trait, sequential);
    }

    #[test]
    fn scaled_point_can_violate_spec_template_satisfies() {
        // Ω scaled past the emulator channel limit: the *point* must be
        // validated, not just the template.
        let backend = SvBackend::default();
        let tpl = constant_template(3, 10);
        assert!(hpcqc_program::validate(&tpl.sequence, &backend.spec()).is_empty());
        let bad = [SweepPoint {
            omega_scale: 100.0, // 4.0 → 400 rad/µs, limit is 125.7
            ..SweepPoint::identity()
        }];
        match BatchRunner::new(&backend).run_sweep(&tpl, &bad, 1) {
            Err(EmulatorError::Validation(v)) => assert!(!v.is_empty()),
            other => panic!("expected Validation, got {other:?}"),
        }
    }

    #[test]
    fn oversized_register_rejected_before_any_work() {
        let backend = SvBackend::default();
        let tpl = constant_template(21, 10);
        match BatchRunner::new(&backend).run_sweep(&tpl, &[SweepPoint::identity()], 1) {
            Err(EmulatorError::TooLarge {
                qubits: 21,
                limit: 20,
            }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn empty_sweep_returns_no_results() {
        let backend = SvBackend::default();
        let tpl = constant_template(3, 10);
        let res = BatchRunner::new(&backend).run_sweep(&tpl, &[], 1).unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn gap_steps_transform_to_zero_drive() {
        // A template whose global channel ends before another channel does
        // has trailing gap steps; they must stay exactly (0, 0, 0) under any
        // point (notably: no phase offset leaks into idle time).
        let reg = Register::linear(2, 10.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.1, 4.0, 1.0, 0.2).unwrap());
        b.add_pulse("aux", Pulse::constant(0.3, 0.0, 0.0, 0.0).unwrap());
        let seq = b.build().unwrap();
        assert!(is_constant_template(&seq));
        let p = SweepPoint {
            omega_scale: 2.0,
            delta_scale: 3.0,
            phase_offset: 0.9,
        };
        let direct = DiscretizedDrive::from_sequence(&p.materialize(&seq), 0.011);
        let nsteps = direct.steps.len();
        let grid = constant_grid(&seq, nsteps);
        let gap_from = nsteps.div_ceil(3); // global pulse covers the first third
        assert!(
            grid[..gap_from - 1].iter().all(|s| s.is_some()),
            "pulse region"
        );
        assert!(grid[gap_from..].iter().all(|s| s.is_none()), "gap region");
        let steps = transform_grid(&grid, &p);
        for &(o, d, ph) in &steps[gap_from..] {
            assert_eq!((o, d, ph), (0.0, 0.0, 0.0));
        }
        // and the transformed steps match the materialized sequence's own
        // discretization exactly
        assert_eq!(direct.steps, steps);
    }

    #[test]
    fn ramp_template_is_not_constant() {
        assert!(!is_constant_template(&ramp_template(2, 1).sequence));
        assert!(is_constant_template(&constant_template(2, 1).sequence));
    }
}
