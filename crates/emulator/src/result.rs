//! Sampled measurement results and derived observables.
//!
//! Every backend in the stack — state vector, MPS, virtual QPU — returns the
//! same [`SampleResult`]: bitstring counts plus execution metadata. Keeping
//! the result type backend-independent is what makes emulator↔QPU swaps
//! invisible to application code (Figure 1 of the paper).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counts of measured bitstrings. Bit `i` of the key corresponds to atom `i`
/// (1 = Rydberg). `BTreeMap` keeps serialization deterministic.
pub type Counts = BTreeMap<u64, u32>;

/// The outcome of running a program for some number of shots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleResult {
    /// Number of qubits measured.
    pub n_qubits: usize,
    /// Total shots taken.
    pub shots: u32,
    /// Bitstring → count.
    pub counts: Counts,
    /// Name of the backend that produced the result.
    pub backend: String,
    /// Truncation error accumulated by approximate backends (0 for exact).
    pub truncation_error: f64,
    /// Wall-clock the execution took on the backend, seconds (simulated time
    /// for the virtual QPU: shots / shot-rate).
    pub execution_secs: f64,
}

impl SampleResult {
    /// Assemble from a list of raw shot outcomes.
    pub fn from_shots(n_qubits: usize, outcomes: &[u64], backend: impl Into<String>) -> Self {
        let mut counts = Counts::new();
        for &o in outcomes {
            *counts.entry(o).or_insert(0) += 1;
        }
        SampleResult {
            n_qubits,
            shots: outcomes.len() as u32,
            counts,
            backend: backend.into(),
            truncation_error: 0.0,
            execution_secs: 0.0,
        }
    }

    /// Empirical probability of a specific bitstring.
    pub fn probability(&self, bitstring: u64) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        *self.counts.get(&bitstring).unwrap_or(&0) as f64 / self.shots as f64
    }

    /// Empirical Rydberg occupation of atom `i`: fraction of shots with
    /// bit `i` set.
    pub fn occupation(&self, i: usize) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .counts
            .iter()
            .filter(|(b, _)| (*b >> i) & 1 == 1)
            .map(|(_, &c)| c as u64)
            .sum();
        hits as f64 / self.shots as f64
    }

    /// Mean total Rydberg excitation number per shot.
    pub fn mean_excitations(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let total: u64 = self
            .counts
            .iter()
            .map(|(b, &c)| b.count_ones() as u64 * c as u64)
            .sum();
        total as f64 / self.shots as f64
    }

    /// Empirical two-point correlator ⟨n_i n_j⟩.
    pub fn correlation(&self, i: usize, j: usize) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .counts
            .iter()
            .filter(|(b, _)| (*b >> i) & 1 == 1 && (*b >> j) & 1 == 1)
            .map(|(_, &c)| c as u64)
            .sum();
        hits as f64 / self.shots as f64
    }

    /// Total variation distance between the empirical distributions of two
    /// results: `TV = ½ Σ_b |p(b) − q(b)| ∈ [0, 1]`. The statistic used by
    /// the Figure-1 portability experiment to compare backends.
    pub fn total_variation_distance(&self, other: &SampleResult) -> f64 {
        let mut keys: std::collections::BTreeSet<u64> = self.counts.keys().copied().collect();
        keys.extend(other.counts.keys().copied());
        0.5 * keys
            .into_iter()
            .map(|k| (self.probability(k) - other.probability(k)).abs())
            .sum::<f64>()
    }

    /// Render a bitstring key as the conventional string with atom 0
    /// leftmost, e.g. `0b011` over 3 qubits → `"110"`.
    pub fn format_bitstring(&self, bitstring: u64) -> String {
        (0..self.n_qubits)
            .map(|i| if (bitstring >> i) & 1 == 1 { '1' } else { '0' })
            .collect()
    }

    /// The most frequent outcomes, descending, up to `k`.
    pub fn top_k(&self, k: usize) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self.counts.iter().map(|(&b, &c)| (b, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res() -> SampleResult {
        // shots: 00 x4, 01 x3, 11 x2, 10 x1  (bit0 = atom0)
        let outcomes = [0b00, 0b00, 0b00, 0b00, 0b01, 0b01, 0b01, 0b11, 0b11, 0b10];
        SampleResult::from_shots(2, &outcomes, "test")
    }

    #[test]
    fn counts_aggregate_correctly() {
        let r = res();
        assert_eq!(r.shots, 10);
        assert_eq!(r.counts[&0b00], 4);
        assert_eq!(r.counts[&0b01], 3);
        assert_eq!(r.counts[&0b11], 2);
        assert_eq!(r.counts[&0b10], 1);
    }

    #[test]
    fn probability_and_occupation() {
        let r = res();
        assert!((r.probability(0b00) - 0.4).abs() < 1e-12);
        assert!((r.probability(0b111) - 0.0).abs() < 1e-12);
        // atom 0 set in 01 (3) and 11 (2) → 0.5
        assert!((r.occupation(0) - 0.5).abs() < 1e-12);
        // atom 1 set in 11 (2) and 10 (1) → 0.3
        assert!((r.occupation(1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn mean_excitations_and_correlation() {
        let r = res();
        // total excitations: 0*4 + 1*3 + 2*2 + 1*1 = 8 → 0.8
        assert!((r.mean_excitations() - 0.8).abs() < 1e-12);
        assert!((r.correlation(0, 1) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn tv_distance_properties() {
        let r = res();
        assert_eq!(r.total_variation_distance(&r), 0.0);
        let other = SampleResult::from_shots(2, &[0b10, 0b10], "x");
        let d = r.total_variation_distance(&other);
        assert!(d > 0.0 && d <= 1.0);
        // symmetric
        assert!((d - other.total_variation_distance(&r)).abs() < 1e-12);
        // disjoint supports → 1
        let a = SampleResult::from_shots(1, &[0], "a");
        let b = SampleResult::from_shots(1, &[1], "b");
        assert!((a.total_variation_distance(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn format_bitstring_atom0_leftmost() {
        let r = res();
        assert_eq!(r.format_bitstring(0b01), "10");
        assert_eq!(r.format_bitstring(0b10), "01");
    }

    #[test]
    fn top_k_sorted_descending_with_tiebreak() {
        let r = res();
        let top = r.top_k(2);
        assert_eq!(top, vec![(0b00, 4), (0b01, 3)]);
        assert_eq!(r.top_k(100).len(), 4);
    }

    #[test]
    fn empty_result_is_safe() {
        let r = SampleResult::from_shots(3, &[], "empty");
        assert_eq!(r.shots, 0);
        assert_eq!(r.probability(0), 0.0);
        assert_eq!(r.occupation(1), 0.0);
        assert_eq!(r.mean_excitations(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let r = res();
        let json = serde_json::to_string(&r).unwrap();
        let back: SampleResult = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
