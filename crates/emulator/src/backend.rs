//! The emulator backends behind a single execution interface.
//!
//! [`Emulator`] is the contract shared by the state-vector backend
//! ([`SvBackend`]) and the tensor-network backend ([`MpsBackend`]). The QRMI
//! layer wraps these as resources; the runtime environment picks one at
//! configuration time — never in source code.

use crate::batch::SweepPoint;
use crate::mps::{evolve_sequence_mps, MpsConfig};
use crate::noise::SpamNoise;
use crate::result::SampleResult;
use crate::statevector::{evolve_sequence, SvConfig, SV_MAX_QUBITS};
use hpcqc_program::{DeviceSpec, ProgramIr};
use rand::distributions::{Distribution, WeightedIndex};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Errors from emulator execution.
#[derive(Debug, Clone, PartialEq)]
pub enum EmulatorError {
    /// The program violates this backend's device spec.
    Validation(Vec<hpcqc_program::Violation>),
    /// The register is too large for the backend's method.
    TooLarge { qubits: usize, limit: usize },
    /// The integrated state produced a probability vector unusable for
    /// sampling (non-finite, negative, or all-zero weights) — the signature
    /// of a pathological integration rather than a user error.
    DegenerateDistribution { detail: String },
}

impl std::fmt::Display for EmulatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmulatorError::Validation(v) => {
                write!(f, "program invalid for device: {} violation(s)", v.len())
            }
            EmulatorError::TooLarge { qubits, limit } => {
                write!(
                    f,
                    "register of {qubits} qubits exceeds backend limit {limit}"
                )
            }
            EmulatorError::DegenerateDistribution { detail } => {
                write!(f, "degenerate sampling distribution: {detail}")
            }
        }
    }
}

impl std::error::Error for EmulatorError {}

/// SplitMix64 finalizer — decorrelates nearby integers into independent
/// 64-bit seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Counter-derived RNG stream for one shot: mixing `(seed, shot)` gives
/// every shot its own independent deterministic stream, so shots can be
/// drawn in any order — or concurrently — with bit-identical results.
pub(crate) fn shot_rng(seed: u64, shot: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(splitmix64(
        seed.wrapping_add(shot.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    ))
}

/// Shots per work chunk for parallel sampling. Fixed so the partition (and
/// thus the result) is machine-independent.
const SHOT_CHUNK: usize = 64;

/// Draw `shots` outcomes with per-shot counter-derived RNG streams,
/// chunk-parallel over the output buffer. `draw` produces the raw
/// bitstring; SPAM noise is applied from the same per-shot stream.
/// Crate-visible so the batch runner samples through the exact same path.
pub(crate) fn sample_outcomes<F>(
    shots: u32,
    n: usize,
    seed: u64,
    noise: &SpamNoise,
    draw: F,
) -> Vec<u64>
where
    F: Fn(&mut ChaCha8Rng) -> u64 + Sync,
{
    let mut outcomes = vec![0u64; shots as usize];
    outcomes
        .par_chunks_mut(SHOT_CHUNK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                let shot = (ci * SHOT_CHUNK + k) as u64;
                let mut rng = shot_rng(seed, shot);
                let raw = draw(&mut rng);
                *slot = noise.apply(raw, n, &mut rng);
            }
        });
    outcomes
}

/// Build the shot-sampling distribution from a probability vector,
/// renormalizing integrator drift and rejecting pathological states
/// instead of panicking.
pub fn sampling_distribution(probs: &[f64]) -> Result<WeightedIndex, EmulatorError> {
    let mut total = 0.0f64;
    for &p in probs {
        if !p.is_finite() || p < 0.0 {
            return Err(EmulatorError::DegenerateDistribution {
                detail: format!("invalid probability {p}"),
            });
        }
        total += p;
    }
    if !total.is_finite() || total <= 0.0 {
        return Err(EmulatorError::DegenerateDistribution {
            detail: format!("total weight {total}"),
        });
    }
    WeightedIndex::new(probs.iter().map(|p| p / total)).map_err(|e| {
        EmulatorError::DegenerateDistribution {
            detail: e.to_string(),
        }
    })
}

/// A classical backend that can execute analog programs.
pub trait Emulator: Send + Sync {
    /// Stable backend name used in results and telemetry.
    fn name(&self) -> &str;

    /// The device spec this backend enforces.
    fn spec(&self) -> DeviceSpec;

    /// Execute the program for `ir.shots` shots with a deterministic seed.
    fn run(&self, ir: &ProgramIr, seed: u64) -> Result<SampleResult, EmulatorError>;

    /// Execute `template` at every [`SweepPoint`], seeding point `k` with
    /// `seed_base + k`. The default materializes and runs each point
    /// independently; backends with a batched engine (the state-vector
    /// backend's [`crate::BatchRunner`]) override this with an
    /// implementation that returns bit-identical results faster.
    fn run_sweep(
        &self,
        template: &ProgramIr,
        points: &[SweepPoint],
        seed_base: u64,
    ) -> Result<Vec<SampleResult>, EmulatorError> {
        points
            .iter()
            .enumerate()
            .map(|(k, p)| {
                let mut ir = template.clone();
                ir.sequence = p.materialize(&template.sequence);
                self.run(&ir, seed_base.wrapping_add(k as u64))
            })
            .collect()
    }
}

/// Where one [`SvBackend::run_timed`] call spent its wall-clock,
/// milliseconds. Both phases are measured inside the *same* run, so
/// `total_ms = evolve_ms + sample_ms` holds exactly and the decomposition
/// is monotone by construction — unlike subtracting two independently
/// min-timed runs, where machine noise can make the "total" land below the
/// "evolve" and the difference clamp to zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvPhaseTimings {
    /// Hamiltonian build + RK4 integration of the full schedule.
    pub evolve_ms: f64,
    /// Distribution build + shot sampling + SPAM + counting.
    pub sample_ms: f64,
    /// The whole run (`evolve_ms + sample_ms`).
    pub total_ms: f64,
}

/// Exact state-vector backend (EMU-SV stand-in). Limit ~20 qubits.
#[derive(Debug, Clone)]
pub struct SvBackend {
    /// Qubit cap enforced before exponential blow-up.
    pub max_qubits: usize,
    /// Integrator settings.
    pub config: SvConfig,
    /// Optional SPAM noise rehearsal.
    pub noise: SpamNoise,
}

impl Default for SvBackend {
    fn default() -> Self {
        SvBackend {
            max_qubits: 20,
            config: SvConfig::default(),
            noise: SpamNoise::none(),
        }
    }
}

impl SvBackend {
    /// [`Emulator::run`] with per-phase wall-clock attribution. One run,
    /// instrumented at the evolve/sample boundary — see [`SvPhaseTimings`]
    /// for why the phases must come from a single run.
    pub fn run_timed(
        &self,
        ir: &ProgramIr,
        seed: u64,
    ) -> Result<(SampleResult, SvPhaseTimings), EmulatorError> {
        let n = ir.sequence.num_qubits();
        let limit = self.max_qubits.min(SV_MAX_QUBITS);
        if n > limit {
            return Err(EmulatorError::TooLarge { qubits: n, limit });
        }
        let spec = self.spec();
        let violations = hpcqc_program::validate(&ir.sequence, &spec);
        if !violations.is_empty() {
            return Err(EmulatorError::Validation(violations));
        }
        let t0 = std::time::Instant::now();
        let state = evolve_sequence(&ir.sequence, spec.c6_coefficient, &self.config);
        let evolve_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        let probs = state.probabilities();
        let dist = sampling_distribution(&probs)?;
        let outcomes = sample_outcomes(ir.shots, n, seed, &self.noise, |rng| {
            dist.sample(rng) as u64
        });
        let result = SampleResult::from_shots(n, &outcomes, self.name());
        let sample_ms = t1.elapsed().as_secs_f64() * 1e3;
        Ok((
            result,
            SvPhaseTimings {
                evolve_ms,
                sample_ms,
                total_ms: evolve_ms + sample_ms,
            },
        ))
    }
}

impl Emulator for SvBackend {
    fn name(&self) -> &str {
        "emu-sv"
    }

    fn spec(&self) -> DeviceSpec {
        // The advertised cap never exceeds what the dense method can hold:
        // a misconfigured `max_qubits > 26` must surface as `TooLarge`, not
        // as a panic in `StateVector::ground`.
        DeviceSpec::emulator("emu-sv", self.max_qubits.min(SV_MAX_QUBITS))
    }

    fn run(&self, ir: &ProgramIr, seed: u64) -> Result<SampleResult, EmulatorError> {
        self.run_timed(ir, seed).map(|(res, _)| res)
    }

    fn run_sweep(
        &self,
        template: &ProgramIr,
        points: &[SweepPoint],
        seed_base: u64,
    ) -> Result<Vec<SampleResult>, EmulatorError> {
        crate::batch::BatchRunner::new(self).run_sweep(template, points, seed_base)
    }
}

/// Tensor-network backend (EMU-MPS stand-in); scales to larger registers at
/// controlled accuracy via the bond dimension.
#[derive(Debug, Clone)]
pub struct MpsBackend {
    /// Qubit cap (sampling is `u64` bitstrings: ≤ 64).
    pub max_qubits: usize,
    /// TEBD / truncation settings, including `chi_max`.
    pub config: MpsConfig,
    /// Optional SPAM noise rehearsal.
    pub noise: SpamNoise,
}

impl Default for MpsBackend {
    fn default() -> Self {
        MpsBackend {
            max_qubits: 64,
            config: MpsConfig::default(),
            noise: SpamNoise::none(),
        }
    }
}

impl MpsBackend {
    /// The χ=1 product-state "mock" backend from the paper's footnote 3:
    /// cheap enough to stand in for the QPU in end-to-end tests while
    /// enforcing production device limits.
    pub fn product_state_mock() -> Self {
        MpsBackend {
            max_qubits: 100,
            config: MpsConfig {
                chi_max: 1,
                max_dt: 5e-3,
                ..MpsConfig::default()
            },
            noise: SpamNoise::none(),
        }
    }
}

impl Emulator for MpsBackend {
    fn name(&self) -> &str {
        if self.config.chi_max == 1 {
            "emu-mps-mock"
        } else {
            "emu-mps"
        }
    }

    fn spec(&self) -> DeviceSpec {
        if self.config.chi_max == 1 {
            // mock mode validates against production limits (footnote 3)
            DeviceSpec::mock_of_production()
        } else {
            DeviceSpec::emulator("emu-mps", self.max_qubits)
        }
    }

    fn run(&self, ir: &ProgramIr, seed: u64) -> Result<SampleResult, EmulatorError> {
        let n = ir.sequence.num_qubits();
        if n > self.max_qubits {
            return Err(EmulatorError::TooLarge {
                qubits: n,
                limit: self.max_qubits,
            });
        }
        let spec = self.spec();
        let violations = hpcqc_program::validate(&ir.sequence, &spec);
        if !violations.is_empty() {
            return Err(EmulatorError::Validation(violations));
        }
        let mut mps = evolve_sequence_mps(&ir.sequence, spec.c6_coefficient, &self.config);
        let trunc = mps.truncation_error;
        // Canonicalize and normalize once; per-shot draws are then read-only
        // and run concurrently on independent counter-derived streams.
        mps.prepare_sampling();
        let mps = &mps;
        let outcomes = sample_outcomes(ir.shots, n, seed, &self.noise, |rng| {
            mps.sample_prepared(rng)
        });
        let mut res = SampleResult::from_shots(n, &outcomes, self.name());
        res.truncation_error = trunc;
        Ok(res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};

    fn pi_pulse_ir(n: usize, spacing: f64, shots: u32) -> ProgramIr {
        let reg = Register::linear(n, spacing).unwrap();
        let omega = 4.0;
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(std::f64::consts::PI / omega, omega, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "test")
    }

    #[test]
    fn sv_backend_pi_pulse_excites_isolated_atom() {
        let ir = pi_pulse_ir(1, 6.0, 200);
        let res = SvBackend::default().run(&ir, 1).unwrap();
        assert_eq!(res.shots, 200);
        assert!(res.occupation(0) > 0.99, "π pulse: {}", res.occupation(0));
        assert_eq!(res.backend, "emu-sv");
    }

    #[test]
    fn sv_backend_rejects_oversized_register() {
        let ir = pi_pulse_ir(21, 6.0, 10);
        match SvBackend::default().run(&ir, 1) {
            Err(EmulatorError::TooLarge {
                qubits: 21,
                limit: 20,
            }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn sv_and_mps_agree_on_distribution() {
        let ir = pi_pulse_ir(3, 9.0, 4000);
        let sv = SvBackend::default().run(&ir, 11).unwrap();
        let mps = MpsBackend {
            config: MpsConfig {
                chi_max: 16,
                max_dt: 5e-4,
                ..MpsConfig::default()
            },
            ..MpsBackend::default()
        }
        .run(&ir, 12)
        .unwrap();
        let tv = sv.total_variation_distance(&mps);
        assert!(tv < 0.06, "backends disagree: TV = {tv}");
    }

    #[test]
    fn results_are_seed_deterministic() {
        let ir = pi_pulse_ir(2, 7.0, 100);
        let b = SvBackend::default();
        let r1 = b.run(&ir, 99).unwrap();
        let r2 = b.run(&ir, 99).unwrap();
        assert_eq!(r1, r2);
        let r3 = b.run(&ir, 100).unwrap();
        assert_ne!(r1.counts, r3.counts, "different seed, different samples");
    }

    #[test]
    fn mock_backend_enforces_production_limits() {
        // 3 µm spacing violates the production min distance of 5 µm: the
        // mock catches it even though a generic emulator would accept it.
        let ir = pi_pulse_ir(3, 3.0, 10);
        let mock = MpsBackend::product_state_mock();
        match mock.run(&ir, 1) {
            Err(EmulatorError::Validation(v)) => {
                assert!(!v.is_empty());
            }
            other => panic!("expected validation failure, got {other:?}"),
        }
        assert_eq!(mock.name(), "emu-mps-mock");
        // And a conforming program passes.
        let ok = pi_pulse_ir(3, 6.0, 10);
        assert!(mock.run(&ok, 1).is_ok());
    }

    #[test]
    fn noisy_backend_biases_occupation() {
        let b = SvBackend {
            noise: SpamNoise {
                epsilon: 0.0,
                epsilon_prime: 0.2,
            },
            ..Default::default()
        };
        let ir = pi_pulse_ir(1, 6.0, 5000);
        let res = b.run(&ir, 5).unwrap();
        // true occupation 1.0, measured ~0.8
        assert!(
            (res.occupation(0) - 0.8).abs() < 0.03,
            "got {}",
            res.occupation(0)
        );
    }

    #[test]
    fn sv_cap_above_dense_limit_errors_instead_of_panicking() {
        // Regression: a misconfigured cap above the dense method's 26-qubit
        // ceiling used to reach `StateVector::ground` and panic; it must
        // surface as `TooLarge` clamped to the real limit.
        let b = SvBackend {
            max_qubits: 32,
            ..Default::default()
        };
        assert_eq!(b.spec().max_qubits, SV_MAX_QUBITS);
        let ir = pi_pulse_ir(27, 6.0, 4);
        match b.run(&ir, 1) {
            Err(EmulatorError::TooLarge {
                qubits: 27,
                limit: 26,
            }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn sampling_distribution_rejects_pathological_inputs() {
        for probs in [
            &[0.5, f64::NAN][..],
            &[0.5, f64::INFINITY][..],
            &[0.2, -0.1][..],
            &[0.0, 0.0][..],
        ] {
            match sampling_distribution(probs) {
                Err(EmulatorError::DegenerateDistribution { .. }) => {}
                other => panic!("expected DegenerateDistribution for {probs:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn sampling_distribution_renormalizes_drifted_probs() {
        // Integrator drift leaves the vector slightly sub-normalized; the
        // distribution renormalizes instead of rejecting or skewing.
        let dist = sampling_distribution(&[0.2, 0.1]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let hits = (0..3000).filter(|_| dist.sample(&mut rng) == 0).count();
        let frac = hits as f64 / 3000.0;
        assert!((frac - 2.0 / 3.0).abs() < 0.05, "got {frac}");
    }

    #[test]
    fn sv_parallel_sampling_matches_serial_reference() {
        // The chunk-parallel sampler must reproduce a plain serial loop over
        // the same per-shot streams exactly, including the SPAM draws.
        let ir = pi_pulse_ir(3, 9.0, 500);
        let b = SvBackend {
            noise: SpamNoise {
                epsilon: 0.02,
                epsilon_prime: 0.05,
            },
            ..Default::default()
        };
        let seed = 42;
        let res = b.run(&ir, seed).unwrap();
        let spec = b.spec();
        let state = evolve_sequence(&ir.sequence, spec.c6_coefficient, &b.config);
        let dist = sampling_distribution(&state.probabilities()).unwrap();
        let n = ir.sequence.num_qubits();
        let outcomes: Vec<u64> = (0..ir.shots as u64)
            .map(|shot| {
                let mut rng = shot_rng(seed, shot);
                let raw = dist.sample(&mut rng) as u64;
                b.noise.apply(raw, n, &mut rng)
            })
            .collect();
        let reference = SampleResult::from_shots(n, &outcomes, b.name());
        assert_eq!(res.counts, reference.counts);
    }

    #[test]
    fn mps_parallel_sampling_matches_serial_reference() {
        let ir = pi_pulse_ir(4, 6.0, 300);
        let b = MpsBackend::default();
        let seed = 7;
        let res = b.run(&ir, seed).unwrap();
        let spec = b.spec();
        let mut mps = evolve_sequence_mps(&ir.sequence, spec.c6_coefficient, &b.config);
        mps.prepare_sampling();
        let n = ir.sequence.num_qubits();
        let outcomes: Vec<u64> = (0..ir.shots as u64)
            .map(|shot| {
                let mut rng = shot_rng(seed, shot);
                let raw = mps.sample_prepared(&mut rng);
                b.noise.apply(raw, n, &mut rng)
            })
            .collect();
        let reference = SampleResult::from_shots(n, &outcomes, b.name());
        assert_eq!(res.counts, reference.counts);
    }

    #[test]
    fn run_timed_phases_sum_to_total_and_match_run() {
        let ir = pi_pulse_ir(4, 6.0, 300);
        let b = SvBackend::default();
        let (timed_res, t) = b.run_timed(&ir, 42).unwrap();
        assert_eq!(timed_res, b.run(&ir, 42).unwrap());
        assert!(t.evolve_ms > 0.0 && t.evolve_ms.is_finite());
        assert!(t.sample_ms >= 0.0 && t.sample_ms.is_finite());
        assert_eq!(t.total_ms, t.evolve_ms + t.sample_ms);
        assert!(
            t.total_ms >= t.evolve_ms,
            "single-run phase decomposition is monotone by construction"
        );
    }

    #[test]
    fn mps_default_sweep_runs_each_point() {
        // MpsBackend has no batched engine: the trait default materializes
        // and runs sequentially — still seeded per point.
        let b = MpsBackend::default();
        let tpl = pi_pulse_ir(3, 9.0, 50);
        let points = [
            SweepPoint::identity(),
            SweepPoint {
                omega_scale: 0.5,
                ..SweepPoint::identity()
            },
        ];
        let swept = b.run_sweep(&tpl, &points, 30).unwrap();
        assert_eq!(swept.len(), 2);
        let mut half = tpl.clone();
        half.sequence = points[1].materialize(&tpl.sequence);
        assert_eq!(swept[0], b.run(&tpl, 30).unwrap());
        assert_eq!(swept[1], b.run(&half, 31).unwrap());
    }

    #[test]
    fn mps_reports_truncation_error() {
        let ir = pi_pulse_ir(6, 5.5, 50);
        let tight = MpsBackend {
            config: MpsConfig {
                chi_max: 1,
                max_dt: 1e-3,
                ..MpsConfig::default()
            },
            max_qubits: 64,
            noise: SpamNoise::none(),
        };
        let res = tight.run(&ir, 3).unwrap();
        assert!(
            res.truncation_error > 0.0,
            "χ=1 on an entangling program truncates"
        );
    }
}
