//! The emulator backends behind a single execution interface.
//!
//! [`Emulator`] is the contract shared by the state-vector backend
//! ([`SvBackend`]) and the tensor-network backend ([`MpsBackend`]). The QRMI
//! layer wraps these as resources; the runtime environment picks one at
//! configuration time — never in source code.

use crate::mps::{evolve_sequence_mps, MpsConfig};
use crate::noise::SpamNoise;
use crate::result::SampleResult;
use crate::statevector::{evolve_sequence, SvConfig};
use hpcqc_program::{DeviceSpec, ProgramIr};
use rand::distributions::{Distribution, WeightedIndex};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Errors from emulator execution.
#[derive(Debug, Clone, PartialEq)]
pub enum EmulatorError {
    /// The program violates this backend's device spec.
    Validation(Vec<hpcqc_program::Violation>),
    /// The register is too large for the backend's method.
    TooLarge { qubits: usize, limit: usize },
}

impl std::fmt::Display for EmulatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmulatorError::Validation(v) => {
                write!(f, "program invalid for device: {} violation(s)", v.len())
            }
            EmulatorError::TooLarge { qubits, limit } => {
                write!(
                    f,
                    "register of {qubits} qubits exceeds backend limit {limit}"
                )
            }
        }
    }
}

impl std::error::Error for EmulatorError {}

/// A classical backend that can execute analog programs.
pub trait Emulator: Send + Sync {
    /// Stable backend name used in results and telemetry.
    fn name(&self) -> &str;

    /// The device spec this backend enforces.
    fn spec(&self) -> DeviceSpec;

    /// Execute the program for `ir.shots` shots with a deterministic seed.
    fn run(&self, ir: &ProgramIr, seed: u64) -> Result<SampleResult, EmulatorError>;
}

/// Exact state-vector backend (EMU-SV stand-in). Limit ~20 qubits.
#[derive(Debug, Clone)]
pub struct SvBackend {
    /// Qubit cap enforced before exponential blow-up.
    pub max_qubits: usize,
    /// Integrator settings.
    pub config: SvConfig,
    /// Optional SPAM noise rehearsal.
    pub noise: SpamNoise,
}

impl Default for SvBackend {
    fn default() -> Self {
        SvBackend {
            max_qubits: 20,
            config: SvConfig::default(),
            noise: SpamNoise::none(),
        }
    }
}

impl Emulator for SvBackend {
    fn name(&self) -> &str {
        "emu-sv"
    }

    fn spec(&self) -> DeviceSpec {
        DeviceSpec::emulator("emu-sv", self.max_qubits)
    }

    fn run(&self, ir: &ProgramIr, seed: u64) -> Result<SampleResult, EmulatorError> {
        let n = ir.sequence.num_qubits();
        if n > self.max_qubits {
            return Err(EmulatorError::TooLarge {
                qubits: n,
                limit: self.max_qubits,
            });
        }
        let spec = self.spec();
        let violations = hpcqc_program::validate(&ir.sequence, &spec);
        if !violations.is_empty() {
            return Err(EmulatorError::Validation(violations));
        }
        let state = evolve_sequence(&ir.sequence, spec.c6_coefficient, &self.config);
        let probs = state.probabilities();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let dist = WeightedIndex::new(&probs).expect("normalized state has valid weights");
        let outcomes: Vec<u64> = (0..ir.shots)
            .map(|_| {
                let raw = dist.sample(&mut rng) as u64;
                self.noise.apply(raw, n, &mut rng)
            })
            .collect();
        Ok(SampleResult::from_shots(n, &outcomes, self.name()))
    }
}

/// Tensor-network backend (EMU-MPS stand-in); scales to larger registers at
/// controlled accuracy via the bond dimension.
#[derive(Debug, Clone)]
pub struct MpsBackend {
    /// Qubit cap (sampling is `u64` bitstrings: ≤ 64).
    pub max_qubits: usize,
    /// TEBD / truncation settings, including `chi_max`.
    pub config: MpsConfig,
    /// Optional SPAM noise rehearsal.
    pub noise: SpamNoise,
}

impl Default for MpsBackend {
    fn default() -> Self {
        MpsBackend {
            max_qubits: 64,
            config: MpsConfig::default(),
            noise: SpamNoise::none(),
        }
    }
}

impl MpsBackend {
    /// The χ=1 product-state "mock" backend from the paper's footnote 3:
    /// cheap enough to stand in for the QPU in end-to-end tests while
    /// enforcing production device limits.
    pub fn product_state_mock() -> Self {
        MpsBackend {
            max_qubits: 100,
            config: MpsConfig {
                chi_max: 1,
                max_dt: 5e-3,
                ..MpsConfig::default()
            },
            noise: SpamNoise::none(),
        }
    }
}

impl Emulator for MpsBackend {
    fn name(&self) -> &str {
        if self.config.chi_max == 1 {
            "emu-mps-mock"
        } else {
            "emu-mps"
        }
    }

    fn spec(&self) -> DeviceSpec {
        if self.config.chi_max == 1 {
            // mock mode validates against production limits (footnote 3)
            DeviceSpec::mock_of_production()
        } else {
            DeviceSpec::emulator("emu-mps", self.max_qubits)
        }
    }

    fn run(&self, ir: &ProgramIr, seed: u64) -> Result<SampleResult, EmulatorError> {
        let n = ir.sequence.num_qubits();
        if n > self.max_qubits {
            return Err(EmulatorError::TooLarge {
                qubits: n,
                limit: self.max_qubits,
            });
        }
        let spec = self.spec();
        let violations = hpcqc_program::validate(&ir.sequence, &spec);
        if !violations.is_empty() {
            return Err(EmulatorError::Validation(violations));
        }
        let mut mps = evolve_sequence_mps(&ir.sequence, spec.c6_coefficient, &self.config);
        let trunc = mps.truncation_error;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let outcomes: Vec<u64> = (0..ir.shots)
            .map(|_| {
                let raw = mps.sample(&mut rng);
                self.noise.apply(raw, n, &mut rng)
            })
            .collect();
        let mut res = SampleResult::from_shots(n, &outcomes, self.name());
        res.truncation_error = trunc;
        Ok(res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};

    fn pi_pulse_ir(n: usize, spacing: f64, shots: u32) -> ProgramIr {
        let reg = Register::linear(n, spacing).unwrap();
        let omega = 4.0;
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(std::f64::consts::PI / omega, omega, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "test")
    }

    #[test]
    fn sv_backend_pi_pulse_excites_isolated_atom() {
        let ir = pi_pulse_ir(1, 6.0, 200);
        let res = SvBackend::default().run(&ir, 1).unwrap();
        assert_eq!(res.shots, 200);
        assert!(res.occupation(0) > 0.99, "π pulse: {}", res.occupation(0));
        assert_eq!(res.backend, "emu-sv");
    }

    #[test]
    fn sv_backend_rejects_oversized_register() {
        let ir = pi_pulse_ir(21, 6.0, 10);
        match SvBackend::default().run(&ir, 1) {
            Err(EmulatorError::TooLarge {
                qubits: 21,
                limit: 20,
            }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn sv_and_mps_agree_on_distribution() {
        let ir = pi_pulse_ir(3, 9.0, 4000);
        let sv = SvBackend::default().run(&ir, 11).unwrap();
        let mps = MpsBackend {
            config: MpsConfig {
                chi_max: 16,
                max_dt: 5e-4,
                ..MpsConfig::default()
            },
            ..MpsBackend::default()
        }
        .run(&ir, 12)
        .unwrap();
        let tv = sv.total_variation_distance(&mps);
        assert!(tv < 0.06, "backends disagree: TV = {tv}");
    }

    #[test]
    fn results_are_seed_deterministic() {
        let ir = pi_pulse_ir(2, 7.0, 100);
        let b = SvBackend::default();
        let r1 = b.run(&ir, 99).unwrap();
        let r2 = b.run(&ir, 99).unwrap();
        assert_eq!(r1, r2);
        let r3 = b.run(&ir, 100).unwrap();
        assert_ne!(r1.counts, r3.counts, "different seed, different samples");
    }

    #[test]
    fn mock_backend_enforces_production_limits() {
        // 3 µm spacing violates the production min distance of 5 µm: the
        // mock catches it even though a generic emulator would accept it.
        let ir = pi_pulse_ir(3, 3.0, 10);
        let mock = MpsBackend::product_state_mock();
        match mock.run(&ir, 1) {
            Err(EmulatorError::Validation(v)) => {
                assert!(!v.is_empty());
            }
            other => panic!("expected validation failure, got {other:?}"),
        }
        assert_eq!(mock.name(), "emu-mps-mock");
        // And a conforming program passes.
        let ok = pi_pulse_ir(3, 6.0, 10);
        assert!(mock.run(&ok, 1).is_ok());
    }

    #[test]
    fn noisy_backend_biases_occupation() {
        let b = SvBackend {
            noise: SpamNoise {
                epsilon: 0.0,
                epsilon_prime: 0.2,
            },
            ..Default::default()
        };
        let ir = pi_pulse_ir(1, 6.0, 5000);
        let res = b.run(&ir, 5).unwrap();
        // true occupation 1.0, measured ~0.8
        assert!(
            (res.occupation(0) - 0.8).abs() < 0.03,
            "got {}",
            res.occupation(0)
        );
    }

    #[test]
    fn mps_reports_truncation_error() {
        let ir = pi_pulse_ir(6, 5.5, 50);
        let tight = MpsBackend {
            config: MpsConfig {
                chi_max: 1,
                max_dt: 1e-3,
                ..MpsConfig::default()
            },
            max_qubits: 64,
            noise: SpamNoise::none(),
        };
        let res = tight.run(&ir, 3).unwrap();
        assert!(
            res.truncation_error > 0.0,
            "χ=1 on an entangling program truncates"
        );
    }
}
