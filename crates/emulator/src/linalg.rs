//! Small dense complex linear algebra used by the MPS emulator.
//!
//! We only need operations on matrices whose dimensions are bounded by
//! `2·χ_max` (a few hundred at most), so a straightforward, dependency-free
//! implementation is appropriate: a cyclic Jacobi eigensolver for Hermitian
//! matrices, and an SVD built on top of it via the Gram matrix.

use num_complex::Complex64;

/// Column-major dense complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    pub rows: usize,
    pub cols: usize,
    /// data[r + c*rows]
    pub data: Vec<Complex64>,
}

impl CMatrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex64::new(0.0, 0.0); rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::new(1.0, 0.0);
        }
        m
    }

    /// Build from a row-major slice of (re, im) pairs — test convenience.
    pub fn from_rows(rows: usize, cols: usize, vals: &[Complex64]) -> Self {
        assert_eq!(vals.len(), rows * cols);
        let mut m = CMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = vals[r * cols + c];
            }
        }
        m
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in matmul");
        let mut out = CMatrix::zeros(self.rows, other.cols);
        for c in 0..other.cols {
            for k in 0..self.cols {
                let b = other[(k, c)];
                if b.norm_sqr() == 0.0 {
                    continue;
                }
                for r in 0..self.rows {
                    out[(r, c)] += self[(r, k)] * b;
                }
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)].conj();
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Max |off-diagonal| element (convergence check for Jacobi).
    fn max_offdiag(&self) -> f64 {
        let mut m = 0.0f64;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r != c {
                    m = m.max(self[(r, c)].norm());
                }
            }
        }
        m
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        &self.data[r + c * self.rows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        &mut self.data[r + c * self.rows]
    }
}

/// Eigendecomposition of a Hermitian matrix by the cyclic complex Jacobi
/// method. Returns `(eigenvalues, eigenvectors)` with eigenvectors in the
/// columns of the returned matrix, sorted by descending eigenvalue.
///
/// Panics if the matrix is not square. Convergence tolerance is relative to
/// the Frobenius norm; for our bounded sizes this converges in a handful of
/// sweeps.
pub fn hermitian_eig(a: &CMatrix) -> (Vec<f64>, CMatrix) {
    assert_eq!(a.rows, a.cols, "hermitian_eig needs a square matrix");
    let n = a.rows;
    let mut m = a.clone();
    let mut v = CMatrix::identity(n);
    let scale = m.frobenius().max(1e-300);
    let tol = 1e-14 * scale;

    for _sweep in 0..100 {
        if m.max_offdiag() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.norm() <= tol {
                    continue;
                }
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                // Unitary similarity J(p,q) eliminating m[p][q]:
                // standard complex Jacobi rotation.
                let phase = apq / apq.norm(); // e^{i arg(apq)}
                let tau = (aqq - app) / (2.0 * apq.norm());
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // G = [[c, s*phase], [-s*phase.conj(), c]] on the (p,q) plane
                let g11 = Complex64::new(c, 0.0);
                let g12 = phase * s;
                let g21 = -phase.conj() * s;
                let g22 = Complex64::new(c, 0.0);
                // M <- G^dagger M G
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = mkp * g11 + mkq * g21;
                    m[(k, q)] = mkp * g12 + mkq * g22;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = g11.conj() * mpk + g21.conj() * mqk;
                    m[(q, k)] = g12.conj() * mpk + g22.conj() * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp * g11 + vkq * g21;
                    v[(k, q)] = vkp * g12 + vkq * g22;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)].re, i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite eigenvalues"));
    let eigvals: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let mut vecs = CMatrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vecs[(r, new_col)] = v[(r, old_col)];
        }
    }
    (eigvals, vecs)
}

/// Thin singular value decomposition `A = U Σ V†`.
///
/// Returns `(u, s, vt)` where `u` is `rows × k`, `s` has length `k`,
/// `vt` is `k × cols`, with `k = min(rows, cols)` and singular values sorted
/// descending. Built from the Hermitian eigendecomposition of the smaller
/// Gram matrix, which is numerically adequate for the well-conditioned,
/// norm-bounded tensors arising in MPS truncation.
pub fn svd(a: &CMatrix) -> (CMatrix, Vec<f64>, CMatrix) {
    let (rows, cols) = (a.rows, a.cols);
    let k = rows.min(cols);
    if cols <= rows {
        // eigendecompose A†A = V Σ² V†
        let gram = a.dagger().matmul(a);
        let (evals, v) = hermitian_eig(&gram);
        let s: Vec<f64> = evals.iter().map(|&e| e.max(0.0).sqrt()).collect();
        // U = A V Σ⁻¹ (columns with ~zero σ filled by normalized Gram-Schmidt
        // is unnecessary here: truncation drops them anyway).
        let av = a.matmul(&v);
        let mut u = CMatrix::zeros(rows, k);
        for c in 0..k {
            let inv = if s[c] > 1e-150 { 1.0 / s[c] } else { 0.0 };
            for r in 0..rows {
                u[(r, c)] = av[(r, c)] * inv;
            }
        }
        let vt = v.dagger();
        // keep only first k rows of vt (square here, so all)
        (u, s[..k].to_vec(), vt)
    } else {
        // eigendecompose A A† = U Σ² U†
        let gram = a.matmul(&a.dagger());
        let (evals, u) = hermitian_eig(&gram);
        let s: Vec<f64> = evals.iter().map(|&e| e.max(0.0).sqrt()).collect();
        // V† = Σ⁻¹ U† A
        let uta = u.dagger().matmul(a);
        let mut vt = CMatrix::zeros(k, cols);
        for r in 0..k {
            let inv = if s[r] > 1e-150 { 1.0 / s[r] } else { 0.0 };
            for c in 0..cols {
                vt[(r, c)] = uta[(r, c)] * inv;
            }
        }
        (u, s[..k].to_vec(), vt)
    }
}

/// Exponential `exp(-i H t)` of a 2×2 Hermitian matrix, exact via the
/// Pauli decomposition `H = a·I + b·σ` ⇒
/// `exp(-iHt) = e^{-iat} (cos(|b|t) I - i sin(|b|t) b̂·σ)`.
pub fn expm_2x2_hermitian(h: &CMatrix, t: f64) -> CMatrix {
    assert_eq!((h.rows, h.cols), (2, 2));
    let a = (h[(0, 0)].re + h[(1, 1)].re) / 2.0;
    let bz = (h[(0, 0)].re - h[(1, 1)].re) / 2.0;
    let bx = h[(0, 1)].re;
    let by = -h[(0, 1)].im; // h01 = bx - i by  for H = bx σx + by σy + bz σz
    let bn = (bx * bx + by * by + bz * bz).sqrt();
    let phase = Complex64::from_polar(1.0, -a * t);
    let (cosv, sinv) = if bn > 0.0 {
        ((bn * t).cos(), (bn * t).sin() / bn)
    } else {
        (1.0, t) // sin(x)/x -> t as bn -> 0; multiplied by b components = 0
    };
    let i = Complex64::new(0.0, 1.0);
    let mut u = CMatrix::zeros(2, 2);
    u[(0, 0)] = phase * (Complex64::new(cosv, 0.0) - i * sinv * bz);
    u[(1, 1)] = phase * (Complex64::new(cosv, 0.0) + i * sinv * bz);
    u[(0, 1)] = phase * (-i * sinv * Complex64::new(bx, -by));
    u[(1, 0)] = phase * (-i * sinv * Complex64::new(bx, by));
    u
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn identity_matmul() {
        let i = CMatrix::identity(3);
        let m = CMatrix::from_rows(
            3,
            3,
            &[
                c(1.0, 0.5),
                c(2.0, 0.0),
                c(0.0, 1.0),
                c(0.0, 0.0),
                c(3.0, -1.0),
                c(1.0, 0.0),
                c(2.0, 2.0),
                c(0.0, 0.0),
                c(1.0, 1.0),
            ],
        );
        assert_eq!(i.matmul(&m), m);
        assert_eq!(m.matmul(&i), m);
    }

    #[test]
    fn dagger_involution() {
        let m = CMatrix::from_rows(
            2,
            3,
            &[
                c(1.0, 2.0),
                c(0.0, -1.0),
                c(3.0, 0.0),
                c(0.5, 0.5),
                c(2.0, 2.0),
                c(-1.0, 1.0),
            ],
        );
        assert_eq!(m.dagger().dagger(), m);
        assert_eq!(m.dagger().rows, 3);
    }

    #[test]
    fn hermitian_eig_diagonal() {
        let mut m = CMatrix::zeros(3, 3);
        m[(0, 0)] = c(1.0, 0.0);
        m[(1, 1)] = c(5.0, 0.0);
        m[(2, 2)] = c(-2.0, 0.0);
        let (vals, _) = hermitian_eig(&m);
        assert!((vals[0] - 5.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        assert!((vals[2] + 2.0).abs() < 1e-10);
    }

    #[test]
    fn hermitian_eig_pauli_x() {
        let m = CMatrix::from_rows(2, 2, &[c(0.0, 0.0), c(1.0, 0.0), c(1.0, 0.0), c(0.0, 0.0)]);
        let (vals, vecs) = hermitian_eig(&m);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] + 1.0).abs() < 1e-12);
        // reconstruct: V diag(vals) V† = M
        let mut d = CMatrix::zeros(2, 2);
        d[(0, 0)] = c(vals[0], 0.0);
        d[(1, 1)] = c(vals[1], 0.0);
        let rec = vecs.matmul(&d).matmul(&vecs.dagger());
        for r in 0..2 {
            for cc in 0..2 {
                assert!((rec[(r, cc)] - m[(r, cc)]).norm() < 1e-10);
            }
        }
    }

    #[test]
    fn hermitian_eig_complex_matrix() {
        // H = σ_y: eigenvalues ±1
        let m = CMatrix::from_rows(2, 2, &[c(0.0, 0.0), c(0.0, -1.0), c(0.0, 1.0), c(0.0, 0.0)]);
        let (vals, vecs) = hermitian_eig(&m);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] + 1.0).abs() < 1e-12);
        // eigenvectors are orthonormal
        let g = vecs.dagger().matmul(&vecs);
        assert!((g[(0, 0)].re - 1.0).abs() < 1e-10);
        assert!(g[(0, 1)].norm() < 1e-10);
    }

    #[test]
    fn svd_reconstructs_tall_matrix() {
        let a = CMatrix::from_rows(
            3,
            2,
            &[
                c(1.0, 0.0),
                c(2.0, 1.0),
                c(0.0, -1.0),
                c(1.0, 0.0),
                c(2.0, 0.5),
                c(0.0, 0.0),
            ],
        );
        let (u, s, vt) = svd(&a);
        let mut sig = CMatrix::zeros(s.len(), s.len());
        for (i, &si) in s.iter().enumerate() {
            sig[(i, i)] = c(si, 0.0);
        }
        let rec = u.matmul(&sig).matmul(&vt);
        for r in 0..3 {
            for cc in 0..2 {
                assert!(
                    (rec[(r, cc)] - a[(r, cc)]).norm() < 1e-9,
                    "mismatch at ({r},{cc}): {:?} vs {:?}",
                    rec[(r, cc)],
                    a[(r, cc)]
                );
            }
        }
        assert!(s[0] >= s[1], "descending singular values");
    }

    #[test]
    fn svd_reconstructs_wide_matrix() {
        let a = CMatrix::from_rows(
            2,
            4,
            &[
                c(1.0, 0.0),
                c(0.0, 2.0),
                c(1.0, -1.0),
                c(0.5, 0.0),
                c(0.0, 0.0),
                c(1.0, 0.0),
                c(2.0, 2.0),
                c(-1.0, 0.0),
            ],
        );
        let (u, s, vt) = svd(&a);
        assert_eq!(u.cols, 2);
        assert_eq!(vt.rows, 2);
        let mut sig = CMatrix::zeros(2, 2);
        sig[(0, 0)] = c(s[0], 0.0);
        sig[(1, 1)] = c(s[1], 0.0);
        let rec = u.matmul(&sig).matmul(&vt);
        for r in 0..2 {
            for cc in 0..4 {
                assert!((rec[(r, cc)] - a[(r, cc)]).norm() < 1e-9);
            }
        }
    }

    #[test]
    fn svd_singular_values_match_frobenius() {
        let a = CMatrix::from_rows(2, 2, &[c(3.0, 0.0), c(0.0, 0.0), c(0.0, 0.0), c(4.0, 0.0)]);
        let (_, s, _) = svd(&a);
        let fro2: f64 = s.iter().map(|x| x * x).sum();
        assert!((fro2 - 25.0).abs() < 1e-9);
        assert!((s[0] - 4.0).abs() < 1e-10);
        assert!((s[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn expm_identity_at_zero_time() {
        let h = CMatrix::from_rows(
            2,
            2,
            &[c(1.0, 0.0), c(0.5, 0.2), c(0.5, -0.2), c(-1.0, 0.0)],
        );
        let u = expm_2x2_hermitian(&h, 0.0);
        assert!((u[(0, 0)] - c(1.0, 0.0)).norm() < 1e-12);
        assert!(u[(0, 1)].norm() < 1e-12);
    }

    #[test]
    fn expm_is_unitary() {
        let h = CMatrix::from_rows(
            2,
            2,
            &[c(0.7, 0.0), c(1.2, -0.3), c(1.2, 0.3), c(-0.4, 0.0)],
        );
        let u = expm_2x2_hermitian(&h, 0.37);
        let g = u.dagger().matmul(&u);
        assert!((g[(0, 0)].re - 1.0).abs() < 1e-12);
        assert!((g[(1, 1)].re - 1.0).abs() < 1e-12);
        assert!(g[(0, 1)].norm() < 1e-12);
    }

    #[test]
    fn expm_pauli_x_rotation() {
        // exp(-i (Ω/2) σx t) with Ω t = π flips |0> to -i|1>
        let omega = 2.0;
        let t = std::f64::consts::PI / omega;
        let mut h = CMatrix::zeros(2, 2);
        h[(0, 1)] = c(omega / 2.0, 0.0);
        h[(1, 0)] = c(omega / 2.0, 0.0);
        let u = expm_2x2_hermitian(&h, t);
        assert!(u[(0, 0)].norm() < 1e-12, "full population transfer");
        assert!((u[(1, 0)] - c(0.0, -1.0)).norm() < 1e-12);
    }
}
