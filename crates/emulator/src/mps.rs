//! Matrix-product-state (tensor network) emulator — the EMU-MPS stand-in.
//!
//! The state of `n` atoms is stored as a chain of rank-3 tensors
//! `A[i] ∈ ℂ^{χ_l × 2 × χ_r}` with a movable orthogonality center. Evolution
//! uses second-order Trotter steps: exact single-site rotations for the drive
//! and diagonal two-site gates `exp(−i U_ij dt · n_i n_j)` for the van der
//! Waals interaction, applied through swap networks for non-adjacent pairs
//! within the interaction cutoff.
//!
//! The maximum bond dimension `χ` bounds the entanglement the emulator can
//! represent: `χ = 1` is the product-state "mock" mode from the paper's
//! footnote 3 (2 complex numbers per qubit — inaccurate but exercises every
//! code path end-to-end), while growing `χ` converges to the exact state
//! vector. Truncation discards the smallest Schmidt weights and records the
//! accumulated discarded probability in [`Mps::truncation_error`].

use crate::hamiltonian::DiscretizedDrive;
use crate::linalg::{expm_2x2_hermitian, svd, CMatrix};
use hpcqc_program::{Register, Sequence};
use num_complex::Complex64;
use rand::Rng;

/// One site tensor with shape `(dl, 2, dr)`, row-major `(l, p, r)`.
#[derive(Debug, Clone)]
struct Tensor3 {
    dl: usize,
    dr: usize,
    data: Vec<Complex64>,
}

impl Tensor3 {
    fn zeros(dl: usize, dr: usize) -> Self {
        Tensor3 {
            dl,
            dr,
            data: vec![Complex64::new(0.0, 0.0); dl * 2 * dr],
        }
    }

    #[inline]
    fn at(&self, l: usize, p: usize, r: usize) -> Complex64 {
        self.data[(l * 2 + p) * self.dr + r]
    }

    #[inline]
    fn at_mut(&mut self, l: usize, p: usize, r: usize) -> &mut Complex64 {
        &mut self.data[(l * 2 + p) * self.dr + r]
    }
}

/// Configuration of the MPS evolution.
#[derive(Debug, Clone)]
pub struct MpsConfig {
    /// Maximum bond dimension χ. 1 = product-state mock mode.
    pub chi_max: usize,
    /// Relative Schmidt-value cutoff: singular values below
    /// `svd_cutoff * s_max` are discarded even when χ allows them.
    pub svd_cutoff: f64,
    /// Trotter step cap in µs.
    pub max_dt: f64,
    /// Interactions between chain positions farther apart than this are
    /// dropped (their 1/r⁶ strength is negligible at typical spacings).
    pub max_interaction_range: usize,
}

impl Default for MpsConfig {
    fn default() -> Self {
        MpsConfig {
            chi_max: 16,
            svd_cutoff: 1e-10,
            max_dt: 1e-3,
            max_interaction_range: 3,
        }
    }
}

/// Reusable TEBD scratch: the two-site `theta` tensors and the SVD input
/// matrix grow to the working size once and stay allocated across the whole
/// sweep instead of being reallocated at every gate.
#[derive(Debug, Clone, Default)]
struct TebdScratch {
    theta: Vec<Complex64>,
    theta2: Vec<Complex64>,
    mat: Vec<Complex64>,
}

/// A matrix product state over `n` qubits.
#[derive(Debug, Clone)]
pub struct Mps {
    /// Number of sites.
    pub n: usize,
    tensors: Vec<Tensor3>,
    /// Current orthogonality center (tensors left of it are left-canonical,
    /// right of it right-canonical).
    center: usize,
    /// Accumulated discarded Schmidt weight over all truncations.
    pub truncation_error: f64,
    cfg: MpsConfig,
    scratch: TebdScratch,
}

impl Mps {
    /// The all-ground product state.
    pub fn ground(n: usize, cfg: MpsConfig) -> Self {
        assert!(n >= 1, "MPS needs at least one site");
        assert!(cfg.chi_max >= 1, "bond dimension must be >= 1");
        let tensors = (0..n)
            .map(|_| {
                let mut t = Tensor3::zeros(1, 1);
                *t.at_mut(0, 0, 0) = Complex64::new(1.0, 0.0);
                t
            })
            .collect();
        Mps {
            n,
            tensors,
            center: 0,
            truncation_error: 0.0,
            cfg,
            scratch: TebdScratch::default(),
        }
    }

    /// Largest bond dimension currently in use.
    pub fn max_bond(&self) -> usize {
        self.tensors.iter().map(|t| t.dr).max().unwrap_or(1)
    }

    /// ⟨ψ|ψ⟩ by full transfer-matrix contraction.
    pub fn norm_sqr(&self) -> f64 {
        // E starts as 1x1 identity; E' = Σ_p A[p]† E A[p]
        let mut e = CMatrix::identity(1);
        for t in &self.tensors {
            let mut e2 = CMatrix::zeros(t.dr, t.dr);
            for p in 0..2 {
                // M_p is dl x dr slice
                for r1 in 0..t.dr {
                    for r2 in 0..t.dr {
                        let mut acc = Complex64::new(0.0, 0.0);
                        for l1 in 0..t.dl {
                            for l2 in 0..t.dl {
                                acc += t.at(l1, p, r1).conj() * e[(l1, l2)] * t.at(l2, p, r2);
                            }
                        }
                        e2[(r1, r2)] += acc;
                    }
                }
            }
            e = e2;
        }
        e[(0, 0)].re
    }

    /// Move the orthogonality center one site right via SVD.
    fn shift_center_right(&mut self) {
        let i = self.center;
        assert!(i + 1 < self.n);
        let t = &self.tensors[i];
        let (dl, dr) = (t.dl, t.dr);
        let mut m = CMatrix::zeros(dl * 2, dr);
        for l in 0..dl {
            for p in 0..2 {
                for r in 0..dr {
                    m[(l * 2 + p, r)] = t.at(l, p, r);
                }
            }
        }
        let (u, s, vt) = svd(&m);
        let k = s.len();
        let mut a = Tensor3::zeros(dl, k);
        for l in 0..dl {
            for p in 0..2 {
                for r in 0..k {
                    *a.at_mut(l, p, r) = u[(l * 2 + p, r)];
                }
            }
        }
        // absorb S·Vt into the right neighbour
        let next = &self.tensors[i + 1];
        let mut b = Tensor3::zeros(k, next.dr);
        for m2 in 0..k {
            for mp in 0..dr {
                let w = Complex64::new(s[m2], 0.0) * vt[(m2, mp)];
                if w.norm_sqr() == 0.0 {
                    continue;
                }
                for p in 0..2 {
                    for r in 0..next.dr {
                        *b.at_mut(m2, p, r) += w * next.at(mp, p, r);
                    }
                }
            }
        }
        self.tensors[i] = a;
        self.tensors[i + 1] = b;
        self.center = i + 1;
    }

    /// Move the orthogonality center one site left via SVD.
    fn shift_center_left(&mut self) {
        let i = self.center;
        assert!(i >= 1);
        let t = &self.tensors[i];
        let (dl, dr) = (t.dl, t.dr);
        let mut m = CMatrix::zeros(dl, 2 * dr);
        for l in 0..dl {
            for p in 0..2 {
                for r in 0..dr {
                    m[(l, p * dr + r)] = t.at(l, p, r);
                }
            }
        }
        let (u, s, vt) = svd(&m);
        let k = s.len();
        let mut b = Tensor3::zeros(k, dr);
        for l in 0..k {
            for p in 0..2 {
                for r in 0..dr {
                    *b.at_mut(l, p, r) = vt[(l, p * dr + r)];
                }
            }
        }
        let prev = &self.tensors[i - 1];
        let mut a = Tensor3::zeros(prev.dl, k);
        for mp in 0..dl {
            for m2 in 0..k {
                let w = u[(mp, m2)] * Complex64::new(s[m2], 0.0);
                if w.norm_sqr() == 0.0 {
                    continue;
                }
                for l in 0..prev.dl {
                    for p in 0..2 {
                        *a.at_mut(l, p, m2) += prev.at(l, p, mp) * w;
                    }
                }
            }
        }
        self.tensors[i] = b;
        self.tensors[i - 1] = a;
        self.center = i - 1;
    }

    /// Move the center to site `to`.
    fn move_center(&mut self, to: usize) {
        while self.center < to {
            self.shift_center_right();
        }
        while self.center > to {
            self.shift_center_left();
        }
    }

    /// Apply a single-site unitary `u` (2×2) to site `i`, in place — the
    /// physical index is contracted pairwise, so no new tensor is needed.
    pub fn apply_one_site(&mut self, i: usize, u: &CMatrix) {
        let (u00, u01) = (u[(0, 0)], u[(0, 1)]);
        let (u10, u11) = (u[(1, 0)], u[(1, 1)]);
        let t = &mut self.tensors[i];
        for l in 0..t.dl {
            for r in 0..t.dr {
                let p0 = t.at(l, 0, r);
                let p1 = t.at(l, 1, r);
                *t.at_mut(l, 0, r) = u00 * p0 + u01 * p1;
                *t.at_mut(l, 1, r) = u10 * p0 + u11 * p1;
            }
        }
    }

    /// Apply a two-site gate (4×4, basis |p_i p_{i+1}⟩ with the left qubit
    /// as the most-significant bit) on adjacent sites `(i, i+1)`.
    /// `absorb_right` controls where the center lands (i+1 if true, i if false).
    pub fn apply_two_site(&mut self, i: usize, gate: &CMatrix, absorb_right: bool) {
        assert!(i + 1 < self.n);
        self.move_center(i);
        let a = &self.tensors[i];
        let b = &self.tensors[i + 1];
        let (dl, dm, dr) = (a.dl, a.dr, b.dr);
        debug_assert_eq!(dm, b.dl);

        // theta[l, p1, p2, r] — scratch reused across the whole TEBD sweep
        let idx = |p1: usize, p2: usize| p1 * 2 + p2;
        let mut theta = std::mem::take(&mut self.scratch.theta);
        theta.clear();
        theta.resize(dl * 4 * dr, Complex64::new(0.0, 0.0));
        let th = |l: usize, p1: usize, p2: usize, r: usize| (l * 4 + idx(p1, p2)) * dr + r;
        for l in 0..dl {
            for p1 in 0..2 {
                for m in 0..dm {
                    let av = a.at(l, p1, m);
                    if av.norm_sqr() == 0.0 {
                        continue;
                    }
                    for p2 in 0..2 {
                        for r in 0..dr {
                            theta[th(l, p1, p2, r)] += av * b.at(m, p2, r);
                        }
                    }
                }
            }
        }
        // gate application (every element is assigned, so no zeroing needed)
        let mut theta2 = std::mem::take(&mut self.scratch.theta2);
        theta2.resize(dl * 4 * dr, Complex64::new(0.0, 0.0));
        for l in 0..dl {
            for r in 0..dr {
                for q1 in 0..2 {
                    for q2 in 0..2 {
                        let mut acc = Complex64::new(0.0, 0.0);
                        for p1 in 0..2 {
                            for p2 in 0..2 {
                                acc += gate[(idx(q1, q2), idx(p1, p2))] * theta[th(l, p1, p2, r)];
                            }
                        }
                        theta2[th(l, q1, q2, r)] = acc;
                    }
                }
            }
        }
        // matricize to (l q1) x (q2 r) and SVD-truncate; the matrix buffer
        // is scratch too (every element is assigned below)
        let mut mdata = std::mem::take(&mut self.scratch.mat);
        mdata.resize(dl * 2 * 2 * dr, Complex64::new(0.0, 0.0));
        let mut m = CMatrix {
            rows: dl * 2,
            cols: 2 * dr,
            data: mdata,
        };
        for l in 0..dl {
            for q1 in 0..2 {
                for q2 in 0..2 {
                    for r in 0..dr {
                        m[(l * 2 + q1, q2 * dr + r)] = theta2[th(l, q1, q2, r)];
                    }
                }
            }
        }
        let (u, s, vt) = svd(&m);
        self.scratch.theta = theta;
        self.scratch.theta2 = theta2;
        self.scratch.mat = m.data;
        let total: f64 = s.iter().map(|x| x * x).sum();
        let smax = s.first().copied().unwrap_or(0.0);
        let mut keep = s
            .iter()
            .take(self.cfg.chi_max)
            .filter(|&&x| x > self.cfg.svd_cutoff * smax)
            .count();
        keep = keep.max(1);
        let kept: f64 = s[..keep].iter().map(|x| x * x).sum();
        if total > 0.0 {
            self.truncation_error += (total - kept) / total;
        }
        // renormalize the kept Schmidt spectrum to preserve the state norm
        let rescale = if kept > 0.0 {
            (total / kept).sqrt()
        } else {
            1.0
        };

        let mut at = Tensor3::zeros(dl, keep);
        let mut bt = Tensor3::zeros(keep, dr);
        for k in 0..keep {
            let sk = Complex64::new(s[k] * rescale, 0.0);
            if absorb_right {
                for l in 0..dl {
                    for q1 in 0..2 {
                        *at.at_mut(l, q1, k) = u[(l * 2 + q1, k)];
                    }
                }
                for q2 in 0..2 {
                    for r in 0..dr {
                        *bt.at_mut(k, q2, r) = sk * vt[(k, q2 * dr + r)];
                    }
                }
            } else {
                for l in 0..dl {
                    for q1 in 0..2 {
                        *at.at_mut(l, q1, k) = u[(l * 2 + q1, k)] * sk;
                    }
                }
                for q2 in 0..2 {
                    for r in 0..dr {
                        *bt.at_mut(k, q2, r) = vt[(k, q2 * dr + r)];
                    }
                }
            }
        }
        self.tensors[i] = at;
        self.tensors[i + 1] = bt;
        self.center = if absorb_right { i + 1 } else { i };
    }

    /// Apply a two-site gate between arbitrary chain positions `i < j` by
    /// swapping `j` down next to `i`, applying, and swapping back.
    pub fn apply_gate_ranged(&mut self, i: usize, j: usize, gate: &CMatrix) {
        assert!(i < j && j < self.n);
        let swap = swap_gate();
        // bring j down to i+1
        for k in (i + 1..j).rev() {
            self.apply_two_site(k, &swap, false);
        }
        self.apply_two_site(i, gate, true);
        for k in i + 1..j {
            self.apply_two_site(k, &swap, true);
        }
    }

    /// Expectation value of a single-site operator at site `i`.
    pub fn expectation_one_site(&mut self, i: usize, op: &CMatrix) -> f64 {
        self.move_center(i);
        let t = &self.tensors[i];
        let mut num = Complex64::new(0.0, 0.0);
        let mut den = 0.0f64;
        for l in 0..t.dl {
            for r in 0..t.dr {
                for q in 0..2 {
                    for p in 0..2 {
                        num += t.at(l, q, r).conj() * op[(q, p)] * t.at(l, p, r);
                    }
                    den += t.at(l, q, r).norm_sqr();
                }
            }
        }
        if den > 0.0 {
            num.re / den
        } else {
            0.0
        }
    }

    /// Probability that atom `i` is in the Rydberg state.
    pub fn rydberg_population(&mut self, i: usize) -> f64 {
        let mut n_op = CMatrix::zeros(2, 2);
        n_op[(1, 1)] = Complex64::new(1.0, 0.0);
        self.expectation_one_site(i, &n_op)
    }

    /// Canonicalize for sampling: move the center to site 0 and normalize
    /// it, so every subsequent [`Self::sample_prepared`] call is read-only
    /// (and therefore safe to run concurrently with per-shot RNG streams).
    pub fn prepare_sampling(&mut self) {
        self.move_center(0);
        // normalize the center so conditionals are true probabilities
        let nrm = self.norm_sqr().sqrt();
        if (nrm - 1.0).abs() > 1e-12 && nrm > 0.0 {
            let inv = Complex64::new(1.0 / nrm, 0.0);
            for v in &mut self.tensors[0].data {
                *v *= inv;
            }
        }
    }

    /// Draw one bitstring sample (bit `i` = Rydberg state of atom `i`).
    ///
    /// Uses the exact sequential algorithm: with the center at site 0 the
    /// remaining tensors are right-canonical, so conditionals are local.
    pub fn sample<R: Rng>(&mut self, rng: &mut R) -> u64 {
        self.prepare_sampling();
        self.sample_prepared(rng)
    }

    /// Read-only sampling draw; requires [`Self::prepare_sampling`] first.
    pub fn sample_prepared<R: Rng>(&self, rng: &mut R) -> u64 {
        assert_eq!(self.center, 0, "call prepare_sampling before sampling");
        let mut out: u64 = 0;
        // left boundary vector, dim = current dl (starts at 1)
        let mut lvec = vec![Complex64::new(1.0, 0.0)];
        for i in 0..self.n {
            let t = &self.tensors[i];
            debug_assert_eq!(lvec.len(), t.dl);
            let mut w = [
                vec![Complex64::new(0.0, 0.0); t.dr],
                vec![Complex64::new(0.0, 0.0); t.dr],
            ];
            for (p, wp) in w.iter_mut().enumerate() {
                for (r, slot) in wp.iter_mut().enumerate() {
                    *slot = lvec
                        .iter()
                        .enumerate()
                        .map(|(l, lv)| lv * t.at(l, p, r))
                        .sum();
                }
            }
            let p0: f64 = w[0].iter().map(|z| z.norm_sqr()).sum();
            let p1: f64 = w[1].iter().map(|z| z.norm_sqr()).sum();
            let tot = p0 + p1;
            let pick1 = if tot > 0.0 {
                rng.gen::<f64>() < p1 / tot
            } else {
                false
            };
            let (chosen, pp) = if pick1 { (&w[1], p1) } else { (&w[0], p0) };
            if pick1 {
                out |= 1 << i;
            }
            let inv = if pp > 0.0 { 1.0 / pp.sqrt() } else { 0.0 };
            lvec = chosen.iter().map(|z| z * inv).collect();
        }
        out
    }

    /// Contract the full MPS into a dense state vector (testing; n ≤ 20).
    pub fn to_statevector(&self) -> Vec<Complex64> {
        assert!(self.n <= 20, "dense contraction limited to 20 qubits");
        // amps over prefix, indexed by bitstring of the prefix; each entry is
        // a boundary vector of dim dr.
        let mut partial: Vec<Vec<Complex64>> = vec![vec![Complex64::new(1.0, 0.0)]];
        for t in &self.tensors {
            let mut next: Vec<Vec<Complex64>> = Vec::with_capacity(partial.len() * 2);
            // bit ordering: site i is bit i (LSB-first), so iterate p as the
            // *new high bit* appended at position i — build accordingly below.
            for p in 0..2 {
                for v in &partial {
                    let mut w = vec![Complex64::new(0.0, 0.0); t.dr];
                    for (r, slot) in w.iter_mut().enumerate() {
                        *slot = v.iter().enumerate().map(|(l, lv)| lv * t.at(l, p, r)).sum();
                    }
                    next.push(w);
                }
            }
            partial = next;
        }
        partial.into_iter().map(|v| v[0]).collect()
    }
}

/// The SWAP gate in the two-site basis used by [`Mps::apply_two_site`].
pub fn swap_gate() -> CMatrix {
    let mut g = CMatrix::zeros(4, 4);
    let one = Complex64::new(1.0, 0.0);
    g[(0b00, 0b00)] = one;
    g[(0b01, 0b10)] = one;
    g[(0b10, 0b01)] = one;
    g[(0b11, 0b11)] = one;
    g
}

/// Diagonal interaction gate `exp(−i u dt · n⊗n)`.
pub fn interaction_gate(u: f64, dt: f64) -> CMatrix {
    let mut g = CMatrix::identity(4);
    g[(0b11, 0b11)] = Complex64::from_polar(1.0, -u * dt);
    g
}

/// Single-site drive Hamiltonian `Ω/2 (cosφ σx − sinφ σy) − δ n` as a 2×2.
pub fn drive_hamiltonian(omega: f64, delta: f64, phase: f64) -> CMatrix {
    let mut h = CMatrix::zeros(2, 2);
    // |g⟩=0, |r⟩=1; ⟨r|H|g⟩ = Ω/2 e^{iφ} under the same convention as the
    // state-vector kernel (creation carries e^{-iφ} as ⟨b|H|b'⟩ with b above).
    h[(0, 1)] = Complex64::from_polar(omega / 2.0, -phase);
    h[(1, 0)] = Complex64::from_polar(omega / 2.0, phase);
    h[(1, 1)] = Complex64::new(-delta, 0.0);
    h
}

/// Evolve a full sequence with second-order Trotter TEBD and return the MPS.
pub fn evolve_sequence_mps(seq: &Sequence, c6: f64, cfg: &MpsConfig) -> Mps {
    let reg: &Register = &seq.register;
    let n = reg.len();
    let mut mps = Mps::ground(n, cfg.clone());
    // chain-ordered interactions within range
    let pairs: Vec<(usize, usize, f64)> = reg
        .pairs()
        .into_iter()
        .filter(|&(i, j, _)| j - i <= cfg.max_interaction_range)
        .map(|(i, j, r)| (i, j, c6 / r.powi(6)))
        .collect();

    let drive = DiscretizedDrive::from_sequence(seq, cfg.max_dt);
    let dt = drive.dt;
    // dt is fixed across the sweep, so each pair's diagonal gate is too:
    // build them once instead of once per (step, pair).
    let gates: Vec<(usize, usize, CMatrix)> = pairs
        .iter()
        .map(|&(i, j, u)| (i, j, interaction_gate(u, dt)))
        .collect();
    // Constant-drive plateaus repeat the same (Ω, δ, φ) for many steps:
    // cache the last single-site half-step unitary.
    let mut cached: Option<((f64, f64, f64), CMatrix)> = None;
    for &(omega, delta, phase) in &drive.steps {
        let key = (omega, delta, phase);
        let u_half = match &cached {
            Some((k, u)) if *k == key => u.clone(),
            _ => {
                let u = expm_2x2_hermitian(&drive_hamiltonian(omega, delta, phase), dt / 2.0);
                cached = Some((key, u.clone()));
                u
            }
        };
        for i in 0..n {
            mps.apply_one_site(i, &u_half);
        }
        for (i, j, g) in &gates {
            if *j == *i + 1 {
                mps.apply_two_site(*i, g, true);
            } else {
                mps.apply_gate_ranged(*i, *j, g);
            }
        }
        for i in 0..n {
            mps.apply_one_site(i, &u_half);
        }
    }
    mps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::{evolve_sequence, SvConfig};
    use hpcqc_program::units::C6_COEFF;
    use hpcqc_program::{Pulse, SequenceBuilder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn chain_seq(n: usize, spacing: f64, duration: f64, omega: f64, delta: f64) -> Sequence {
        let reg = Register::linear(n, spacing).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(duration, omega, delta, 0.0).unwrap());
        b.build().unwrap()
    }

    #[test]
    fn ground_state_norm_is_one() {
        let mps = Mps::ground(5, MpsConfig::default());
        assert!((mps.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(mps.max_bond(), 1);
    }

    #[test]
    fn one_site_gate_rabi_flip() {
        let mut mps = Mps::ground(2, MpsConfig::default());
        // π-pulse on site 0
        let h = drive_hamiltonian(2.0, 0.0, 0.0);
        let u = expm_2x2_hermitian(&h, std::f64::consts::PI / 2.0);
        mps.apply_one_site(0, &u);
        assert!((mps.rydberg_population(0) - 1.0).abs() < 1e-12);
        assert!(mps.rydberg_population(1).abs() < 1e-12);
        assert!((mps.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_gate_moves_excitation() {
        let mut mps = Mps::ground(3, MpsConfig::default());
        let h = drive_hamiltonian(2.0, 0.0, 0.0);
        let u = expm_2x2_hermitian(&h, std::f64::consts::PI / 2.0);
        mps.apply_one_site(0, &u);
        mps.apply_two_site(0, &swap_gate(), true);
        assert!(mps.rydberg_population(0).abs() < 1e-10);
        assert!((mps.rydberg_population(1) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ranged_gate_equals_dense_result() {
        // Apply interaction between sites 0 and 2 of a 3-site chain prepared
        // in |+ + +⟩ and compare against dense linear algebra.
        let cfg = MpsConfig {
            chi_max: 8,
            ..MpsConfig::default()
        };
        let mut mps = Mps::ground(3, cfg);
        let had = {
            // R_y-like: (|0> + |1>)/sqrt2 from |0>
            let mut m = CMatrix::zeros(2, 2);
            let s = 1.0 / 2f64.sqrt();
            m[(0, 0)] = Complex64::new(s, 0.0);
            m[(0, 1)] = Complex64::new(s, 0.0);
            m[(1, 0)] = Complex64::new(s, 0.0);
            m[(1, 1)] = Complex64::new(-s, 0.0);
            m
        };
        for i in 0..3 {
            mps.apply_one_site(i, &had);
        }
        let u = 1.7;
        let dt = 0.3;
        mps.apply_gate_ranged(0, 2, &interaction_gate(u, dt));
        let sv = mps.to_statevector();
        // dense expectation: amplitude of |101⟩ (bits 0 and 2 set) gains the
        // phase e^{-i u dt}, all amplitudes have |a| = 1/sqrt(8)
        let a = 1.0 / 8f64.sqrt();
        for (b, amp) in sv.iter().enumerate() {
            let expect_phase = if b & 0b101 == 0b101 { -u * dt } else { 0.0 };
            let expected = Complex64::from_polar(a, expect_phase);
            assert!(
                (amp - expected).norm() < 1e-9,
                "basis {b:03b}: {amp:?} vs {expected:?}"
            );
        }
        assert!((mps.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mps_matches_statevector_small_chain() {
        // 4 atoms, blockade-regime drive: high-χ MPS must agree with the
        // exact state vector on local observables.
        let seq = chain_seq(4, 6.0, 0.3, 4.0, 2.0);
        let sv = evolve_sequence(&seq, C6_COEFF, &SvConfig::default());
        let mut mps = evolve_sequence_mps(
            &seq,
            C6_COEFF,
            &MpsConfig {
                chi_max: 16,
                max_dt: 2e-4,
                ..MpsConfig::default()
            },
        );
        for i in 0..4 {
            let p_sv = sv.rydberg_population(i);
            let p_mps = mps.rydberg_population(i);
            assert!(
                (p_sv - p_mps).abs() < 5e-3,
                "site {i}: sv={p_sv:.5} mps={p_mps:.5}"
            );
        }
        assert!((mps.norm_sqr() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn chi_one_is_product_state_mock() {
        let seq = chain_seq(4, 6.0, 0.3, 4.0, 0.0);
        let mut mps = evolve_sequence_mps(
            &seq,
            C6_COEFF,
            &MpsConfig {
                chi_max: 1,
                ..MpsConfig::default()
            },
        );
        assert_eq!(mps.max_bond(), 1, "χ=1 keeps the state a product state");
        // It still runs end to end and produces probabilities in [0,1].
        for i in 0..4 {
            let p = mps.rydberg_population(i);
            assert!((0.0..=1.0).contains(&p), "site {i}: {p}");
        }
    }

    #[test]
    fn truncation_error_grows_with_smaller_chi() {
        let seq = chain_seq(6, 5.5, 0.4, 6.0, 0.0);
        let lo = evolve_sequence_mps(
            &seq,
            C6_COEFF,
            &MpsConfig {
                chi_max: 2,
                max_dt: 1e-3,
                ..MpsConfig::default()
            },
        );
        let hi = evolve_sequence_mps(
            &seq,
            C6_COEFF,
            &MpsConfig {
                chi_max: 32,
                max_dt: 1e-3,
                ..MpsConfig::default()
            },
        );
        assert!(
            lo.truncation_error >= hi.truncation_error,
            "χ=2 err {} < χ=32 err {}",
            lo.truncation_error,
            hi.truncation_error
        );
    }

    #[test]
    fn sampling_distribution_matches_populations() {
        let seq = chain_seq(3, 6.0, 0.25, 4.0, 0.0);
        let mut mps = evolve_sequence_mps(&seq, C6_COEFF, &MpsConfig::default());
        let pops: Vec<f64> = (0..3).map(|i| mps.rydberg_population(i)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let shots = 20_000;
        let mut counts = [0u32; 3];
        for _ in 0..shots {
            let s = mps.sample(&mut rng);
            for (i, c) in counts.iter_mut().enumerate() {
                if (s >> i) & 1 == 1 {
                    *c += 1;
                }
            }
        }
        for i in 0..3 {
            let freq = counts[i] as f64 / shots as f64;
            assert!(
                (freq - pops[i]).abs() < 0.02,
                "site {i}: sampled {freq:.4} vs expected {:.4}",
                pops[i]
            );
        }
    }

    #[test]
    fn sample_of_product_state_is_deterministic() {
        let mut mps = Mps::ground(4, MpsConfig::default());
        let h = drive_hamiltonian(2.0, 0.0, 0.0);
        let u = expm_2x2_hermitian(&h, std::f64::consts::PI / 2.0);
        mps.apply_one_site(1, &u);
        mps.apply_one_site(3, &u);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(mps.sample(&mut rng), 0b1010);
        }
    }

    #[test]
    fn to_statevector_of_ground_state() {
        let mps = Mps::ground(3, MpsConfig::default());
        let sv = mps.to_statevector();
        assert_eq!(sv.len(), 8);
        assert!((sv[0].re - 1.0).abs() < 1e-12);
        assert!(sv[1..].iter().all(|a| a.norm() < 1e-12));
    }
}
