//! Property-based tests on the emulators: unitarity, backend agreement,
//! noise-channel algebra and linear-algebra invariants.

use hpcqc_emulator::linalg::{expm_2x2_hermitian, hermitian_eig, svd, CMatrix};
use hpcqc_emulator::mps::evolve_sequence_mps;
use hpcqc_emulator::statevector::{evolve_sequence, SvConfig};
use hpcqc_emulator::{Emulator, MpsBackend, MpsConfig, SpamNoise, SvBackend};
use hpcqc_program::units::C6_COEFF;
use hpcqc_program::{ProgramIr, Pulse, Register, SequenceBuilder};
use num_complex::Complex64;
use proptest::prelude::*;

fn arb_hermitian(n: usize) -> impl Strategy<Value = CMatrix> {
    proptest::collection::vec((-3.0f64..3.0, -3.0f64..3.0), n * n).prop_map(move |vals| {
        let mut m = CMatrix::zeros(n, n);
        for r in 0..n {
            for c in r..n {
                let (re, im) = vals[r * n + c];
                if r == c {
                    m[(r, c)] = Complex64::new(re, 0.0);
                } else {
                    m[(r, c)] = Complex64::new(re, im);
                    m[(c, r)] = Complex64::new(re, -im);
                }
            }
        }
        m
    })
}

fn arb_program() -> impl Strategy<Value = ProgramIr> {
    (
        2usize..5,
        5.0f64..9.0,
        0.5f64..8.0,
        -10.0f64..10.0,
        0.05f64..0.4,
    )
        .prop_map(|(n, spacing, omega, delta, duration)| {
            let reg = Register::linear(n, spacing).unwrap();
            let mut b = SequenceBuilder::new(reg);
            b.add_global_pulse(Pulse::constant(duration, omega, delta, 0.0).unwrap());
            ProgramIr::new(b.build().unwrap(), 100, "proptest")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn statevector_evolution_preserves_norm(ir in arb_program()) {
        let sv = evolve_sequence(&ir.sequence, C6_COEFF, &SvConfig::default());
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-7, "norm {}", sv.norm_sqr());
        // populations physical
        for i in 0..ir.sequence.num_qubits() {
            let p = sv.rydberg_population(i);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&p), "site {i}: {p}");
        }
    }

    #[test]
    fn mps_agrees_with_statevector_on_populations(ir in arb_program()) {
        let sv = evolve_sequence(&ir.sequence, C6_COEFF, &SvConfig::default());
        let mut mps = evolve_sequence_mps(
            &ir.sequence,
            C6_COEFF,
            &MpsConfig { chi_max: 32, max_dt: 5e-4, ..MpsConfig::default() },
        );
        prop_assert!((mps.norm_sqr() - 1.0).abs() < 1e-5);
        for i in 0..ir.sequence.num_qubits() {
            let a = sv.rydberg_population(i);
            let b = mps.rydberg_population(i);
            prop_assert!((a - b).abs() < 0.02, "site {i}: sv {a:.5} vs mps {b:.5}");
        }
    }

    #[test]
    fn backends_are_deterministic_per_seed(ir in arb_program(), seed in 0u64..1000) {
        let b = SvBackend::default();
        prop_assert_eq!(b.run(&ir, seed).unwrap(), b.run(&ir, seed).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn hermitian_eig_reconstructs(m in arb_hermitian(4)) {
        let (vals, vecs) = hermitian_eig(&m);
        // V diag V† == M
        let mut d = CMatrix::zeros(4, 4);
        for (i, &v) in vals.iter().enumerate() {
            d[(i, i)] = Complex64::new(v, 0.0);
        }
        let rec = vecs.matmul(&d).matmul(&vecs.dagger());
        for r in 0..4 {
            for c in 0..4 {
                prop_assert!((rec[(r, c)] - m[(r, c)]).norm() < 1e-8,
                    "({r},{c}): {:?} vs {:?}", rec[(r, c)], m[(r, c)]);
            }
        }
        // eigenvalues sorted descending
        for w in vals.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn svd_reconstructs_and_orders(rows in 1usize..5, cols in 1usize..5,
        vals in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 16)) {
        let mut m = CMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let (re, im) = vals[r * 4 + c];
                m[(r, c)] = Complex64::new(re, im);
            }
        }
        let (u, s, vt) = svd(&m);
        let mut sig = CMatrix::zeros(s.len(), s.len());
        for (i, &x) in s.iter().enumerate() {
            sig[(i, i)] = Complex64::new(x, 0.0);
            prop_assert!(x >= -1e-12, "negative singular value {x}");
        }
        for w in s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9, "singular values not sorted: {s:?}");
        }
        let rec = u.matmul(&sig).matmul(&vt);
        for r in 0..rows {
            for c in 0..cols {
                prop_assert!((rec[(r, c)] - m[(r, c)]).norm() < 1e-7);
            }
        }
    }

    #[test]
    fn expm_is_always_unitary(h in arb_hermitian(2), t in -3.0f64..3.0) {
        let u = expm_2x2_hermitian(&h, t);
        let g = u.dagger().matmul(&u);
        prop_assert!((g[(0, 0)].re - 1.0).abs() < 1e-10);
        prop_assert!((g[(1, 1)].re - 1.0).abs() < 1e-10);
        prop_assert!(g[(0, 1)].norm() < 1e-10);
    }

    #[test]
    fn spam_bias_formula_is_exact(p in 0.0f64..1.0, eps in 0.0f64..0.4, epsp in 0.0f64..0.4) {
        let noise = SpamNoise { epsilon: eps, epsilon_prime: epsp };
        let biased = noise.biased_occupation(p);
        prop_assert!((0.0..=1.0).contains(&biased));
        let rec = noise.unbias_occupation(biased).unwrap();
        prop_assert!((rec - p).abs() < 1e-9);
    }
}

#[test]
fn chi_one_mock_runs_arbitrarily_large_registers() {
    // footnote 3: χ=1 mocks "almost arbitrarily large" QPUs cheaply.
    // A compact 8x8 lattice keeps the 64 atoms inside the production field
    // of view, which the mock (deliberately) enforces.
    let reg = Register::square_lattice(8, 8, 6.0).unwrap();
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.2, 4.0, 0.0, 0.0).unwrap());
    let ir = ProgramIr::new(b.build().unwrap(), 20, "big");
    let mock = MpsBackend {
        max_qubits: 64,
        config: MpsConfig {
            chi_max: 1,
            max_dt: 5e-3,
            ..MpsConfig::default()
        },
        noise: SpamNoise::none(),
    };
    let res = mock.run(&ir, 1).unwrap();
    assert_eq!(res.shots, 20);
    assert_eq!(res.n_qubits, 64);
}
