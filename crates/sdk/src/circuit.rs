//! The circuit SDK: a small gate-model front-end.
//!
//! The second SDK flavor (paper §2.3.1): users who think in gates rather
//! than pulses. Two execution paths demonstrate the paper's multi-SDK
//! architecture:
//!
//! * **Lowering** — circuits built from *global* rotations compile to the
//!   shared analog [`ProgramIr`] (global RX from a resonant pulse, global RZ
//!   from a detuning pulse) and run on any QRMI resource. Locally-addressed
//!   gates cannot run on a global-drive analog device and produce
//!   [`CircuitError::RequiresLocalAddressing`] — surfacing honestly what the
//!   hardware can and cannot do instead of silently mis-executing.
//! * **Native emulation** — the SDK ships its own dense gate-level
//!   simulator, so addressed circuits still run locally during development.

use hpcqc_emulator::SampleResult;
use hpcqc_program::{ProgramIr, Pulse, Register, SequenceBuilder};
use num_complex::Complex64;
use rand::distributions::{Distribution, WeightedIndex};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SDK name recorded in program provenance.
pub const SDK_NAME: &str = "circuit-sdk";

/// Gates supported by the circuit SDK.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Global X rotation by `theta` on every qubit.
    GlobalRx(f64),
    /// Global Z rotation by `theta` on every qubit.
    GlobalRz(f64),
    /// X rotation on one qubit (local addressing).
    Rx(usize, f64),
    /// Z rotation on one qubit.
    Rz(usize, f64),
    /// Hadamard on one qubit.
    H(usize),
    /// Controlled-Z between two qubits.
    Cz(usize, usize),
}

/// Errors from the circuit SDK.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// Qubit index out of range.
    BadQubit { qubit: usize, n: usize },
    /// The target device drives all atoms globally; this gate needs local
    /// addressing and cannot be lowered.
    RequiresLocalAddressing(String),
    /// Lowering produced an invalid program.
    Lowering(String),
    /// Simulator capacity exceeded.
    TooLarge { qubits: usize, limit: usize },
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::BadQubit { qubit, n } => {
                write!(f, "qubit {qubit} out of range for {n}-qubit circuit")
            }
            CircuitError::RequiresLocalAddressing(g) => {
                write!(
                    f,
                    "gate {g} needs local addressing; the analog target drives globally"
                )
            }
            CircuitError::Lowering(m) => write!(f, "lowering failed: {m}"),
            CircuitError::TooLarge { qubits, limit } => {
                write!(
                    f,
                    "{qubits} qubits exceeds the native simulator limit of {limit}"
                )
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// A gate-model circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    pub n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    fn check(&self, q: usize) -> Result<(), CircuitError> {
        if q >= self.n_qubits {
            Err(CircuitError::BadQubit {
                qubit: q,
                n: self.n_qubits,
            })
        } else {
            Ok(())
        }
    }

    /// Append a gate.
    pub fn push(&mut self, g: Gate) -> Result<&mut Self, CircuitError> {
        match g {
            Gate::Rx(q, _) | Gate::Rz(q, _) | Gate::H(q) => self.check(q)?,
            Gate::Cz(a, b) => {
                self.check(a)?;
                self.check(b)?;
                if a == b {
                    return Err(CircuitError::BadQubit {
                        qubit: a,
                        n: self.n_qubits,
                    });
                }
            }
            _ => {}
        }
        self.gates.push(g);
        Ok(self)
    }

    /// Gate count.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Lower to the shared analog IR on `register` (must match qubit count).
    ///
    /// Global RX(θ) becomes a resonant pulse with area θ; global RZ(θ) a
    /// drive-free detuning pulse with ∫δ dt = −θ (up to global phase).
    /// Addressed gates are rejected.
    pub fn lower(&self, register: &Register, shots: u32) -> Result<ProgramIr, CircuitError> {
        if register.len() != self.n_qubits {
            return Err(CircuitError::Lowering(format!(
                "register has {} atoms, circuit has {} qubits",
                register.len(),
                self.n_qubits
            )));
        }
        let mut b = SequenceBuilder::new(register.clone());
        // fixed drive scale for lowering: Ω = 4 rad/µs, |δ| = 4 rad/µs
        const DRIVE: f64 = 4.0;
        for g in &self.gates {
            match *g {
                Gate::GlobalRx(theta) => {
                    if theta.abs() < 1e-12 {
                        continue;
                    }
                    // area θ: phase π flip handles negative angles
                    let (area, phase) = if theta >= 0.0 {
                        (theta, 0.0)
                    } else {
                        (-theta, std::f64::consts::PI)
                    };
                    let duration = area / DRIVE;
                    let p = Pulse::constant(duration, DRIVE, 0.0, phase)
                        .map_err(|e| CircuitError::Lowering(e.to_string()))?;
                    b.add_global_pulse(p);
                }
                Gate::GlobalRz(theta) => {
                    if theta.abs() < 1e-12 {
                        continue;
                    }
                    let delta = if theta >= 0.0 { DRIVE } else { -DRIVE };
                    let duration = theta.abs() / DRIVE;
                    let p = Pulse::constant(duration, 0.0, delta, 0.0)
                        .map_err(|e| CircuitError::Lowering(e.to_string()))?;
                    b.add_global_pulse(p);
                }
                Gate::Rx(q, _) => {
                    return Err(CircuitError::RequiresLocalAddressing(format!("Rx(q{q})")))
                }
                Gate::Rz(q, _) => {
                    return Err(CircuitError::RequiresLocalAddressing(format!("Rz(q{q})")))
                }
                Gate::H(q) => {
                    return Err(CircuitError::RequiresLocalAddressing(format!("H(q{q})")))
                }
                Gate::Cz(a, bq) => {
                    return Err(CircuitError::RequiresLocalAddressing(format!(
                        "CZ(q{a},q{bq})"
                    )))
                }
            }
        }
        let seq = b
            .build()
            .map_err(|e| CircuitError::Lowering(e.to_string()))?;
        Ok(ProgramIr::new(seq, shots, SDK_NAME))
    }

    /// Run on the SDK's native dense simulator (up to 20 qubits) and sample.
    pub fn simulate(&self, shots: u32, seed: u64) -> Result<SampleResult, CircuitError> {
        const LIMIT: usize = 20;
        if self.n_qubits > LIMIT {
            return Err(CircuitError::TooLarge {
                qubits: self.n_qubits,
                limit: LIMIT,
            });
        }
        let dim = 1usize << self.n_qubits;
        let mut state = vec![Complex64::new(0.0, 0.0); dim];
        state[0] = Complex64::new(1.0, 0.0);
        for g in &self.gates {
            match *g {
                Gate::GlobalRx(theta) => {
                    for q in 0..self.n_qubits {
                        apply_rx(&mut state, q, theta);
                    }
                }
                Gate::GlobalRz(theta) => {
                    for q in 0..self.n_qubits {
                        apply_rz(&mut state, q, theta);
                    }
                }
                Gate::Rx(q, theta) => apply_rx(&mut state, q, theta),
                Gate::Rz(q, theta) => apply_rz(&mut state, q, theta),
                Gate::H(q) => apply_h(&mut state, q),
                Gate::Cz(a, b) => apply_cz(&mut state, a, b),
            }
        }
        let probs: Vec<f64> = state.iter().map(|a| a.norm_sqr()).collect();
        let dist = WeightedIndex::new(&probs)
            .map_err(|e| CircuitError::Lowering(format!("degenerate state: {e}")))?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let outcomes: Vec<u64> = (0..shots).map(|_| dist.sample(&mut rng) as u64).collect();
        Ok(SampleResult::from_shots(
            self.n_qubits,
            &outcomes,
            "circuit-sim",
        ))
    }
}

fn apply_rx(state: &mut [Complex64], q: usize, theta: f64) {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    let mi_s = Complex64::new(0.0, -s);
    let mask = 1usize << q;
    for b in 0..state.len() {
        if b & mask == 0 {
            let b1 = b | mask;
            let (a0, a1) = (state[b], state[b1]);
            state[b] = a0 * c + a1 * mi_s;
            state[b1] = a0 * mi_s + a1 * c;
        }
    }
}

fn apply_rz(state: &mut [Complex64], q: usize, theta: f64) {
    let ph0 = Complex64::from_polar(1.0, -theta / 2.0);
    let ph1 = Complex64::from_polar(1.0, theta / 2.0);
    let mask = 1usize << q;
    for (b, amp) in state.iter_mut().enumerate() {
        *amp *= if b & mask == 0 { ph0 } else { ph1 };
    }
}

fn apply_h(state: &mut [Complex64], q: usize) {
    let s = 1.0 / 2f64.sqrt();
    let mask = 1usize << q;
    for b in 0..state.len() {
        if b & mask == 0 {
            let b1 = b | mask;
            let (a0, a1) = (state[b], state[b1]);
            state[b] = (a0 + a1) * s;
            state[b1] = (a0 - a1) * s;
        }
    }
}

fn apply_cz(state: &mut [Complex64], a: usize, b: usize) {
    let mask = (1usize << a) | (1usize << b);
    for (bits, amp) in state.iter_mut().enumerate() {
        if bits & mask == mask {
            *amp = -*amp;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_qubit_rejected() {
        let mut c = Circuit::new(2);
        assert!(matches!(
            c.push(Gate::H(2)),
            Err(CircuitError::BadQubit { .. })
        ));
        assert!(matches!(
            c.push(Gate::Cz(0, 0)),
            Err(CircuitError::BadQubit { .. })
        ));
        assert!(c.push(Gate::Cz(0, 1)).is_ok());
    }

    #[test]
    fn h_then_measure_is_uniform() {
        let mut c = Circuit::new(1);
        c.push(Gate::H(0)).unwrap();
        let r = c.simulate(10_000, 7).unwrap();
        assert!((r.occupation(0) - 0.5).abs() < 0.02);
    }

    #[test]
    fn global_rx_pi_flips_all() {
        let mut c = Circuit::new(3);
        c.push(Gate::GlobalRx(std::f64::consts::PI)).unwrap();
        let r = c.simulate(100, 7).unwrap();
        assert_eq!(r.counts[&0b111], 100);
    }

    #[test]
    fn bell_state_via_h_cz_h() {
        // H(0) CZ(0,1) H(1)… construct correlated state: H0, CZ, H1 gives
        // the graph state; its Z-basis statistics are uniform but
        // correlated in X. Instead build |Φ+> with H(0) + CNOT = H1-CZ-H1.
        let mut c = Circuit::new(2);
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::H(1)).unwrap();
        c.push(Gate::Cz(0, 1)).unwrap();
        c.push(Gate::H(1)).unwrap();
        let r = c.simulate(20_000, 3).unwrap();
        // Bell pair: only 00 and 11 appear, each ~half
        let p00 = r.probability(0b00);
        let p11 = r.probability(0b11);
        assert!(p00 + p11 > 0.999, "p00+p11 = {}", p00 + p11);
        assert!((p00 - 0.5).abs() < 0.02);
    }

    #[test]
    fn rz_changes_phase_not_population() {
        let mut c = Circuit::new(1);
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::Rz(0, 1.234)).unwrap();
        let r = c.simulate(20_000, 5).unwrap();
        assert!((r.occupation(0) - 0.5).abs() < 0.02);
        // but H Rz(π) H = X up to phase
        let mut c2 = Circuit::new(1);
        c2.push(Gate::H(0)).unwrap();
        c2.push(Gate::Rz(0, std::f64::consts::PI)).unwrap();
        c2.push(Gate::H(0)).unwrap();
        let r2 = c2.simulate(100, 5).unwrap();
        assert_eq!(r2.counts[&1], 100);
    }

    #[test]
    fn global_circuit_lowers_to_analog_ir() {
        let reg = Register::linear(2, 60.0).unwrap(); // far apart: no blockade
        let mut c = Circuit::new(2);
        c.push(Gate::GlobalRx(std::f64::consts::PI)).unwrap();
        let ir = c.lower(&reg, 500).unwrap();
        assert_eq!(ir.sdk, SDK_NAME);
        // the lowered pulse has area π
        let area = ir.sequence.pulses[0].pulse.amplitude.integral();
        assert!((area - std::f64::consts::PI).abs() < 1e-9);
        // and running it on the analog emulator flips both qubits
        use hpcqc_emulator::{Emulator, SvBackend};
        let res = SvBackend::default().run(&ir, 3).unwrap();
        assert!(res.occupation(0) > 0.99);
        assert!(res.occupation(1) > 0.99);
    }

    #[test]
    fn negative_global_rx_uses_phase_flip() {
        let reg = Register::linear(1, 6.0).unwrap();
        let mut c = Circuit::new(1);
        c.push(Gate::GlobalRx(-std::f64::consts::PI)).unwrap();
        let ir = c.lower(&reg, 100).unwrap();
        assert!((ir.sequence.pulses[0].pulse.phase - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn addressed_gates_refuse_lowering() {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut c = Circuit::new(2);
        c.push(Gate::H(0)).unwrap();
        assert!(matches!(
            c.lower(&reg, 10),
            Err(CircuitError::RequiresLocalAddressing(_))
        ));
    }

    #[test]
    fn register_size_mismatch_rejected() {
        let reg = Register::linear(3, 6.0).unwrap();
        let mut c = Circuit::new(2);
        c.push(Gate::GlobalRx(0.3)).unwrap();
        assert!(matches!(c.lower(&reg, 10), Err(CircuitError::Lowering(_))));
    }

    #[test]
    fn simulator_capacity_guard() {
        let c = Circuit::new(25);
        assert!(matches!(
            c.simulate(1, 0),
            Err(CircuitError::TooLarge { limit: 20, .. })
        ));
    }

    #[test]
    fn lowered_and_simulated_agree_for_global_rx() {
        // the same circuit through both execution paths must match
        let theta = 1.1;
        let mut c = Circuit::new(2);
        c.push(Gate::GlobalRx(theta)).unwrap();
        let native = c.simulate(50_000, 11).unwrap();
        let reg = Register::linear(2, 80.0).unwrap(); // negligible interaction
        let ir = c.lower(&reg, 50_000).unwrap();
        use hpcqc_emulator::{Emulator, SvBackend};
        let lowered = SvBackend::default().run(&ir, 13).unwrap();
        let tv = native.total_variation_distance(&lowered);
        assert!(tv < 0.02, "paths disagree: TV = {tv}");
    }
}
