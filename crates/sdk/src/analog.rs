//! The analog SDK: a Pulser-style fluent builder.
//!
//! One of the multiple front-ends the environment supports as first-class
//! citizens (paper §2.3.1). It is deliberately a *different API flavor* from
//! the raw IR — chained builder methods, physics-level helpers like
//! adiabatic sweeps — but compiles to the same [`ProgramIr`], which is what
//! lets the daemon treat all SDKs uniformly.

use hpcqc_program::{ProgramIr, Pulse, Register, Sequence, SequenceBuilder, Waveform};

/// SDK name recorded in program provenance.
pub const SDK_NAME: &str = "analog-sdk";

/// Errors from the analog builder.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalogError {
    Program(hpcqc_program::ProgramError),
    /// A helper was called with unphysical arguments.
    BadArgument(String),
}

impl std::fmt::Display for AnalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalogError::Program(e) => write!(f, "{e}"),
            AnalogError::BadArgument(m) => write!(f, "bad argument: {m}"),
        }
    }
}

impl std::error::Error for AnalogError {}

impl From<hpcqc_program::ProgramError> for AnalogError {
    fn from(e: hpcqc_program::ProgramError) -> Self {
        AnalogError::Program(e)
    }
}

/// Fluent builder over a register.
pub struct AnalogProgram {
    builder: SequenceBuilder,
    error: Option<AnalogError>,
}

impl AnalogProgram {
    /// Start a program on `register`.
    pub fn on(register: Register) -> Self {
        AnalogProgram {
            builder: SequenceBuilder::new(register),
            error: None,
        }
    }

    fn try_push(mut self, r: Result<Pulse, AnalogError>) -> Self {
        if self.error.is_none() {
            match r {
                Ok(p) => {
                    self.builder.add_global_pulse(p);
                }
                Err(e) => self.error = Some(e),
            }
        }
        self
    }

    /// A resonant constant pulse: Ω=`omega`, δ=0 for `duration` µs.
    pub fn resonant_pulse(self, duration: f64, omega: f64) -> Self {
        let r = Pulse::constant(duration, omega, 0.0, 0.0).map_err(Into::into);
        self.try_push(r)
    }

    /// A constant pulse with explicit detuning and phase.
    pub fn pulse(self, duration: f64, omega: f64, delta: f64, phase: f64) -> Self {
        let r = Pulse::constant(duration, omega, delta, phase).map_err(Into::into);
        self.try_push(r)
    }

    /// A π-pulse at drive `omega` (duration chosen as π/Ω).
    pub fn pi_pulse(self, omega: f64) -> Self {
        if omega <= 0.0 {
            return self.fail(format!("pi_pulse needs positive omega, got {omega}"));
        }
        self.resonant_pulse(std::f64::consts::PI / omega, omega)
    }

    /// A smooth Blackman pulse with total area `area` rad at zero detuning.
    pub fn blackman_pulse(self, duration: f64, area: f64) -> Self {
        let r = (|| {
            Ok(Pulse::new(
                Waveform::blackman(duration, area)?,
                Waveform::constant(duration, 0.0)?,
                0.0,
            )?)
        })();
        self.try_push(r)
    }

    /// The standard adiabatic sweep of quantum-simulation workloads: ramp Ω
    /// up while sweeping δ from `delta_start` (< 0) to `delta_end` (> 0),
    /// then ramp Ω down. Produces three pulses of `duration/4`, `duration/2`
    /// and `duration/4`.
    pub fn adiabatic_sweep(
        self,
        duration: f64,
        omega_max: f64,
        delta_start: f64,
        delta_end: f64,
    ) -> Self {
        if duration <= 0.0 || omega_max <= 0.0 {
            return self.fail(format!(
                "adiabatic_sweep needs positive duration/omega, got {duration}/{omega_max}"
            ));
        }
        if delta_start >= delta_end {
            return self.fail(format!(
                "sweep must increase detuning: {delta_start} -> {delta_end}"
            ));
        }
        let quarter = duration / 4.0;
        let half = duration / 2.0;
        let r1 = (|| {
            Ok(Pulse::new(
                Waveform::ramp(quarter, 0.0, omega_max)?,
                Waveform::constant(quarter, delta_start)?,
                0.0,
            )?)
        })();
        let r2 = (|| {
            Ok(Pulse::new(
                Waveform::constant(half, omega_max)?,
                Waveform::ramp(half, delta_start, delta_end)?,
                0.0,
            )?)
        })();
        let r3 = (|| {
            Ok(Pulse::new(
                Waveform::ramp(quarter, omega_max, 0.0)?,
                Waveform::constant(quarter, delta_end)?,
                0.0,
            )?)
        })();
        self.try_push(r1).try_push(r2).try_push(r3)
    }

    /// Idle for `duration` µs.
    pub fn wait(mut self, duration: f64) -> Self {
        if self.error.is_none() {
            if duration <= 0.0 {
                return self.fail(format!("wait needs positive duration, got {duration}"));
            }
            self.builder
                .add_delay(hpcqc_program::sequence::GLOBAL_CHANNEL, duration);
        }
        self
    }

    fn fail(mut self, msg: String) -> Self {
        if self.error.is_none() {
            self.error = Some(AnalogError::BadArgument(msg));
        }
        self
    }

    /// Finalize into a raw [`Sequence`].
    pub fn build(self) -> Result<Sequence, AnalogError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(self.builder.build()?)
    }

    /// Finalize into submission-ready IR with SDK provenance.
    pub fn to_ir(self, shots: u32) -> Result<ProgramIr, AnalogError> {
        Ok(ProgramIr::new(self.build()?, shots, SDK_NAME))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Register {
        Register::linear(3, 6.0).unwrap()
    }

    #[test]
    fn fluent_chain_builds_ir_with_provenance() {
        let ir = AnalogProgram::on(reg())
            .resonant_pulse(0.5, 4.0)
            .wait(0.2)
            .pulse(0.3, 2.0, -1.0, 0.1)
            .to_ir(200)
            .unwrap();
        assert_eq!(ir.sdk, SDK_NAME);
        assert_eq!(ir.shots, 200);
        assert_eq!(ir.sequence.pulses.len(), 3);
        assert!((ir.sequence.duration() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pi_pulse_has_area_pi() {
        let seq = AnalogProgram::on(reg()).pi_pulse(4.0).build().unwrap();
        let area = seq.pulses[0].pulse.amplitude.integral();
        assert!((area - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn blackman_pulse_area() {
        let seq = AnalogProgram::on(reg())
            .blackman_pulse(1.0, 2.5)
            .build()
            .unwrap();
        assert!((seq.pulses[0].pulse.amplitude.integral() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn adiabatic_sweep_shape() {
        let seq = AnalogProgram::on(reg())
            .adiabatic_sweep(4.0, 6.0, -10.0, 10.0)
            .build()
            .unwrap();
        assert_eq!(seq.pulses.len(), 3);
        assert!((seq.duration() - 4.0).abs() < 1e-9);
        // starts and ends with zero drive
        let (o0, d0, _) = seq.drive_at(hpcqc_program::sequence::GLOBAL_CHANNEL, 0.0);
        assert_eq!(o0, 0.0);
        assert_eq!(d0, -10.0);
        let (o1, d1, _) = seq.drive_at(hpcqc_program::sequence::GLOBAL_CHANNEL, 4.0);
        assert!(o1.abs() < 1e-9);
        assert_eq!(d1, 10.0);
        // plateau in the middle
        let (om, _, _) = seq.drive_at(hpcqc_program::sequence::GLOBAL_CHANNEL, 2.0);
        assert_eq!(om, 6.0);
    }

    #[test]
    fn first_error_is_sticky() {
        let r = AnalogProgram::on(reg())
            .pi_pulse(-1.0) // bad
            .resonant_pulse(0.5, 4.0) // would be fine
            .to_ir(10);
        match r {
            Err(AnalogError::BadArgument(m)) => assert!(m.contains("omega")),
            other => panic!("expected sticky BadArgument, got {other:?}"),
        }
    }

    #[test]
    fn sweep_argument_validation() {
        assert!(AnalogProgram::on(reg())
            .adiabatic_sweep(-1.0, 6.0, -1.0, 1.0)
            .build()
            .is_err());
        assert!(AnalogProgram::on(reg())
            .adiabatic_sweep(1.0, 6.0, 2.0, 1.0)
            .build()
            .is_err());
    }

    #[test]
    fn empty_program_rejected_at_build() {
        assert!(AnalogProgram::on(reg()).build().is_err());
    }
}
