//! # hpcqc-sdk — multiple SDK front-ends over one IR
//!
//! The paper's multi-SDK requirement (§2.3.1): a QPU is programmable through
//! several SDKs with distinct abstractions, all first-class citizens of the
//! runtime. Three front-ends ship here, each compiling to the shared
//! [`hpcqc_program::ProgramIr`]:
//!
//! * [`analog`] — Pulser-style fluent pulse builder (physics-level helpers),
//! * [`circuit`] — gate-model circuits with lowering of globally-expressible
//!   gates to analog pulses plus a native dense simulator for the rest,
//! * [`text`] — a line-oriented interchange format with parser and renderer.

pub mod analog;
pub mod circuit;
pub mod text;

pub use analog::{AnalogError, AnalogProgram};
pub use circuit::{Circuit, CircuitError, Gate};
pub use text::{parse_program, render_program, ParseError};
