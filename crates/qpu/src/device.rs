//! The virtual QPU device.
//!
//! [`VirtualQpu`] is the stand-in for the physical neutral-atom machine: it
//! executes programs through an internal high-χ MPS emulation *distorted by
//! the current calibration* (Rabi-scale error, detuning offset, SPAM noise),
//! takes wall-clock time proportional to the shot count at the calibrated
//! shot rate, exposes an operational status, and publishes telemetry. The
//! rest of the stack talks to it exactly as it would to hardware: submit,
//! wait, fetch — plus the admin/low-level surface the middleware daemon
//! mediates (§2.5).

use crate::calibration::Calibration;
use hpcqc_emulator::{Emulator, MpsBackend, MpsConfig, SampleResult, SpamNoise, SvBackend};
use hpcqc_program::{DeviceSpec, ProgramIr, Sequence, Violation};
use hpcqc_sync::{rank, TrackedMutex as Mutex};
use hpcqc_telemetry::{labels, Registry, TimeSeriesDb};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Operational status of the device, as surfaced to operators and users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QpuStatus {
    /// Accepting and running jobs.
    Operational,
    /// Running an internal calibration; jobs queue but don't start.
    Calibrating,
    /// Scheduled maintenance window; jobs rejected.
    Maintenance,
    /// Fault state; jobs rejected.
    Down,
}

/// Errors surfaced by the device.
#[derive(Debug, Clone, PartialEq)]
pub enum QpuError {
    /// Device is not accepting work.
    Unavailable(QpuStatus),
    /// The program fails validation against the *current* spec revision.
    Invalid(Vec<Violation>),
    /// Shot count outside device limits.
    BadShots(String),
}

impl std::fmt::Display for QpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QpuError::Unavailable(s) => write!(f, "QPU unavailable: {s:?}"),
            QpuError::Invalid(v) => write!(
                f,
                "program invalid on current calibration: {} violation(s)",
                v.len()
            ),
            QpuError::BadShots(m) => write!(f, "bad shot request: {m}"),
        }
    }
}

impl std::error::Error for QpuError {}

/// A completed QPU execution with its timing.
#[derive(Debug, Clone)]
pub struct QpuExecution {
    pub result: SampleResult,
    /// Simulated seconds the run occupied the device.
    pub device_secs: f64,
    /// Calibration revision the job ran under.
    pub calibration_revision: u64,
}

struct Inner {
    calibration: Calibration,
    status: QpuStatus,
    rng: ChaCha8Rng,
    /// Simulated time of the device clock (seconds).
    now: f64,
    jobs_completed: u64,
    shots_taken: u64,
    busy_secs: f64,
}

/// The virtual neutral-atom QPU.
///
/// Thread-safe and clonable (the middleware daemon and the telemetry
/// collector share one device).
#[derive(Clone)]
pub struct VirtualQpu {
    inner: Arc<Mutex<Inner>>,
    base_spec: DeviceSpec,
    registry: Registry,
    tsdb: TimeSeriesDb,
    name: String,
    /// Fixed per-job overhead (s): register loading, rearrangement.
    pub job_overhead_secs: f64,
}

impl VirtualQpu {
    /// A production-profile QPU with seeded drift.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        VirtualQpu {
            inner: Arc::new(Mutex::new(
                "qpu.device",
                rank::QPU_DEVICE,
                Inner {
                    calibration: Calibration::nominal(),
                    status: QpuStatus::Operational,
                    rng: ChaCha8Rng::seed_from_u64(seed),
                    now: 0.0,
                    jobs_completed: 0,
                    shots_taken: 0,
                    busy_secs: 0.0,
                },
            )),
            base_spec: DeviceSpec::analog_production(),
            registry: Registry::new(),
            tsdb: TimeSeriesDb::new(),
            name: name.into(),
            job_overhead_secs: 3.0,
        }
    }

    /// Use a custom base spec (e.g. a faster roadmap device at 100 Hz).
    pub fn with_base_spec(mut self, spec: DeviceSpec) -> Self {
        self.base_spec = spec;
        self
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Telemetry registry the device publishes into (Prometheus exposition).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The time-series database with calibration history.
    pub fn tsdb(&self) -> &TimeSeriesDb {
        &self.tsdb
    }

    /// Current status.
    pub fn status(&self) -> QpuStatus {
        self.inner.lock().status
    }

    /// Operator/admin: set the device status (maintenance windows etc.).
    pub fn set_status(&self, s: QpuStatus) {
        self.inner.lock().status = s;
        self.registry.gauge_set(
            "qpu_up",
            "1 when the QPU is operational",
            labels(&[("device", &self.name)]),
            if s == QpuStatus::Operational {
                1.0
            } else {
                0.0
            },
        );
    }

    /// The spec as currently calibrated (revision reflects recalibrations).
    pub fn current_spec(&self) -> DeviceSpec {
        let inner = self.inner.lock();
        inner.calibration.effective_spec(&self.base_spec)
    }

    /// Simulated device clock (seconds).
    pub fn now(&self) -> f64 {
        self.inner.lock().now
    }

    /// Advance simulated time by `dt` seconds: calibration drifts and the
    /// telemetry collector records the new state.
    pub fn advance_time(&self, dt: f64) {
        let mut inner = self.inner.lock();
        inner.now += dt;
        let mut rng = inner.rng.clone();
        inner.calibration.step(dt, &mut rng);
        inner.rng = rng;
        let now = inner.now;
        let cal = inner.calibration.clone();
        drop(inner);
        self.record_telemetry(now, &cal);
    }

    /// Admin/low-level: inject a fault (observability experiments).
    pub fn inject_rabi_fault(&self, fraction: f64) {
        let mut inner = self.inner.lock();
        inner.calibration.inject_rabi_fault(fraction);
        let now = inner.now;
        let cal = inner.calibration.clone();
        drop(inner);
        self.record_telemetry(now, &cal);
    }

    /// Admin/low-level: recalibrate (bumps the spec revision). Takes
    /// `duration_secs` of device time during which status is `Calibrating`.
    pub fn recalibrate(&self, duration_secs: f64) {
        let mut inner = self.inner.lock();
        inner.now += duration_secs;
        let now = inner.now;
        inner.calibration.recalibrate(now);
        let cal = inner.calibration.clone();
        drop(inner);
        self.registry.counter_add(
            "qpu_recalibrations_total",
            "Number of recalibration cycles",
            labels(&[("device", &self.name)]),
            1.0,
        );
        self.record_telemetry(now, &cal);
    }

    fn record_telemetry(&self, now: f64, cal: &Calibration) {
        let l = labels(&[("device", &self.name)]);
        self.registry.gauge_set(
            "qpu_rabi_scale",
            "Calibrated Rabi-frequency scale factor (nominal 1.0)",
            l.clone(),
            cal.rabi_scale.current,
        );
        self.registry.gauge_set(
            "qpu_detuning_offset_radus",
            "Calibrated detuning offset (rad/us, nominal 0)",
            l.clone(),
            cal.detuning_offset.current,
        );
        self.registry.gauge_set(
            "qpu_detection_error",
            "Readout false-positive probability",
            l.clone(),
            cal.detection_epsilon.current,
        );
        self.registry.gauge_set(
            "qpu_spec_revision",
            "Current device-spec revision",
            l,
            cal.revision as f64,
        );
        self.tsdb
            .append("qpu_rabi_scale", now, cal.rabi_scale.current);
        self.tsdb
            .append("qpu_detuning_offset", now, cal.detuning_offset.current);
        self.tsdb
            .append("qpu_detection_error", now, cal.detection_epsilon.current);
        self.tsdb.append(
            "qpu_detection_error_prime",
            now,
            cal.detection_epsilon_prime.current,
        );
    }

    /// Apply the calibration distortion to a program: what the hardware
    /// *actually plays* differs from what was requested.
    fn distort(seq: &Sequence, cal: &Calibration) -> Sequence {
        let mut out = seq.clone();
        for tp in &mut out.pulses {
            tp.pulse.amplitude = tp.pulse.amplitude.scaled(cal.rabi_scale.current);
            if cal.detuning_offset.current.abs() > 0.0 {
                // additive offset: represent as composite of original + constant
                let d = tp.pulse.detuning.duration();
                let offset = hpcqc_program::Waveform::constant(d, cal.detuning_offset.current)
                    .expect("positive duration");
                // detuning' = detuning + offset: emulate by summing samples via
                // an interpolated waveform at 1 ns resolution.
                let base = tp.pulse.detuning.discretize(0.001);
                let off = offset.discretize(0.001);
                let vals: Vec<f64> = base
                    .iter()
                    .zip(
                        off.iter()
                            .chain(std::iter::repeat(&cal.detuning_offset.current)),
                    )
                    .map(|(a, b)| a + b)
                    .collect();
                tp.pulse.detuning =
                    hpcqc_program::Waveform::interpolated(d, vals).expect("valid interpolation");
            }
        }
        out
    }

    /// Execute a program. Blocks for (simulated) `device_secs`; the caller —
    /// normally the middleware daemon — decides when to call this, which is
    /// exactly the serialization point a real QPU queue imposes.
    pub fn execute(&self, ir: &ProgramIr, seed: u64) -> Result<QpuExecution, QpuError> {
        let (cal, status) = {
            let inner = self.inner.lock();
            (inner.calibration.clone(), inner.status)
        };
        if status != QpuStatus::Operational {
            return Err(QpuError::Unavailable(status));
        }
        let spec = cal.effective_spec(&self.base_spec);
        let violations = hpcqc_program::validate(&ir.sequence, &spec);
        if !violations.is_empty() {
            self.registry.counter_add(
                "qpu_jobs_rejected_total",
                "Jobs rejected by device-side validation",
                labels(&[("device", &self.name)]),
                1.0,
            );
            return Err(QpuError::Invalid(violations));
        }
        if let Some(v) = hpcqc_program::validate::validate_shots(ir.shots, &spec) {
            return Err(QpuError::BadShots(v.message));
        }

        // Hardware plays the distorted program with calibrated SPAM noise.
        let played = Self::distort(&ir.sequence, &cal);
        let noise = SpamNoise {
            epsilon: cal.detection_epsilon.current,
            epsilon_prime: cal.detection_epsilon_prime.current,
        };
        let distorted_ir = ProgramIr {
            sequence: played,
            ..ir.clone()
        };
        let n = distorted_ir.sequence.num_qubits();
        let mut result = if n <= 12 {
            let backend = SvBackend {
                max_qubits: 12,
                noise,
                ..SvBackend::default()
            };
            run_unvalidated_sv(&backend, &distorted_ir, seed)
        } else {
            let backend = MpsBackend {
                max_qubits: 100,
                config: MpsConfig {
                    chi_max: 24,
                    ..MpsConfig::default()
                },
                noise,
            };
            run_unvalidated_mps(&backend, &distorted_ir, seed)
        };
        result.backend = self.name.clone();

        let device_secs = self.job_overhead_secs + spec.shots_wallclock_secs(ir.shots);
        result.execution_secs = device_secs;

        {
            let mut inner = self.inner.lock();
            inner.now += device_secs;
            inner.jobs_completed += 1;
            inner.shots_taken += ir.shots as u64;
            inner.busy_secs += device_secs;
            // drift also happens while running
            let mut rng = inner.rng.clone();
            inner.calibration.step(device_secs, &mut rng);
            inner.rng = rng;
        }
        let l = labels(&[("device", &self.name)]);
        self.registry
            .counter_add("qpu_jobs_total", "Completed jobs", l.clone(), 1.0);
        self.registry.counter_add(
            "qpu_shots_total",
            "Total shots executed",
            l.clone(),
            ir.shots as f64,
        );
        self.registry.counter_add(
            "qpu_busy_seconds_total",
            "Cumulative seconds the device was executing",
            l,
            device_secs,
        );

        Ok(QpuExecution {
            result,
            device_secs,
            calibration_revision: cal.revision,
        })
    }

    /// Lifetime utilization: busy seconds / device clock.
    pub fn utilization(&self) -> f64 {
        let inner = self.inner.lock();
        if inner.now > 0.0 {
            inner.busy_secs / inner.now
        } else {
            0.0
        }
    }

    /// (jobs_completed, shots_taken) counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.jobs_completed, inner.shots_taken)
    }
}

/// Run on the SV backend bypassing its (emulator) spec validation — the
/// device already validated against its own calibrated spec, and the
/// *distorted* program may legitimately exceed the requested envelope.
fn run_unvalidated_sv(backend: &SvBackend, ir: &ProgramIr, seed: u64) -> SampleResult {
    // The SV backend's own spec is permissive (emulator limits), so plain
    // run() only rejects size. Distortion never changes qubit count.
    backend
        .run(ir, seed)
        .expect("device-validated program runs on SV")
}

fn run_unvalidated_mps(backend: &MpsBackend, ir: &ProgramIr, seed: u64) -> SampleResult {
    backend
        .run(ir, seed)
        .expect("device-validated program runs on MPS")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};

    fn pi_pulse_ir(n: usize, shots: u32) -> ProgramIr {
        let reg = Register::linear(n, 6.0).unwrap();
        let omega = 4.0;
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(std::f64::consts::PI / omega, omega, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "test")
    }

    #[test]
    fn execute_returns_result_and_timing() {
        let qpu = VirtualQpu::new("qpu0", 1);
        let ex = qpu.execute(&pi_pulse_ir(2, 100), 7).unwrap();
        assert_eq!(ex.result.shots, 100);
        assert_eq!(ex.result.backend, "qpu0");
        // 1 Hz shot rate + 3 s overhead
        assert!((ex.device_secs - 103.0).abs() < 1e-9);
        assert_eq!(qpu.stats(), (1, 100));
        assert!(qpu.now() >= 103.0);
        assert!(
            (qpu.utilization() - 1.0).abs() < 1e-9,
            "only busy time so far"
        );
    }

    #[test]
    fn pi_pulse_occupation_high_but_spam_limited() {
        let qpu = VirtualQpu::new("qpu0", 1);
        let ex = qpu.execute(&pi_pulse_ir(1, 1000), 3).unwrap();
        let occ = ex.result.occupation(0);
        // ideal 1.0, SPAM ε′=0.03 pulls it to ~0.97
        assert!(occ > 0.9 && occ < 1.0, "occupation {occ}");
    }

    #[test]
    fn rejects_when_down_or_maintenance() {
        let qpu = VirtualQpu::new("qpu0", 1);
        qpu.set_status(QpuStatus::Maintenance);
        assert!(matches!(
            qpu.execute(&pi_pulse_ir(1, 10), 1),
            Err(QpuError::Unavailable(QpuStatus::Maintenance))
        ));
        qpu.set_status(QpuStatus::Down);
        assert!(matches!(
            qpu.execute(&pi_pulse_ir(1, 10), 1),
            Err(QpuError::Unavailable(QpuStatus::Down))
        ));
        qpu.set_status(QpuStatus::Operational);
        assert!(qpu.execute(&pi_pulse_ir(1, 10), 1).is_ok());
    }

    #[test]
    fn invalid_program_rejected_with_violations() {
        let qpu = VirtualQpu::new("qpu0", 1);
        let reg = Register::linear(2, 2.0).unwrap(); // violates 5 µm minimum
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        let ir = ProgramIr::new(b.build().unwrap(), 10, "test");
        match qpu.execute(&ir, 1) {
            Err(QpuError::Invalid(v)) => assert!(!v.is_empty()),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn shot_limits_enforced() {
        let qpu = VirtualQpu::new("qpu0", 1);
        assert!(matches!(
            qpu.execute(&pi_pulse_ir(1, 100_000), 1),
            Err(QpuError::BadShots(_))
        ));
    }

    #[test]
    fn drift_changes_results_over_time() {
        let qpu = VirtualQpu::new("qpu0", 42);
        let ir = pi_pulse_ir(1, 2000);
        let fresh = qpu.execute(&ir, 5).unwrap();
        let base_max = DeviceSpec::analog_production().channels[0].max_amplitude;
        // Drift one week at a time. The OU processes are stationary at this
        // horizon so each week is an essentially independent draw; the effect
        // must become observable within a few draws no matter which side of
        // nominal the first sample lands on (the spec clamp hides rabi_scale
        // excursions above 1.0, so a single draw is a coin flip).
        let mut moved = false;
        for _ in 0..20 {
            qpu.advance_time(600_000.0);
            let drifted_cal_dev = {
                let spec = qpu.current_spec();
                (spec.channels[0].max_amplitude - base_max).abs()
            };
            let drifted = qpu.execute(&ir, 5).unwrap();
            // With percent-level Rabi error the π-pulse is slightly off; the
            // two occupations should differ beyond pure shot noise *or* the
            // effective spec visibly moved — either evidences the drift path.
            if (fresh.result.occupation(0) - drifted.result.occupation(0)).abs() > 1e-3
                || drifted_cal_dev > 1e-6
            {
                moved = true;
                break;
            }
        }
        assert!(moved, "no observable drift effect after 20 weeks");
    }

    #[test]
    fn fault_injection_visible_in_results_and_telemetry() {
        let qpu = VirtualQpu::new("qpu0", 1);
        qpu.inject_rabi_fault(0.3); // 30% laser power drop
        let ex = qpu.execute(&pi_pulse_ir(1, 2000), 9).unwrap();
        // π-pulse becomes 0.7π: P = sin²(0.35π) ≈ 0.79, well below 0.95
        let occ = ex.result.occupation(0);
        assert!(occ < 0.9, "fault should reduce transfer, got {occ}");
        // telemetry shows it
        let last = qpu.tsdb().last("qpu_rabi_scale").unwrap();
        assert!((last.value - 0.7).abs() < 1e-9);
    }

    #[test]
    fn recalibration_bumps_spec_revision_and_restores() {
        let qpu = VirtualQpu::new("qpu0", 1);
        let rev0 = qpu.current_spec().revision;
        qpu.inject_rabi_fault(0.5);
        qpu.recalibrate(1800.0);
        let spec = qpu.current_spec();
        assert_eq!(spec.revision, rev0 + 1);
        assert_eq!(
            spec.channels[0].max_amplitude,
            DeviceSpec::analog_production().channels[0].max_amplitude
        );
    }

    #[test]
    fn prometheus_exposition_includes_qpu_metrics() {
        let qpu = VirtualQpu::new("fresnel-1", 1);
        qpu.execute(&pi_pulse_ir(1, 5), 1).unwrap();
        qpu.advance_time(1.0);
        let text = qpu.registry().expose();
        assert!(text.contains("qpu_jobs_total{device=\"fresnel-1\"} 1"));
        assert!(text.contains("qpu_shots_total{device=\"fresnel-1\"} 5"));
        assert!(text.contains("qpu_rabi_scale"));
        assert!(text.contains("# TYPE qpu_rabi_scale gauge"));
    }

    #[test]
    fn faster_roadmap_device_runs_shots_faster() {
        let mut spec = DeviceSpec::analog_production();
        spec.shot_rate_hz = 100.0;
        let qpu = VirtualQpu::new("roadmap", 1).with_base_spec(spec);
        let ex = qpu.execute(&pi_pulse_ir(1, 100), 1).unwrap();
        assert!(
            (ex.device_secs - 4.0).abs() < 1e-9,
            "3s overhead + 1s shots"
        );
    }
}
