//! Calibration state and drift model of the virtual QPU.
//!
//! Neutral-atom devices drift: laser power (Rabi-frequency scale), detuning
//! offsets and readout error rates wander over time and are periodically
//! re-calibrated (paper §2.1, §2.5). Each parameter follows an
//! Ornstein–Uhlenbeck process around its nominal value,
//!
//! ```text
//! x ← x + θ (μ − x) dt + σ √dt · N(0,1)
//! ```
//!
//! plus optional injected step faults for the observability experiments.
//! The calibration determines the *effective* device spec revision: whenever
//! a recalibration lands, the advertised [`DeviceSpec`] revision is bumped so
//! clients can detect stale validation.

use hpcqc_program::DeviceSpec;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// One drifting scalar parameter.
///
/// `current` fluctuates around `nominal` (the servo setpoint the control
/// system currently achieves); `pristine` is the as-commissioned value a
/// full recalibration restores. Degradations (laser power loss, alignment
/// creep) lower `nominal` itself and therefore persist through the OU
/// mean-reversion until an operator recalibrates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OuParameter {
    /// As-commissioned value restored by recalibration.
    pub pristine: f64,
    /// Current servo setpoint μ (degrades under faults).
    pub nominal: f64,
    /// Current value.
    pub current: f64,
    /// Mean-reversion rate θ (1/s).
    pub theta: f64,
    /// Diffusion σ (units/√s).
    pub sigma: f64,
}

impl OuParameter {
    pub fn new(nominal: f64, theta: f64, sigma: f64) -> Self {
        OuParameter {
            pristine: nominal,
            nominal,
            current: nominal,
            theta,
            sigma,
        }
    }

    /// Advance the process by `dt` seconds.
    ///
    /// Long steps are exact for the mean reversion (exponential decay
    /// toward nominal) with matched stationary noise, so calling this with
    /// hours-long `dt` is as valid as many small steps.
    pub fn step<R: Rng>(&mut self, dt: f64, rng: &mut R) {
        let noise = Normal::new(0.0, 1.0).expect("unit normal");
        if self.theta * dt < 1e-3 {
            // Euler–Maruyama for short steps
            self.current += self.theta * (self.nominal - self.current) * dt
                + self.sigma * dt.sqrt() * noise.sample(rng);
        } else {
            // exact OU transition: x' = μ + (x-μ)e^{-θdt} + σ_dt N(0,1)
            let decay = (-self.theta * dt).exp();
            let std_dt = self.sigma * ((1.0 - decay * decay) / (2.0 * self.theta)).sqrt();
            self.current =
                self.nominal + (self.current - self.nominal) * decay + std_dt * noise.sample(rng);
        }
    }

    /// Degrade the servo setpoint multiplicatively (persistent fault).
    pub fn degrade(&mut self, factor: f64) {
        self.nominal *= factor;
        self.current *= factor;
    }

    /// Restore the as-commissioned value (a recalibration).
    pub fn recalibrate(&mut self) {
        self.nominal = self.pristine;
        self.current = self.pristine;
    }

    /// Relative deviation of the current value from the pristine value.
    pub fn deviation(&self) -> f64 {
        if self.pristine.abs() > 1e-300 {
            (self.current - self.pristine) / self.pristine
        } else {
            self.current - self.pristine
        }
    }
}

/// The full drifting calibration of the device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Calibration {
    /// Multiplicative error on the applied Rabi frequency (nominal 1.0).
    pub rabi_scale: OuParameter,
    /// Additive detuning offset in rad/µs (nominal 0.0).
    pub detuning_offset: OuParameter,
    /// Readout false-positive probability ε.
    pub detection_epsilon: OuParameter,
    /// Readout false-negative probability ε′.
    pub detection_epsilon_prime: OuParameter,
    /// Spec revision; bumped on recalibration.
    pub revision: u64,
    /// Simulated time (s) of the last recalibration.
    pub last_recalibration: f64,
}

impl Calibration {
    /// Production-like drift magnitudes. The control servos actively hold
    /// each parameter near nominal (mean-reversion time constant ~100 s), so
    /// the stationary wander is sub-percent (σ_stat = σ/√(2θ)); genuine
    /// degradations enter as injected faults or slow nominal shifts, which
    /// is what the observability stack must distinguish from wander.
    pub fn nominal() -> Self {
        Calibration {
            rabi_scale: OuParameter::new(1.0, 0.01, 2e-4),
            detuning_offset: OuParameter::new(0.0, 0.01, 2e-3),
            detection_epsilon: OuParameter::new(0.01, 0.01, 2e-5),
            detection_epsilon_prime: OuParameter::new(0.03, 0.01, 5e-5),
            revision: 1,
            last_recalibration: 0.0,
        }
    }

    /// Advance all parameters by `dt` seconds of drift.
    pub fn step<R: Rng>(&mut self, dt: f64, rng: &mut R) {
        self.rabi_scale.step(dt, rng);
        self.detuning_offset.step(dt, rng);
        self.detection_epsilon.step(dt, rng);
        self.detection_epsilon_prime.step(dt, rng);
        // error probabilities stay physical
        self.detection_epsilon.current = self.detection_epsilon.current.clamp(0.0, 1.0);
        self.detection_epsilon_prime.current = self.detection_epsilon_prime.current.clamp(0.0, 1.0);
    }

    /// Inject a persistent fault into the Rabi scale (observability
    /// experiment S2: e.g. a laser-power drop of `fraction`). Degrades the
    /// servo setpoint, so it survives OU mean-reversion until recalibration.
    pub fn inject_rabi_fault(&mut self, fraction: f64) {
        self.rabi_scale.degrade(1.0 - fraction);
    }

    /// Recalibrate everything to nominal, bumping the spec revision.
    pub fn recalibrate(&mut self, now: f64) {
        self.rabi_scale.recalibrate();
        self.detuning_offset.recalibrate();
        self.detection_epsilon.recalibrate();
        self.detection_epsilon_prime.recalibrate();
        self.revision += 1;
        self.last_recalibration = now;
    }

    /// The worst relative deviation across drive parameters — the scalar
    /// health indicator exported to telemetry.
    pub fn max_drive_deviation(&self) -> f64 {
        self.rabi_scale
            .deviation()
            .abs()
            .max(self.detuning_offset.current.abs() / 10.0) // normalized to ~10 rad/µs scale
    }

    /// Render the current calibration into the advertised device spec:
    /// the usable Ω ceiling shrinks when the laser under-delivers
    /// (`rabi_scale < 1`), so a program validated against an old revision can
    /// genuinely become invalid — the drift scenario of paper §2.1.
    pub fn effective_spec(&self, base: &DeviceSpec) -> DeviceSpec {
        let mut spec = base.clone();
        spec.revision = self.revision;
        for ch in &mut spec.channels {
            // Under-delivering laser lowers the achievable Ω; over-delivery
            // doesn't raise the safety envelope.
            ch.max_amplitude *= self.rabi_scale.current.min(1.0);
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ou_parameter_stays_near_nominal() {
        let mut p = OuParameter::new(1.0, 0.5, 0.01);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            p.step(0.1, &mut rng);
        }
        assert!(
            (p.current - 1.0).abs() < 0.2,
            "OU wandered to {}",
            p.current
        );
    }

    #[test]
    fn ou_recalibrate_resets() {
        let mut p = OuParameter::new(2.0, 0.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..100 {
            p.step(1.0, &mut rng);
        }
        assert!(p.deviation().abs() > 0.0);
        p.recalibrate();
        assert_eq!(p.current, 2.0);
        assert_eq!(p.deviation(), 0.0);
    }

    #[test]
    fn drift_is_seed_deterministic() {
        let mut a = Calibration::nominal();
        let mut b = Calibration::nominal();
        let mut ra = ChaCha8Rng::seed_from_u64(5);
        let mut rb = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            a.step(10.0, &mut ra);
            b.step(10.0, &mut rb);
        }
        assert_eq!(a.rabi_scale.current, b.rabi_scale.current);
        assert_eq!(a.detuning_offset.current, b.detuning_offset.current);
    }

    #[test]
    fn error_probabilities_stay_physical() {
        let mut c = Calibration::nominal();
        c.detection_epsilon.sigma = 10.0; // absurd diffusion
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            c.step(1.0, &mut rng);
            assert!((0.0..=1.0).contains(&c.detection_epsilon.current));
        }
    }

    #[test]
    fn fault_injection_drops_rabi_scale() {
        let mut c = Calibration::nominal();
        c.inject_rabi_fault(0.1);
        assert!((c.rabi_scale.current - 0.9).abs() < 1e-12);
        assert!(c.max_drive_deviation() > 0.05);
    }

    #[test]
    fn recalibration_bumps_revision() {
        let mut c = Calibration::nominal();
        assert_eq!(c.revision, 1);
        c.inject_rabi_fault(0.2);
        c.recalibrate(100.0);
        assert_eq!(c.revision, 2);
        assert_eq!(c.rabi_scale.current, 1.0);
        assert_eq!(c.last_recalibration, 100.0);
    }

    #[test]
    fn effective_spec_tracks_rabi_scale() {
        let base = DeviceSpec::analog_production();
        let mut c = Calibration::nominal();
        c.inject_rabi_fault(0.2);
        let spec = c.effective_spec(&base);
        let base_max = base.channels[0].max_amplitude;
        assert!((spec.channels[0].max_amplitude - 0.8 * base_max).abs() < 1e-9);
        assert_eq!(spec.revision, c.revision);
        // over-delivery does not raise the ceiling
        c.rabi_scale.current = 1.3;
        let spec = c.effective_spec(&base);
        assert_eq!(spec.channels[0].max_amplitude, base_max);
    }
}
