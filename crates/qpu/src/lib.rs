//! # hpcqc-qpu — the virtual neutral-atom QPU
//!
//! Substitute for the physical device the paper integrates (Pasqal
//! Fresnel-class analog QPU): programs execute through an internal emulation
//! distorted by a drifting [`Calibration`], take realistic wall-clock time
//! (1 Hz shot rate by default, §2.2.1), and the device exposes the
//! operational surface the middleware daemon needs — status, current spec
//! revision, admin fault-injection/recalibration, QA probes, and telemetry
//! published to a Prometheus-format registry and a time-series database.

pub mod calibration;
pub mod device;
pub mod qa;

pub use calibration::{Calibration, OuParameter};
pub use device::{QpuError, QpuExecution, QpuStatus, VirtualQpu};
pub use qa::{qa_program, run_qa, QaReport};
