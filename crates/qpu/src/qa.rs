//! Quality-assurance (QA) jobs.
//!
//! Hosting sites and the device itself periodically schedule diagnostic
//! programs against the QPU (paper §3.4). The canonical probe is a
//! single-atom resonant π-pulse: its transfer probability is a direct,
//! model-free measurement of the combined calibration quality, and the
//! measured value feeds the drift detectors of the observability stack.

use crate::device::{QpuError, VirtualQpu};
use hpcqc_program::{ProgramIr, Pulse, Register, SequenceBuilder};
use serde::{Deserialize, Serialize};

/// Result of one QA probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QaReport {
    /// Measured π-pulse transfer probability.
    pub transfer_probability: f64,
    /// Expected value under nominal calibration (1 − ε′ for ideal transfer).
    pub expected: f64,
    /// `measured − expected`.
    pub deficit: f64,
    /// Health score in [0, 1]: 1 means at/above expectation.
    pub health: f64,
    /// Device time consumed by the probe (s).
    pub device_secs: f64,
    /// Calibration revision probed.
    pub calibration_revision: u64,
}

/// The canonical single-atom π-pulse QA program.
pub fn qa_program(shots: u32) -> ProgramIr {
    let reg = Register::from_coords(&[(0.0, 0.0)]).expect("single-site register");
    let omega = 4.0; // well within any calibrated envelope
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(
        Pulse::constant(std::f64::consts::PI / omega, omega, 0.0, 0.0).expect("valid probe pulse"),
    );
    ProgramIr::new(b.build().expect("non-empty"), shots, "qa")
}

/// Run a QA probe on the device and score it.
///
/// `nominal_epsilon_prime` is the readout false-negative rate the site
/// accepts as baseline; the expected transfer is `1 − ε′`.
pub fn run_qa(
    qpu: &VirtualQpu,
    shots: u32,
    nominal_epsilon_prime: f64,
    seed: u64,
) -> Result<QaReport, QpuError> {
    let ir = qa_program(shots);
    let ex = qpu.execute(&ir, seed)?;
    let measured = ex.result.occupation(0);
    let expected = 1.0 - nominal_epsilon_prime;
    let deficit = measured - expected;
    let health = (measured / expected).clamp(0.0, 1.0);
    // publish for the observability stack
    qpu.tsdb().append("qpu_qa_transfer", qpu.now(), measured);
    qpu.registry().gauge_set(
        "qpu_qa_health",
        "Latest QA health score (1 = nominal)",
        hpcqc_telemetry::labels(&[("device", qpu.name())]),
        health,
    );
    Ok(QaReport {
        transfer_probability: measured,
        expected,
        deficit,
        health,
        device_secs: ex.device_secs,
        calibration_revision: ex.calibration_revision,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qa_program_is_single_atom_pi_pulse() {
        let ir = qa_program(100);
        assert_eq!(ir.sequence.num_qubits(), 1);
        assert_eq!(ir.shots, 100);
        assert_eq!(ir.sdk, "qa");
        // pulse area ≈ π
        let area = ir.sequence.pulses[0].pulse.amplitude.integral();
        assert!((area - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn healthy_device_scores_high() {
        let qpu = VirtualQpu::new("qpu0", 1);
        let report = run_qa(&qpu, 1000, 0.03, 5).unwrap();
        assert!(report.health > 0.97, "health {}", report.health);
        assert!(report.deficit.abs() < 0.03);
        assert_eq!(report.calibration_revision, 1);
    }

    #[test]
    fn faulty_device_scores_low() {
        let qpu = VirtualQpu::new("qpu0", 1);
        qpu.inject_rabi_fault(0.3);
        let report = run_qa(&qpu, 1000, 0.03, 5).unwrap();
        assert!(
            report.health < 0.9,
            "fault must degrade health: {}",
            report.health
        );
        assert!(report.deficit < -0.05);
    }

    #[test]
    fn qa_publishes_telemetry() {
        let qpu = VirtualQpu::new("qpu0", 1);
        run_qa(&qpu, 200, 0.03, 5).unwrap();
        assert!(!qpu.tsdb().is_empty("qpu_qa_transfer"));
        assert!(qpu.registry().expose().contains("qpu_qa_health"));
    }

    #[test]
    fn qa_detects_recovery_after_recalibration() {
        let qpu = VirtualQpu::new("qpu0", 1);
        qpu.inject_rabi_fault(0.3);
        let sick = run_qa(&qpu, 1000, 0.03, 5).unwrap();
        qpu.recalibrate(600.0);
        let healthy = run_qa(&qpu, 1000, 0.03, 6).unwrap();
        assert!(healthy.health > sick.health);
        assert_eq!(healthy.calibration_revision, sick.calibration_revision + 1);
    }
}
