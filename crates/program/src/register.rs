//! Atom registers: the spatial layout of qubits in the neutral-atom array.
//!
//! A [`Register`] is an ordered list of named sites with 2-D coordinates in
//! micrometres. The ordering defines the qubit indexing used by every backend
//! (bit `i` of a sampled bitstring corresponds to site `i`).

use crate::error::ProgramError;
use serde::{Deserialize, Serialize};

/// Index of a site (qubit) within a [`Register`].
pub type SiteId = usize;

/// A single trap site holding one atom.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Human-readable label, e.g. `"q3"`. Unique within the register.
    pub label: String,
    /// x coordinate in µm.
    pub x: f64,
    /// y coordinate in µm.
    pub y: f64,
}

/// The geometry of the atom array.
///
/// Constructors validate that coordinates are finite and labels unique; layout
/// helpers ([`Register::linear`], [`Register::ring`], [`Register::square_lattice`],
/// [`Register::triangular_lattice`]) build the standard arrangements used in
/// neutral-atom experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Register {
    sites: Vec<Site>,
}

impl Register {
    /// Build a register from explicit sites.
    pub fn new(sites: Vec<Site>) -> Result<Self, ProgramError> {
        if sites.is_empty() {
            return Err(ProgramError::InvalidRegister(
                "register has no sites".into(),
            ));
        }
        let mut labels = std::collections::HashSet::with_capacity(sites.len());
        for s in &sites {
            if !s.x.is_finite() || !s.y.is_finite() {
                return Err(ProgramError::InvalidRegister(format!(
                    "site {:?} has non-finite coordinates ({}, {})",
                    s.label, s.x, s.y
                )));
            }
            if !labels.insert(s.label.as_str()) {
                return Err(ProgramError::InvalidRegister(format!(
                    "duplicate site label {:?}",
                    s.label
                )));
            }
        }
        Ok(Register { sites })
    }

    /// Build a register from bare coordinates, auto-labelling sites `q0..qN`.
    pub fn from_coords(coords: &[(f64, f64)]) -> Result<Self, ProgramError> {
        Register::new(
            coords
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| Site {
                    label: format!("q{i}"),
                    x,
                    y,
                })
                .collect(),
        )
    }

    /// A linear chain of `n` atoms with uniform `spacing` µm along x.
    pub fn linear(n: usize, spacing: f64) -> Result<Self, ProgramError> {
        if spacing <= 0.0 || !spacing.is_finite() {
            return Err(ProgramError::InvalidRegister(format!(
                "spacing must be positive and finite, got {spacing}"
            )));
        }
        Register::from_coords(
            &(0..n)
                .map(|i| (i as f64 * spacing, 0.0))
                .collect::<Vec<_>>(),
        )
    }

    /// A ring of `n` atoms where nearest neighbours are `spacing` µm apart.
    pub fn ring(n: usize, spacing: f64) -> Result<Self, ProgramError> {
        if n < 3 {
            return Err(ProgramError::InvalidRegister(format!(
                "a ring needs at least 3 atoms, got {n}"
            )));
        }
        if spacing <= 0.0 || !spacing.is_finite() {
            return Err(ProgramError::InvalidRegister(format!(
                "spacing must be positive and finite, got {spacing}"
            )));
        }
        // Chord length c between adjacent points on a circle of radius R with
        // n points: c = 2 R sin(pi/n)  =>  R = c / (2 sin(pi/n)).
        let radius = spacing / (2.0 * (std::f64::consts::PI / n as f64).sin());
        Register::from_coords(
            &(0..n)
                .map(|i| {
                    let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                    (radius * theta.cos(), radius * theta.sin())
                })
                .collect::<Vec<_>>(),
        )
    }

    /// A `rows x cols` square lattice with uniform `spacing` µm.
    pub fn square_lattice(rows: usize, cols: usize, spacing: f64) -> Result<Self, ProgramError> {
        if spacing <= 0.0 || !spacing.is_finite() {
            return Err(ProgramError::InvalidRegister(format!(
                "spacing must be positive and finite, got {spacing}"
            )));
        }
        let mut coords = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                coords.push((c as f64 * spacing, r as f64 * spacing));
            }
        }
        Register::from_coords(&coords)
    }

    /// A `rows x cols` triangular lattice: odd rows are shifted by half a
    /// spacing, row pitch is `spacing * sqrt(3)/2`, so all nearest-neighbour
    /// distances equal `spacing`.
    pub fn triangular_lattice(
        rows: usize,
        cols: usize,
        spacing: f64,
    ) -> Result<Self, ProgramError> {
        if spacing <= 0.0 || !spacing.is_finite() {
            return Err(ProgramError::InvalidRegister(format!(
                "spacing must be positive and finite, got {spacing}"
            )));
        }
        let row_pitch = spacing * 3f64.sqrt() / 2.0;
        let mut coords = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let shift = if r % 2 == 1 { spacing / 2.0 } else { 0.0 };
            for c in 0..cols {
                coords.push((c as f64 * spacing + shift, r as f64 * row_pitch));
            }
        }
        Register::from_coords(&coords)
    }

    /// Number of atoms (qubits).
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the register has no sites (unreachable through constructors,
    /// but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The sites in qubit order.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Coordinates of site `i` in µm.
    pub fn position(&self, i: SiteId) -> Option<(f64, f64)> {
        self.sites.get(i).map(|s| (s.x, s.y))
    }

    /// Euclidean distance between two sites in µm.
    pub fn distance(&self, i: SiteId, j: SiteId) -> Option<f64> {
        let (xi, yi) = self.position(i)?;
        let (xj, yj) = self.position(j)?;
        Some(((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt())
    }

    /// The smallest pairwise distance in the register, or `None` for a single
    /// atom. Used by device validation (minimum trap separation).
    pub fn min_distance(&self) -> Option<f64> {
        let n = self.sites.len();
        if n < 2 {
            return None;
        }
        let mut min = f64::INFINITY;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.distance(i, j).expect("indices in range");
                if d < min {
                    min = d;
                }
            }
        }
        Some(min)
    }

    /// The maximum distance of any site from the register centroid, in µm.
    /// Devices constrain this (the optical field of view / trap radius).
    pub fn max_radius_from_center(&self) -> f64 {
        let n = self.sites.len() as f64;
        let cx = self.sites.iter().map(|s| s.x).sum::<f64>() / n;
        let cy = self.sites.iter().map(|s| s.y).sum::<f64>() / n;
        self.sites
            .iter()
            .map(|s| ((s.x - cx).powi(2) + (s.y - cy).powi(2)).sqrt())
            .fold(0.0, f64::max)
    }

    /// All pairwise interaction terms `(i, j, r_ij)` with `i < j`.
    pub fn pairs(&self) -> Vec<(SiteId, SiteId, f64)> {
        let n = self.sites.len();
        let mut out = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                out.push((i, j, self.distance(i, j).expect("indices in range")));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_register_rejected() {
        assert!(matches!(
            Register::new(vec![]),
            Err(ProgramError::InvalidRegister(_))
        ));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let sites = vec![
            Site {
                label: "a".into(),
                x: 0.0,
                y: 0.0,
            },
            Site {
                label: "a".into(),
                x: 5.0,
                y: 0.0,
            },
        ];
        assert!(Register::new(sites).is_err());
    }

    #[test]
    fn non_finite_coordinates_rejected() {
        let sites = vec![Site {
            label: "a".into(),
            x: f64::NAN,
            y: 0.0,
        }];
        assert!(Register::new(sites).is_err());
        let sites = vec![Site {
            label: "a".into(),
            x: 0.0,
            y: f64::INFINITY,
        }];
        assert!(Register::new(sites).is_err());
    }

    #[test]
    fn linear_chain_geometry() {
        let r = Register::linear(4, 6.0).unwrap();
        assert_eq!(r.len(), 4);
        assert!((r.distance(0, 1).unwrap() - 6.0).abs() < 1e-12);
        assert!((r.distance(0, 3).unwrap() - 18.0).abs() < 1e-12);
        assert_eq!(r.min_distance(), Some(6.0));
    }

    #[test]
    fn linear_rejects_bad_spacing() {
        assert!(Register::linear(4, 0.0).is_err());
        assert!(Register::linear(4, -3.0).is_err());
        assert!(Register::linear(4, f64::NAN).is_err());
    }

    #[test]
    fn ring_has_uniform_nearest_neighbour_spacing() {
        let n = 8;
        let r = Register::ring(n, 5.0).unwrap();
        for i in 0..n {
            let d = r.distance(i, (i + 1) % n).unwrap();
            assert!((d - 5.0).abs() < 1e-9, "edge {i}: {d}");
        }
        // opposite atoms are farther apart than neighbours
        assert!(r.distance(0, n / 2).unwrap() > 5.0);
    }

    #[test]
    fn ring_requires_three_atoms() {
        assert!(Register::ring(2, 5.0).is_err());
    }

    #[test]
    fn square_lattice_geometry() {
        let r = Register::square_lattice(2, 3, 4.0).unwrap();
        assert_eq!(r.len(), 6);
        assert_eq!(r.min_distance(), Some(4.0));
        // diagonal of the unit cell
        let d = r.distance(0, 4).unwrap(); // (0,0) -> (1,1)
        assert!((d - 4.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn triangular_lattice_is_equilateral() {
        let r = Register::triangular_lattice(2, 2, 6.0).unwrap();
        // sites: (0,0), (6,0), (3, 3sqrt3), (9, 3sqrt3)
        assert!((r.distance(0, 1).unwrap() - 6.0).abs() < 1e-9);
        assert!((r.distance(0, 2).unwrap() - 6.0).abs() < 1e-9);
        assert!((r.distance(1, 2).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn min_distance_none_for_single_atom() {
        let r = Register::from_coords(&[(0.0, 0.0)]).unwrap();
        assert_eq!(r.min_distance(), None);
    }

    #[test]
    fn pairs_enumerates_upper_triangle() {
        let r = Register::linear(3, 5.0).unwrap();
        let p = r.pairs();
        assert_eq!(p.len(), 3);
        assert_eq!((p[0].0, p[0].1), (0, 1));
        assert_eq!((p[2].0, p[2].1), (1, 2));
        assert!((p[2].2 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_radius_of_ring_equals_circumradius() {
        let n = 6;
        let spacing = 5.0;
        let r = Register::ring(n, spacing).unwrap();
        let expected = spacing / (2.0 * (std::f64::consts::PI / n as f64).sin());
        assert!((r.max_radius_from_center() - expected).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let r = Register::triangular_lattice(3, 3, 5.0).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: Register = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn position_and_distance_out_of_range() {
        let r = Register::linear(2, 5.0).unwrap();
        assert!(r.position(5).is_none());
        assert!(r.distance(0, 5).is_none());
    }
}
