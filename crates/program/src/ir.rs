//! The serialized abstract representation of a program.
//!
//! [`ProgramIr`] is the versioned, self-describing JSON envelope that crosses
//! every process boundary in the stack: SDK → runtime → REST middleware →
//! backend. It bundles the [`Sequence`] with submission metadata (shots,
//! requested device, SDK provenance) so the daemon can validate, schedule and
//! account for jobs without knowing which SDK produced them — the multi-SDK
//! first-class-citizen property of the paper (§2.3.1).

use crate::error::ProgramError;
use crate::sequence::Sequence;
use serde::{Deserialize, Serialize};

/// Version of the abstract representation this build reads and writes.
pub const IR_VERSION: u32 = 1;

/// The wire format for a quantum job payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramIr {
    /// Format version; readers reject unknown versions.
    pub version: u32,
    /// The analog program.
    pub sequence: Sequence,
    /// Number of measurement shots requested.
    pub shots: u32,
    /// Which SDK produced this program (provenance, surfaced in job metadata
    /// and telemetry; never changes execution semantics).
    pub sdk: String,
    /// SDK version string for reproducibility records.
    pub sdk_version: String,
    /// Device-spec revision this program was last validated against, if any.
    /// Lets the middleware detect stale validation after calibration drift.
    pub validated_against_revision: Option<u64>,
    /// Declared estimate of the classical phases surrounding this quantum
    /// payload, in seconds. Feeds the static pattern inference (Table-1
    /// taxonomy) in `hpcqc-analysis`; absent means "pattern not inferable".
    pub classical_secs_estimate: Option<f64>,
}

impl ProgramIr {
    /// Wrap a sequence into the current IR version.
    pub fn new(sequence: Sequence, shots: u32, sdk: impl Into<String>) -> Self {
        ProgramIr {
            version: IR_VERSION,
            sequence,
            shots,
            sdk: sdk.into(),
            sdk_version: env!("CARGO_PKG_VERSION").to_string(),
            validated_against_revision: None,
            classical_secs_estimate: None,
        }
    }

    /// Record the device-spec revision the program was validated against.
    pub fn with_validation_revision(mut self, revision: u64) -> Self {
        self.validated_against_revision = Some(revision);
        self
    }

    /// Declare the expected classical-phase duration accompanying this
    /// program (enables static workload-pattern inference).
    pub fn with_classical_estimate(mut self, secs: f64) -> Self {
        self.classical_secs_estimate = Some(secs);
        self
    }

    /// Serialize to canonical JSON.
    pub fn to_json(&self) -> Result<String, ProgramError> {
        serde_json::to_string(self).map_err(|e| ProgramError::Serialization(e.to_string()))
    }

    /// Deserialize, rejecting unsupported versions.
    pub fn from_json(s: &str) -> Result<Self, ProgramError> {
        let ir: ProgramIr =
            serde_json::from_str(s).map_err(|e| ProgramError::Serialization(e.to_string()))?;
        if ir.version != IR_VERSION {
            return Err(ProgramError::VersionMismatch {
                found: ir.version,
                supported: IR_VERSION,
            });
        }
        Ok(ir)
    }

    /// Content fingerprint combining program and shot count; stable across
    /// serialization round-trips.
    pub fn fingerprint(&self) -> u64 {
        self.sequence.fingerprint() ^ (self.shots as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::Register;
    use crate::sequence::{Pulse, SequenceBuilder};

    fn ir() -> ProgramIr {
        let reg = Register::linear(3, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(1.0, 5.0, -2.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), 500, "analog-sdk")
    }

    #[test]
    fn json_roundtrip() {
        let p = ir();
        let json = p.to_json().unwrap();
        let back = ProgramIr::from_json(&json).unwrap();
        assert_eq!(p, back);
        assert_eq!(p.fingerprint(), back.fingerprint());
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut p = ir();
        p.version = 42;
        let json = serde_json::to_string(&p).unwrap();
        match ProgramIr::from_json(&json) {
            Err(ProgramError::VersionMismatch { found, supported }) => {
                assert_eq!(found, 42);
                assert_eq!(supported, IR_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            ProgramIr::from_json("{not json"),
            Err(ProgramError::Serialization(_))
        ));
        assert!(matches!(
            ProgramIr::from_json("{}"),
            Err(ProgramError::Serialization(_))
        ));
    }

    #[test]
    fn fingerprint_depends_on_shots() {
        let a = ir();
        let mut b = ir();
        b.shots = 501;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn validation_revision_recorded() {
        let p = ir().with_validation_revision(7);
        assert_eq!(p.validated_against_revision, Some(7));
        let back = ProgramIr::from_json(&p.to_json().unwrap()).unwrap();
        assert_eq!(back.validated_against_revision, Some(7));
    }

    #[test]
    fn classical_estimate_recorded_and_optional_on_the_wire() {
        let p = ir().with_classical_estimate(12.5);
        assert_eq!(p.classical_secs_estimate, Some(12.5));
        let back = ProgramIr::from_json(&p.to_json().unwrap()).unwrap();
        assert_eq!(back.classical_secs_estimate, Some(12.5));
        // payloads from older clients omit the field entirely
        let mut json = ir().to_json().unwrap();
        json = json.replace(",\"classical_secs_estimate\":null", "");
        assert!(!json.contains("classical_secs_estimate"));
        let old = ProgramIr::from_json(&json).unwrap();
        assert_eq!(old.classical_secs_estimate, None);
    }

    #[test]
    fn sdk_provenance_preserved() {
        let p = ir();
        assert_eq!(p.sdk, "analog-sdk");
        assert!(!p.sdk_version.is_empty());
    }
}
