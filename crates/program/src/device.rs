//! Device specifications.
//!
//! A [`DeviceSpec`] describes the physical envelope a program must fit inside:
//! channel limits (max Ω, detuning bounds), geometry limits (min trap
//! distance, field-of-view radius, max qubits) and timing limits. Backends
//! expose their *current* spec at run time; because calibration drifts, the
//! spec is a function of time on the virtual QPU (`hpcqc-qpu` regenerates it
//! from the live calibration), which is exactly the program-validity concern
//! the paper raises in §2.1.

use serde::{Deserialize, Serialize};

/// Capabilities of one drive channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Channel name programs must use (e.g. `"rydberg_global"`).
    pub name: String,
    /// Maximum Rabi frequency in rad/µs.
    pub max_amplitude: f64,
    /// Minimum (most negative) detuning in rad/µs.
    pub min_detuning: f64,
    /// Maximum detuning in rad/µs.
    pub max_detuning: f64,
    /// Whether the channel addresses all atoms globally (analog devices) or
    /// can target individual sites.
    pub global: bool,
}

/// Shot rates at or above this are treated as "classical sampling, no
/// per-shot wall-clock cost" (kept finite so specs round-trip through JSON).
pub const EFFECTIVELY_UNLIMITED_SHOT_RATE: f64 = 1e9;

/// The full device specification fetched by clients before validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Device name, e.g. `"analog-fresnel"`, `"emu-sv"`, `"emu-mps"`.
    pub name: String,
    /// Spec revision; bumped whenever a recalibration changes any limit, so
    /// clients can detect drift between validation and execution.
    pub revision: u64,
    /// Maximum number of atoms.
    pub max_qubits: usize,
    /// Minimum distance between any two traps, µm.
    pub min_atom_distance: f64,
    /// Maximum distance of any atom from the register centroid, µm.
    pub max_radius_from_center: f64,
    /// Maximum total sequence duration, µs.
    pub max_duration: f64,
    /// Minimum number of shots per job the device will accept.
    pub min_shots: u32,
    /// Maximum number of shots per job.
    pub max_shots: u32,
    /// Available channels.
    pub channels: Vec<ChannelSpec>,
    /// Van der Waals C6 coefficient currently calibrated, rad·µs⁻¹·µm⁶.
    pub c6_coefficient: f64,
    /// Nominal shot rate in Hz (1 Hz today, ~100 Hz on the roadmap — §2.2.1).
    pub shot_rate_hz: f64,
}

impl DeviceSpec {
    /// The production analog neutral-atom device profile (Fresnel-class):
    /// 100 atoms, 5 µm minimum spacing, Ω up to ~2π·2 MHz, |δ| up to
    /// 2π·~6 MHz, 6 µs max sequence, 1 Hz shot rate.
    pub fn analog_production() -> Self {
        DeviceSpec {
            name: "analog-fresnel".to_string(),
            revision: 1,
            max_qubits: 100,
            min_atom_distance: 5.0,
            max_radius_from_center: 35.0,
            max_duration: 6.0,
            min_shots: 1,
            max_shots: 2000,
            channels: vec![ChannelSpec {
                name: crate::sequence::GLOBAL_CHANNEL.to_string(),
                max_amplitude: 12.57, // ~2π·2 MHz
                min_detuning: -38.0,  // ~-2π·6 MHz
                max_detuning: 38.0,
                global: true,
            }],
            c6_coefficient: crate::units::C6_COEFF,
            shot_rate_hz: 1.0,
        }
    }

    /// A permissive spec for emulators: more qubits on MPS, relaxed limits,
    /// effectively unlimited shot rate (classical sampling).
    pub fn emulator(name: &str, max_qubits: usize) -> Self {
        DeviceSpec {
            name: name.to_string(),
            revision: 1,
            max_qubits,
            min_atom_distance: 1.0,
            max_radius_from_center: 500.0,
            max_duration: 100.0,
            min_shots: 1,
            max_shots: 1_000_000,
            channels: vec![ChannelSpec {
                name: crate::sequence::GLOBAL_CHANNEL.to_string(),
                max_amplitude: 125.7, // 10x hardware: emulators allow exploration
                min_detuning: -380.0,
                max_detuning: 380.0,
                global: true,
            }],
            c6_coefficient: crate::units::C6_COEFF,
            shot_rate_hz: EFFECTIVELY_UNLIMITED_SHOT_RATE,
        }
    }

    /// A "mock" spec mirroring the *production* limits but served by an
    /// emulator — this is what end-to-end tests validate against so that a
    /// program passing locally also fits the hardware (paper §3.2,
    /// footnote 3).
    pub fn mock_of_production() -> Self {
        let mut spec = Self::analog_production();
        spec.name = "mock-analog-fresnel".to_string();
        spec
    }

    /// Look up a channel spec by name.
    pub fn channel(&self, name: &str) -> Option<&ChannelSpec> {
        self.channels.iter().find(|c| c.name == name)
    }

    /// Expected wall-clock seconds to run `shots` shots at the calibrated
    /// shot rate. Returns 0 for effectively-unlimited (emulator) rates.
    pub fn shots_wallclock_secs(&self, shots: u32) -> f64 {
        if !self.shot_rate_hz.is_finite() || self.shot_rate_hz >= EFFECTIVELY_UNLIMITED_SHOT_RATE {
            0.0
        } else {
            shots as f64 / self.shot_rate_hz
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_spec_is_self_consistent() {
        let s = DeviceSpec::analog_production();
        assert!(s.max_qubits >= 100);
        assert!(s.min_atom_distance > 0.0);
        assert!(s.max_duration > 0.0);
        assert!(s.min_shots <= s.max_shots);
        let ch = s.channel(crate::sequence::GLOBAL_CHANNEL).unwrap();
        assert!(ch.max_amplitude > 0.0);
        assert!(ch.min_detuning < 0.0 && ch.max_detuning > 0.0);
        assert!(ch.global);
    }

    #[test]
    fn mock_mirrors_production_limits() {
        let p = DeviceSpec::analog_production();
        let m = DeviceSpec::mock_of_production();
        assert_ne!(p.name, m.name);
        assert_eq!(p.max_qubits, m.max_qubits);
        assert_eq!(p.min_atom_distance, m.min_atom_distance);
        assert_eq!(p.max_duration, m.max_duration);
        assert_eq!(p.channels, m.channels);
    }

    #[test]
    fn emulator_spec_is_permissive() {
        let e = DeviceSpec::emulator("emu-sv", 20);
        let p = DeviceSpec::analog_production();
        assert!(e.max_duration > p.max_duration);
        assert!(
            e.channel("rydberg_global").unwrap().max_amplitude
                > p.channel("rydberg_global").unwrap().max_amplitude
        );
        assert_eq!(e.shots_wallclock_secs(100), 0.0);
    }

    #[test]
    fn shot_wallclock_uses_rate() {
        let p = DeviceSpec::analog_production();
        assert!(
            (p.shots_wallclock_secs(100) - 100.0).abs() < 1e-9,
            "1 Hz device"
        );
        let mut fast = p.clone();
        fast.shot_rate_hz = 100.0;
        assert!((fast.shots_wallclock_secs(100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_channel_lookup() {
        let s = DeviceSpec::analog_production();
        assert!(s.channel("raman_local").is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let s = DeviceSpec::analog_production();
        let json = serde_json::to_string(&s).unwrap();
        let back: DeviceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
