//! Pulse sequences: the executable part of an analog program.
//!
//! A [`Sequence`] owns a [`Register`] plus a time-ordered list of [`Pulse`]s
//! on a named channel. In the analog regime targeted here there is one global
//! Rydberg channel driving all atoms uniformly — matching the production
//! devices the paper integrates — but the IR keeps the channel name explicit
//! so local-addressing devices can be added without changing the format.

use crate::error::ProgramError;
use crate::register::Register;
use crate::waveform::Waveform;
use serde::{Deserialize, Serialize};

/// The global Rydberg channel name used by the standard analog device.
pub const GLOBAL_CHANNEL: &str = "rydberg_global";

/// One pulse: simultaneous amplitude (Ω), detuning (δ) and phase (φ) control
/// over a common duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pulse {
    /// Rabi frequency Ω(t) in rad/µs. Must be non-negative on hardware.
    pub amplitude: Waveform,
    /// Detuning δ(t) in rad/µs.
    pub detuning: Waveform,
    /// Carrier phase in radians, constant over the pulse.
    pub phase: f64,
}

impl Pulse {
    /// Build a pulse; amplitude and detuning must share a duration (within
    /// 1 ps tolerance) and the phase must be finite.
    pub fn new(amplitude: Waveform, detuning: Waveform, phase: f64) -> Result<Self, ProgramError> {
        let da = amplitude.duration();
        let dd = detuning.duration();
        if (da - dd).abs() > 1e-6 {
            return Err(ProgramError::InvalidPulse(format!(
                "amplitude duration {da} µs != detuning duration {dd} µs"
            )));
        }
        if !phase.is_finite() {
            return Err(ProgramError::InvalidPulse(format!(
                "phase must be finite, got {phase}"
            )));
        }
        Ok(Pulse {
            amplitude,
            detuning,
            phase,
        })
    }

    /// A pulse with constant amplitude and detuning — the workhorse of
    /// adiabatic-sweep style programs.
    pub fn constant(
        duration: f64,
        omega: f64,
        delta: f64,
        phase: f64,
    ) -> Result<Self, ProgramError> {
        Pulse::new(
            Waveform::constant(duration, omega)?,
            Waveform::constant(duration, delta)?,
            phase,
        )
    }

    /// Pulse duration in µs.
    pub fn duration(&self) -> f64 {
        self.amplitude.duration()
    }
}

/// A timed pulse on a channel within a sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedPulse {
    /// Channel the pulse plays on.
    pub channel: String,
    /// Start time in µs from sequence origin.
    pub start: f64,
    /// The pulse content.
    pub pulse: Pulse,
}

/// A complete analog program: register + scheduled pulses + measurement basis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sequence {
    /// Atom geometry; defines qubit count and interaction graph.
    pub register: Register,
    /// Pulses sorted by start time (enforced by [`SequenceBuilder`]).
    pub pulses: Vec<TimedPulse>,
    /// Measurement basis label; `"ground-rydberg"` on the analog device.
    pub measurement_basis: String,
}

impl Sequence {
    /// Total program duration: the end of the last pulse, or 0 for an empty
    /// schedule.
    pub fn duration(&self) -> f64 {
        self.pulses
            .iter()
            .map(|tp| tp.start + tp.pulse.duration())
            .fold(0.0, f64::max)
    }

    /// Number of qubits (register size).
    pub fn num_qubits(&self) -> usize {
        self.register.len()
    }

    /// The drive values `(Ω, δ, φ)` on `channel` at absolute time `t`.
    /// Between pulses the drive is zero (Ω=0, δ=0, φ=0).
    pub fn drive_at(&self, channel: &str, t: f64) -> (f64, f64, f64) {
        for tp in &self.pulses {
            if tp.channel != channel {
                continue;
            }
            let end = tp.start + tp.pulse.duration();
            if t >= tp.start && t <= end {
                let local = t - tp.start;
                return (
                    tp.pulse.amplitude.sample(local),
                    tp.pulse.detuning.sample(local),
                    tp.pulse.phase,
                );
            }
        }
        (0.0, 0.0, 0.0)
    }

    /// Peak Rabi frequency over the whole schedule.
    pub fn max_amplitude(&self) -> f64 {
        self.pulses
            .iter()
            .map(|tp| tp.pulse.amplitude.max_value())
            .fold(0.0, f64::max)
    }

    /// Extremes of the detuning over the whole schedule `(min, max)`;
    /// `(0, 0)` for an empty schedule.
    pub fn detuning_range(&self) -> (f64, f64) {
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for tp in &self.pulses {
            lo = lo.min(tp.pulse.detuning.min_value());
            hi = hi.max(tp.pulse.detuning.max_value());
        }
        (lo, hi)
    }

    /// A stable content fingerprint of the program (register + schedule),
    /// used for caching results and for reproducibility metadata in job
    /// records. FNV-1a over the canonical JSON encoding.
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("sequence serializes");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

/// Incremental builder enforcing the sequence invariants: pulses on a channel
/// are appended back-to-back (no overlap on the same channel) and sorted by
/// start time.
#[derive(Debug, Clone)]
pub struct SequenceBuilder {
    register: Register,
    pulses: Vec<TimedPulse>,
    measurement_basis: String,
}

impl SequenceBuilder {
    /// Start a program on the given register.
    pub fn new(register: Register) -> Self {
        SequenceBuilder {
            register,
            pulses: Vec::new(),
            measurement_basis: "ground-rydberg".to_string(),
        }
    }

    /// Override the measurement basis label.
    pub fn with_measurement_basis(mut self, basis: impl Into<String>) -> Self {
        self.measurement_basis = basis.into();
        self
    }

    /// End time of the last pulse on `channel` (0 if none yet).
    fn channel_end(&self, channel: &str) -> f64 {
        self.pulses
            .iter()
            .filter(|tp| tp.channel == channel)
            .map(|tp| tp.start + tp.pulse.duration())
            .fold(0.0, f64::max)
    }

    /// Append `pulse` to `channel` immediately after the channel's current
    /// end time.
    pub fn add_pulse(&mut self, channel: impl Into<String>, pulse: Pulse) -> &mut Self {
        let channel = channel.into();
        let start = self.channel_end(&channel);
        self.pulses.push(TimedPulse {
            channel,
            start,
            pulse,
        });
        self
    }

    /// Append a pulse to the global Rydberg channel.
    pub fn add_global_pulse(&mut self, pulse: Pulse) -> &mut Self {
        self.add_pulse(GLOBAL_CHANNEL, pulse)
    }

    /// Insert an idle gap of `duration` µs on `channel` (advances the channel
    /// clock without driving).
    pub fn add_delay(&mut self, channel: impl Into<String>, duration: f64) -> &mut Self {
        let channel = channel.into();
        let start = self.channel_end(&channel);
        // Represent the delay as a zero pulse so the schedule stays explicit.
        let zero = Pulse::constant(duration.max(1e-9), 0.0, 0.0, 0.0)
            .expect("zero pulse with positive duration is valid");
        self.pulses.push(TimedPulse {
            channel,
            start,
            pulse: zero,
        });
        self
    }

    /// Finalize; rejects an empty schedule.
    pub fn build(self) -> Result<Sequence, ProgramError> {
        if self.pulses.is_empty() {
            return Err(ProgramError::InvalidSequence(
                "sequence has no pulses; add at least one pulse before build()".into(),
            ));
        }
        let mut pulses = self.pulses;
        pulses.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite starts"));
        Ok(Sequence {
            register: self.register,
            pulses,
            measurement_basis: self.measurement_basis,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(n: usize) -> Register {
        Register::linear(n, 6.0).unwrap()
    }

    #[test]
    fn pulse_duration_mismatch_rejected() {
        let a = Waveform::constant(1.0, 1.0).unwrap();
        let d = Waveform::constant(2.0, 0.0).unwrap();
        assert!(Pulse::new(a, d, 0.0).is_err());
    }

    #[test]
    fn pulse_nonfinite_phase_rejected() {
        let a = Waveform::constant(1.0, 1.0).unwrap();
        let d = Waveform::constant(1.0, 0.0).unwrap();
        assert!(Pulse::new(a, d, f64::NAN).is_err());
    }

    #[test]
    fn builder_appends_back_to_back() {
        let mut b = SequenceBuilder::new(reg(2));
        b.add_global_pulse(Pulse::constant(1.0, 2.0, 0.0, 0.0).unwrap());
        b.add_global_pulse(Pulse::constant(0.5, 3.0, -1.0, 0.0).unwrap());
        let s = b.build().unwrap();
        assert_eq!(s.pulses.len(), 2);
        assert_eq!(s.pulses[0].start, 0.0);
        assert_eq!(s.pulses[1].start, 1.0);
        assert!((s.duration() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence_rejected() {
        assert!(SequenceBuilder::new(reg(1)).build().is_err());
    }

    #[test]
    fn drive_at_returns_pulse_values_and_zero_between() {
        let mut b = SequenceBuilder::new(reg(2));
        b.add_global_pulse(Pulse::constant(1.0, 2.0, -0.5, 0.25).unwrap());
        b.add_delay(GLOBAL_CHANNEL, 1.0);
        b.add_global_pulse(Pulse::constant(1.0, 4.0, 0.5, 0.0).unwrap());
        let s = b.build().unwrap();

        let (o, d, p) = s.drive_at(GLOBAL_CHANNEL, 0.5);
        assert_eq!((o, d, p), (2.0, -0.5, 0.25));
        let (o, d, _) = s.drive_at(GLOBAL_CHANNEL, 1.5);
        assert_eq!((o, d), (0.0, 0.0), "delay drives nothing");
        let (o, _, _) = s.drive_at(GLOBAL_CHANNEL, 2.5);
        assert_eq!(o, 4.0);
        let (o, _, _) = s.drive_at("nonexistent", 0.5);
        assert_eq!(o, 0.0);
    }

    #[test]
    fn max_amplitude_and_detuning_range() {
        let mut b = SequenceBuilder::new(reg(2));
        b.add_global_pulse(
            Pulse::new(
                Waveform::ramp(1.0, 0.0, 6.0).unwrap(),
                Waveform::ramp(1.0, -4.0, 8.0).unwrap(),
                0.0,
            )
            .unwrap(),
        );
        let s = b.build().unwrap();
        assert_eq!(s.max_amplitude(), 6.0);
        assert_eq!(s.detuning_range(), (-4.0, 8.0));
    }

    #[test]
    fn fingerprint_stable_and_content_sensitive() {
        let mut b1 = SequenceBuilder::new(reg(2));
        b1.add_global_pulse(Pulse::constant(1.0, 2.0, 0.0, 0.0).unwrap());
        let s1 = b1.build().unwrap();

        let mut b2 = SequenceBuilder::new(reg(2));
        b2.add_global_pulse(Pulse::constant(1.0, 2.0, 0.0, 0.0).unwrap());
        let s2 = b2.build().unwrap();

        let mut b3 = SequenceBuilder::new(reg(2));
        b3.add_global_pulse(Pulse::constant(1.0, 2.5, 0.0, 0.0).unwrap());
        let s3 = b3.build().unwrap();

        assert_eq!(s1.fingerprint(), s2.fingerprint());
        assert_ne!(s1.fingerprint(), s3.fingerprint());
    }

    #[test]
    fn multi_channel_clocks_are_independent() {
        let mut b = SequenceBuilder::new(reg(2));
        b.add_pulse("ch_a", Pulse::constant(2.0, 1.0, 0.0, 0.0).unwrap());
        b.add_pulse("ch_b", Pulse::constant(1.0, 1.0, 0.0, 0.0).unwrap());
        b.add_pulse("ch_b", Pulse::constant(1.0, 2.0, 0.0, 0.0).unwrap());
        let s = b.build().unwrap();
        let starts: Vec<(String, f64)> = s
            .pulses
            .iter()
            .map(|tp| (tp.channel.clone(), tp.start))
            .collect();
        assert!(starts.contains(&("ch_a".to_string(), 0.0)));
        assert!(starts.contains(&("ch_b".to_string(), 0.0)));
        assert!(starts.contains(&("ch_b".to_string(), 1.0)));
    }

    #[test]
    fn serde_roundtrip() {
        let mut b = SequenceBuilder::new(reg(3));
        b.add_global_pulse(
            Pulse::new(
                Waveform::blackman(1.0, std::f64::consts::PI).unwrap(),
                Waveform::ramp(1.0, -5.0, 5.0).unwrap(),
                0.1,
            )
            .unwrap(),
        );
        let s = b.build().unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: Sequence = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
