//! # hpcqc-program — analog neutral-atom quantum program IR
//!
//! This crate defines the vendor-neutral intermediate representation shared by
//! every SDK front-end and every execution backend in the `hpcqc` stack:
//!
//! * [`Register`] — the geometry of the atom array (qubit positions in µm),
//! * [`Waveform`] — time-dependent control shapes (amplitude, detuning, phase),
//! * [`Pulse`] and [`Sequence`] — the program itself: an ordered set of pulses
//!   on named channels,
//! * [`DeviceSpec`] — the physical capabilities of a target device, fetched at
//!   run time so programs can be validated against the *current* device state
//!   (the paper's calibration-drift concern, §2.1),
//! * [`validate`] — static validation of a program against a device spec.
//!
//! The IR is plain data: `serde`-serializable, deterministic and backend
//! agnostic. A program built once runs unchanged on the local state-vector
//! emulator, on the HPC tensor-network emulator, and on the (virtual) QPU —
//! the portability claim of Figure 1 of the paper.
//!
//! ## Units
//!
//! Following the neutral-atom convention used by Pulser:
//! * time is in **microseconds** (µs),
//! * angular frequencies (Rabi frequency Ω, detuning δ) are in **rad/µs**,
//! * distances are in **micrometres** (µm),
//! * the van der Waals coefficient `C6` is in rad·µs⁻¹·µm⁶.

pub mod device;
pub mod error;
pub mod ir;
pub mod register;
pub mod sequence;
pub mod units;
pub mod validate;
pub mod waveform;

pub use device::{ChannelSpec, DeviceSpec};
pub use error::ProgramError;
pub use ir::{ProgramIr, IR_VERSION};
pub use register::{Register, SiteId};
pub use sequence::{Pulse, Sequence, SequenceBuilder, TimedPulse};
pub use validate::{validate, Violation, ViolationKind};
pub use waveform::Waveform;
