//! Error type shared by the IR constructors.

use std::fmt;

/// Errors produced when constructing or manipulating program IR objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramError {
    /// A register was given invalid geometry (empty, duplicate site ids,
    /// non-finite coordinates, ...).
    InvalidRegister(String),
    /// A waveform was constructed with invalid parameters (negative duration,
    /// non-finite samples, too few interpolation points, ...).
    InvalidWaveform(String),
    /// A pulse combines waveforms of mismatched durations or refers to an
    /// unknown channel.
    InvalidPulse(String),
    /// A sequence-level constraint was violated (e.g. empty sequence where one
    /// is required).
    InvalidSequence(String),
    /// Serialization or deserialization of the abstract representation failed.
    Serialization(String),
    /// The IR version of a serialized program is not supported by this build.
    VersionMismatch { found: u32, supported: u32 },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::InvalidRegister(m) => write!(f, "invalid register: {m}"),
            ProgramError::InvalidWaveform(m) => write!(f, "invalid waveform: {m}"),
            ProgramError::InvalidPulse(m) => write!(f, "invalid pulse: {m}"),
            ProgramError::InvalidSequence(m) => write!(f, "invalid sequence: {m}"),
            ProgramError::Serialization(m) => write!(f, "serialization error: {m}"),
            ProgramError::VersionMismatch { found, supported } => write!(
                f,
                "IR version mismatch: found v{found}, this build supports v{supported}"
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProgramError::InvalidWaveform("negative duration".into());
        assert!(e.to_string().contains("negative duration"));
        let e = ProgramError::VersionMismatch {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains("v1"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ProgramError::InvalidRegister("x".into()));
    }
}
