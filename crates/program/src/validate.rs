//! Validation of a program against a device specification.
//!
//! Validation is how the stack keeps a program *valid at the point of
//! execution* despite calibration drift (paper §2.1): clients fetch the
//! current [`DeviceSpec`](crate::DeviceSpec) through QRMI and re-validate
//! before submission; the middleware daemon validates again server-side.

use crate::device::DeviceSpec;
use crate::sequence::Sequence;
use serde::{Deserialize, Serialize};

/// Category of spec violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Register holds more atoms than the device supports.
    TooManyQubits,
    /// Two atoms closer than the minimum trap distance.
    AtomsTooClose,
    /// An atom sits outside the optical field of view.
    RegisterTooLarge,
    /// Sequence exceeds the maximum duration.
    SequenceTooLong,
    /// A pulse references a channel the device doesn't expose.
    UnknownChannel,
    /// Rabi frequency exceeds the channel maximum (or is negative).
    AmplitudeOutOfRange,
    /// Detuning exits the channel's calibrated range.
    DetuningOutOfRange,
    /// Requested shot count outside [min_shots, max_shots].
    ShotsOutOfRange,
}

/// One violation with a human-readable message, suitable for surfacing in
/// job-rejection responses from the middleware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    pub kind: ViolationKind,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

/// Validate `sequence` (and optionally a shot request) against `spec`.
/// Returns every violation found — empty means the program fits the device.
pub fn validate(sequence: &Sequence, spec: &DeviceSpec) -> Vec<Violation> {
    let mut out = Vec::new();

    // --- geometry ---
    let n = sequence.register.len();
    if n > spec.max_qubits {
        out.push(Violation {
            kind: ViolationKind::TooManyQubits,
            message: format!(
                "register has {n} atoms, device supports {}",
                spec.max_qubits
            ),
        });
    }
    if let Some(dmin) = sequence.register.min_distance() {
        if dmin < spec.min_atom_distance - 1e-9 {
            out.push(Violation {
                kind: ViolationKind::AtomsTooClose,
                message: format!(
                    "minimum atom distance {dmin:.3} µm < device minimum {} µm",
                    spec.min_atom_distance
                ),
            });
        }
    }
    let radius = sequence.register.max_radius_from_center();
    if radius > spec.max_radius_from_center + 1e-9 {
        out.push(Violation {
            kind: ViolationKind::RegisterTooLarge,
            message: format!(
                "register radius {radius:.3} µm exceeds field of view {} µm",
                spec.max_radius_from_center
            ),
        });
    }

    // --- timing ---
    let dur = sequence.duration();
    if dur > spec.max_duration + 1e-9 {
        out.push(Violation {
            kind: ViolationKind::SequenceTooLong,
            message: format!(
                "sequence lasts {dur:.3} µs, device maximum {} µs",
                spec.max_duration
            ),
        });
    }

    // --- channels & drive limits ---
    for tp in &sequence.pulses {
        let Some(ch) = spec.channel(&tp.channel) else {
            out.push(Violation {
                kind: ViolationKind::UnknownChannel,
                message: format!("channel {:?} not available on {}", tp.channel, spec.name),
            });
            continue;
        };
        let omax = tp.pulse.amplitude.max_value();
        let omin = tp.pulse.amplitude.min_value();
        if omax > ch.max_amplitude + 1e-9 {
            out.push(Violation {
                kind: ViolationKind::AmplitudeOutOfRange,
                message: format!(
                    "pulse at t={:.3} µs peaks at Ω={omax:.3} rad/µs > channel max {:.3}",
                    tp.start, ch.max_amplitude
                ),
            });
        }
        if omin < -1e-9 {
            out.push(Violation {
                kind: ViolationKind::AmplitudeOutOfRange,
                message: format!(
                    "pulse at t={:.3} µs has negative Rabi frequency Ω={omin:.3} rad/µs",
                    tp.start
                ),
            });
        }
        let dmax = tp.pulse.detuning.max_value();
        let dmin = tp.pulse.detuning.min_value();
        if dmax > ch.max_detuning + 1e-9 || dmin < ch.min_detuning - 1e-9 {
            out.push(Violation {
                kind: ViolationKind::DetuningOutOfRange,
                message: format!(
                    "pulse at t={:.3} µs detuning spans [{dmin:.3}, {dmax:.3}] rad/µs, \
                     channel allows [{:.3}, {:.3}]",
                    tp.start, ch.min_detuning, ch.max_detuning
                ),
            });
        }
    }

    out
}

/// Validate a shot-count request against the device spec.
pub fn validate_shots(shots: u32, spec: &DeviceSpec) -> Option<Violation> {
    if shots < spec.min_shots || shots > spec.max_shots {
        Some(Violation {
            kind: ViolationKind::ShotsOutOfRange,
            message: format!(
                "requested {shots} shots, device accepts [{}, {}]",
                spec.min_shots, spec.max_shots
            ),
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::Register;
    use crate::sequence::{Pulse, SequenceBuilder};
    use crate::waveform::Waveform;

    fn good_sequence() -> Sequence {
        let reg = Register::linear(4, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(1.0, 6.0, -10.0, 0.0).unwrap());
        b.build().unwrap()
    }

    #[test]
    fn valid_program_has_no_violations() {
        let v = validate(&good_sequence(), &DeviceSpec::analog_production());
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn detects_too_many_qubits() {
        let reg = Register::linear(101, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(1.0, 1.0, 0.0, 0.0).unwrap());
        let s = b.build().unwrap();
        let mut spec = DeviceSpec::analog_production();
        spec.max_radius_from_center = 1e6; // isolate the qubit-count check
        let v = validate(&s, &spec);
        assert!(v.iter().any(|x| x.kind == ViolationKind::TooManyQubits));
    }

    #[test]
    fn detects_atoms_too_close() {
        let reg = Register::linear(3, 2.0).unwrap(); // < 5 µm min distance
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(1.0, 1.0, 0.0, 0.0).unwrap());
        let s = b.build().unwrap();
        let v = validate(&s, &DeviceSpec::analog_production());
        assert!(v.iter().any(|x| x.kind == ViolationKind::AtomsTooClose));
    }

    #[test]
    fn detects_register_too_large() {
        let reg = Register::linear(20, 6.0).unwrap(); // 114 µm long chain
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(1.0, 1.0, 0.0, 0.0).unwrap());
        let s = b.build().unwrap();
        let v = validate(&s, &DeviceSpec::analog_production());
        assert!(v.iter().any(|x| x.kind == ViolationKind::RegisterTooLarge));
    }

    #[test]
    fn detects_sequence_too_long() {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(7.0, 1.0, 0.0, 0.0).unwrap());
        let s = b.build().unwrap();
        let v = validate(&s, &DeviceSpec::analog_production());
        assert!(v.iter().any(|x| x.kind == ViolationKind::SequenceTooLong));
    }

    #[test]
    fn detects_unknown_channel() {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_pulse("raman_local", Pulse::constant(1.0, 1.0, 0.0, 0.0).unwrap());
        let s = b.build().unwrap();
        let v = validate(&s, &DeviceSpec::analog_production());
        assert!(v.iter().any(|x| x.kind == ViolationKind::UnknownChannel));
    }

    #[test]
    fn detects_amplitude_over_max_and_negative() {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(1.0, 99.0, 0.0, 0.0).unwrap());
        b.add_global_pulse(
            Pulse::new(
                Waveform::ramp(1.0, -1.0, 1.0).unwrap(),
                Waveform::constant(1.0, 0.0).unwrap(),
                0.0,
            )
            .unwrap(),
        );
        let s = b.build().unwrap();
        let v = validate(&s, &DeviceSpec::analog_production());
        let amp: Vec<_> = v
            .iter()
            .filter(|x| x.kind == ViolationKind::AmplitudeOutOfRange)
            .collect();
        assert_eq!(amp.len(), 2, "both over-max and negative flagged: {v:?}");
    }

    #[test]
    fn detects_detuning_out_of_range() {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(1.0, 1.0, -500.0, 0.0).unwrap());
        let s = b.build().unwrap();
        let v = validate(&s, &DeviceSpec::analog_production());
        assert!(v
            .iter()
            .any(|x| x.kind == ViolationKind::DetuningOutOfRange));
    }

    #[test]
    fn emulator_accepts_what_hardware_rejects() {
        // A 20-qubit long chain with strong drive fails production but passes
        // the emulator — the Figure-1 "develop big, validate against device"
        // situation where mock validation is the safety net.
        let reg = Register::linear(20, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(8.0, 50.0, 0.0, 0.0).unwrap());
        let s = b.build().unwrap();
        assert!(!validate(&s, &DeviceSpec::analog_production()).is_empty());
        assert!(validate(&s, &DeviceSpec::emulator("emu-mps", 64)).is_empty());
    }

    #[test]
    fn shots_validation() {
        let spec = DeviceSpec::analog_production();
        assert!(validate_shots(100, &spec).is_none());
        assert!(validate_shots(0, &spec).is_some());
        assert!(validate_shots(1_000_000, &spec).is_some());
    }

    #[test]
    fn tighter_revision_catches_previously_valid_program() {
        // Simulates calibration drift: the program validated against rev 1,
        // then the device tightened max_amplitude in rev 2.
        let s = good_sequence();
        let spec1 = DeviceSpec::analog_production();
        assert!(validate(&s, &spec1).is_empty());
        let mut spec2 = spec1.clone();
        spec2.revision = 2;
        spec2.channels[0].max_amplitude = 4.0; // drifted below the pulse's 6.0
        let v = validate(&s, &spec2);
        assert!(v
            .iter()
            .any(|x| x.kind == ViolationKind::AmplitudeOutOfRange));
    }
}
