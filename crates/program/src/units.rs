//! Physical units and constants used throughout the IR.
//!
//! All quantities are stored as `f64` in the canonical unit system
//! (µs, rad/µs, µm); these helpers exist to make call sites self-documenting
//! and to centralise the physical constants of the neutral-atom platform.

/// Van der Waals interaction coefficient `C6` for the Rydberg level used by
/// Pasqal devices, in rad·µs⁻¹·µm⁶.
///
/// The interaction between two atoms in the Rydberg state at distance `r` µm
/// is `C6 / r^6` rad/µs. The value corresponds to the `n = 70` Rydberg level.
pub const C6_COEFF: f64 = 5_420_158.53;

/// Convert a frequency in MHz to an angular frequency in rad/µs.
#[inline]
pub fn mhz_to_rad_per_us(f_mhz: f64) -> f64 {
    2.0 * std::f64::consts::PI * f_mhz
}

/// Convert an angular frequency in rad/µs to a plain frequency in MHz.
#[inline]
pub fn rad_per_us_to_mhz(w: f64) -> f64 {
    w / (2.0 * std::f64::consts::PI)
}

/// Convert nanoseconds to microseconds.
#[inline]
pub fn ns_to_us(t_ns: f64) -> f64 {
    t_ns * 1e-3
}

/// Convert microseconds to nanoseconds.
#[inline]
pub fn us_to_ns(t_us: f64) -> f64 {
    t_us * 1e3
}

/// The Rydberg blockade radius for a given Rabi frequency `omega` (rad/µs):
/// the distance below which the interaction shift exceeds the drive strength,
/// `r_b = (C6 / Ω)^(1/6)` µm.
///
/// Returns `None` when `omega <= 0`, where the blockade radius is undefined.
pub fn blockade_radius(omega: f64) -> Option<f64> {
    if omega <= 0.0 {
        None
    } else {
        Some((C6_COEFF / omega).powf(1.0 / 6.0))
    }
}

/// Interaction strength `C6 / r^6` between two atoms separated by `r` µm.
///
/// Returns `f64::INFINITY` when the distance is zero (overlapping atoms are a
/// register-validation error upstream; this keeps the numerics total).
#[inline]
pub fn vdw_interaction(r_um: f64) -> f64 {
    if r_um == 0.0 {
        f64::INFINITY
    } else {
        C6_COEFF / r_um.powi(6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mhz_roundtrip() {
        let w = mhz_to_rad_per_us(1.0);
        assert!((w - 2.0 * std::f64::consts::PI).abs() < 1e-12);
        assert!((rad_per_us_to_mhz(w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ns_us_roundtrip() {
        assert!((ns_to_us(us_to_ns(3.25)) - 3.25).abs() < 1e-12);
        assert_eq!(ns_to_us(1000.0), 1.0);
    }

    #[test]
    fn blockade_radius_monotonically_decreases_with_drive() {
        let r1 = blockade_radius(1.0).unwrap();
        let r2 = blockade_radius(10.0).unwrap();
        assert!(r1 > r2, "stronger drive shrinks the blockade: {r1} vs {r2}");
    }

    #[test]
    fn blockade_radius_undefined_for_zero_drive() {
        assert!(blockade_radius(0.0).is_none());
        assert!(blockade_radius(-1.0).is_none());
    }

    #[test]
    fn vdw_interaction_follows_inverse_sixth_power() {
        let near = vdw_interaction(5.0);
        let far = vdw_interaction(10.0);
        assert!(
            (near / far - 64.0).abs() < 1e-9,
            "doubling r divides by 2^6"
        );
    }

    #[test]
    fn vdw_interaction_at_zero_distance_is_infinite() {
        assert!(vdw_interaction(0.0).is_infinite());
    }

    #[test]
    fn typical_blockade_radius_is_physical() {
        // At Ω = 2π MHz the blockade radius should be in the ~8-12 µm range
        // for the C6 of the n=70 level.
        let r = blockade_radius(mhz_to_rad_per_us(1.0)).unwrap();
        assert!(r > 6.0 && r < 15.0, "unexpected blockade radius {r}");
    }
}
