//! Time-dependent control waveforms.
//!
//! A [`Waveform`] maps time `t ∈ [0, duration]` (µs) to a value (rad/µs for
//! amplitude/detuning channels, radians for phase). Waveforms are closed under
//! concatenation and scaling, and can report their extrema and integral —
//! which device validation and the emulators both need.

use crate::error::ProgramError;
use serde::{Deserialize, Serialize};

/// A piecewise control shape.
///
/// All variants store their duration in µs. `sample(t)` is defined on
/// `[0, duration]`; outside that interval it clamps to the endpoint values,
/// which makes sequence stitching robust to floating-point edge effects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Waveform {
    /// Constant value for `duration` µs.
    Constant { duration: f64, value: f64 },
    /// Linear ramp from `start` to `stop` over `duration` µs.
    Ramp {
        duration: f64,
        start: f64,
        stop: f64,
    },
    /// A Blackman window scaled so its maximum equals `area / integral` —
    /// i.e. the waveform has total integral `area` (rad). The standard smooth
    /// pulse used on neutral-atom hardware to limit spectral leakage.
    Blackman { duration: f64, area: f64 },
    /// Piecewise-linear interpolation through uniformly spaced `values`
    /// (first value at t=0, last at t=duration). Needs >= 2 points.
    Interpolated { duration: f64, values: Vec<f64> },
    /// Concatenation of sub-waveforms, played back to back.
    Composite { parts: Vec<Waveform> },
}

impl Waveform {
    /// A constant waveform. `duration` must be positive and finite.
    pub fn constant(duration: f64, value: f64) -> Result<Self, ProgramError> {
        check_duration(duration)?;
        check_finite(value, "value")?;
        Ok(Waveform::Constant { duration, value })
    }

    /// A linear ramp.
    pub fn ramp(duration: f64, start: f64, stop: f64) -> Result<Self, ProgramError> {
        check_duration(duration)?;
        check_finite(start, "start")?;
        check_finite(stop, "stop")?;
        Ok(Waveform::Ramp {
            duration,
            start,
            stop,
        })
    }

    /// A Blackman pulse with the given integrated area (rad).
    pub fn blackman(duration: f64, area: f64) -> Result<Self, ProgramError> {
        check_duration(duration)?;
        check_finite(area, "area")?;
        Ok(Waveform::Blackman { duration, area })
    }

    /// A piecewise-linear waveform through `values` uniformly spanning
    /// `[0, duration]`.
    pub fn interpolated(duration: f64, values: Vec<f64>) -> Result<Self, ProgramError> {
        check_duration(duration)?;
        if values.len() < 2 {
            return Err(ProgramError::InvalidWaveform(format!(
                "interpolated waveform needs >= 2 points, got {}",
                values.len()
            )));
        }
        for (i, v) in values.iter().enumerate() {
            if !v.is_finite() {
                return Err(ProgramError::InvalidWaveform(format!(
                    "interpolation point {i} is not finite ({v})"
                )));
            }
        }
        Ok(Waveform::Interpolated { duration, values })
    }

    /// Concatenate waveforms. Rejects an empty list.
    pub fn composite(parts: Vec<Waveform>) -> Result<Self, ProgramError> {
        if parts.is_empty() {
            return Err(ProgramError::InvalidWaveform(
                "composite waveform needs at least one part".into(),
            ));
        }
        Ok(Waveform::Composite { parts })
    }

    /// Total duration in µs.
    pub fn duration(&self) -> f64 {
        match self {
            Waveform::Constant { duration, .. }
            | Waveform::Ramp { duration, .. }
            | Waveform::Blackman { duration, .. }
            | Waveform::Interpolated { duration, .. } => *duration,
            Waveform::Composite { parts } => parts.iter().map(Waveform::duration).sum(),
        }
    }

    /// Value at time `t` µs. Clamps outside `[0, duration]`.
    pub fn sample(&self, t: f64) -> f64 {
        match self {
            Waveform::Constant { value, .. } => *value,
            Waveform::Ramp {
                duration,
                start,
                stop,
            } => {
                let x = (t / duration).clamp(0.0, 1.0);
                start + (stop - start) * x
            }
            Waveform::Blackman { duration, area } => {
                let x = (t / duration).clamp(0.0, 1.0);
                // Blackman window: w(x) = 0.42 - 0.5 cos(2πx) + 0.08 cos(4πx).
                // Its integral over [0,1] is 0.42, so scale by area/(0.42*duration)
                // to achieve the requested pulse area.
                let w = 0.42 - 0.5 * (2.0 * std::f64::consts::PI * x).cos()
                    + 0.08 * (4.0 * std::f64::consts::PI * x).cos();
                w * area / (0.42 * duration)
            }
            Waveform::Interpolated { duration, values } => {
                let n = values.len();
                let x = (t / duration).clamp(0.0, 1.0) * (n - 1) as f64;
                let i = (x.floor() as usize).min(n - 2);
                let frac = x - i as f64;
                values[i] * (1.0 - frac) + values[i + 1] * frac
            }
            Waveform::Composite { parts } => {
                let mut offset = 0.0;
                for (k, p) in parts.iter().enumerate() {
                    let d = p.duration();
                    let last = k == parts.len() - 1;
                    if t < offset + d || last {
                        return p.sample(t - offset);
                    }
                    offset += d;
                }
                0.0 // unreachable: constructors reject empty composites
            }
        }
    }

    /// Uniformly sample the waveform at `dt` µs resolution (including both
    /// endpoints). Used by the emulators and the device-validation sweep.
    pub fn discretize(&self, dt: f64) -> Vec<f64> {
        let d = self.duration();
        let steps = (d / dt).ceil().max(1.0) as usize;
        (0..=steps)
            .map(|k| self.sample(d * k as f64 / steps as f64))
            .collect()
    }

    /// Maximum value over the waveform (exact for every variant: the
    /// Blackman window `0.42 − 0.5cos(2πx) + 0.08cos(4πx)` spans exactly
    /// `[0, 1]` — substituting `c = cos(2πx)` gives `0.16c² − 0.5c + 0.34`,
    /// monotone on `c ∈ [−1, 1]` — and piecewise-linear waveforms attain
    /// their extrema at the nodes).
    pub fn max_value(&self) -> f64 {
        match self {
            Waveform::Constant { value, .. } => *value,
            Waveform::Ramp { start, stop, .. } => start.max(*stop),
            Waveform::Blackman { duration, area } => {
                let peak = area / (0.42 * duration);
                peak.max(0.0)
            }
            Waveform::Interpolated { values, .. } => {
                values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            }
            Waveform::Composite { parts } => parts
                .iter()
                .map(Waveform::max_value)
                .fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Minimum value over the waveform (exact; see [`Waveform::max_value`]).
    pub fn min_value(&self) -> f64 {
        match self {
            Waveform::Constant { value, .. } => *value,
            Waveform::Ramp { start, stop, .. } => start.min(*stop),
            Waveform::Blackman { duration, area } => {
                let peak = area / (0.42 * duration);
                peak.min(0.0)
            }
            Waveform::Interpolated { values, .. } => {
                values.iter().cloned().fold(f64::INFINITY, f64::min)
            }
            Waveform::Composite { parts } => parts
                .iter()
                .map(Waveform::min_value)
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// The integral `∫ w(t) dt` over the full duration (rad for rad/µs
    /// waveforms) — the "pulse area". Analytic where possible, trapezoidal at
    /// 1 ns otherwise.
    pub fn integral(&self) -> f64 {
        match self {
            Waveform::Constant { duration, value } => duration * value,
            Waveform::Ramp {
                duration,
                start,
                stop,
            } => duration * (start + stop) / 2.0,
            Waveform::Blackman { area, .. } => *area,
            Waveform::Composite { parts } => parts.iter().map(Waveform::integral).sum(),
            Waveform::Interpolated { duration, values } => {
                // exact trapezoid over the interpolation nodes
                let n = values.len();
                let h = duration / (n - 1) as f64;
                values.windows(2).map(|w| (w[0] + w[1]) / 2.0 * h).sum()
            }
        }
    }

    /// A new waveform scaled pointwise by `factor` (durations unchanged).
    pub fn scaled(&self, factor: f64) -> Waveform {
        match self {
            Waveform::Constant { duration, value } => Waveform::Constant {
                duration: *duration,
                value: value * factor,
            },
            Waveform::Ramp {
                duration,
                start,
                stop,
            } => Waveform::Ramp {
                duration: *duration,
                start: start * factor,
                stop: stop * factor,
            },
            Waveform::Blackman { duration, area } => Waveform::Blackman {
                duration: *duration,
                area: area * factor,
            },
            Waveform::Interpolated { duration, values } => Waveform::Interpolated {
                duration: *duration,
                values: values.iter().map(|v| v * factor).collect(),
            },
            Waveform::Composite { parts } => Waveform::Composite {
                parts: parts.iter().map(|p| p.scaled(factor)).collect(),
            },
        }
    }
}

fn check_duration(d: f64) -> Result<(), ProgramError> {
    if d <= 0.0 || !d.is_finite() {
        Err(ProgramError::InvalidWaveform(format!(
            "duration must be positive and finite, got {d}"
        )))
    } else {
        Ok(())
    }
}

fn check_finite(v: f64, what: &str) -> Result<(), ProgramError> {
    if v.is_finite() {
        Ok(())
    } else {
        Err(ProgramError::InvalidWaveform(format!(
            "{what} must be finite, got {v}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_samples_and_integral() {
        let w = Waveform::constant(2.0, 3.0).unwrap();
        assert_eq!(w.sample(0.0), 3.0);
        assert_eq!(w.sample(1.7), 3.0);
        assert_eq!(w.duration(), 2.0);
        assert!((w.integral() - 6.0).abs() < 1e-12);
        assert_eq!(w.max_value(), 3.0);
        assert_eq!(w.min_value(), 3.0);
    }

    #[test]
    fn invalid_durations_rejected() {
        assert!(Waveform::constant(0.0, 1.0).is_err());
        assert!(Waveform::constant(-1.0, 1.0).is_err());
        assert!(Waveform::constant(f64::NAN, 1.0).is_err());
        assert!(Waveform::ramp(1.0, f64::INFINITY, 0.0).is_err());
    }

    #[test]
    fn ramp_is_linear_and_clamps() {
        let w = Waveform::ramp(4.0, 0.0, 8.0).unwrap();
        assert_eq!(w.sample(0.0), 0.0);
        assert_eq!(w.sample(2.0), 4.0);
        assert_eq!(w.sample(4.0), 8.0);
        assert_eq!(w.sample(-1.0), 0.0, "clamps below");
        assert_eq!(w.sample(99.0), 8.0, "clamps above");
        assert!((w.integral() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn blackman_area_matches_request() {
        let w = Waveform::blackman(1.0, std::f64::consts::PI).unwrap();
        // numerically integrate at fine resolution
        let dt = 1e-4;
        let samples = w.discretize(dt);
        let h = w.duration() / (samples.len() - 1) as f64;
        let num: f64 = samples.windows(2).map(|p| (p[0] + p[1]) / 2.0 * h).sum();
        assert!(
            (num - std::f64::consts::PI).abs() < 1e-3,
            "numeric area {num} vs requested pi"
        );
        assert!((w.integral() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn blackman_starts_and_ends_near_zero() {
        let w = Waveform::blackman(1.0, 1.0).unwrap();
        assert!(w.sample(0.0).abs() < 1e-12);
        assert!(w.sample(1.0).abs() < 1e-12);
        assert!(w.sample(0.5) > 0.0);
    }

    #[test]
    fn interpolated_hits_nodes() {
        let w = Waveform::interpolated(3.0, vec![0.0, 2.0, 1.0, 4.0]).unwrap();
        assert_eq!(w.sample(0.0), 0.0);
        assert!((w.sample(1.0) - 2.0).abs() < 1e-12);
        assert!((w.sample(2.0) - 1.0).abs() < 1e-12);
        assert!((w.sample(3.0) - 4.0).abs() < 1e-12);
        // midpoint of first segment
        assert!((w.sample(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interpolated_needs_two_points() {
        assert!(Waveform::interpolated(1.0, vec![1.0]).is_err());
        assert!(Waveform::interpolated(1.0, vec![]).is_err());
        assert!(Waveform::interpolated(1.0, vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn composite_stitches_parts() {
        let w = Waveform::composite(vec![
            Waveform::constant(1.0, 2.0).unwrap(),
            Waveform::ramp(1.0, 2.0, 0.0).unwrap(),
        ])
        .unwrap();
        assert_eq!(w.duration(), 2.0);
        assert_eq!(w.sample(0.5), 2.0);
        assert!((w.sample(1.5) - 1.0).abs() < 1e-12);
        assert!((w.integral() - 3.0).abs() < 1e-12);
        assert_eq!(w.max_value(), 2.0);
        assert_eq!(w.min_value(), 0.0);
    }

    #[test]
    fn composite_rejects_empty() {
        assert!(Waveform::composite(vec![]).is_err());
    }

    #[test]
    fn scaled_multiplies_values_not_duration() {
        let w = Waveform::ramp(2.0, 1.0, 3.0).unwrap().scaled(2.0);
        assert_eq!(w.duration(), 2.0);
        assert_eq!(w.sample(0.0), 2.0);
        assert_eq!(w.sample(2.0), 6.0);
    }

    #[test]
    fn discretize_includes_endpoints() {
        let w = Waveform::ramp(1.0, 0.0, 1.0).unwrap();
        let s = w.discretize(0.25);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], 0.0);
        assert_eq!(*s.last().unwrap(), 1.0);
    }

    #[test]
    fn serde_roundtrip_all_variants() {
        let w = Waveform::composite(vec![
            Waveform::constant(1.0, 1.5).unwrap(),
            Waveform::ramp(0.5, 1.5, 0.0).unwrap(),
            Waveform::blackman(1.0, std::f64::consts::PI).unwrap(),
            Waveform::interpolated(1.0, vec![0.0, 1.0, 0.0]).unwrap(),
        ])
        .unwrap();
        let json = serde_json::to_string(&w).unwrap();
        let back: Waveform = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }
}
