//! Property-based tests on the IR: waveform algebra, register geometry,
//! serialization round-trips and validation consistency.

use hpcqc_program::{DeviceSpec, ProgramIr, Pulse, Register, SequenceBuilder, Waveform};
use proptest::prelude::*;

fn arb_waveform() -> impl Strategy<Value = Waveform> {
    let duration = 0.01f64..5.0;
    let value = -40.0f64..40.0;
    prop_oneof![
        (duration.clone(), value.clone()).prop_map(|(d, v)| Waveform::constant(d, v).unwrap()),
        (duration.clone(), value.clone(), value.clone())
            .prop_map(|(d, a, b)| Waveform::ramp(d, a, b).unwrap()),
        (duration.clone(), -20.0f64..20.0).prop_map(|(d, a)| Waveform::blackman(d, a).unwrap()),
        (duration, proptest::collection::vec(value, 2..8))
            .prop_map(|(d, vs)| Waveform::interpolated(d, vs).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn waveform_samples_within_extrema(w in arb_waveform(), frac in 0.0f64..1.0) {
        let t = w.duration() * frac;
        let v = w.sample(t);
        prop_assert!(v >= w.min_value() - 1e-9, "sample {v} below min {}", w.min_value());
        prop_assert!(v <= w.max_value() + 1e-9, "sample {v} above max {}", w.max_value());
    }

    #[test]
    fn waveform_integral_matches_numeric(w in arb_waveform()) {
        let samples = w.discretize(w.duration() / 2000.0);
        let h = w.duration() / (samples.len() - 1) as f64;
        let numeric: f64 = samples.windows(2).map(|p| (p[0] + p[1]) / 2.0 * h).sum();
        // Blackman is smooth; ramps/constants exact; interpolated exact at nodes
        prop_assert!(
            (numeric - w.integral()).abs() < 1e-2 * (1.0 + w.integral().abs()),
            "numeric {numeric} vs analytic {}",
            w.integral()
        );
    }

    #[test]
    fn waveform_scaling_is_linear(w in arb_waveform(), k in -3.0f64..3.0, frac in 0.0f64..1.0) {
        let t = w.duration() * frac;
        let scaled = w.scaled(k);
        prop_assert!((scaled.sample(t) - k * w.sample(t)).abs() < 1e-9);
        prop_assert!((scaled.duration() - w.duration()).abs() < 1e-12);
    }

    #[test]
    fn waveform_serde_roundtrip(w in arb_waveform()) {
        let json = serde_json::to_string(&w).unwrap();
        let back: Waveform = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(w, back);
    }

    #[test]
    fn ring_layout_uniform_spacing(n in 3usize..20, spacing in 1.0f64..20.0) {
        let r = Register::ring(n, spacing).unwrap();
        for i in 0..n {
            let d = r.distance(i, (i + 1) % n).unwrap();
            prop_assert!((d - spacing).abs() < 1e-9, "edge {i}: {d}");
        }
        prop_assert!((r.min_distance().unwrap() - spacing).abs() < 1e-9);
    }

    #[test]
    fn lattice_min_distance_is_spacing(rows in 1usize..5, cols in 1usize..5, spacing in 1.0f64..20.0) {
        prop_assume!(rows * cols >= 2);
        let sq = Register::square_lattice(rows, cols, spacing).unwrap();
        prop_assert!((sq.min_distance().unwrap() - spacing).abs() < 1e-9);
        let tri = Register::triangular_lattice(rows, cols, spacing).unwrap();
        prop_assert!(tri.min_distance().unwrap() >= spacing - 1e-9);
    }

    #[test]
    fn program_ir_roundtrip(
        n in 1usize..8,
        spacing in 4.0f64..10.0,
        shots in 1u32..5000,
        omega in 0.0f64..12.0,
        delta in -30.0f64..30.0,
        duration in 0.05f64..4.0,
    ) {
        let reg = Register::linear(n, spacing).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(duration, omega, delta, 0.0).unwrap());
        let ir = ProgramIr::new(b.build().unwrap(), shots, "proptest");
        let back = ProgramIr::from_json(&ir.to_json().unwrap()).unwrap();
        prop_assert_eq!(&ir, &back);
        prop_assert_eq!(ir.fingerprint(), back.fingerprint());
    }

    #[test]
    fn validation_is_monotone_in_spec_limits(
        n in 1usize..12,
        omega in 0.0f64..12.0,
        duration in 0.05f64..5.0,
    ) {
        // any program valid on the production spec is valid on the (looser)
        // emulator spec — the precondition for "mock validates for hardware"
        let reg = Register::linear(n, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(duration, omega, 0.0, 0.0).unwrap());
        let seq = b.build().unwrap();
        let prod = hpcqc_program::validate(&seq, &DeviceSpec::analog_production());
        let emu = hpcqc_program::validate(&seq, &DeviceSpec::emulator("emu", 100));
        if prod.is_empty() {
            prop_assert!(emu.is_empty(), "emulator stricter than production: {emu:?}");
        }
    }

    #[test]
    fn drive_at_zero_outside_schedule(duration in 0.1f64..2.0, t_after in 0.1f64..5.0) {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(duration, 3.0, 1.0, 0.0).unwrap());
        let seq = b.build().unwrap();
        let (o, d, p) = seq.drive_at("rydberg_global", duration + t_after);
        prop_assert_eq!((o, d, p), (0.0, 0.0, 0.0));
    }
}
