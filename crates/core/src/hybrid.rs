//! Hybrid execution helpers: sweeps and iterative quantum-classical loops.
//!
//! The building blocks hybrid workflows compose with the runtime: parameter
//! sweeps (many programs, one backend) and the generic
//! evaluate-update-repeat loop that variational algorithms instantiate. The
//! loop is backend-agnostic — the runtime decides whether evaluations hit an
//! emulator or the QPU — which is precisely how a workflow moves from
//! development to production without code changes (Figure 1).

use crate::runtime::{RunReport, Runtime, RuntimeError};
use hpcqc_program::ProgramIr;

/// Run a family of programs on the current backend.
pub fn sweep(rt: &Runtime, programs: &[ProgramIr]) -> Vec<Result<RunReport, RuntimeError>> {
    programs.iter().map(|p| rt.run(p)).collect()
}

/// Outcome of one iteration of a hybrid loop.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    pub iteration: usize,
    pub params: Vec<f64>,
    pub cost: f64,
}

/// Result of a full hybrid loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopResult {
    /// Per-iteration history.
    pub history: Vec<IterationRecord>,
    /// Best parameters seen.
    pub best_params: Vec<f64>,
    /// Best cost seen.
    pub best_cost: f64,
}

/// Drive an iterative hybrid loop:
///
/// * `build` maps parameters to a program,
/// * the runtime executes it,
/// * `cost` scores the samples,
/// * `update` proposes the next parameters from the history (the classical
///   optimizer step — e.g. SPSA or Nelder–Mead from `hpcqc-workloads`).
///
/// Stops after `max_iterations` or when `update` returns `None`.
pub fn iterate<B, C, U>(
    rt: &Runtime,
    initial: Vec<f64>,
    max_iterations: usize,
    mut build: B,
    mut cost: C,
    mut update: U,
) -> Result<LoopResult, RuntimeError>
where
    B: FnMut(&[f64]) -> ProgramIr,
    C: FnMut(&hpcqc_emulator::SampleResult) -> f64,
    U: FnMut(&[IterationRecord]) -> Option<Vec<f64>>,
{
    let mut history: Vec<IterationRecord> = Vec::new();
    let mut params = initial;
    for iteration in 0..max_iterations {
        let program = build(&params);
        let report = rt.run(&program)?;
        let c = cost(&report.result);
        history.push(IterationRecord {
            iteration,
            params: params.clone(),
            cost: c,
        });
        match update(&history) {
            Some(next) => params = next,
            None => break,
        }
    }
    let best = history
        .iter()
        .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"))
        .cloned()
        .expect("at least one iteration ran");
    Ok(LoopResult {
        best_params: best.params,
        best_cost: best.cost,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};
    use hpcqc_qrmi::{QrmiConfig, ResourceFactory};

    fn runtime() -> Runtime {
        let reg = ResourceFactory::new(1)
            .build_registry(&QrmiConfig::development_default())
            .unwrap();
        Runtime::new(reg)
    }

    fn program(duration: f64) -> ProgramIr {
        let reg = Register::from_coords(&[(0.0, 0.0)]).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(duration, 4.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), 2000, "hybrid-test")
    }

    #[test]
    fn sweep_runs_every_program() {
        let rt = runtime();
        let programs: Vec<ProgramIr> = [0.1, 0.2, 0.3].iter().map(|&d| program(d)).collect();
        let out = sweep(&rt, &programs);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(Result::is_ok));
    }

    #[test]
    fn iterate_minimizes_pulse_duration_to_pi() {
        // cost = 1 - P(rydberg): minimized by the π-pulse duration π/Ω ≈ 0.785.
        // coarse grid-descent update: move in the improving direction.
        let rt = runtime();
        let step = 0.05;
        let result = iterate(
            &rt,
            vec![0.3],
            25,
            |p| program(p[0].clamp(0.05, 2.0)),
            |res| 1.0 - res.occupation(0),
            |hist| {
                let last = hist.last().expect("non-empty");
                if hist.len() >= 2 {
                    let prev = &hist[hist.len() - 2];
                    if last.cost > prev.cost + 1e-3 {
                        return None; // got worse: stop (passed the optimum)
                    }
                }
                Some(vec![last.params[0] + step])
            },
        )
        .unwrap();
        let pi_over_omega = std::f64::consts::PI / 4.0;
        assert!(
            (result.best_params[0] - pi_over_omega).abs() < 0.1,
            "best duration {} vs π/Ω {pi_over_omega}",
            result.best_params[0]
        );
        assert!(result.best_cost < 0.05);
        assert!(result.history.len() >= 5);
    }

    #[test]
    fn iterate_stops_when_update_returns_none() {
        let rt = runtime();
        let result = iterate(&rt, vec![0.5], 100, |p| program(p[0]), |_| 0.0, |_| None).unwrap();
        assert_eq!(result.history.len(), 1);
    }

    #[test]
    fn iterate_propagates_backend_errors() {
        let rt = runtime().with_qpu("ghost");
        let r = iterate(&rt, vec![0.5], 5, |p| program(p[0]), |_| 0.0, |_| None);
        assert!(matches!(r, Err(RuntimeError::Config(_))));
    }
}
