//! The portable hybrid runtime.
//!
//! [`Runtime`] is what application code links against: it resolves a QRMI
//! resource from configuration (never from source code), re-validates the
//! program against the *live* device spec at the point of execution, and
//! runs it. Switching from a laptop emulator to the HPC tensor-network
//! emulator to the QPU is the `--qpu=<resource>` flag / `HPCQC_QPU`
//! environment variable — the program is untouched (paper §3.2, Figure 1).

use crate::retry::RetryPolicy;
use hpcqc_analysis::{AnalysisReport, Analyzer, Diagnostic};
use hpcqc_emulator::{SampleResult, SweepPoint};
use hpcqc_middleware::PriorityClass;
use hpcqc_program::{DeviceSpec, ProgramIr, Violation};
use hpcqc_qrmi::{
    ConfigError, QrmiError, QuantumResource, ResourceRegistry, ResourceType, TaskStatus,
};
use hpcqc_telemetry::FaultMetrics;
use std::sync::Arc;

/// Errors surfaced by the runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// Resource selection/config problem.
    Config(ConfigError),
    /// The program does not fit the selected device's current spec.
    Validation(Vec<Violation>),
    /// QRMI-level failure.
    Qrmi(QrmiError),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Config(e) => write!(f, "configuration: {e}"),
            RuntimeError::Validation(v) => {
                write!(f, "program invalid for target ({} violations): ", v.len())?;
                for viol in v {
                    write!(f, "[{viol}] ")?;
                }
                Ok(())
            }
            RuntimeError::Qrmi(e) => write!(f, "resource: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ConfigError> for RuntimeError {
    fn from(e: ConfigError) -> Self {
        RuntimeError::Config(e)
    }
}

impl From<QrmiError> for RuntimeError {
    fn from(e: QrmiError) -> Self {
        RuntimeError::Qrmi(e)
    }
}

/// Metadata attached to every execution for reproducibility records.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The result itself.
    pub result: SampleResult,
    /// Resource id the program ran on.
    pub resource_id: String,
    /// Device-spec revision at execution time.
    pub spec_revision: u64,
    /// Program fingerprint (content hash).
    pub program_fingerprint: u64,
}

/// Outcome of a recovery-aware run: the report plus what the recovery cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredRun {
    /// The successful run's report.
    pub report: RunReport,
    /// Attempts spent on the resource that finally produced the result.
    pub attempts: u32,
    /// Simulated backoff seconds paid on that resource.
    pub backoff_secs: f64,
    /// `Some(id)` when graceful degradation moved the run off the primary.
    pub fallback_resource: Option<String>,
    /// Warning-level pre-flight diagnostics (empty when pre-flight is off or
    /// the program is clean).
    pub preflight_warnings: Vec<Diagnostic>,
}

/// The runtime environment.
pub struct Runtime {
    registry: ResourceRegistry,
    /// `--qpu` selection; `None` = registry default.
    selection: Option<String>,
    /// Poll budget for queued (cloud) backends.
    pub max_polls: usize,
    /// Retry posture; [`RetryPolicy::none`] by default (opt in explicitly).
    retry: RetryPolicy,
    /// Priority class selecting the attempt/backoff budget.
    class: PriorityClass,
    /// Allow falling back to a local emulator when the primary's budget runs out.
    fallback: bool,
    /// Recovery telemetry sink.
    metrics: Option<FaultMetrics>,
    /// Client-side static-analysis pipeline run before execution.
    analyzer: Analyzer,
    /// Pre-flight switch: analyze before attempting, fail fast on Errors.
    preflight: bool,
}

impl Runtime {
    /// Build over an existing registry (the common path: registry from
    /// [`hpcqc_qrmi::QrmiConfig`] + [`hpcqc_qrmi::ResourceFactory`]).
    pub fn new(registry: ResourceRegistry) -> Self {
        Runtime {
            registry,
            selection: None,
            max_polls: 100_000,
            retry: RetryPolicy::none(),
            class: PriorityClass::Development,
            fallback: false,
            metrics: None,
            analyzer: Analyzer::standard(),
            preflight: true,
        }
    }

    /// Enable/disable the client-side pre-flight analysis (on by default).
    pub fn with_preflight(mut self, enabled: bool) -> Self {
        self.preflight = enabled;
        self
    }

    /// Enable retries under `policy` (budgets chosen by the priority class).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Select the priority class whose attempt/backoff budget applies.
    pub fn with_priority_class(mut self, class: PriorityClass) -> Self {
        self.class = class;
        self
    }

    /// Permit graceful degradation to a local emulator after the primary
    /// resource's retry budget is exhausted on a transient failure.
    pub fn with_fallback(mut self, enabled: bool) -> Self {
        self.fallback = enabled;
        self
    }

    /// Report retries, backoff and fallbacks through `metrics`.
    pub fn with_fault_metrics(mut self, metrics: FaultMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The `--qpu=<resource>` switch. The *only* thing that changes between
    /// development and production runs.
    pub fn with_qpu(mut self, selection: impl Into<String>) -> Self {
        self.selection = Some(selection.into());
        self
    }

    /// Clear the selection back to the configured default.
    pub fn with_default_qpu(mut self) -> Self {
        self.selection = None;
        self
    }

    /// The resource the next run would use.
    pub fn resource(&self) -> Result<Arc<dyn QuantumResource>, RuntimeError> {
        Ok(self.registry.resolve(self.selection.as_deref())?)
    }

    /// Fetch the current target spec (for pre-validation and display).
    pub fn target(&self) -> Result<DeviceSpec, RuntimeError> {
        Ok(self.resource()?.target()?)
    }

    /// Validate a program against the live target spec without running it.
    pub fn validate(&self, ir: &ProgramIr) -> Result<DeviceSpec, RuntimeError> {
        let spec = self.target()?;
        let violations = hpcqc_program::validate(&ir.sequence, &spec);
        if violations.is_empty() {
            Ok(spec)
        } else {
            Err(RuntimeError::Validation(violations))
        }
    }

    /// Run the full static-analysis pipeline against the live target spec
    /// without executing — every diagnostic, not just hard violations.
    pub fn analyze(&self, ir: &ProgramIr) -> Result<AnalysisReport, RuntimeError> {
        let spec = self.target()?;
        Ok(self.analyzer.analyze(ir, Some(&spec)))
    }

    /// Validate then execute, returning result + provenance. Honors the
    /// configured [`RetryPolicy`] (none by default) — see [`Runtime::run_recovered`]
    /// for the recovery accounting.
    pub fn run(&self, ir: &ProgramIr) -> Result<RunReport, RuntimeError> {
        Ok(self.run_recovered(ir)?.report)
    }

    /// Like [`Runtime::run`], but reports what recovery cost: attempts,
    /// backoff paid, and whether graceful degradation moved the run to a
    /// local emulator.
    pub fn run_recovered(&self, ir: &ProgramIr) -> Result<RecoveredRun, RuntimeError> {
        let primary = self.resource()?;
        // Client-side pre-flight: fail fast on Error diagnostics before any
        // acquisition attempt; carry Warnings through to the caller.
        let mut preflight_warnings: Vec<Diagnostic> = Vec::new();
        if self.preflight {
            if let Ok(spec) = primary.target() {
                let report = self.analyzer.analyze(ir, Some(&spec));
                if report.has_errors() {
                    return Err(RuntimeError::Validation(report.error_violations()));
                }
                preflight_warnings = report.warnings().into_iter().cloned().collect();
            }
        }
        let primary_err = match self.run_with_retries(&primary, ir) {
            Ok((report, attempts, backoff_secs)) => {
                return Ok(RecoveredRun {
                    report,
                    attempts,
                    backoff_secs,
                    fallback_resource: None,
                    preflight_warnings,
                })
            }
            Err(e) => e,
        };
        // Graceful degradation: a transient failure survived the whole
        // budget. If allowed, re-run on a local emulator with a fresh budget
        // (development continues while the device recovers).
        if self.fallback
            && Self::retryable(&primary_err)
            && primary.resource_type() != ResourceType::EmulatorLocal
        {
            let alt = self
                .registry
                .ids()
                .into_iter()
                .filter_map(|id| self.registry.get(&id))
                .find(|r| r.resource_type() == ResourceType::EmulatorLocal);
            if let Some(alt) = alt {
                if let Some(m) = &self.metrics {
                    m.fallback(primary.resource_id(), alt.resource_id());
                }
                let (report, attempts, backoff_secs) = self.run_with_retries(&alt, ir)?;
                return Ok(RecoveredRun {
                    report,
                    attempts,
                    backoff_secs,
                    fallback_resource: Some(alt.resource_id().to_string()),
                    preflight_warnings,
                });
            }
        }
        Err(primary_err)
    }

    /// Transient failures worth retrying: a busy device, a backend hiccup,
    /// or a task that never left `Running`/`Queued` within the poll budget.
    /// Token/task identity errors and validation failures are deterministic
    /// and retrying them would only burn budget.
    fn retryable(e: &RuntimeError) -> bool {
        matches!(
            e,
            RuntimeError::Qrmi(
                QrmiError::AcquisitionDenied(_)
                    | QrmiError::Backend(_)
                    | QrmiError::InvalidState(_)
            )
        )
    }

    /// Run on one resource under the retry budget for the configured class.
    fn run_with_retries(
        &self,
        res: &Arc<dyn QuantumResource>,
        ir: &ProgramIr,
    ) -> Result<(RunReport, u32, f64), RuntimeError> {
        let mut backoff = self.retry.backoff(self.class);
        loop {
            match self.attempt_once(res, ir) {
                Ok(report) => return Ok((report, backoff.attempts(), backoff.total_backoff())),
                Err(e) if Self::retryable(&e) => match backoff.next_delay() {
                    Some(delay) => {
                        if let Some(m) = &self.metrics {
                            let op = match &e {
                                RuntimeError::Qrmi(QrmiError::AcquisitionDenied(_)) => "acquire",
                                _ => "execute",
                            };
                            m.retry(res.resource_id(), op);
                            m.backoff(res.resource_id(), delay);
                        }
                    }
                    None => {
                        if let Some(m) = &self.metrics {
                            m.budget_exhausted(res.resource_id());
                        }
                        return Err(e);
                    }
                },
                Err(e) => return Err(e),
            }
        }
    }

    /// One validate-acquire-execute-release attempt on `res`.
    fn attempt_once(
        &self,
        res: &Arc<dyn QuantumResource>,
        ir: &ProgramIr,
    ) -> Result<RunReport, RuntimeError> {
        let spec = res.target()?;
        let violations = hpcqc_program::validate(&ir.sequence, &spec);
        if !violations.is_empty() {
            return Err(RuntimeError::Validation(violations));
        }
        let stamped = ir.clone().with_validation_revision(spec.revision);
        let lease = res.acquire()?;
        let out = hpcqc_qrmi::run_to_completion(res.as_ref(), &lease, &stamped, self.max_polls);
        res.release(&lease)?;
        let result = out?;
        Ok(RunReport {
            result,
            resource_id: res.resource_id().to_string(),
            spec_revision: spec.revision,
            program_fingerprint: ir.fingerprint(),
        })
    }

    /// Run a parameter sweep — `points.len()` variations of one program
    /// template — on the current backend in a single acquisition.
    ///
    /// Every point is validated against the live spec before anything runs
    /// (a scaled point can violate limits the template satisfies), then the
    /// whole sweep is submitted through
    /// [`hpcqc_qrmi::QuantumResource::task_start_sweep`]. Resources wrapping
    /// a batched engine (the local emulator) execute the sweep in one batch —
    /// amortizing Hamiltonian construction, drive discretization, and buffer
    /// allocation — while guaranteeing results bit-identical to
    /// `points.len()` independent [`Runtime::run`] calls.
    ///
    /// The sweep is atomic: one invalid point (or one failed task) fails the
    /// whole call, matching the batched engine's fail-fast contract.
    pub fn run_sweep(
        &self,
        template: &ProgramIr,
        points: &[SweepPoint],
    ) -> Result<Vec<RunReport>, RuntimeError> {
        let res = self.resource()?;
        let spec = res.target()?;
        let mut fingerprints = Vec::with_capacity(points.len());
        for p in points {
            let seq = p.materialize(&template.sequence);
            let violations = hpcqc_program::validate(&seq, &spec);
            if !violations.is_empty() {
                return Err(RuntimeError::Validation(violations));
            }
            let mut ir = template.clone();
            ir.sequence = seq;
            fingerprints.push(ir.fingerprint());
        }
        let stamped = template.clone().with_validation_revision(spec.revision);
        let lease = res.acquire()?;
        let out = (|| -> Result<Vec<SampleResult>, QrmiError> {
            let tasks = res.task_start_sweep(&lease, &stamped, points)?;
            tasks
                .iter()
                .map(|t| {
                    for _ in 0..self.max_polls {
                        match res.task_status(t)? {
                            TaskStatus::Completed => return res.task_result(t),
                            TaskStatus::Failed(m) => return Err(QrmiError::Backend(m)),
                            TaskStatus::Cancelled => {
                                return Err(QrmiError::InvalidState("task was cancelled".into()))
                            }
                            TaskStatus::Queued | TaskStatus::Running => {}
                        }
                    }
                    Err(QrmiError::InvalidState(format!(
                        "task did not complete within {} polls",
                        self.max_polls
                    )))
                })
                .collect()
        })();
        res.release(&lease)?;
        let results = out?;
        Ok(results
            .into_iter()
            .zip(fingerprints)
            .map(|(result, program_fingerprint)| RunReport {
                result,
                resource_id: res.resource_id().to_string(),
                spec_revision: spec.revision,
                program_fingerprint,
            })
            .collect())
    }

    /// Run the same program on several resources (the Figure-1 portability
    /// sweep). Returns `(resource_id, report-or-error)` per target.
    pub fn run_everywhere(
        &self,
        ir: &ProgramIr,
        resources: &[&str],
    ) -> Vec<(String, Result<RunReport, RuntimeError>)> {
        resources
            .iter()
            .map(|&id| {
                let report = (|| {
                    let res = self.registry.get(id).ok_or(RuntimeError::Config(
                        ConfigError::UnknownResource(id.to_string()),
                    ))?;
                    let spec = res.target()?;
                    let violations = hpcqc_program::validate(&ir.sequence, &spec);
                    if !violations.is_empty() {
                        return Err(RuntimeError::Validation(violations));
                    }
                    let lease = res.acquire()?;
                    let out =
                        hpcqc_qrmi::run_to_completion(res.as_ref(), &lease, ir, self.max_polls);
                    res.release(&lease)?;
                    Ok(RunReport {
                        result: out?,
                        resource_id: id.to_string(),
                        spec_revision: spec.revision,
                        program_fingerprint: ir.fingerprint(),
                    })
                })();
                (id.to_string(), report)
            })
            .collect()
    }

    /// Resource ids available to this runtime.
    pub fn available_resources(&self) -> Vec<String> {
        self.registry.ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};
    use hpcqc_qpu::VirtualQpu;
    use hpcqc_qrmi::{QrmiConfig, ResourceFactory};

    fn registry_with_qpu() -> ResourceRegistry {
        let mut env: std::collections::BTreeMap<String, String> = Default::default();
        for (k, v) in [
            ("QRMI_RESOURCES", "emu-local,mock,fresnel-1"),
            ("QRMI_DEFAULT_RESOURCE", "emu-local"),
            ("QRMI_RESOURCE_EMU_LOCAL_TYPE", "emulator:local"),
            ("QRMI_RESOURCE_MOCK_TYPE", "emulator:local"),
            ("QRMI_RESOURCE_MOCK_BACKEND", "emu-mps-mock"),
            ("QRMI_RESOURCE_FRESNEL_1_TYPE", "qpu:direct"),
        ] {
            env.insert(k.into(), v.into());
        }
        let cfg = QrmiConfig::from_map(&env).unwrap();
        ResourceFactory::new(11)
            .with_qpu("fresnel-1", VirtualQpu::new("fresnel-1", 5))
            .build_registry(&cfg)
            .unwrap()
    }

    fn ir(shots: u32) -> ProgramIr {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "test")
    }

    #[test]
    fn default_resource_used_without_selection() {
        let rt = Runtime::new(registry_with_qpu());
        let report = rt.run(&ir(50)).unwrap();
        assert_eq!(report.resource_id, "emu-local");
        assert_eq!(report.result.shots, 50);
        assert_eq!(report.program_fingerprint, ir(50).fingerprint());
    }

    #[test]
    fn qpu_switch_changes_backend_not_program() {
        let program = ir(20);
        let rt = Runtime::new(registry_with_qpu());
        let local = rt.run(&program).unwrap();
        let rt = rt.with_qpu("fresnel-1");
        let qpu = rt.run(&program).unwrap();
        assert_eq!(local.resource_id, "emu-local");
        assert_eq!(qpu.resource_id, "fresnel-1");
        assert_eq!(
            local.program_fingerprint, qpu.program_fingerprint,
            "identical program"
        );
        // back to default
        let rt = rt.with_default_qpu();
        assert_eq!(rt.run(&program).unwrap().resource_id, "emu-local");
    }

    #[test]
    fn unknown_selection_is_config_error() {
        let rt = Runtime::new(registry_with_qpu()).with_qpu("ghost");
        assert!(matches!(rt.run(&ir(5)), Err(RuntimeError::Config(_))));
    }

    #[test]
    fn validation_against_live_spec() {
        let rt = Runtime::new(registry_with_qpu()).with_qpu("mock");
        // 2 µm spacing violates the production limits the mock enforces
        let reg = Register::linear(2, 2.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        let bad = ProgramIr::new(b.build().unwrap(), 10, "test");
        assert!(matches!(
            rt.validate(&bad),
            Err(RuntimeError::Validation(_))
        ));
        assert!(matches!(rt.run(&bad), Err(RuntimeError::Validation(_))));
        // but the permissive local emulator takes it
        let rt = rt.with_qpu("emu-local");
        assert!(rt.run(&bad).is_ok());
    }

    #[test]
    fn run_everywhere_portability_sweep() {
        let rt = Runtime::new(registry_with_qpu());
        let program = ir(200);
        let results = rt.run_everywhere(&program, &["emu-local", "mock", "fresnel-1"]);
        assert_eq!(results.len(), 3);
        for (id, r) in &results {
            let report = r.as_ref().unwrap_or_else(|e| panic!("{id} failed: {e}"));
            assert_eq!(report.result.shots, 200);
        }
        // unknown resource reports an error, not a panic
        let res = rt.run_everywhere(&program, &["nope"]);
        assert!(matches!(res[0].1, Err(RuntimeError::Config(_))));
    }

    #[test]
    fn run_sweep_matches_sequential_runs() {
        let points: Vec<SweepPoint> = (0..4)
            .map(|k| SweepPoint {
                omega_scale: 0.6 + 0.1 * k as f64,
                delta_scale: 1.0,
                phase_offset: 0.15 * k as f64,
            })
            .collect();
        let template = ir(40);
        let swept = Runtime::new(registry_with_qpu())
            .run_sweep(&template, &points)
            .unwrap();
        // A fresh twin registry starts from the same seed, so per-point
        // sequential runs are the bit-exact reference for the batch.
        let rt = Runtime::new(registry_with_qpu());
        assert_eq!(swept.len(), points.len());
        for (k, p) in points.iter().enumerate() {
            let mut ir_k = template.clone();
            ir_k.sequence = p.materialize(&template.sequence);
            let solo = rt.run(&ir_k).unwrap();
            assert_eq!(swept[k].result, solo.result, "point {k}");
            assert_eq!(swept[k].program_fingerprint, ir_k.fingerprint());
            assert_eq!(swept[k].resource_id, "emu-local");
            assert_eq!(swept[k].spec_revision, solo.spec_revision);
        }
    }

    #[test]
    fn run_sweep_validates_each_materialized_point() {
        // The template is fine; scaling Ω by 100 pushes one point past even
        // the permissive local-emulator amplitude cap. Nothing may run.
        let rt = Runtime::new(registry_with_qpu());
        let points = [
            SweepPoint::identity(),
            SweepPoint {
                omega_scale: 100.0,
                ..SweepPoint::identity()
            },
        ];
        assert!(matches!(
            rt.run_sweep(&ir(10), &points),
            Err(RuntimeError::Validation(_))
        ));
    }

    #[test]
    fn run_sweep_with_no_points_is_empty() {
        let rt = Runtime::new(registry_with_qpu());
        assert!(rt.run_sweep(&ir(10), &[]).unwrap().is_empty());
    }

    #[test]
    fn spec_revision_recorded() {
        let rt = Runtime::new(registry_with_qpu()).with_qpu("fresnel-1");
        let report = rt.run(&ir(5)).unwrap();
        assert_eq!(report.spec_revision, 1);
    }

    #[test]
    fn preflight_blocks_out_of_range_shots() {
        // `validate()` only checks the sequence; the shot range is a
        // pre-flight (HQ0108) catch. Without it this run would grind through
        // ten million shots before the backend noticed anything.
        let rt = Runtime::new(registry_with_qpu());
        match rt.run(&ir(10_000_000)) {
            Err(RuntimeError::Validation(v)) => {
                assert!(v
                    .iter()
                    .any(|viol| { viol.kind == hpcqc_program::ViolationKind::ShotsOutOfRange }));
            }
            other => panic!("expected validation error, got {other:?}"),
        }
    }

    #[test]
    fn preflight_warnings_carried_on_the_run() {
        let rt = Runtime::new(registry_with_qpu()).with_qpu("fresnel-1");
        let stale = ir(5).with_validation_revision(42);
        let run = rt.run_recovered(&stale).unwrap();
        assert!(
            run.preflight_warnings
                .iter()
                .any(|d| d.code.as_str() == "HQ0701"),
            "{:?}",
            run.preflight_warnings
        );
        // switching pre-flight off silences the record (and the gate)
        let rt = rt.with_preflight(false);
        let run = rt.run_recovered(&stale).unwrap();
        assert!(run.preflight_warnings.is_empty());
    }

    #[test]
    fn analyze_reports_against_live_spec() {
        let rt = Runtime::new(registry_with_qpu()).with_qpu("fresnel-1");
        let report = rt.analyze(&ir(5000)).unwrap();
        assert!(
            report.has_errors(),
            "5000 shots exceed the production range"
        );
        let clean = rt.analyze(&ir(100)).unwrap();
        assert!(!clean.has_errors());
        assert!(clean.facts.est_qpu_secs > 0.0);
    }

    #[test]
    fn available_resources_sorted() {
        let rt = Runtime::new(registry_with_qpu());
        assert_eq!(
            rt.available_resources(),
            vec![
                "emu-local".to_string(),
                "fresnel-1".to_string(),
                "mock".to_string()
            ]
        );
    }

    mod recovery {
        use super::*;
        use crate::retry::AttemptBudget;
        use hpcqc_emulator::SvBackend;
        use hpcqc_qrmi::{FaultInjector, FaultProfile, LocalEmulatorResource};

        /// Registry with a fault-injected primary (flaky) plus a clean local
        /// emulator fallback.
        fn flaky_registry(profile: FaultProfile) -> ResourceRegistry {
            let mut registry = ResourceRegistry::new();
            let backend = Arc::new(SvBackend::default());
            registry.register(Arc::new(FaultInjector::new(
                Arc::new(hpcqc_qrmi::CloudResource::new(
                    "flaky-cloud",
                    hpcqc_qrmi::CloudEngine::Emulator(backend.clone()),
                    2,
                    7,
                )),
                profile,
                17,
            )));
            registry.register(Arc::new(LocalEmulatorResource::new(
                "emu-local",
                backend,
                1,
            )));
            registry.default_resource = Some("flaky-cloud".into());
            registry
        }

        #[test]
        fn retries_ride_through_transient_faults() {
            let metrics = FaultMetrics::default();
            let rt = Runtime::new(flaky_registry(FaultProfile::flaky()))
                .with_retry_policy(RetryPolicy::default())
                .with_priority_class(PriorityClass::Production)
                .with_fault_metrics(metrics.clone());
            let mut recovered_any = false;
            for _ in 0..10 {
                let run = rt.run_recovered(&ir(10)).unwrap();
                assert_eq!(run.report.resource_id, "flaky-cloud");
                assert_eq!(run.report.result.shots, 10);
                recovered_any |= run.attempts > 1;
            }
            assert!(recovered_any, "a 25%-failure resource must cost retries");
            let text = metrics.registry().expose();
            assert!(text.contains("runtime_retries_total"));
            assert!(text.contains("runtime_backoff_seconds_total"));
        }

        #[test]
        fn fallback_to_local_emulator_after_budget_exhaustion() {
            // the primary always denies acquisition: budget cannot succeed
            let profile = FaultProfile {
                acquire_denial_rate: 1.0,
                ..FaultProfile::none()
            };
            let metrics = FaultMetrics::default();
            let rt = Runtime::new(flaky_registry(profile))
                .with_retry_policy(RetryPolicy::default().with_budget(
                    PriorityClass::Development,
                    AttemptBudget {
                        max_attempts: 3,
                        max_backoff_secs: 60.0,
                    },
                ))
                .with_fallback(true)
                .with_fault_metrics(metrics.clone());
            let run = rt.run_recovered(&ir(10)).unwrap();
            assert_eq!(run.fallback_resource.as_deref(), Some("emu-local"));
            assert_eq!(run.report.resource_id, "emu-local");
            assert!(metrics
                .registry()
                .expose()
                .contains("runtime_fallbacks_total{from=\"flaky-cloud\",to=\"emu-local\"} 1"));
            assert!(metrics
                .registry()
                .expose()
                .contains("runtime_retry_budget_exhausted_total{resource=\"flaky-cloud\"} 1"));
        }

        #[test]
        fn budget_exhaustion_without_fallback_surfaces_the_error() {
            let profile = FaultProfile {
                acquire_denial_rate: 1.0,
                ..FaultProfile::none()
            };
            let rt =
                Runtime::new(flaky_registry(profile)).with_retry_policy(RetryPolicy::default());
            match rt.run_recovered(&ir(5)) {
                Err(RuntimeError::Qrmi(QrmiError::AcquisitionDenied(_))) => {}
                other => panic!("expected denial, got {other:?}"),
            }
        }

        #[test]
        fn fatal_errors_do_not_retry() {
            // validation failure is deterministic — must fail on attempt 1
            // even under a deep retry budget (more qubits than the sv
            // emulator spec admits)
            let registry = flaky_registry(FaultProfile::none());
            let rt = Runtime::new(registry)
                .with_retry_policy(RetryPolicy::default())
                .with_priority_class(PriorityClass::Production)
                .with_qpu("flaky-cloud");
            let reg = hpcqc_program::Register::linear(30, 6.0).unwrap();
            let mut b = hpcqc_program::SequenceBuilder::new(reg);
            b.add_global_pulse(hpcqc_program::Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
            let bad = ProgramIr::new(b.build().unwrap(), 10, "bad");
            assert!(matches!(
                rt.run_recovered(&bad),
                Err(RuntimeError::Validation(_))
            ));
        }
    }
}
