//! The portable hybrid runtime.
//!
//! [`Runtime`] is what application code links against: it resolves a QRMI
//! resource from configuration (never from source code), re-validates the
//! program against the *live* device spec at the point of execution, and
//! runs it. Switching from a laptop emulator to the HPC tensor-network
//! emulator to the QPU is the `--qpu=<resource>` flag / `HPCQC_QPU`
//! environment variable — the program is untouched (paper §3.2, Figure 1).

use hpcqc_emulator::SampleResult;
use hpcqc_program::{DeviceSpec, ProgramIr, Violation};
use hpcqc_qrmi::{ConfigError, QrmiError, QuantumResource, ResourceRegistry};
use std::sync::Arc;

/// Errors surfaced by the runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// Resource selection/config problem.
    Config(ConfigError),
    /// The program does not fit the selected device's current spec.
    Validation(Vec<Violation>),
    /// QRMI-level failure.
    Qrmi(QrmiError),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Config(e) => write!(f, "configuration: {e}"),
            RuntimeError::Validation(v) => {
                write!(f, "program invalid for target ({} violations): ", v.len())?;
                for viol in v {
                    write!(f, "[{viol}] ")?;
                }
                Ok(())
            }
            RuntimeError::Qrmi(e) => write!(f, "resource: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ConfigError> for RuntimeError {
    fn from(e: ConfigError) -> Self {
        RuntimeError::Config(e)
    }
}

impl From<QrmiError> for RuntimeError {
    fn from(e: QrmiError) -> Self {
        RuntimeError::Qrmi(e)
    }
}

/// Metadata attached to every execution for reproducibility records.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The result itself.
    pub result: SampleResult,
    /// Resource id the program ran on.
    pub resource_id: String,
    /// Device-spec revision at execution time.
    pub spec_revision: u64,
    /// Program fingerprint (content hash).
    pub program_fingerprint: u64,
}

/// The runtime environment.
pub struct Runtime {
    registry: ResourceRegistry,
    /// `--qpu` selection; `None` = registry default.
    selection: Option<String>,
    /// Poll budget for queued (cloud) backends.
    pub max_polls: usize,
}

impl Runtime {
    /// Build over an existing registry (the common path: registry from
    /// [`hpcqc_qrmi::QrmiConfig`] + [`hpcqc_qrmi::ResourceFactory`]).
    pub fn new(registry: ResourceRegistry) -> Self {
        Runtime { registry, selection: None, max_polls: 100_000 }
    }

    /// The `--qpu=<resource>` switch. The *only* thing that changes between
    /// development and production runs.
    pub fn with_qpu(mut self, selection: impl Into<String>) -> Self {
        self.selection = Some(selection.into());
        self
    }

    /// Clear the selection back to the configured default.
    pub fn with_default_qpu(mut self) -> Self {
        self.selection = None;
        self
    }

    /// The resource the next run would use.
    pub fn resource(&self) -> Result<Arc<dyn QuantumResource>, RuntimeError> {
        Ok(self.registry.resolve(self.selection.as_deref())?)
    }

    /// Fetch the current target spec (for pre-validation and display).
    pub fn target(&self) -> Result<DeviceSpec, RuntimeError> {
        Ok(self.resource()?.target()?)
    }

    /// Validate a program against the live target spec without running it.
    pub fn validate(&self, ir: &ProgramIr) -> Result<DeviceSpec, RuntimeError> {
        let spec = self.target()?;
        let violations = hpcqc_program::validate(&ir.sequence, &spec);
        if violations.is_empty() {
            Ok(spec)
        } else {
            Err(RuntimeError::Validation(violations))
        }
    }

    /// Validate then execute, returning result + provenance.
    pub fn run(&self, ir: &ProgramIr) -> Result<RunReport, RuntimeError> {
        let res = self.resource()?;
        let spec = res.target()?;
        let violations = hpcqc_program::validate(&ir.sequence, &spec);
        if !violations.is_empty() {
            return Err(RuntimeError::Validation(violations));
        }
        let stamped = ir.clone().with_validation_revision(spec.revision);
        let lease = res.acquire()?;
        let out = hpcqc_qrmi::run_to_completion(res.as_ref(), &lease, &stamped, self.max_polls);
        res.release(&lease)?;
        let result = out?;
        Ok(RunReport {
            result,
            resource_id: res.resource_id().to_string(),
            spec_revision: spec.revision,
            program_fingerprint: ir.fingerprint(),
        })
    }

    /// Run the same program on several resources (the Figure-1 portability
    /// sweep). Returns `(resource_id, report-or-error)` per target.
    pub fn run_everywhere(
        &self,
        ir: &ProgramIr,
        resources: &[&str],
    ) -> Vec<(String, Result<RunReport, RuntimeError>)> {
        resources
            .iter()
            .map(|&id| {
                let report = (|| {
                    let res = self.registry.get(id).ok_or(RuntimeError::Config(
                        ConfigError::UnknownResource(id.to_string()),
                    ))?;
                    let spec = res.target()?;
                    let violations = hpcqc_program::validate(&ir.sequence, &spec);
                    if !violations.is_empty() {
                        return Err(RuntimeError::Validation(violations));
                    }
                    let lease = res.acquire()?;
                    let out =
                        hpcqc_qrmi::run_to_completion(res.as_ref(), &lease, ir, self.max_polls);
                    res.release(&lease)?;
                    Ok(RunReport {
                        result: out?,
                        resource_id: id.to_string(),
                        spec_revision: spec.revision,
                        program_fingerprint: ir.fingerprint(),
                    })
                })();
                (id.to_string(), report)
            })
            .collect()
    }

    /// Resource ids available to this runtime.
    pub fn available_resources(&self) -> Vec<String> {
        self.registry.ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};
    use hpcqc_qpu::VirtualQpu;
    use hpcqc_qrmi::{QrmiConfig, ResourceFactory};

    fn registry_with_qpu() -> ResourceRegistry {
        let mut env: std::collections::BTreeMap<String, String> = Default::default();
        for (k, v) in [
            ("QRMI_RESOURCES", "emu-local,mock,fresnel-1"),
            ("QRMI_DEFAULT_RESOURCE", "emu-local"),
            ("QRMI_RESOURCE_EMU_LOCAL_TYPE", "emulator:local"),
            ("QRMI_RESOURCE_MOCK_TYPE", "emulator:local"),
            ("QRMI_RESOURCE_MOCK_BACKEND", "emu-mps-mock"),
            ("QRMI_RESOURCE_FRESNEL_1_TYPE", "qpu:direct"),
        ] {
            env.insert(k.into(), v.into());
        }
        let cfg = QrmiConfig::from_map(&env).unwrap();
        ResourceFactory::new(11)
            .with_qpu("fresnel-1", VirtualQpu::new("fresnel-1", 5))
            .build_registry(&cfg)
            .unwrap()
    }

    fn ir(shots: u32) -> ProgramIr {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "test")
    }

    #[test]
    fn default_resource_used_without_selection() {
        let rt = Runtime::new(registry_with_qpu());
        let report = rt.run(&ir(50)).unwrap();
        assert_eq!(report.resource_id, "emu-local");
        assert_eq!(report.result.shots, 50);
        assert_eq!(report.program_fingerprint, ir(50).fingerprint());
    }

    #[test]
    fn qpu_switch_changes_backend_not_program() {
        let program = ir(20);
        let rt = Runtime::new(registry_with_qpu());
        let local = rt.run(&program).unwrap();
        let rt = rt.with_qpu("fresnel-1");
        let qpu = rt.run(&program).unwrap();
        assert_eq!(local.resource_id, "emu-local");
        assert_eq!(qpu.resource_id, "fresnel-1");
        assert_eq!(local.program_fingerprint, qpu.program_fingerprint, "identical program");
        // back to default
        let rt = rt.with_default_qpu();
        assert_eq!(rt.run(&program).unwrap().resource_id, "emu-local");
    }

    #[test]
    fn unknown_selection_is_config_error() {
        let rt = Runtime::new(registry_with_qpu()).with_qpu("ghost");
        assert!(matches!(rt.run(&ir(5)), Err(RuntimeError::Config(_))));
    }

    #[test]
    fn validation_against_live_spec() {
        let rt = Runtime::new(registry_with_qpu()).with_qpu("mock");
        // 2 µm spacing violates the production limits the mock enforces
        let reg = Register::linear(2, 2.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        let bad = ProgramIr::new(b.build().unwrap(), 10, "test");
        assert!(matches!(rt.validate(&bad), Err(RuntimeError::Validation(_))));
        assert!(matches!(rt.run(&bad), Err(RuntimeError::Validation(_))));
        // but the permissive local emulator takes it
        let rt = rt.with_qpu("emu-local");
        assert!(rt.run(&bad).is_ok());
    }

    #[test]
    fn run_everywhere_portability_sweep() {
        let rt = Runtime::new(registry_with_qpu());
        let program = ir(200);
        let results = rt.run_everywhere(&program, &["emu-local", "mock", "fresnel-1"]);
        assert_eq!(results.len(), 3);
        for (id, r) in &results {
            let report = r.as_ref().unwrap_or_else(|e| panic!("{id} failed: {e}"));
            assert_eq!(report.result.shots, 200);
        }
        // unknown resource reports an error, not a panic
        let res = rt.run_everywhere(&program, &["nope"]);
        assert!(matches!(res[0].1, Err(RuntimeError::Config(_))));
    }

    #[test]
    fn spec_revision_recorded() {
        let rt = Runtime::new(registry_with_qpu()).with_qpu("fresnel-1");
        let report = rt.run(&ir(5)).unwrap();
        assert_eq!(report.spec_revision, 1);
    }

    #[test]
    fn available_resources_sorted() {
        let rt = Runtime::new(registry_with_qpu());
        assert_eq!(
            rt.available_resources(),
            vec!["emu-local".to_string(), "fresnel-1".to_string(), "mock".to_string()]
        );
    }
}
