//! Retry policies with exponential backoff and decorrelated jitter.
//!
//! A [`RetryPolicy`] tells the runtime how hard to fight for a result when
//! the QRMI boundary misbehaves: how long to back off between attempts and,
//! per [`PriorityClass`], how many attempts and how much cumulative backoff
//! a run is allowed to spend ([`AttemptBudget`]). Production runs get a
//! deeper budget than interactive development runs — a developer at a
//! terminal would rather see the error than wait out a two-minute outage,
//! while a batch production workflow should ride through it.
//!
//! Delays follow the *decorrelated jitter* scheme
//! (`delay = min(cap, uniform(base, prev · 3))`): the expected delay grows
//! roughly exponentially, but independent clients desynchronise instead of
//! retry-stampeding the resource in lockstep. Delays are simulated time —
//! the runtime accounts them instead of sleeping, so tests with thousands of
//! retries finish in milliseconds while telemetry still reports the backoff
//! a real deployment would have paid.

use hpcqc_middleware::PriorityClass;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Per-priority-class retry allowance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttemptBudget {
    /// Total attempts (first try included). 1 = no retries.
    pub max_attempts: u32,
    /// Cap on cumulative backoff seconds across the whole run.
    pub max_backoff_secs: f64,
}

impl AttemptBudget {
    /// A single attempt, no retries.
    pub fn single() -> Self {
        AttemptBudget {
            max_attempts: 1,
            max_backoff_secs: 0.0,
        }
    }
}

/// Backoff parameters plus per-class budgets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Smallest delay between attempts.
    pub base_delay_secs: f64,
    /// Largest single delay (the jitter cap).
    pub max_delay_secs: f64,
    /// Budget for production-class runs.
    pub production: AttemptBudget,
    /// Budget for test-class runs.
    pub test: AttemptBudget,
    /// Budget for development-class runs.
    pub development: AttemptBudget,
    /// Seed for the jitter stream (deterministic backoff sequences).
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// The standard recovery posture: production rides out long outages,
    /// development fails fast.
    fn default() -> Self {
        RetryPolicy {
            base_delay_secs: 1.0,
            max_delay_secs: 30.0,
            production: AttemptBudget {
                max_attempts: 8,
                max_backoff_secs: 180.0,
            },
            test: AttemptBudget {
                max_attempts: 5,
                max_backoff_secs: 60.0,
            },
            development: AttemptBudget {
                max_attempts: 3,
                max_backoff_secs: 15.0,
            },
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// No retries for any class (the runtime's default: opt in explicitly).
    pub fn none() -> Self {
        RetryPolicy {
            base_delay_secs: 0.0,
            max_delay_secs: 0.0,
            production: AttemptBudget::single(),
            test: AttemptBudget::single(),
            development: AttemptBudget::single(),
            seed: 0,
        }
    }

    /// Override the budget for one class.
    pub fn with_budget(mut self, class: PriorityClass, budget: AttemptBudget) -> Self {
        match class {
            PriorityClass::Production => self.production = budget,
            PriorityClass::Test => self.test = budget,
            PriorityClass::Development => self.development = budget,
        }
        self
    }

    /// Re-seed the jitter stream.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The budget in effect for `class`.
    pub fn budget(&self, class: PriorityClass) -> AttemptBudget {
        match class {
            PriorityClass::Production => self.production,
            PriorityClass::Test => self.test,
            PriorityClass::Development => self.development,
        }
    }

    /// A fresh backoff sequence under this policy for `class`.
    pub fn backoff(&self, class: PriorityClass) -> Backoff {
        Backoff {
            base: self.base_delay_secs,
            cap: self.max_delay_secs,
            budget: self.budget(class),
            prev: self.base_delay_secs,
            attempts: 1,
            total_backoff: 0.0,
            rng: ChaCha8Rng::seed_from_u64(self.seed),
        }
    }
}

/// One run's backoff state: attempt counting, jittered delays, budget checks.
#[derive(Debug)]
pub struct Backoff {
    base: f64,
    cap: f64,
    budget: AttemptBudget,
    prev: f64,
    attempts: u32,
    total_backoff: f64,
    rng: ChaCha8Rng,
}

impl Backoff {
    /// Attempts made so far (the initial try counts as 1).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Cumulative simulated backoff seconds paid so far.
    pub fn total_backoff(&self) -> f64 {
        self.total_backoff
    }

    /// Ask permission for one more attempt after a transient failure.
    /// `Some(delay)` grants it and charges the (decorrelated-jitter) delay
    /// against the budget; `None` means the budget is exhausted.
    pub fn next_delay(&mut self) -> Option<f64> {
        if self.attempts >= self.budget.max_attempts {
            return None;
        }
        let delay = if self.cap <= 0.0 || self.base >= self.cap {
            self.base.min(self.cap.max(0.0))
        } else {
            // decorrelated jitter: uniform(base, prev·3), clamped to the cap
            let hi = (self.prev * 3.0).clamp(self.base, self.cap);
            if hi > self.base {
                self.rng.gen_range(self.base..hi)
            } else {
                self.base
            }
        };
        if self.total_backoff + delay > self.budget.max_backoff_secs {
            return None;
        }
        self.attempts += 1;
        self.prev = delay;
        self.total_backoff += delay;
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_permits_single_attempt() {
        let mut b = RetryPolicy::none().backoff(PriorityClass::Production);
        assert_eq!(b.attempts(), 1);
        assert_eq!(b.next_delay(), None, "no retries allowed");
    }

    #[test]
    fn delays_grow_jittered_and_capped() {
        let policy = RetryPolicy {
            production: AttemptBudget {
                max_attempts: 100,
                max_backoff_secs: 1e9,
            },
            ..RetryPolicy::default()
        };
        let mut b = policy.backoff(PriorityClass::Production);
        let mut prev = policy.base_delay_secs;
        let mut delays = Vec::new();
        while delays.len() < 50 {
            let d = b.next_delay().unwrap();
            assert!(d >= policy.base_delay_secs, "never below base: {d}");
            assert!(d <= policy.max_delay_secs, "never above cap: {d}");
            assert!(d <= (prev * 3.0).max(policy.base_delay_secs) + 1e-12);
            prev = d;
            delays.push(d);
        }
        // jitter actually jitters
        assert!(delays.iter().any(|d| (d - delays[0]).abs() > 1e-9));
        // and growth reaches the cap region
        assert!(delays.iter().any(|&d| d > policy.max_delay_secs / 2.0));
    }

    #[test]
    fn attempt_budget_enforced_per_class() {
        let policy = RetryPolicy::default();
        for class in [
            PriorityClass::Production,
            PriorityClass::Test,
            PriorityClass::Development,
        ] {
            let budget = policy.budget(class);
            let mut b = policy.backoff(class);
            let mut grants = 0;
            while b.next_delay().is_some() {
                grants += 1;
            }
            assert!(grants < budget.max_attempts);
            assert!(b.total_backoff() <= budget.max_backoff_secs);
        }
        // deeper budget for production than development
        assert!(
            policy.budget(PriorityClass::Production).max_attempts
                > policy.budget(PriorityClass::Development).max_attempts
        );
    }

    #[test]
    fn backoff_time_budget_cuts_off_attempts() {
        let policy = RetryPolicy {
            base_delay_secs: 10.0,
            max_delay_secs: 10.0,
            production: AttemptBudget {
                max_attempts: 1000,
                max_backoff_secs: 25.0,
            },
            ..RetryPolicy::default()
        };
        let mut b = policy.backoff(PriorityClass::Production);
        assert_eq!(b.next_delay(), Some(10.0));
        assert_eq!(b.next_delay(), Some(10.0));
        assert_eq!(b.next_delay(), None, "third delay would exceed 25s budget");
        assert_eq!(b.attempts(), 3);
    }

    #[test]
    fn same_seed_same_sequence() {
        let policy = RetryPolicy::default().with_seed(7);
        let seq = |p: &RetryPolicy| {
            let mut b = p.backoff(PriorityClass::Production);
            std::iter::from_fn(|| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(seq(&policy), seq(&policy.clone()));
        assert_ne!(seq(&policy), seq(&RetryPolicy::default().with_seed(8)));
    }

    #[test]
    fn with_budget_overrides_one_class() {
        let policy =
            RetryPolicy::default().with_budget(PriorityClass::Development, AttemptBudget::single());
        assert_eq!(policy.budget(PriorityClass::Development).max_attempts, 1);
        assert_eq!(
            policy.budget(PriorityClass::Production),
            RetryPolicy::default().production
        );
    }
}
