//! Runtime configuration from the environment.
//!
//! The paper's §3.4: configuration lives in environment variables set by the
//! developer locally, by an IDE, or by the HPC scheduler prolog — never in
//! program source. On top of the QRMI variables this adds:
//!
//! ```text
//! HPCQC_QPU=<resource-id>      # the --qpu switch (overrides the default)
//! HPCQC_SHOTS=<n>              # default shot count for helpers
//! ```

use crate::runtime::{Runtime, RuntimeError};
use hpcqc_qpu::VirtualQpu;
use hpcqc_qrmi::{QrmiConfig, ResourceFactory};
use std::collections::BTreeMap;

/// Fully parsed runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    pub qrmi: QrmiConfig,
    /// `HPCQC_QPU` selection, if set.
    pub qpu_selection: Option<String>,
    /// `HPCQC_SHOTS` default (fallback 100).
    pub default_shots: u32,
}

impl RuntimeConfig {
    /// Parse from an explicit map (testable).
    pub fn from_map(env: &BTreeMap<String, String>) -> Result<Self, hpcqc_qrmi::ConfigError> {
        let qrmi = if env.contains_key("QRMI_RESOURCES") {
            QrmiConfig::from_map(env)?
        } else {
            QrmiConfig::development_default()
        };
        let default_shots = env
            .get("HPCQC_SHOTS")
            .and_then(|s| s.parse().ok())
            .unwrap_or(100);
        Ok(RuntimeConfig {
            qrmi,
            qpu_selection: env.get("HPCQC_QPU").cloned(),
            default_shots,
        })
    }

    /// Parse from the process environment; falls back to the zero-setup
    /// development default when no QRMI variables are present (§3.2's
    /// works-on-a-laptop experience).
    pub fn from_process_env() -> Result<Self, hpcqc_qrmi::ConfigError> {
        let map: BTreeMap<String, String> = std::env::vars().collect();
        Self::from_map(&map)
    }

    /// Materialize into a [`Runtime`]. `qpus` supplies devices for any
    /// `qpu:*` resources in the configuration.
    pub fn build_runtime(
        &self,
        seed: u64,
        qpus: Vec<(String, VirtualQpu)>,
    ) -> Result<Runtime, RuntimeError> {
        let mut factory = ResourceFactory::new(seed);
        for (name, qpu) in qpus {
            factory = factory.with_qpu(name, qpu);
        }
        let registry = factory.build_registry(&self.qrmi)?;
        let rt = Runtime::new(registry);
        Ok(match &self.qpu_selection {
            Some(sel) => rt.with_qpu(sel.clone()),
            None => rt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::{ProgramIr, Pulse, Register, SequenceBuilder};

    fn ir() -> ProgramIr {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), 10, "test")
    }

    #[test]
    fn empty_env_falls_back_to_development_default() {
        let cfg = RuntimeConfig::from_map(&BTreeMap::new()).unwrap();
        assert_eq!(cfg.default_shots, 100);
        assert!(cfg.qpu_selection.is_none());
        let rt = cfg.build_runtime(1, vec![]).unwrap();
        let report = rt.run(&ir()).unwrap();
        assert_eq!(report.resource_id, "emu-local");
    }

    #[test]
    fn hpcqc_qpu_overrides_default() {
        let mut env = BTreeMap::new();
        env.insert("HPCQC_QPU".to_string(), "mock".to_string());
        env.insert("HPCQC_SHOTS".to_string(), "555".to_string());
        let cfg = RuntimeConfig::from_map(&env).unwrap();
        assert_eq!(cfg.default_shots, 555);
        let rt = cfg.build_runtime(1, vec![]).unwrap();
        let report = rt.run(&ir()).unwrap();
        assert_eq!(report.resource_id, "mock");
    }

    #[test]
    fn full_qrmi_env_with_device() {
        let mut env = BTreeMap::new();
        for (k, v) in [
            ("QRMI_RESOURCES", "fresnel-1"),
            ("QRMI_DEFAULT_RESOURCE", "fresnel-1"),
            ("QRMI_RESOURCE_FRESNEL_1_TYPE", "qpu:direct"),
        ] {
            env.insert(k.to_string(), v.to_string());
        }
        let cfg = RuntimeConfig::from_map(&env).unwrap();
        let rt = cfg
            .build_runtime(
                1,
                vec![("fresnel-1".into(), VirtualQpu::new("fresnel-1", 3))],
            )
            .unwrap();
        let report = rt.run(&ir()).unwrap();
        assert_eq!(report.resource_id, "fresnel-1");
    }

    #[test]
    fn missing_device_surfaces_config_error() {
        let mut env = BTreeMap::new();
        for (k, v) in [
            ("QRMI_RESOURCES", "fresnel-1"),
            ("QRMI_RESOURCE_FRESNEL_1_TYPE", "qpu:direct"),
        ] {
            env.insert(k.to_string(), v.to_string());
        }
        let cfg = RuntimeConfig::from_map(&env).unwrap();
        assert!(cfg.build_runtime(1, vec![]).is_err());
    }
}
