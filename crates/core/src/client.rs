//! REST client for the middleware daemon.
//!
//! The runtime side of the session protocol (paper §3.3): connect, receive a
//! session token, submit programs, poll, fetch results. In multi-user HPC
//! deployments application code talks to the daemon through this client
//! instead of holding the QPU resource directly — the daemon owns
//! prioritization and preemption.

use hpcqc_emulator::SampleResult;
use hpcqc_middleware::http::{HttpClient, HttpError};
use hpcqc_middleware::{DaemonTaskStatus, PriorityClass};
use hpcqc_program::{DeviceSpec, ProgramIr};
use hpcqc_scheduler::PatternHint;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    Transport(String),
    /// Non-2xx HTTP status with the server's error body.
    Api {
        status: u16,
        message: String,
    },
    Protocol(String),
    /// Task reached a terminal failure state.
    TaskFailed(String),
    /// Poll budget exhausted.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(m) => write!(f, "transport: {m}"),
            ClientError::Api { status, message } => write!(f, "api error {status}: {message}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::TaskFailed(m) => write!(f, "task failed: {m}"),
            ClientError::Timeout => write!(f, "poll budget exhausted"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        ClientError::Transport(e.to_string())
    }
}

fn expect_2xx(status: u16, body: String) -> Result<String, ClientError> {
    if (200..300).contains(&status) {
        Ok(body)
    } else {
        let message = serde_json::from_str::<serde_json::Value>(&body)
            .ok()
            .and_then(|v| v["error"].as_str().map(String::from))
            .unwrap_or(body);
        Err(ClientError::Api { status, message })
    }
}

/// A connection to one middleware daemon.
///
/// Holds a keep-alive [`HttpClient`]: every call reuses one persistent
/// connection to the daemon instead of paying a TCP connect per request
/// (clones of this client — including every [`DaemonSession`] opened from
/// it — share that connection; requests serialize on it).
#[derive(Debug, Clone)]
pub struct DaemonClient {
    /// `host:port` of the daemon.
    pub addr: String,
    /// Whether polling should ask the daemon to pump its queue (simulation
    /// deployments; production daemons run their own dispatch thread).
    pub pump_on_poll: bool,
    /// Sleep between status polls when the daemon dispatches on its own
    /// (`pump_on_poll = false`); ignored otherwise.
    pub poll_interval: std::time::Duration,
    http: std::sync::Arc<HttpClient>,
}

/// An open session.
#[derive(Debug, Clone)]
pub struct DaemonSession {
    client: DaemonClient,
    /// The bearer token identifying this session.
    pub token: String,
}

impl DaemonClient {
    pub fn new(addr: impl Into<String>) -> Self {
        let addr = addr.into();
        DaemonClient {
            http: std::sync::Arc::new(HttpClient::new(addr.clone())),
            addr,
            pump_on_poll: true,
            poll_interval: std::time::Duration::from_millis(20),
        }
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), HttpError> {
        self.http.request(method, path, body)
    }

    /// Open a session in `class` for `user`.
    pub fn open_session(
        &self,
        user: &str,
        class: PriorityClass,
    ) -> Result<DaemonSession, ClientError> {
        let body = serde_json::json!({ "user": user, "class": class.as_str() }).to_string();
        let (st, body) = self.request("POST", "/v1/sessions", Some(&body))?;
        let body = expect_2xx(st, body)?;
        let v: serde_json::Value =
            serde_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let token = v["token"]
            .as_str()
            .ok_or_else(|| ClientError::Protocol("missing token".into()))?
            .to_string();
        Ok(DaemonSession {
            client: self.clone(),
            token,
        })
    }

    /// Fetch the daemon's current target device spec.
    pub fn target(&self) -> Result<DeviceSpec, ClientError> {
        let (st, body) = self.request("GET", "/v1/target", None)?;
        let body = expect_2xx(st, body)?;
        serde_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Fetch the Prometheus metrics exposition.
    pub fn metrics(&self) -> Result<String, ClientError> {
        let (st, body) = self.request("GET", "/metrics", None)?;
        expect_2xx(st, body)
    }

    /// Daemon readiness: `Ok("ok")` when serving; an [`ClientError::Api`]
    /// with status 503 while the daemon drains or after it stopped.
    pub fn healthz(&self) -> Result<String, ClientError> {
        let (st, body) = self.request("GET", "/v1/healthz", None)?;
        let body = expect_2xx(st, body)?;
        let v: serde_json::Value =
            serde_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))?;
        v["status"]
            .as_str()
            .map(String::from)
            .ok_or_else(|| ClientError::Protocol("missing status".into()))
    }
}

impl DaemonSession {
    /// Submit a program; returns the daemon task id.
    pub fn submit(&self, ir: &ProgramIr, hint: PatternHint) -> Result<u64, ClientError> {
        self.submit_keyed(ir, hint, None)
    }

    /// [`Self::submit`] with an optional idempotency key. Submitting the
    /// same key twice — even across a daemon restart — returns the task id
    /// originally assigned, so retry loops never double-enqueue.
    pub fn submit_keyed(
        &self,
        ir: &ProgramIr,
        hint: PatternHint,
        idempotency_key: Option<&str>,
    ) -> Result<u64, ClientError> {
        let hint_str = match hint {
            PatternHint::QcHeavy => Some("qc-heavy"),
            PatternHint::CcHeavy => Some("cc-heavy"),
            PatternHint::QcBalanced => Some("qc-balanced"),
            PatternHint::None => None,
        };
        let body = serde_json::json!({
            "token": self.token,
            "ir": ir,
            "hint": hint_str,
            "idempotency_key": idempotency_key,
        })
        .to_string();
        let (st, body) = self.client.request("POST", "/v1/tasks", Some(&body))?;
        let body = expect_2xx(st, body)?;
        let v: serde_json::Value =
            serde_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))?;
        v["task_id"]
            .as_u64()
            .ok_or_else(|| ClientError::Protocol("missing task_id".into()))
    }

    /// Submit with `key`, retrying transport failures up to `max_attempts`
    /// times. Safe against the classic at-most-once/at-least-once dilemma:
    /// the key makes every retry idempotent, so a submit whose response was
    /// lost is deduplicated server-side instead of enqueued twice.
    pub fn submit_reliable(
        &self,
        ir: &ProgramIr,
        hint: PatternHint,
        key: &str,
        max_attempts: usize,
    ) -> Result<u64, ClientError> {
        let mut last = ClientError::Timeout;
        for _ in 0..max_attempts.max(1) {
            match self.submit_keyed(ir, hint, Some(key)) {
                Ok(id) => return Ok(id),
                Err(ClientError::Transport(m)) => last = ClientError::Transport(m),
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Current status of a task.
    pub fn status(&self, task: u64) -> Result<DaemonTaskStatus, ClientError> {
        let (st, body) = self
            .client
            .request("GET", &format!("/v1/tasks/{task}"), None)?;
        let body = expect_2xx(st, body)?;
        serde_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Fetch the result of a completed task.
    pub fn result(&self, task: u64) -> Result<SampleResult, ClientError> {
        let (st, body) = self
            .client
            .request("GET", &format!("/v1/tasks/{task}/result"), None)?;
        let body = expect_2xx(st, body)?;
        serde_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Cancel a queued task.
    pub fn cancel(&self, task: u64) -> Result<(), ClientError> {
        let (st, body) = self.client.request(
            "DELETE",
            &format!("/v1/tasks/{task}?token={}", self.token),
            None,
        )?;
        expect_2xx(st, body).map(|_| ())
    }

    /// Poll until the task completes (optionally pumping the daemon's queue
    /// each round), then fetch the result.
    pub fn wait(&self, task: u64, max_polls: usize) -> Result<SampleResult, ClientError> {
        for _ in 0..max_polls {
            if self.client.pump_on_poll {
                let (st, body) = self.client.request("POST", "/v1/pump", Some("{}"))?;
                expect_2xx(st, body)?;
            } else {
                std::thread::sleep(self.client.poll_interval);
            }
            match self.status(task)? {
                DaemonTaskStatus::Completed => return self.result(task),
                DaemonTaskStatus::Failed(m) => return Err(ClientError::TaskFailed(m)),
                DaemonTaskStatus::Cancelled => {
                    return Err(ClientError::TaskFailed("cancelled".into()))
                }
                DaemonTaskStatus::Queued { .. } | DaemonTaskStatus::Running => {}
            }
        }
        Err(ClientError::Timeout)
    }

    /// Submit and wait in one call.
    pub fn run(&self, ir: &ProgramIr, hint: PatternHint) -> Result<SampleResult, ClientError> {
        let id = self.submit(ir, hint)?;
        self.wait(id, 10_000)
    }

    /// Close the session on the daemon.
    pub fn close(self) -> Result<(), ClientError> {
        let (st, body) =
            self.client
                .request("DELETE", &format!("/v1/sessions/{}", self.token), None)?;
        expect_2xx(st, body).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_emulator::SvBackend;
    use hpcqc_middleware::rest::serve;
    use hpcqc_middleware::{DaemonConfig, MiddlewareService};
    use hpcqc_program::{Pulse, Register, SequenceBuilder};
    use hpcqc_qrmi::LocalEmulatorResource;
    use std::sync::Arc;

    fn daemon() -> hpcqc_middleware::HttpServer {
        let res = Arc::new(LocalEmulatorResource::new(
            "emu",
            Arc::new(SvBackend::default()),
            1,
        ));
        serve(Arc::new(MiddlewareService::new(
            res,
            DaemonConfig::default(),
        )))
        .unwrap()
    }

    fn ir(shots: u32) -> ProgramIr {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "client-test")
    }

    #[test]
    fn end_to_end_session_over_sockets() {
        let server = daemon();
        let client = DaemonClient::new(server.addr());
        let spec = client.target().unwrap();
        assert!(spec.max_qubits >= 20);
        let session = client.open_session("ada", PriorityClass::Test).unwrap();
        let result = session.run(&ir(42), PatternHint::QcBalanced).unwrap();
        assert_eq!(result.shots, 42);
        assert!(client
            .metrics()
            .unwrap()
            .contains("daemon_tasks_completed_total"));
        session.close().unwrap();
    }

    #[test]
    fn cancel_through_client() {
        let server = daemon();
        let client = DaemonClient::new(server.addr());
        let session = client
            .open_session("u", PriorityClass::Development)
            .unwrap();
        let id = session.submit(&ir(5), PatternHint::None).unwrap();
        session.cancel(id).unwrap();
        match session.wait(id, 3) {
            Err(ClientError::TaskFailed(m)) => assert!(m.contains("cancelled")),
            other => panic!("expected cancelled, got {other:?}"),
        }
    }

    #[test]
    fn api_errors_carry_status() {
        let server = daemon();
        let client = DaemonClient::new(server.addr());
        let bogus = DaemonSession {
            client: client.clone(),
            token: "nope".into(),
        };
        match bogus.submit(&ir(5), PatternHint::None) {
            Err(ClientError::Api { status: 401, .. }) => {}
            other => panic!("expected 401, got {other:?}"),
        }
        match bogus.status(12345) {
            Err(ClientError::Api { status: 404, .. }) => {}
            other => panic!("expected 404, got {other:?}"),
        }
    }

    #[test]
    fn transport_error_on_dead_daemon() {
        let client = DaemonClient::new("127.0.0.1:1"); // nothing listens here
        assert!(matches!(client.target(), Err(ClientError::Transport(_))));
    }

    #[test]
    fn keyed_resubmit_returns_original_id() {
        let server = daemon();
        let client = DaemonClient::new(server.addr());
        let session = client.open_session("ada", PriorityClass::Test).unwrap();
        let first = session
            .submit_keyed(&ir(7), PatternHint::None, Some("job-1"))
            .unwrap();
        let second = session
            .submit_keyed(&ir(7), PatternHint::None, Some("job-1"))
            .unwrap();
        assert_eq!(first, second);
        let reliable = session
            .submit_reliable(&ir(7), PatternHint::None, "job-1", 3)
            .unwrap();
        assert_eq!(first, reliable);
        // a fresh key gets a fresh task
        let third = session
            .submit_keyed(&ir(7), PatternHint::None, Some("job-2"))
            .unwrap();
        assert_ne!(first, third);
    }

    #[test]
    fn healthz_reports_serving() {
        let server = daemon();
        let client = DaemonClient::new(server.addr());
        assert_eq!(client.healthz().unwrap(), "ok");
    }

    /// The client pools its connection: several calls in a row ride one
    /// TCP connection, visible as keep-alive reuse in the daemon's own
    /// transport telemetry.
    #[test]
    fn client_calls_reuse_the_connection() {
        let server = daemon();
        let client = DaemonClient::new(server.addr());
        client.healthz().unwrap();
        client.target().unwrap();
        client.healthz().unwrap();
        // The reuse counter for a request increments after its handler ran,
        // so the exposition below reflects the first three calls.
        let metrics = client.metrics().unwrap();
        let reuse: f64 = metrics
            .lines()
            .find(|l| l.starts_with("http_keepalive_reuse_total"))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0);
        assert!(
            reuse >= 2.0,
            "three calls on one client must reuse the connection: {reuse}"
        );
    }
}
