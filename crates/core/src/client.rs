//! REST client for the middleware daemon.
//!
//! The runtime side of the session protocol (paper §3.3): connect, receive a
//! session token, submit programs, poll, fetch results. In multi-user HPC
//! deployments application code talks to the daemon through this client
//! instead of holding the QPU resource directly — the daemon owns
//! prioritization and preemption.
//!
//! # Wire codec
//!
//! The client speaks JSON by default. [`DaemonClient::prefer_binary`] opts
//! into the compact binary wire codec (`application/x-hpcqc-bin`) on the
//! submit, status and result paths; the first HTTP 415 from a daemon that
//! does not speak it downgrades the client (and every clone sharing its
//! connection) back to JSON permanently, so mixed fleets need no
//! configuration. [`DaemonSession::submit_batch`] sends N programs in one
//! request/one daemon lock acquisition, with per-program outcomes.

use crate::retry::{AttemptBudget, RetryPolicy};
use hpcqc_emulator::SampleResult;
use hpcqc_middleware::http::{HttpClient, HttpError, RawResponse};
use hpcqc_middleware::{DaemonTaskStatus, PriorityClass};
use hpcqc_program::{DeviceSpec, ProgramIr};
use hpcqc_scheduler::PatternHint;
use hpcqc_wire as wire;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    Transport(String),
    /// Non-2xx HTTP status with the server's error body.
    Api {
        status: u16,
        message: String,
    },
    Protocol(String),
    /// Task reached a terminal failure state.
    TaskFailed(String),
    /// Poll budget exhausted.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(m) => write!(f, "transport: {m}"),
            ClientError::Api { status, message } => write!(f, "api error {status}: {message}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::TaskFailed(m) => write!(f, "task failed: {m}"),
            ClientError::Timeout => write!(f, "poll budget exhausted"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        ClientError::Transport(e.to_string())
    }
}

fn expect_2xx(status: u16, body: String) -> Result<String, ClientError> {
    if (200..300).contains(&status) {
        Ok(body)
    } else {
        let message = serde_json::from_str::<serde_json::Value>(&body)
            .ok()
            .and_then(|v| v["error"].as_str().map(String::from))
            .unwrap_or(body);
        Err(ClientError::Api { status, message })
    }
}

/// The `PatternHint` wire spelling shared by the JSON and binary paths.
fn hint_str(hint: PatternHint) -> Option<&'static str> {
    match hint {
        PatternHint::QcHeavy => Some("qc-heavy"),
        PatternHint::CcHeavy => Some("cc-heavy"),
        PatternHint::QcBalanced => Some("qc-balanced"),
        PatternHint::None => None,
    }
}

/// Map a non-2xx raw response to [`ClientError::Api`], decoding the error
/// body whichever codec it arrived in.
fn api_error(raw: &RawResponse) -> ClientError {
    let message = if raw.content_type.starts_with(wire::CONTENT_TYPE_BIN) {
        wire::decode_error(&raw.body)
            .map(|e| e.message)
            .unwrap_or_else(|_| "undecodable binary error frame".into())
    } else {
        std::str::from_utf8(&raw.body)
            .ok()
            .and_then(|b| serde_json::from_str::<serde_json::Value>(b).ok())
            .and_then(|v| v["error"].as_str().map(String::from))
            .unwrap_or_else(|| String::from_utf8_lossy(&raw.body).into_owned())
    };
    ClientError::Api {
        status: raw.status,
        message,
    }
}

/// One program in a [`DaemonSession::submit_batch`] call.
#[derive(Debug, Clone, Copy)]
pub struct BatchItem<'a> {
    pub ir: &'a ProgramIr,
    pub hint: PatternHint,
    /// Per-frame dedup key (same semantics as [`DaemonSession::submit_keyed`]).
    pub idempotency_key: Option<&'a str>,
}

fn slot_to_outcome(slot: wire::BatchSlot) -> Result<u64, ClientError> {
    match slot {
        wire::BatchSlot::Ok { task_id } => Ok(task_id),
        wire::BatchSlot::Err { status, message } => Err(ClientError::Api { status, message }),
    }
}

fn wire_status_to_daemon(s: wire::WireStatus) -> DaemonTaskStatus {
    match s {
        wire::WireStatus::Queued { position } => DaemonTaskStatus::Queued { position },
        wire::WireStatus::Running => DaemonTaskStatus::Running,
        wire::WireStatus::Completed => DaemonTaskStatus::Completed,
        wire::WireStatus::Failed(m) => DaemonTaskStatus::Failed(m),
        wire::WireStatus::Cancelled => DaemonTaskStatus::Cancelled,
    }
}

/// A connection to one middleware daemon.
///
/// Holds a keep-alive [`HttpClient`]: every call reuses one persistent
/// connection to the daemon instead of paying a TCP connect per request
/// (clones of this client — including every [`DaemonSession`] opened from
/// it — share that connection; requests serialize on it).
#[derive(Debug, Clone)]
pub struct DaemonClient {
    /// `host:port` of the daemon.
    pub addr: String,
    /// Whether polling should ask the daemon to pump its queue (simulation
    /// deployments; production daemons run their own dispatch thread).
    pub pump_on_poll: bool,
    /// Sleep between status polls when the daemon dispatches on its own
    /// (`pump_on_poll = false`); ignored otherwise.
    pub poll_interval: std::time::Duration,
    http: std::sync::Arc<HttpClient>,
    /// Binary-codec preference, shared by clones (including every session
    /// opened from this client): `true` while the daemon is believed to
    /// speak `application/x-hpcqc-bin`; the first 415 clears it for all.
    binary: std::sync::Arc<AtomicBool>,
}

/// An open session.
#[derive(Debug, Clone)]
pub struct DaemonSession {
    client: DaemonClient,
    /// The bearer token identifying this session.
    pub token: String,
}

impl DaemonClient {
    pub fn new(addr: impl Into<String>) -> Self {
        let addr = addr.into();
        DaemonClient {
            http: std::sync::Arc::new(HttpClient::new(addr.clone())),
            addr,
            pump_on_poll: true,
            poll_interval: std::time::Duration::from_millis(20),
            binary: std::sync::Arc::new(AtomicBool::new(false)),
        }
    }

    /// Opt into the binary wire codec for submits, batch submits, status
    /// and result reads. Falls back to JSON automatically (and permanently,
    /// for this client and its clones) if the daemon answers HTTP 415.
    pub fn prefer_binary(self) -> Self {
        self.binary.store(true, Ordering::Relaxed);
        self
    }

    /// Whether the binary codec is currently in use (false after a 415
    /// downgrade or when never opted in).
    pub fn binary_active(&self) -> bool {
        self.binary.load(Ordering::Relaxed)
    }

    /// Record a 415: the daemon does not speak the binary codec.
    fn downgrade_to_json(&self) {
        self.binary.store(false, Ordering::Relaxed);
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), HttpError> {
        self.http.request(method, path, body)
    }

    /// Open a session in `class` for `user`.
    pub fn open_session(
        &self,
        user: &str,
        class: PriorityClass,
    ) -> Result<DaemonSession, ClientError> {
        let body = serde_json::json!({ "user": user, "class": class.as_str() }).to_string();
        let (st, body) = self.request("POST", "/v1/sessions", Some(&body))?;
        let body = expect_2xx(st, body)?;
        let v: serde_json::Value =
            serde_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let token = v["token"]
            .as_str()
            .ok_or_else(|| ClientError::Protocol("missing token".into()))?
            .to_string();
        Ok(DaemonSession {
            client: self.clone(),
            token,
        })
    }

    /// Fetch the daemon's current target device spec.
    pub fn target(&self) -> Result<DeviceSpec, ClientError> {
        let (st, body) = self.request("GET", "/v1/target", None)?;
        let body = expect_2xx(st, body)?;
        serde_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Fetch the Prometheus metrics exposition.
    pub fn metrics(&self) -> Result<String, ClientError> {
        let (st, body) = self.request("GET", "/metrics", None)?;
        expect_2xx(st, body)
    }

    /// Daemon readiness: `Ok("ok")` when serving; an [`ClientError::Api`]
    /// with status 503 while the daemon drains or after it stopped.
    pub fn healthz(&self) -> Result<String, ClientError> {
        let (st, body) = self.request("GET", "/v1/healthz", None)?;
        let body = expect_2xx(st, body)?;
        let v: serde_json::Value =
            serde_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))?;
        v["status"]
            .as_str()
            .map(String::from)
            .ok_or_else(|| ClientError::Protocol("missing status".into()))
    }
}

impl DaemonSession {
    /// Submit a program; returns the daemon task id.
    pub fn submit(&self, ir: &ProgramIr, hint: PatternHint) -> Result<u64, ClientError> {
        self.submit_keyed(ir, hint, None)
    }

    /// [`Self::submit`] with an optional idempotency key. Submitting the
    /// same key twice — even across a daemon restart — returns the task id
    /// originally assigned, so retry loops never double-enqueue.
    pub fn submit_keyed(
        &self,
        ir: &ProgramIr,
        hint: PatternHint,
        idempotency_key: Option<&str>,
    ) -> Result<u64, ClientError> {
        if self.client.binary_active() {
            match self.submit_keyed_binary(ir, hint, idempotency_key) {
                Err(ClientError::Api { status: 415, .. }) => self.client.downgrade_to_json(),
                other => return other,
            }
        }
        let body = serde_json::json!({
            "token": self.token,
            "ir": ir,
            "hint": hint_str(hint),
            "idempotency_key": idempotency_key,
        })
        .to_string();
        let (st, body) = self.client.request("POST", "/v1/tasks", Some(&body))?;
        let body = expect_2xx(st, body)?;
        let v: serde_json::Value =
            serde_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))?;
        v["task_id"]
            .as_u64()
            .ok_or_else(|| ClientError::Protocol("missing task_id".into()))
    }

    /// One submit as a binary wire frame. The `?token=` query parameter is
    /// routing metadata for gateways (placement without parsing the body);
    /// a daemon reached directly ignores it.
    fn submit_keyed_binary(
        &self,
        ir: &ProgramIr,
        hint: PatternHint,
        idempotency_key: Option<&str>,
    ) -> Result<u64, ClientError> {
        let frame = wire::SubmitFrame {
            token: self.token.clone(),
            hint: hint_str(hint).map(String::from),
            idempotency_key: idempotency_key.map(String::from),
            ir: ir.clone(),
        };
        let raw = self.client.http.request_bytes(
            "POST",
            &format!("/v1/tasks?token={}", self.token),
            wire::CONTENT_TYPE_BIN,
            Some(&wire::encode_submit(&frame)),
        )?;
        if !(200..300).contains(&raw.status) {
            return Err(api_error(&raw));
        }
        wire::decode_task_id(&raw.body).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Submit `items` as one `POST /v1/tasks:batch` request: one HTTP round
    /// trip, one daemon lock acquisition and one journal group-commit for
    /// the whole batch. Returns one outcome per item, in submission order —
    /// a refused frame (validation, quota) fails its own slot without
    /// affecting the rest. Uses the binary codec when the client opted in
    /// ([`DaemonClient::prefer_binary`]), JSON otherwise, with the same
    /// automatic 415 fallback as single submits.
    pub fn submit_batch(
        &self,
        items: &[BatchItem<'_>],
    ) -> Result<Vec<Result<u64, ClientError>>, ClientError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        if self.client.binary_active() {
            match self.submit_batch_binary(items) {
                Err(ClientError::Api { status: 415, .. }) => self.client.downgrade_to_json(),
                other => return other,
            }
        }
        self.submit_batch_json(items)
    }

    fn submit_batch_binary(
        &self,
        items: &[BatchItem<'_>],
    ) -> Result<Vec<Result<u64, ClientError>>, ClientError> {
        let frames: Vec<wire::SubmitFrame> = items
            .iter()
            .map(|it| wire::SubmitFrame {
                token: self.token.clone(),
                hint: hint_str(it.hint).map(String::from),
                idempotency_key: it.idempotency_key.map(String::from),
                ir: it.ir.clone(),
            })
            .collect();
        let raw = self.client.http.request_bytes(
            "POST",
            &format!("/v1/tasks:batch?token={}", self.token),
            wire::CONTENT_TYPE_BIN,
            Some(&wire::encode_submit_batch(&frames)),
        )?;
        if !(200..300).contains(&raw.status) {
            return Err(api_error(&raw));
        }
        let slots = wire::decode_batch_reply(&raw.body)
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        Ok(slots.into_iter().map(slot_to_outcome).collect())
    }

    fn submit_batch_json(
        &self,
        items: &[BatchItem<'_>],
    ) -> Result<Vec<Result<u64, ClientError>>, ClientError> {
        let body: Vec<serde_json::Value> = items
            .iter()
            .map(|it| {
                serde_json::json!({
                    "token": self.token,
                    "ir": it.ir,
                    "hint": hint_str(it.hint),
                    "idempotency_key": it.idempotency_key,
                })
            })
            .collect();
        let (st, body) = self.client.request(
            "POST",
            "/v1/tasks:batch",
            Some(&serde_json::Value::Array(body).to_string()),
        )?;
        let body = expect_2xx(st, body)?;
        let v: serde_json::Value =
            serde_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let slots = v
            .as_array()
            .ok_or_else(|| ClientError::Protocol("batch reply is not an array".into()))?;
        Ok(slots
            .iter()
            .map(|s| match s["task_id"].as_u64() {
                Some(id) => Ok(id),
                None => Err(ClientError::Api {
                    status: s["status"].as_u64().unwrap_or(500) as u16,
                    message: s["error"].as_str().unwrap_or("unknown error").to_string(),
                }),
            })
            .collect())
    }

    /// Submit with `key`, retrying transient failures up to `max_attempts`
    /// times with decorrelated-jitter backoff. Safe against the classic
    /// at-most-once/at-least-once dilemma: the key makes every retry
    /// idempotent, so a submit whose response was lost is deduplicated
    /// server-side instead of enqueued twice.
    ///
    /// Transient means retryable-by-contract: transport failures (connection
    /// refused/reset — e.g. a leader dying mid-request) and HTTP 503 (a
    /// draining leader, an unpromoted follower, or a gateway shard between
    /// failovers). Anything else — 4xx validation, quota, auth — fails
    /// immediately. This is exactly the window a shard failover opens: the
    /// client rides through drain → promote → reroute without help.
    pub fn submit_reliable(
        &self,
        ir: &ProgramIr,
        hint: PatternHint,
        key: &str,
        max_attempts: usize,
    ) -> Result<u64, ClientError> {
        // Client-side pauses, not queue-side: short base, tight cap, and a
        // five-second wall-clock budget so callers are never parked behind
        // a shard that is not coming back.
        let policy = RetryPolicy {
            base_delay_secs: 0.01,
            max_delay_secs: 0.25,
            ..RetryPolicy::default()
        }
        .with_budget(
            PriorityClass::Test,
            AttemptBudget {
                max_attempts: max_attempts.max(1) as u32,
                max_backoff_secs: 5.0,
            },
        );
        self.submit_with_policy(ir, hint, key, &policy, PriorityClass::Test)
    }

    /// [`Self::submit_reliable`] with an explicit [`RetryPolicy`]: attempts
    /// and cumulative sleep are bounded by the policy's budget for `class`
    /// (the wall-clock ceiling is `max_backoff_secs` plus the requests
    /// themselves). The first non-transient error aborts the loop; when the
    /// budget runs out, the last transient error is returned.
    pub fn submit_with_policy(
        &self,
        ir: &ProgramIr,
        hint: PatternHint,
        key: &str,
        policy: &RetryPolicy,
        class: PriorityClass,
    ) -> Result<u64, ClientError> {
        let mut backoff = policy.backoff(class);
        loop {
            let last = match self.submit_keyed(ir, hint, Some(key)) {
                Ok(id) => return Ok(id),
                Err(e @ ClientError::Transport(_)) => e,
                Err(e @ ClientError::Api { status: 503, .. }) => e,
                Err(e) => return Err(e),
            };
            match backoff.next_delay() {
                Some(delay) => std::thread::sleep(Duration::from_secs_f64(delay)),
                None => return Err(last),
            }
        }
    }

    /// Current status of a task. The token query parameter is ignored by a
    /// daemon reached directly; through a gateway it is the placement key
    /// that routes the poll to the session's shard.
    pub fn status(&self, task: u64) -> Result<DaemonTaskStatus, ClientError> {
        let path = format!("/v1/tasks/{task}?token={}", self.token);
        if self.client.binary_active() {
            // GETs negotiate via Accept: a daemon that does not speak the
            // codec ignores the header and answers JSON, so we dispatch on
            // the response's content-type instead of expecting an error.
            let raw = self.get_accept_binary(&path)?;
            if raw.content_type.starts_with(wire::CONTENT_TYPE_BIN) {
                return wire::decode_status(&raw.body)
                    .map(wire_status_to_daemon)
                    .map_err(|e| ClientError::Protocol(e.to_string()));
            }
            let body = String::from_utf8_lossy(&raw.body).into_owned();
            return serde_json::from_str(&expect_2xx(raw.status, body)?)
                .map_err(|e| ClientError::Protocol(e.to_string()));
        }
        let (st, body) = self.client.request("GET", &path, None)?;
        let body = expect_2xx(st, body)?;
        serde_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Fetch the result of a completed task (token routes as in
    /// [`Self::status`]).
    pub fn result(&self, task: u64) -> Result<SampleResult, ClientError> {
        let path = format!("/v1/tasks/{task}/result?token={}", self.token);
        if self.client.binary_active() {
            let raw = self.get_accept_binary(&path)?;
            if raw.content_type.starts_with(wire::CONTENT_TYPE_BIN) {
                return wire::decode_result(&raw.body)
                    .map_err(|e| ClientError::Protocol(e.to_string()));
            }
            let body = String::from_utf8_lossy(&raw.body).into_owned();
            return serde_json::from_str(&expect_2xx(raw.status, body)?)
                .map_err(|e| ClientError::Protocol(e.to_string()));
        }
        let (st, body) = self.client.request("GET", &path, None)?;
        let body = expect_2xx(st, body)?;
        serde_json::from_str(&body).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// One GET asking for a binary reply; non-2xx is mapped to
    /// [`ClientError::Api`] whichever codec the error body arrived in.
    fn get_accept_binary(&self, path: &str) -> Result<RawResponse, ClientError> {
        let raw = self.client.http.request_bytes_accept(
            "GET",
            path,
            "application/json",
            Some(wire::CONTENT_TYPE_BIN),
            None,
        )?;
        if !(200..300).contains(&raw.status) {
            return Err(api_error(&raw));
        }
        Ok(raw)
    }

    /// Cancel a queued task.
    pub fn cancel(&self, task: u64) -> Result<(), ClientError> {
        let (st, body) = self.client.request(
            "DELETE",
            &format!("/v1/tasks/{task}?token={}", self.token),
            None,
        )?;
        expect_2xx(st, body).map(|_| ())
    }

    /// Poll until the task completes (optionally pumping the daemon's queue
    /// each round), then fetch the result.
    pub fn wait(&self, task: u64, max_polls: usize) -> Result<SampleResult, ClientError> {
        for _ in 0..max_polls {
            if self.client.pump_on_poll {
                // the token body field is routing metadata for gateways;
                // the daemon's pump handler does not read it
                let body = format!(r#"{{"token":"{}"}}"#, self.token);
                let (st, body) = self.client.request("POST", "/v1/pump", Some(&body))?;
                expect_2xx(st, body)?;
            } else {
                std::thread::sleep(self.client.poll_interval);
            }
            match self.status(task)? {
                DaemonTaskStatus::Completed => return self.result(task),
                DaemonTaskStatus::Failed(m) => return Err(ClientError::TaskFailed(m)),
                DaemonTaskStatus::Cancelled => {
                    return Err(ClientError::TaskFailed("cancelled".into()))
                }
                DaemonTaskStatus::Queued { .. } | DaemonTaskStatus::Running => {}
            }
        }
        Err(ClientError::Timeout)
    }

    /// Submit and wait in one call.
    pub fn run(&self, ir: &ProgramIr, hint: PatternHint) -> Result<SampleResult, ClientError> {
        let id = self.submit(ir, hint)?;
        self.wait(id, 10_000)
    }

    /// Close the session on the daemon.
    pub fn close(self) -> Result<(), ClientError> {
        let (st, body) =
            self.client
                .request("DELETE", &format!("/v1/sessions/{}", self.token), None)?;
        expect_2xx(st, body).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_emulator::SvBackend;
    use hpcqc_middleware::rest::serve;
    use hpcqc_middleware::{DaemonConfig, MiddlewareService};
    use hpcqc_program::{Pulse, Register, SequenceBuilder};
    use hpcqc_qrmi::LocalEmulatorResource;
    use std::sync::Arc;

    fn daemon() -> hpcqc_middleware::HttpServer {
        let res = Arc::new(LocalEmulatorResource::new(
            "emu",
            Arc::new(SvBackend::default()),
            1,
        ));
        serve(Arc::new(MiddlewareService::new(
            res,
            DaemonConfig::default(),
        )))
        .unwrap()
    }

    fn ir(shots: u32) -> ProgramIr {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "client-test")
    }

    #[test]
    fn end_to_end_session_over_sockets() {
        let server = daemon();
        let client = DaemonClient::new(server.addr());
        let spec = client.target().unwrap();
        assert!(spec.max_qubits >= 20);
        let session = client.open_session("ada", PriorityClass::Test).unwrap();
        let result = session.run(&ir(42), PatternHint::QcBalanced).unwrap();
        assert_eq!(result.shots, 42);
        assert!(client
            .metrics()
            .unwrap()
            .contains("daemon_tasks_completed_total"));
        session.close().unwrap();
    }

    #[test]
    fn cancel_through_client() {
        let server = daemon();
        let client = DaemonClient::new(server.addr());
        let session = client
            .open_session("u", PriorityClass::Development)
            .unwrap();
        let id = session.submit(&ir(5), PatternHint::None).unwrap();
        session.cancel(id).unwrap();
        match session.wait(id, 3) {
            Err(ClientError::TaskFailed(m)) => assert!(m.contains("cancelled")),
            other => panic!("expected cancelled, got {other:?}"),
        }
    }

    #[test]
    fn api_errors_carry_status() {
        let server = daemon();
        let client = DaemonClient::new(server.addr());
        let bogus = DaemonSession {
            client: client.clone(),
            token: "nope".into(),
        };
        match bogus.submit(&ir(5), PatternHint::None) {
            Err(ClientError::Api { status: 401, .. }) => {}
            other => panic!("expected 401, got {other:?}"),
        }
        match bogus.status(12345) {
            Err(ClientError::Api { status: 404, .. }) => {}
            other => panic!("expected 404, got {other:?}"),
        }
    }

    #[test]
    fn transport_error_on_dead_daemon() {
        let client = DaemonClient::new("127.0.0.1:1"); // nothing listens here
        assert!(matches!(client.target(), Err(ClientError::Transport(_))));
    }

    #[test]
    fn keyed_resubmit_returns_original_id() {
        let server = daemon();
        let client = DaemonClient::new(server.addr());
        let session = client.open_session("ada", PriorityClass::Test).unwrap();
        let first = session
            .submit_keyed(&ir(7), PatternHint::None, Some("job-1"))
            .unwrap();
        let second = session
            .submit_keyed(&ir(7), PatternHint::None, Some("job-1"))
            .unwrap();
        assert_eq!(first, second);
        let reliable = session
            .submit_reliable(&ir(7), PatternHint::None, "job-1", 3)
            .unwrap();
        assert_eq!(first, reliable);
        // a fresh key gets a fresh task
        let third = session
            .submit_keyed(&ir(7), PatternHint::None, Some("job-2"))
            .unwrap();
        assert_ne!(first, third);
    }

    /// The satellite regression for the replicated control plane: a keyed
    /// submit issued while its shard drains, dies, and fails over to a
    /// promoted follower must come back `Ok` — and must not enqueue twice.
    /// The old `submit_reliable` failed this two ways: it hot-looped without
    /// sleeping (burning its attempts before promotion finished) and it
    /// treated the drain's 503 as fatal.
    #[test]
    fn submit_reliable_rides_through_drain_and_promotion() {
        use hpcqc_middleware::journal::FollowerReplica;
        use hpcqc_middleware::rest::{serve, serve_on};
        use hpcqc_middleware::{Gateway, GatewayConfig, ShardConfig};
        use std::time::Duration;

        fn repl_dir(name: &str) -> std::path::PathBuf {
            let dir = std::env::temp_dir().join(format!(
                "hpcqc-client-failover-{name}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        }
        let res = Arc::new(LocalEmulatorResource::new(
            "emu",
            Arc::new(SvBackend::default()),
            1,
        ));
        let (dir_a, dir_b) = (repl_dir("a"), repl_dir("b"));
        let svc_a = Arc::new(
            MiddlewareService::recover(&dir_a, res.clone() as _, DaemonConfig::default()).unwrap(),
        );
        svc_a.enable_shipping().unwrap();
        let replica = FollowerReplica::open(&dir_b).unwrap();
        let shipper = svc_a.spawn_shipper(replica, "b", Duration::from_millis(2));
        let server_a = serve(Arc::clone(&svc_a)).unwrap();

        // Reserve the follower's port up front so the gateway can be
        // configured before the follower exists.
        let reserved = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let follower_addr = reserved.local_addr().unwrap().to_string();
        let follower_port = reserved.local_addr().unwrap().port();
        let gw = Arc::new(Gateway::new(GatewayConfig {
            shards: vec![ShardConfig {
                name: "s0".into(),
                primary: server_a.addr().to_string(),
                follower: Some(follower_addr),
            }],
            ..GatewayConfig::default()
        }));
        let gw_server = gw.serve(0).unwrap();

        let client = DaemonClient::new(gw_server.addr());
        let session = client.open_session("ada", PriorityClass::Test).unwrap();
        let id1 = session
            .submit_reliable(&ir(5), PatternHint::None, "job-1", 3)
            .unwrap();
        session.wait(id1, 100).unwrap();

        // Kill the leader: drain (503s), final ship, then the socket dies.
        svc_a.shutdown(Duration::from_millis(100));
        shipper.stop();
        let last_acked = svc_a.last_acked();
        drop(server_a);

        // A second submit starts while the shard has no serving replica; it
        // must retry-with-backoff through the whole failover window.
        let retry_session = DaemonSession {
            client: client.clone(),
            token: session.token.clone(),
        };
        let submitter = std::thread::spawn(move || {
            retry_session.submit_reliable(&ir(9), PatternHint::None, "job-2", 40)
        });
        std::thread::sleep(Duration::from_millis(30)); // let it fail a few times

        // Promote the follower onto the reserved port and repoint traffic.
        drop(reserved);
        let svc_b = Arc::new(
            MiddlewareService::promote(&dir_b, res as _, DaemonConfig::default(), last_acked)
                .unwrap(),
        );
        let _server_b = serve_on(Arc::clone(&svc_b), follower_port).unwrap();
        gw.probe_once();

        let id2 = submitter
            .join()
            .unwrap()
            .expect("submit must survive failover");
        session.wait(id2, 200).unwrap();
        // No duplicate enqueue: both keys dedup to their original ids on the
        // promoted follower, across the failover.
        let again1 = session
            .submit_reliable(&ir(5), PatternHint::None, "job-1", 3)
            .unwrap();
        let again2 = session
            .submit_reliable(&ir(9), PatternHint::None, "job-2", 3)
            .unwrap();
        assert_eq!(again1, id1, "idempotency map survives promotion");
        assert_eq!(again2, id2, "retried submit did not double-enqueue");
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    /// The binary wire codec end to end through the SDK: submit, batch
    /// submit, status and result all ride `application/x-hpcqc-bin`; slot
    /// errors stay per-frame; idempotency keys dedup across batches.
    #[test]
    fn binary_codec_submits_batches_and_reads_results() {
        let server = daemon();
        let client = DaemonClient::new(server.addr()).prefer_binary();
        let session = client.open_session("ada", PriorityClass::Test).unwrap();

        // single submit + wait: binary Submit/TaskId/Status/Result frames
        let result = session.run(&ir(42), PatternHint::QcBalanced).unwrap();
        assert_eq!(result.shots, 42);
        assert!(client.binary_active(), "no 415 — still binary");

        // batch: a bad frame fails its own slot, the rest land
        let bad_ir = {
            let reg = Register::linear(2, 6.0).unwrap();
            let mut b = SequenceBuilder::new(reg);
            b.add_global_pulse(Pulse::constant(0.5, 1e6, 0.0, 0.0).unwrap());
            ProgramIr::new(b.build().unwrap(), 10, "bad")
        };
        let (good_a, good_b) = (ir(7), ir(9));
        let items = [
            BatchItem {
                ir: &good_a,
                hint: PatternHint::None,
                idempotency_key: Some("batch-a"),
            },
            BatchItem {
                ir: &bad_ir,
                hint: PatternHint::None,
                idempotency_key: None,
            },
            BatchItem {
                ir: &good_b,
                hint: PatternHint::QcHeavy,
                idempotency_key: Some("batch-b"),
            },
        ];
        let outcomes = session.submit_batch(&items).unwrap();
        assert_eq!(outcomes.len(), 3);
        let id_a = *outcomes[0].as_ref().unwrap();
        let id_b = *outcomes[2].as_ref().unwrap();
        match &outcomes[1] {
            Err(ClientError::Api { status: 422, .. }) => {}
            other => panic!("bad frame must fail validation in its slot: {other:?}"),
        }
        // keys dedup across batches (and against single submits)
        let replay = session.submit_batch(&items).unwrap();
        assert_eq!(*replay[0].as_ref().unwrap(), id_a);
        assert_eq!(*replay[2].as_ref().unwrap(), id_b);
        assert_eq!(
            session
                .submit_keyed(&good_a, PatternHint::None, Some("batch-a"))
                .unwrap(),
            id_a
        );
        session.wait(id_a, 200).unwrap();
        session.wait(id_b, 200).unwrap();
    }

    /// A daemon that does not speak the binary codec answers 415; the
    /// client falls back to JSON on the same call and stays there.
    #[test]
    fn binary_client_downgrades_to_json_on_415() {
        use hpcqc_middleware::http::{Request, Response};
        use hpcqc_middleware::rest::route;

        let res = Arc::new(LocalEmulatorResource::new(
            "emu",
            Arc::new(SvBackend::default()),
            1,
        ));
        let svc = Arc::new(MiddlewareService::new(res, DaemonConfig::default()));
        // An "old" daemon: refuses the binary content type outright, serves
        // the JSON API otherwise.
        let server = hpcqc_middleware::HttpServer::spawn(Arc::new(move |req: Request| {
            let binary = req
                .headers
                .get("content-type")
                .is_some_and(|ct| ct.contains("x-hpcqc-bin"));
            if binary {
                Response::json(415, r#"{"error":"unsupported media type"}"#)
            } else {
                route(&svc, &req)
            }
        }))
        .unwrap();

        let client = DaemonClient::new(server.addr()).prefer_binary();
        let session = client.open_session("ada", PriorityClass::Test).unwrap();
        // The submit that hits the 415 retries as JSON within the same call.
        let id = session
            .submit_keyed(&ir(5), PatternHint::None, Some("fallback-1"))
            .unwrap();
        assert!(!client.binary_active(), "415 must downgrade the client");
        // Later calls (including batches) go straight to JSON and work.
        let good = ir(5);
        let outcomes = session
            .submit_batch(&[BatchItem {
                ir: &good,
                hint: PatternHint::None,
                idempotency_key: Some("fallback-1"),
            }])
            .unwrap();
        assert_eq!(*outcomes[0].as_ref().unwrap(), id, "JSON batch dedups");
        session.wait(id, 200).unwrap();
    }

    #[test]
    fn healthz_reports_serving() {
        let server = daemon();
        let client = DaemonClient::new(server.addr());
        assert_eq!(client.healthz().unwrap(), "ok");
    }

    /// The client pools its connection: several calls in a row ride one
    /// TCP connection, visible as keep-alive reuse in the daemon's own
    /// transport telemetry.
    #[test]
    fn client_calls_reuse_the_connection() {
        let server = daemon();
        let client = DaemonClient::new(server.addr());
        client.healthz().unwrap();
        client.target().unwrap();
        client.healthz().unwrap();
        // The reuse counter for a request increments after its handler ran,
        // so the exposition below reflects the first three calls.
        let metrics = client.metrics().unwrap();
        let reuse: f64 = metrics
            .lines()
            .find(|l| l.starts_with("http_keepalive_reuse_total"))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0);
        assert!(
            reuse >= 2.0,
            "three calls on one client must reuse the connection: {reuse}"
        );
    }
}
