//! # hpcqc-core — the portable hybrid HPC-QC runtime environment
//!
//! The paper's headline contribution (§3.1-§3.2): one runtime that executes
//! hybrid quantum-classical programs identically on a laptop emulator, an
//! HPC tensor-network emulator, a cloud resource, or the on-prem QPU.
//!
//! * [`Runtime`] — resolves a QRMI resource from configuration, re-validates
//!   programs against the live device spec, executes, and records
//!   reproducibility provenance. The backend is the `--qpu=<resource>` /
//!   `HPCQC_QPU` switch, never source code.
//! * [`RuntimeConfig`] — environment-variable configuration (§3.4) with a
//!   zero-setup development default.
//! * [`RetryPolicy`] — per-priority-class retry budgets with decorrelated
//!   jitter backoff and graceful degradation to a local emulator, so
//!   transient QRMI failures don't kill a workflow.
//! * [`DaemonClient`] / [`DaemonSession`] — the REST session client for
//!   multi-user deployments behind the middleware daemon (§3.3).
//! * [`hybrid`] — parameter sweeps and the generic variational loop.

pub mod client;
pub mod config;
pub mod hybrid;
pub mod retry;
pub mod runtime;
pub mod workflow;

pub use client::{BatchItem, ClientError, DaemonClient, DaemonSession};
pub use config::RuntimeConfig;
pub use hpcqc_emulator::SweepPoint;
pub use hybrid::{iterate, sweep, IterationRecord, LoopResult};
pub use retry::{AttemptBudget, Backoff, RetryPolicy};
pub use runtime::{RecoveredRun, RunReport, Runtime, RuntimeError};
pub use workflow::{Outputs, TraceEntry, Value, Workflow, WorkflowError};
