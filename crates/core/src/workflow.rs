//! A small hybrid workflow engine over the runtime.
//!
//! The paper's future work calls for "workflow engine integrations" on top
//! of the runtime/middleware split (§4). This module provides the runtime
//! side of that integration: a dependency graph of named steps — *quantum*
//! steps producing programs the runtime executes, and *classical* steps
//! computing over upstream outputs — executed in topological order with
//! per-step retry for transient backend failures (exactly the failures
//! [`hpcqc_qrmi::InstrumentedResource`] injects during testing).
//!
//! The engine is deliberately synchronous and deterministic: an external
//! workflow manager (or the batch scheduler) owns parallelism across jobs;
//! within one job, a predictable step order is a feature.

use crate::runtime::{Runtime, RuntimeError};
use hpcqc_emulator::SampleResult;
use hpcqc_program::ProgramIr;
use std::collections::{BTreeMap, BTreeSet};

/// Output of one step.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Measurement samples from a quantum step.
    Samples(SampleResult),
    /// A scalar from a classical step.
    Number(f64),
    /// Free-form text/JSON from a classical step.
    Text(String),
}

impl Value {
    /// The samples, if this value carries them.
    pub fn as_samples(&self) -> Option<&SampleResult> {
        match self {
            Value::Samples(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this value carries one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Completed step outputs, keyed by step name.
#[derive(Debug, Clone, Default)]
pub struct Outputs(BTreeMap<String, Value>);

impl Outputs {
    /// Output of `step`; panics if the step hasn't run (dependencies are
    /// validated before execution, so inside a step closure every declared
    /// dependency is present).
    pub fn get(&self, step: &str) -> &Value {
        self.0.get(step).unwrap_or_else(|| {
            panic!("step {step:?} not executed — is it declared as a dependency?")
        })
    }

    /// Samples of a quantum dependency.
    pub fn samples(&self, step: &str) -> &SampleResult {
        self.get(step)
            .as_samples()
            .unwrap_or_else(|| panic!("step {step:?} did not produce samples"))
    }

    /// Number of a classical dependency.
    pub fn number(&self, step: &str) -> f64 {
        self.get(step)
            .as_number()
            .unwrap_or_else(|| panic!("step {step:?} did not produce a number"))
    }

    /// All outputs, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.0.iter()
    }
}

/// Workflow-level errors.
#[derive(Debug)]
pub enum WorkflowError {
    /// Step name registered twice.
    DuplicateStep(String),
    /// A declared dependency does not exist.
    UnknownDependency { step: String, dependency: String },
    /// The dependency graph has a cycle through this step.
    Cycle(String),
    /// A quantum step kept failing after its retry budget.
    StepFailed {
        step: String,
        attempts: u32,
        source: RuntimeError,
    },
    /// A classical step reported an error.
    Classical { step: String, message: String },
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::DuplicateStep(s) => write!(f, "duplicate step {s:?}"),
            WorkflowError::UnknownDependency { step, dependency } => {
                write!(f, "step {step:?} depends on unknown step {dependency:?}")
            }
            WorkflowError::Cycle(s) => write!(f, "dependency cycle through {s:?}"),
            WorkflowError::StepFailed {
                step,
                attempts,
                source,
            } => {
                write!(
                    f,
                    "step {step:?} failed after {attempts} attempt(s): {source}"
                )
            }
            WorkflowError::Classical { step, message } => {
                write!(f, "classical step {step:?} failed: {message}")
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

type QuantumFn = Box<dyn Fn(&Outputs) -> ProgramIr + Send>;
type ClassicalFn = Box<dyn Fn(&Outputs) -> Result<Value, String> + Send>;

enum StepKind {
    Quantum { build: QuantumFn, max_retries: u32 },
    Classical(ClassicalFn),
}

struct StepDef {
    deps: Vec<String>,
    kind: StepKind,
}

/// A hybrid workflow under construction.
#[derive(Default)]
pub struct Workflow {
    steps: BTreeMap<String, StepDef>,
    order_hint: Vec<String>,
}

/// Execution trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    pub step: String,
    /// 1 for a clean run; >1 when retries were needed.
    pub attempts: u32,
    /// Simulated device seconds (quantum steps; 0 for classical).
    pub device_secs: f64,
}

impl Workflow {
    pub fn new() -> Self {
        Self::default()
    }

    fn add(
        &mut self,
        name: &str,
        deps: &[&str],
        kind: StepKind,
    ) -> Result<&mut Self, WorkflowError> {
        if self.steps.contains_key(name) {
            return Err(WorkflowError::DuplicateStep(name.into()));
        }
        self.steps.insert(
            name.to_string(),
            StepDef {
                deps: deps.iter().map(|s| s.to_string()).collect(),
                kind,
            },
        );
        self.order_hint.push(name.to_string());
        Ok(self)
    }

    /// Add a quantum step: `build` constructs the program from upstream
    /// outputs; the runtime executes it, retrying transient failures up to
    /// `max_retries` extra attempts.
    pub fn quantum(
        &mut self,
        name: &str,
        deps: &[&str],
        max_retries: u32,
        build: impl Fn(&Outputs) -> ProgramIr + Send + 'static,
    ) -> Result<&mut Self, WorkflowError> {
        self.add(
            name,
            deps,
            StepKind::Quantum {
                build: Box::new(build),
                max_retries,
            },
        )
    }

    /// Add a classical step computing a [`Value`] from upstream outputs.
    pub fn classical(
        &mut self,
        name: &str,
        deps: &[&str],
        f: impl Fn(&Outputs) -> Result<Value, String> + Send + 'static,
    ) -> Result<&mut Self, WorkflowError> {
        self.add(name, deps, StepKind::Classical(Box::new(f)))
    }

    /// Topological order (stable: insertion order among ready steps).
    fn toposort(&self) -> Result<Vec<String>, WorkflowError> {
        for (name, def) in &self.steps {
            for d in &def.deps {
                if !self.steps.contains_key(d) {
                    return Err(WorkflowError::UnknownDependency {
                        step: name.clone(),
                        dependency: d.clone(),
                    });
                }
            }
        }
        let mut done: BTreeSet<String> = BTreeSet::new();
        let mut order = Vec::with_capacity(self.steps.len());
        while order.len() < self.steps.len() {
            let mut progressed = false;
            for name in &self.order_hint {
                if done.contains(name) {
                    continue;
                }
                let def = &self.steps[name];
                if def.deps.iter().all(|d| done.contains(d)) {
                    done.insert(name.clone());
                    order.push(name.clone());
                    progressed = true;
                }
            }
            if !progressed {
                let stuck = self
                    .order_hint
                    .iter()
                    .find(|n| !done.contains(*n))
                    .expect("some step is stuck")
                    .clone();
                return Err(WorkflowError::Cycle(stuck));
            }
        }
        Ok(order)
    }

    /// Execute against `runtime`; returns all outputs plus the trace.
    pub fn run(&self, runtime: &Runtime) -> Result<(Outputs, Vec<TraceEntry>), WorkflowError> {
        let order = self.toposort()?;
        let mut outputs = Outputs::default();
        let mut trace = Vec::with_capacity(order.len());
        for name in order {
            let def = &self.steps[&name];
            match &def.kind {
                StepKind::Quantum { build, max_retries } => {
                    let ir = build(&outputs);
                    let mut attempts = 0;
                    let report = loop {
                        attempts += 1;
                        match runtime.run(&ir) {
                            Ok(r) => break r,
                            Err(e @ RuntimeError::Validation(_))
                            | Err(e @ RuntimeError::Config(_)) => {
                                // not transient: retrying cannot help
                                return Err(WorkflowError::StepFailed {
                                    step: name.clone(),
                                    attempts,
                                    source: e,
                                });
                            }
                            Err(e) => {
                                if attempts > *max_retries {
                                    return Err(WorkflowError::StepFailed {
                                        step: name.clone(),
                                        attempts,
                                        source: e,
                                    });
                                }
                            }
                        }
                    };
                    trace.push(TraceEntry {
                        step: name.clone(),
                        attempts,
                        device_secs: report.result.execution_secs,
                    });
                    outputs.0.insert(name, Value::Samples(report.result));
                }
                StepKind::Classical(f) => {
                    let value = f(&outputs).map_err(|message| WorkflowError::Classical {
                        step: name.clone(),
                        message,
                    })?;
                    trace.push(TraceEntry {
                        step: name.clone(),
                        attempts: 1,
                        device_secs: 0.0,
                    });
                    outputs.0.insert(name, value);
                }
            }
        }
        Ok((outputs, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};
    use hpcqc_qrmi::{
        FaultConfig, InstrumentedResource, LocalEmulatorResource, QrmiConfig, ResourceFactory,
        ResourceRegistry, TimingModel,
    };
    use std::sync::Arc;

    fn runtime() -> Runtime {
        let reg = ResourceFactory::new(1)
            .build_registry(&QrmiConfig::development_default())
            .unwrap();
        Runtime::new(reg)
    }

    fn pulse_ir(duration: f64, shots: u32) -> ProgramIr {
        let reg = Register::from_coords(&[(0.0, 0.0)]).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(duration, 4.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "wf-test")
    }

    #[test]
    fn linear_pipeline_runs_in_order() {
        let mut wf = Workflow::new();
        wf.quantum("probe", &[], 0, |_| pulse_ir(0.3, 500)).unwrap();
        wf.classical("estimate", &["probe"], |o| {
            Ok(Value::Number(o.samples("probe").occupation(0)))
        })
        .unwrap();
        wf.quantum("refine", &["estimate"], 0, |o| {
            // use the estimate to pick the next duration (contrived but
            // exercises data flow)
            let p = o.number("estimate");
            pulse_ir(0.3 + 0.1 * p, 500)
        })
        .unwrap();
        let (outputs, trace) = wf.run(&runtime()).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].step, "probe");
        assert_eq!(trace[1].step, "estimate");
        assert_eq!(trace[2].step, "refine");
        assert!(outputs.get("refine").as_samples().is_some());
        assert!((0.0..=1.0).contains(&outputs.number("estimate")));
    }

    #[test]
    fn diamond_dependencies_resolve() {
        let mut wf = Workflow::new();
        wf.quantum("a", &[], 0, |_| pulse_ir(0.2, 100)).unwrap();
        wf.classical("left", &["a"], |o| {
            Ok(Value::Number(o.samples("a").occupation(0)))
        })
        .unwrap();
        wf.classical("right", &["a"], |o| {
            Ok(Value::Number(o.samples("a").mean_excitations()))
        })
        .unwrap();
        wf.classical("join", &["left", "right"], |o| {
            Ok(Value::Number(o.number("left") + o.number("right")))
        })
        .unwrap();
        let (outputs, trace) = wf.run(&runtime()).unwrap();
        assert_eq!(trace.last().unwrap().step, "join");
        assert!(outputs.number("join") > 0.0);
    }

    #[test]
    fn duplicate_and_unknown_deps_rejected() {
        let mut wf = Workflow::new();
        wf.classical("x", &[], |_| Ok(Value::Number(1.0))).unwrap();
        assert!(matches!(
            wf.classical("x", &[], |_| Ok(Value::Number(2.0))),
            Err(WorkflowError::DuplicateStep(_))
        ));
        wf.classical("y", &["ghost"], |_| Ok(Value::Number(0.0)))
            .unwrap();
        assert!(matches!(
            wf.run(&runtime()),
            Err(WorkflowError::UnknownDependency { .. })
        ));
    }

    #[test]
    fn cycles_detected() {
        let mut wf = Workflow::new();
        wf.classical("a", &["b"], |_| Ok(Value::Number(0.0)))
            .unwrap();
        wf.classical("b", &["a"], |_| Ok(Value::Number(0.0)))
            .unwrap();
        assert!(matches!(wf.run(&runtime()), Err(WorkflowError::Cycle(_))));
    }

    #[test]
    fn classical_failure_propagates_with_step_name() {
        let mut wf = Workflow::new();
        wf.classical("boom", &[], |_| Err("kaput".into())).unwrap();
        match wf.run(&runtime()) {
            Err(WorkflowError::Classical { step, message }) => {
                assert_eq!(step, "boom");
                assert_eq!(message, "kaput");
            }
            other => panic!("expected classical failure, got {other:?}"),
        }
    }

    #[test]
    fn quantum_retries_recover_from_injected_faults() {
        // an instrumented resource that fails ~50% of task starts: with 5
        // retries the step almost surely succeeds; with 0 it likely fails.
        let flaky = || -> Runtime {
            let inner = Arc::new(LocalEmulatorResource::new(
                "emu",
                Arc::new(hpcqc_emulator::SvBackend::default()),
                1,
            ));
            let instrumented = Arc::new(InstrumentedResource::new(
                inner,
                TimingModel::production_1hz(),
                FaultConfig {
                    task_failure_prob: 0.5,
                    acquire_denial_prob: 0.0,
                },
                42,
            ));
            let mut reg = ResourceRegistry::new();
            reg.register(instrumented);
            reg.default_resource = Some("emu".into());
            Runtime::new(reg)
        };
        let mut wf = Workflow::new();
        wf.quantum("q", &[], 16, |_| pulse_ir(0.2, 10)).unwrap();
        let (outputs, trace) = wf.run(&flaky()).unwrap();
        assert!(outputs.get("q").as_samples().is_some());
        assert!(trace[0].attempts >= 1);
        // simulated timing flowed through: 3s overhead + 10 shots at 1 Hz
        assert!((trace[0].device_secs - 13.0).abs() < 1e-9);
    }

    #[test]
    fn validation_failures_are_not_retried() {
        let rt = {
            let reg = ResourceFactory::new(1)
                .build_registry(&QrmiConfig::development_default())
                .unwrap();
            Runtime::new(reg).with_qpu("mock") // enforces production limits
        };
        let mut wf = Workflow::new();
        wf.quantum("bad", &[], 10, |_| {
            // 2 µm spacing violates the mock's production envelope
            let reg = Register::linear(2, 2.0).unwrap();
            let mut b = SequenceBuilder::new(reg);
            b.add_global_pulse(Pulse::constant(0.2, 4.0, 0.0, 0.0).unwrap());
            ProgramIr::new(b.build().unwrap(), 10, "wf-test")
        })
        .unwrap();
        match wf.run(&rt) {
            Err(WorkflowError::StepFailed { step, attempts, .. }) => {
                assert_eq!(step, "bad");
                assert_eq!(attempts, 1, "no retry for deterministic failures");
            }
            other => panic!("expected StepFailed, got {other:?}"),
        }
    }
}
