//! Golden-frames wire-compat gate.
//!
//! `golden_frames.bin` holds one frame of every kind, encoded by the codec
//! at the wire-format freeze (version 1) and committed. CI decodes the
//! fixture and re-encodes it: any codec change that silently breaks
//! compatibility with already-shipped bytes fails here — the fixture is the
//! contract, not the code.
//!
//! To regenerate after an *intentional* format bump (which must also bump
//! `WIRE_VERSION` and DESIGN.md §17):
//! `cargo test -p hpcqc-wire --test golden -- --ignored regen_golden_frames`

use hpcqc_emulator::SampleResult;
use hpcqc_program::register::Site;
use hpcqc_program::{ProgramIr, Pulse, Register, Sequence, TimedPulse, Waveform};
use hpcqc_wire::*;
use std::collections::BTreeMap;

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_frames.bin")
}

/// The canonical payloads frozen into the fixture. Every field is pinned
/// explicitly (no `CARGO_PKG_VERSION` etc.) so the fixture never drifts
/// with the build.
fn golden_ir() -> ProgramIr {
    let register = Register::new(vec![
        Site {
            label: "q0".into(),
            x: 0.0,
            y: 0.0,
        },
        Site {
            label: "q1".into(),
            x: 6.0,
            y: 0.0,
        },
        Site {
            label: "q2".into(),
            x: 3.0,
            y: -0.0,
        }, // negative zero survives
    ])
    .unwrap();
    let sequence = Sequence {
        register,
        pulses: vec![
            TimedPulse {
                channel: "rydberg_global".into(),
                start: 0.0,
                pulse: Pulse {
                    amplitude: Waveform::Constant {
                        duration: 1.0,
                        value: 5.0,
                    },
                    detuning: Waveform::Ramp {
                        duration: 1.0,
                        start: -2.5,
                        stop: 2.5,
                    },
                    phase: 0.25,
                },
            },
            TimedPulse {
                channel: "rydberg_global".into(),
                start: 1.0,
                pulse: Pulse {
                    amplitude: Waveform::Composite {
                        parts: vec![
                            Waveform::Blackman {
                                duration: 0.25,
                                area: std::f64::consts::FRAC_PI_2,
                            },
                            Waveform::Interpolated {
                                duration: 0.25,
                                values: vec![0.0, 4.0, 0.0],
                            },
                        ],
                    },
                    detuning: Waveform::Constant {
                        duration: 0.5,
                        value: 0.0,
                    },
                    phase: 0.0,
                },
            },
        ],
        measurement_basis: "ground-rydberg".into(),
    };
    ProgramIr {
        version: 1,
        sequence,
        shots: 500,
        sdk: "golden-sdk".into(),
        sdk_version: "1.2.3".into(),
        validated_against_revision: Some(7),
        classical_secs_estimate: Some(12.5),
    }
}

fn golden_frames() -> Vec<Vec<u8>> {
    let ir = golden_ir();
    let submit = SubmitFrame {
        token: "sess-golden".into(),
        hint: Some("iterative".into()),
        idempotency_key: Some("idem-golden-1".into()),
        ir: ir.clone(),
    };
    let batch = vec![
        submit.clone(),
        SubmitFrame {
            token: "sess-golden".into(),
            hint: None,
            idempotency_key: None,
            ir: ir.clone(),
        },
    ];
    let result = SampleResult {
        n_qubits: 3,
        shots: 500,
        counts: BTreeMap::from([(0, 200), (5, 250), (7, 50)]),
        backend: "statevector".into(),
        truncation_error: 0.0,
        execution_secs: 0.125,
    };
    vec![
        encode_program_ir(&ir),
        encode_submit(&submit),
        encode_submit_batch(&batch),
        encode_task_id(42),
        encode_batch_reply(&[
            BatchSlot::Ok { task_id: 42 },
            BatchSlot::Err {
                status: 422,
                message: "validation failed".into(),
            },
        ]),
        encode_status(&WireStatus::Queued { position: 3 }),
        encode_result(&result),
        encode_error(503, "daemon draining"),
    ]
}

/// Split a concatenation of frames using only the header length fields.
fn split_frames(mut buf: &[u8]) -> Vec<&[u8]> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        assert!(buf.len() >= HEADER_LEN, "fixture ends mid-header");
        let len = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
        let total = HEADER_LEN + len + TRAILER_LEN;
        out.push(&buf[..total]);
        buf = &buf[total..];
    }
    out
}

#[test]
fn golden_frames_decode_and_reencode_byte_identically() {
    let bytes =
        std::fs::read(fixture_path()).expect("golden_frames.bin is committed next to this test");
    let frames = split_frames(&bytes);
    let expected = golden_frames();
    assert_eq!(
        frames.len(),
        expected.len(),
        "fixture frame count changed — wire break?"
    );
    for (i, (frame, exp)) in frames.iter().zip(&expected).enumerate() {
        assert_eq!(
            frame,
            &exp.as_slice(),
            "frame {i}: current encoder no longer reproduces the frozen bytes"
        );
    }
    // decode side: the frozen bytes must decode to the pinned values
    assert_eq!(decode_program_ir(frames[0]).unwrap(), golden_ir());
    let submit = decode_submit(frames[1]).unwrap();
    assert_eq!(submit.token, "sess-golden");
    assert_eq!(submit.idempotency_key.as_deref(), Some("idem-golden-1"));
    assert_eq!(submit.ir, golden_ir());
    assert_eq!(decode_submit_batch(frames[2]).unwrap().len(), 2);
    assert_eq!(decode_task_id(frames[3]).unwrap(), 42);
    let slots = decode_batch_reply(frames[4]).unwrap();
    assert_eq!(slots[0], BatchSlot::Ok { task_id: 42 });
    assert!(matches!(&slots[1], BatchSlot::Err { status: 422, .. }));
    assert_eq!(
        decode_status(frames[5]).unwrap(),
        WireStatus::Queued { position: 3 }
    );
    assert_eq!(decode_result(frames[6]).unwrap().counts.len(), 3);
    let e = decode_error(frames[7]).unwrap();
    assert_eq!((e.status, e.message.as_str()), (503, "daemon draining"));
    // the -0.0 site coordinate survived the frozen bytes bit-exactly
    let back = decode_program_ir(frames[0]).unwrap();
    assert_eq!(
        back.sequence.register.sites()[2].y.to_bits(),
        (-0.0f64).to_bits()
    );
}

#[test]
#[ignore = "regenerates the fixture; run only on an intentional wire-format bump"]
fn regen_golden_frames() {
    let bytes: Vec<u8> = golden_frames().concat();
    std::fs::write(fixture_path(), &bytes).unwrap();
    eprintln!("wrote {} bytes to {:?}", bytes.len(), fixture_path());
}
