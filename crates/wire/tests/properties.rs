//! Property suite for the binary wire codec (ISSUE 10 acceptance gate):
//! bit-identical `ProgramIr` round-trips (checked against the JSON path),
//! and typed — never panicking — rejection of malformed, truncated, and
//! corrupted frames.

use hpcqc_program::{ProgramIr, Pulse, Register, SequenceBuilder, Waveform};
use hpcqc_wire::{
    decode_program_ir, decode_submit, decode_submit_batch, encode_program_ir, encode_submit,
    encode_submit_batch, open_frame, SubmitFrame,
};
use proptest::prelude::*;

fn arb_leaf_waveform() -> impl Strategy<Value = Waveform> {
    let duration = 0.01f64..5.0;
    let value = -40.0f64..40.0;
    prop_oneof![
        (duration.clone(), value.clone()).prop_map(|(d, v)| Waveform::constant(d, v).unwrap()),
        (duration.clone(), value.clone(), value.clone())
            .prop_map(|(d, a, b)| Waveform::ramp(d, a, b).unwrap()),
        (duration.clone(), -20.0f64..20.0).prop_map(|(d, a)| Waveform::blackman(d, a).unwrap()),
        (duration, proptest::collection::vec(value, 2..8))
            .prop_map(|(d, vs)| Waveform::interpolated(d, vs).unwrap()),
    ]
}

fn arb_waveform() -> impl Strategy<Value = Waveform> {
    // one nesting level of Composite exercises the recursive codec paths
    prop_oneof![
        arb_leaf_waveform(),
        proptest::collection::vec(arb_leaf_waveform(), 1..4)
            .prop_map(|parts| Waveform::composite(parts).unwrap()),
    ]
}

fn arb_ir() -> impl Strategy<Value = ProgramIr> {
    (
        1usize..6,
        1.0f64..20.0,
        proptest::collection::vec((arb_waveform(), -3.0f64..3.0), 1..5),
        1u32..2000,
        0u8..3,
        proptest::collection::vec(0.0f64..100.0, 0..2),
    )
        .prop_map(|(n, spacing, pulses, shots, rev_tag, classical)| {
            let reg = Register::linear(n, spacing).unwrap();
            let mut b = SequenceBuilder::new(reg);
            for (w, phase) in pulses {
                let d = w.duration();
                let det = Waveform::constant(d, 0.5).unwrap();
                b.add_global_pulse(Pulse::new(w, det, phase).unwrap());
            }
            let mut ir = ProgramIr::new(b.build().unwrap(), shots, "prop-sdk");
            if rev_tag == 1 {
                ir = ir.with_validation_revision(7);
            }
            if let Some(secs) = classical.first() {
                ir = ir.with_classical_estimate(*secs);
            }
            ir
        })
}

/// Structural equality with every f64 compared by raw bits — stricter than
/// `PartialEq` (distinguishes -0.0 from 0.0, equates NaN with itself).
fn bits_eq_wave(a: &Waveform, b: &Waveform) -> bool {
    match (a, b) {
        (
            Waveform::Constant {
                duration: d1,
                value: v1,
            },
            Waveform::Constant {
                duration: d2,
                value: v2,
            },
        ) => d1.to_bits() == d2.to_bits() && v1.to_bits() == v2.to_bits(),
        (
            Waveform::Ramp {
                duration: d1,
                start: s1,
                stop: e1,
            },
            Waveform::Ramp {
                duration: d2,
                start: s2,
                stop: e2,
            },
        ) => {
            d1.to_bits() == d2.to_bits()
                && s1.to_bits() == s2.to_bits()
                && e1.to_bits() == e2.to_bits()
        }
        (
            Waveform::Blackman {
                duration: d1,
                area: a1,
            },
            Waveform::Blackman {
                duration: d2,
                area: a2,
            },
        ) => d1.to_bits() == d2.to_bits() && a1.to_bits() == a2.to_bits(),
        (
            Waveform::Interpolated {
                duration: d1,
                values: v1,
            },
            Waveform::Interpolated {
                duration: d2,
                values: v2,
            },
        ) => {
            d1.to_bits() == d2.to_bits()
                && v1.len() == v2.len()
                && v1.iter().zip(v2).all(|(x, y)| x.to_bits() == y.to_bits())
        }
        (Waveform::Composite { parts: p1 }, Waveform::Composite { parts: p2 }) => {
            p1.len() == p2.len() && p1.iter().zip(p2).all(|(x, y)| bits_eq_wave(x, y))
        }
        _ => false,
    }
}

fn bits_eq_ir(a: &ProgramIr, b: &ProgramIr) -> bool {
    a.version == b.version
        && a.shots == b.shots
        && a.sdk == b.sdk
        && a.sdk_version == b.sdk_version
        && a.validated_against_revision == b.validated_against_revision
        && a.classical_secs_estimate.map(f64::to_bits)
            == b.classical_secs_estimate.map(f64::to_bits)
        && a.sequence.measurement_basis == b.sequence.measurement_basis
        && a.sequence.register.sites().len() == b.sequence.register.sites().len()
        && a.sequence
            .register
            .sites()
            .iter()
            .zip(b.sequence.register.sites())
            .all(|(s, t)| {
                s.label == t.label
                    && s.x.to_bits() == t.x.to_bits()
                    && s.y.to_bits() == t.y.to_bits()
            })
        && a.sequence.pulses.len() == b.sequence.pulses.len()
        && a.sequence
            .pulses
            .iter()
            .zip(&b.sequence.pulses)
            .all(|(p, q)| {
                p.channel == q.channel
                    && p.start.to_bits() == q.start.to_bits()
                    && p.pulse.phase.to_bits() == q.pulse.phase.to_bits()
                    && bits_eq_wave(&p.pulse.amplitude, &q.pulse.amplitude)
                    && bits_eq_wave(&p.pulse.detuning, &q.pulse.detuning)
            })
}

/// SplitMix64 — deterministic corruption source independent of proptest's
/// internals.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn binary_roundtrip_is_bit_identical(ir in arb_ir()) {
        let bytes = encode_program_ir(&ir);
        let back = decode_program_ir(&bytes).unwrap();
        prop_assert!(bits_eq_ir(&ir, &back), "binary round-trip changed bits");
        // canonical encoder: re-encoding the decode is byte-identical
        prop_assert_eq!(bytes, encode_program_ir(&back));
    }

    #[test]
    fn binary_and_json_paths_agree(ir in arb_ir()) {
        let via_bin = decode_program_ir(&encode_program_ir(&ir)).unwrap();
        let via_json = ProgramIr::from_json(&ir.to_json().unwrap()).unwrap();
        // the JSON path promises value equality (PartialEq), the binary path
        // additionally promises bit identity — so binary ⊇ JSON fidelity
        prop_assert_eq!(&via_json, &ir);
        prop_assert!(bits_eq_ir(&via_bin, &ir));
        prop_assert_eq!(via_bin.fingerprint(), ir.fingerprint());
    }

    #[test]
    fn submit_and_batch_roundtrip(ir in arb_ir(), n in 1usize..6) {
        let frames: Vec<SubmitFrame> = (0..n).map(|i| SubmitFrame {
            token: format!("sess-{i}"),
            hint: (i % 2 == 0).then(|| "iterative".to_string()),
            idempotency_key: (i % 3 == 0).then(|| format!("idem-{i}")),
            ir: ir.clone(),
        }).collect();
        let one = encode_submit(&frames[0]);
        prop_assert_eq!(&decode_submit(&one).unwrap(), &frames[0]);
        let batch = encode_submit_batch(&frames);
        prop_assert_eq!(decode_submit_batch(&batch).unwrap(), frames);
    }

    #[test]
    fn truncation_never_panics(ir in arb_ir(), frac in 0.0f64..1.0) {
        let bytes = encode_program_ir(&ir);
        let cut = ((bytes.len() as f64) * frac) as usize;
        // typed error out, no panic — cut strictly inside the frame
        if cut < bytes.len() {
            prop_assert!(decode_program_ir(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn corruption_never_panics_and_is_never_silently_accepted(ir in arb_ir(), seed in 0u64..u64::MAX) {
        let bytes = encode_program_ir(&ir);
        let mut s = seed;
        let mut corrupted = bytes.clone();
        let idx = (splitmix(&mut s) as usize) % corrupted.len();
        let bit = (splitmix(&mut s) % 8) as u8;
        corrupted[idx] ^= 1 << bit;
        // payload flips are caught by the checksum, header flips by the
        // structural checks; a flip may never yield a *different* IR
        if let Ok(back) = decode_program_ir(&corrupted) {
            prop_assert!(bits_eq_ir(&ir, &back));
        }
    }

    #[test]
    fn random_bytes_never_panic(seed in 0u64..u64::MAX, len in 0usize..512) {
        let mut s = seed;
        let soup: Vec<u8> = (0..len).map(|_| splitmix(&mut s) as u8).collect();
        let _ = open_frame(&soup);
        let _ = decode_program_ir(&soup);
        let _ = decode_submit(&soup);
        let _ = decode_submit_batch(&soup);
        // and byte soups wearing a valid header over a garbage payload
        let mut framed = Vec::with_capacity(soup.len() + 12);
        framed.extend_from_slice(b"HQ\x01\x02");
        framed.extend_from_slice(&(soup.len() as u32).to_le_bytes());
        framed.extend_from_slice(&soup);
        framed.extend_from_slice(&hpcqc_wire::checksum(&soup).to_le_bytes());
        let _ = decode_submit(&framed);
    }
}
