//! Binary wire codec for the HPC-QC ingest path.
//!
//! The REST front end's default body encoding is JSON — self-describing,
//! debuggable, and ~4 µs of the ~20 µs per-request budget on the 1-core
//! runner (EXPERIMENTS.md RP). This crate provides the negotiated
//! alternative: a compact length-prefixed binary framing for the payloads
//! that actually ride the hot path — `ProgramIr`, task submission (single
//! and batched), status polls, and sampled results — selected per-request
//! via `Content-Type: application/x-hpcqc-bin`.
//!
//! Design rules (DESIGN.md §17 is the normative spec):
//!
//! - **Framing**: every frame is `magic "HQ" + version byte + kind byte +
//!   u32-LE payload length + payload + u32-LE FNV-1a checksum` of the
//!   payload. The length is validated against a hard cap *before* any
//!   allocation, so truncated, oversized, or hostile frames are rejected
//!   with a typed [`WireError`] — decode never panics and never
//!   over-allocates.
//! - **Bit identity**: all `f64`s travel as raw IEEE-754 bits
//!   (`to_bits`/`from_bits`, little-endian), so a round-trip reproduces the
//!   input bit-for-bit — including negative zero and NaN payloads — which
//!   JSON's decimal formatting cannot guarantee in general.
//! - **Allocation-light**: decoding walks the input slice with a cursor and
//!   allocates only the owned `String`s/`Vec`s of the target structs; there
//!   is no intermediate document tree.
//! - **Versioning**: one wire-version byte in the header; readers reject
//!   other versions. The `ProgramIr` payload additionally carries its own
//!   `ir.version` (checked against [`hpcqc_program::IR_VERSION`]) so the
//!   wire framing and the IR schema can evolve independently.

use hpcqc_emulator::SampleResult;
use hpcqc_program::register::Site;
use hpcqc_program::{ProgramIr, Pulse, Register, Sequence, TimedPulse, Waveform, IR_VERSION};
use std::collections::BTreeMap;
use std::fmt;

/// Wire protocol version this build reads and writes.
pub const WIRE_VERSION: u8 = 1;

/// Two-byte frame magic, chosen to be invalid as leading JSON.
pub const MAGIC: [u8; 2] = [b'H', b'Q'];

/// Content type negotiating the binary codec on the REST surface.
pub const CONTENT_TYPE_BIN: &str = "application/x-hpcqc-bin";

/// Frame header: magic (2) + version (1) + kind (1) + payload length (4).
pub const HEADER_LEN: usize = 8;

/// Frame trailer: FNV-1a-32 checksum of the payload bytes.
pub const TRAILER_LEN: usize = 4;

/// Default cap on a frame's payload length — matches the HTTP server's
/// 1 MiB body cap so a frame that fits the wire always fits the decoder.
pub const MAX_PAYLOAD_BYTES: usize = 1 << 20;

/// Cap on submit frames inside one batch; a batch is one queue-lock hold
/// and one journal append, so the cap bounds both.
pub const MAX_BATCH_FRAMES: usize = 1024;

/// Cap on nested `Waveform::Composite` depth (decode is recursive).
const MAX_WAVEFORM_DEPTH: usize = 32;

/// Cap on decoded collection lengths (sites, pulses, samples, counts):
/// anything larger could not have fit in `MAX_PAYLOAD_BYTES` anyway, but
/// checking the count first keeps a hostile length from pre-allocating.
const MAX_ITEMS: usize = 1 << 20;

/// Frame kinds. The kind byte routes a frame to its payload decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// A bare `ProgramIr` (used by tooling and the property suite).
    ProgramIr = 1,
    /// One task submission: token + hint + idempotency key + IR.
    Submit = 2,
    /// N submissions flowing as one unit (`POST /v1/tasks:batch`).
    SubmitBatch = 3,
    /// Response to `Submit`: the accepted task id.
    TaskId = 4,
    /// Response to `SubmitBatch`: one slot per submitted frame, in order.
    BatchReply = 5,
    /// Response to a status poll.
    Status = 6,
    /// Response to a result fetch.
    Result = 7,
    /// A typed error travelling in a binary response body.
    Error = 8,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            1 => FrameKind::ProgramIr,
            2 => FrameKind::Submit,
            3 => FrameKind::SubmitBatch,
            4 => FrameKind::TaskId,
            5 => FrameKind::BatchReply,
            6 => FrameKind::Status,
            7 => FrameKind::Result,
            8 => FrameKind::Error,
            _ => return None,
        })
    }
}

/// Typed decode/encode failures. Decoding hostile bytes must land here —
/// never in a panic and never in an unbounded allocation.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Input does not start with the frame magic.
    BadMagic,
    /// Wire version byte is not one this build reads.
    UnsupportedVersion(u8),
    /// Unknown frame-kind byte.
    UnknownKind(u8),
    /// The frame announces a different kind than the caller expected.
    WrongKind {
        expected: FrameKind,
        found: FrameKind,
    },
    /// Input ends before the announced payload + trailer.
    Truncated,
    /// Announced payload length exceeds the decoder's cap.
    Oversized { len: usize, cap: usize },
    /// Payload checksum does not match the trailer.
    ChecksumMismatch,
    /// Bytes remain after a complete frame.
    TrailingBytes(usize),
    /// A length-prefixed string is not valid UTF-8.
    BadUtf8,
    /// An enum tag byte is out of range for the named type.
    BadTag(&'static str, u8),
    /// A collection announces more items than the cap allows.
    TooManyItems {
        what: &'static str,
        len: usize,
        cap: usize,
    },
    /// Composite waveforms nested beyond the recursion cap.
    DepthExceeded,
    /// Payload decoded structurally but violates a domain invariant
    /// (e.g. an empty register) or carries an unsupported IR version.
    Invalid(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "frame does not start with 'HQ' magic"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (supported: {WIRE_VERSION})"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::WrongKind { expected, found } => {
                write!(f, "expected {expected:?} frame, found {found:?}")
            }
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversized { len, cap } => {
                write!(f, "frame payload {len} bytes exceeds cap {cap}")
            }
            WireError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadTag(what, b) => write!(f, "invalid tag {b} for {what}"),
            WireError::TooManyItems { what, len, cap } => {
                write!(f, "{what} count {len} exceeds cap {cap}")
            }
            WireError::DepthExceeded => {
                write!(
                    f,
                    "composite waveform nested deeper than {MAX_WAVEFORM_DEPTH}"
                )
            }
            WireError::Invalid(m) => write!(f, "invalid payload: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a 32-bit over the payload. Cheap, endian-free, and plenty to catch
/// truncation/corruption — the transport (TCP) already guards bit rot; the
/// checksum guards framing bugs and mid-body disconnects.
pub fn checksum(payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in payload {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

// ---------------------------------------------------------------------------
// payload structs
// ---------------------------------------------------------------------------

/// One task submission as it crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitFrame {
    pub token: String,
    pub hint: Option<String>,
    pub idempotency_key: Option<String>,
    pub ir: ProgramIr,
}

/// One slot of a batch reply: the task id, or why this frame was refused.
/// Slot order matches submission order.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchSlot {
    Ok { task_id: u64 },
    Err { status: u16, message: String },
}

/// Task status as it crosses the wire (mirrors the daemon's status enum;
/// the middleware converts — `hpcqc-wire` stays below the daemon in the
/// dependency graph).
#[derive(Debug, Clone, PartialEq)]
pub enum WireStatus {
    Queued { position: usize },
    Running,
    Completed,
    Failed(String),
    Cancelled,
}

/// A typed error body for binary responses (status echoes the HTTP code).
#[derive(Debug, Clone, PartialEq)]
pub struct WireErrorBody {
    pub status: u16,
    pub message: String,
}

// ---------------------------------------------------------------------------
// encoder
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn with_capacity(cap: usize) -> Enc {
        Enc {
            buf: Vec::with_capacity(cap),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_str(&mut self, s: Option<&str>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }

    fn waveform(&mut self, w: &Waveform) {
        match w {
            Waveform::Constant { duration, value } => {
                self.u8(0);
                self.f64(*duration);
                self.f64(*value);
            }
            Waveform::Ramp {
                duration,
                start,
                stop,
            } => {
                self.u8(1);
                self.f64(*duration);
                self.f64(*start);
                self.f64(*stop);
            }
            Waveform::Blackman { duration, area } => {
                self.u8(2);
                self.f64(*duration);
                self.f64(*area);
            }
            Waveform::Interpolated { duration, values } => {
                self.u8(3);
                self.f64(*duration);
                self.u32(values.len() as u32);
                for v in values {
                    self.f64(*v);
                }
            }
            Waveform::Composite { parts } => {
                self.u8(4);
                self.u32(parts.len() as u32);
                for p in parts {
                    self.waveform(p);
                }
            }
        }
    }

    fn pulse(&mut self, p: &Pulse) {
        self.waveform(&p.amplitude);
        self.waveform(&p.detuning);
        self.f64(p.phase);
    }

    fn program_ir(&mut self, ir: &ProgramIr) {
        self.u32(ir.version);
        let sites = ir.sequence.register.sites();
        self.u32(sites.len() as u32);
        for s in sites {
            self.str(&s.label);
            self.f64(s.x);
            self.f64(s.y);
        }
        self.u32(ir.sequence.pulses.len() as u32);
        for tp in &ir.sequence.pulses {
            self.str(&tp.channel);
            self.f64(tp.start);
            self.pulse(&tp.pulse);
        }
        self.str(&ir.sequence.measurement_basis);
        self.u32(ir.shots);
        self.str(&ir.sdk);
        self.str(&ir.sdk_version);
        match ir.validated_against_revision {
            None => self.u8(0),
            Some(rev) => {
                self.u8(1);
                self.u64(rev);
            }
        }
        match ir.classical_secs_estimate {
            None => self.u8(0),
            Some(secs) => {
                self.u8(1);
                self.f64(secs);
            }
        }
    }

    fn submit(&mut self, f: &SubmitFrame) {
        self.str(&f.token);
        self.opt_str(f.hint.as_deref());
        self.opt_str(f.idempotency_key.as_deref());
        self.program_ir(&f.ir);
    }
}

fn frame(kind: FrameKind, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let ck = checksum(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&ck.to_le_bytes());
    out
}

/// Encode a bare `ProgramIr` frame.
pub fn encode_program_ir(ir: &ProgramIr) -> Vec<u8> {
    let mut e = Enc::with_capacity(256);
    e.program_ir(ir);
    frame(FrameKind::ProgramIr, e.buf)
}

/// Encode a single-submit frame.
pub fn encode_submit(f: &SubmitFrame) -> Vec<u8> {
    let mut e = Enc::with_capacity(320);
    e.submit(f);
    frame(FrameKind::Submit, e.buf)
}

/// Encode a batch of submit frames as one body.
pub fn encode_submit_batch(frames: &[SubmitFrame]) -> Vec<u8> {
    let mut e = Enc::with_capacity(64 + 320 * frames.len());
    e.u32(frames.len() as u32);
    for f in frames {
        e.submit(f);
    }
    frame(FrameKind::SubmitBatch, e.buf)
}

/// Encode a single task-id reply.
pub fn encode_task_id(id: u64) -> Vec<u8> {
    let mut e = Enc::with_capacity(8);
    e.u64(id);
    frame(FrameKind::TaskId, e.buf)
}

/// Encode a batch reply (one slot per submitted frame, in order).
pub fn encode_batch_reply(slots: &[BatchSlot]) -> Vec<u8> {
    let mut e = Enc::with_capacity(8 + 16 * slots.len());
    e.u32(slots.len() as u32);
    for s in slots {
        match s {
            BatchSlot::Ok { task_id } => {
                e.u8(0);
                e.u64(*task_id);
            }
            BatchSlot::Err { status, message } => {
                e.u8(1);
                e.u16(*status);
                e.str(message);
            }
        }
    }
    frame(FrameKind::BatchReply, e.buf)
}

/// Encode a status reply.
pub fn encode_status(s: &WireStatus) -> Vec<u8> {
    let mut e = Enc::with_capacity(16);
    match s {
        WireStatus::Queued { position } => {
            e.u8(0);
            e.u64(*position as u64);
        }
        WireStatus::Running => e.u8(1),
        WireStatus::Completed => e.u8(2),
        WireStatus::Failed(m) => {
            e.u8(3);
            e.str(m);
        }
        WireStatus::Cancelled => e.u8(4),
    }
    frame(FrameKind::Status, e.buf)
}

/// Encode a sampled-result reply.
pub fn encode_result(r: &SampleResult) -> Vec<u8> {
    let mut e = Enc::with_capacity(64 + 12 * r.counts.len());
    e.u64(r.n_qubits as u64);
    e.u32(r.shots);
    e.u32(r.counts.len() as u32);
    for (&bits, &n) in &r.counts {
        e.u64(bits);
        e.u32(n);
    }
    e.str(&r.backend);
    e.f64(r.truncation_error);
    e.f64(r.execution_secs);
    frame(FrameKind::Result, e.buf)
}

/// Encode a typed error body.
pub fn encode_error(status: u16, message: &str) -> Vec<u8> {
    let mut e = Enc::with_capacity(8 + message.len());
    e.u16(status);
    e.str(message);
    frame(FrameKind::Error, e.buf)
}

// ---------------------------------------------------------------------------
// decoder
// ---------------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }

    /// Item count with a sanity cap: never lets a hostile length drive a
    /// pre-allocation bigger than the input could possibly describe.
    fn count(&mut self, what: &'static str) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > MAX_ITEMS {
            return Err(WireError::TooManyItems {
                what,
                len: n,
                cap: MAX_ITEMS,
            });
        }
        // each item is at least one byte; reject counts the remaining input
        // cannot hold before allocating for them
        if n > self.buf.len() - self.pos {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(WireError::Truncated);
        }
        let raw = self.take(n)?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| WireError::BadUtf8)
    }

    fn opt_str(&mut self) -> Result<Option<String>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            b => Err(WireError::BadTag("option", b)),
        }
    }

    fn waveform(&mut self, depth: usize) -> Result<Waveform, WireError> {
        if depth > MAX_WAVEFORM_DEPTH {
            return Err(WireError::DepthExceeded);
        }
        match self.u8()? {
            0 => Ok(Waveform::Constant {
                duration: self.f64()?,
                value: self.f64()?,
            }),
            1 => Ok(Waveform::Ramp {
                duration: self.f64()?,
                start: self.f64()?,
                stop: self.f64()?,
            }),
            2 => Ok(Waveform::Blackman {
                duration: self.f64()?,
                area: self.f64()?,
            }),
            3 => {
                let duration = self.f64()?;
                let n = self.count("interpolation points")?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(self.f64()?);
                }
                Ok(Waveform::Interpolated { duration, values })
            }
            4 => {
                let n = self.count("composite parts")?;
                let mut parts = Vec::with_capacity(n);
                for _ in 0..n {
                    parts.push(self.waveform(depth + 1)?);
                }
                Ok(Waveform::Composite { parts })
            }
            b => Err(WireError::BadTag("waveform", b)),
        }
    }

    fn pulse(&mut self) -> Result<Pulse, WireError> {
        Ok(Pulse {
            amplitude: self.waveform(0)?,
            detuning: self.waveform(0)?,
            phase: self.f64()?,
        })
    }

    fn program_ir(&mut self) -> Result<ProgramIr, WireError> {
        let version = self.u32()?;
        if version != IR_VERSION {
            return Err(WireError::Invalid(format!(
                "unsupported IR version {version} (supported: {IR_VERSION})"
            )));
        }
        let n_sites = self.count("register sites")?;
        let mut sites = Vec::with_capacity(n_sites);
        for _ in 0..n_sites {
            sites.push(Site {
                label: self.str()?,
                x: self.f64()?,
                y: self.f64()?,
            });
        }
        let register = Register::new(sites).map_err(|e| WireError::Invalid(e.to_string()))?;
        let n_pulses = self.count("pulses")?;
        let mut pulses = Vec::with_capacity(n_pulses);
        for _ in 0..n_pulses {
            pulses.push(TimedPulse {
                channel: self.str()?,
                start: self.f64()?,
                pulse: self.pulse()?,
            });
        }
        let measurement_basis = self.str()?;
        let shots = self.u32()?;
        let sdk = self.str()?;
        let sdk_version = self.str()?;
        let validated_against_revision = match self.u8()? {
            0 => None,
            1 => Some(self.u64()?),
            b => return Err(WireError::BadTag("option", b)),
        };
        let classical_secs_estimate = match self.u8()? {
            0 => None,
            1 => Some(self.f64()?),
            b => return Err(WireError::BadTag("option", b)),
        };
        Ok(ProgramIr {
            version,
            sequence: Sequence {
                register,
                pulses,
                measurement_basis,
            },
            shots,
            sdk,
            sdk_version,
            validated_against_revision,
            classical_secs_estimate,
        })
    }

    fn submit(&mut self) -> Result<SubmitFrame, WireError> {
        Ok(SubmitFrame {
            token: self.str()?,
            hint: self.opt_str()?,
            idempotency_key: self.opt_str()?,
            ir: self.program_ir()?,
        })
    }
}

/// Validate framing and return `(kind, payload)` without copying. Enforces
/// magic, version, the payload cap, exact length, and the checksum.
pub fn open_frame(input: &[u8]) -> Result<(FrameKind, &[u8]), WireError> {
    open_frame_with_cap(input, MAX_PAYLOAD_BYTES)
}

/// [`open_frame`] with an explicit payload cap (the REST layer passes its
/// own body limit so the two caps cannot drift apart).
pub fn open_frame_with_cap(input: &[u8], cap: usize) -> Result<(FrameKind, &[u8]), WireError> {
    if input.len() < HEADER_LEN {
        // an empty/short body with the right magic prefix is truncation,
        // anything else never was a frame
        return if input.starts_with(&MAGIC) || MAGIC.starts_with(input) {
            Err(WireError::Truncated)
        } else {
            Err(WireError::BadMagic)
        };
    }
    if input[..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if input[2] != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(input[2]));
    }
    let kind = FrameKind::from_u8(input[3]).ok_or(WireError::UnknownKind(input[3]))?;
    let len = u32::from_le_bytes(input[4..8].try_into().unwrap()) as usize;
    if len > cap {
        return Err(WireError::Oversized { len, cap });
    }
    let total = HEADER_LEN + len + TRAILER_LEN;
    if input.len() < total {
        return Err(WireError::Truncated);
    }
    if input.len() > total {
        return Err(WireError::TrailingBytes(input.len() - total));
    }
    let payload = &input[HEADER_LEN..HEADER_LEN + len];
    let stored = u32::from_le_bytes(input[total - TRAILER_LEN..total].try_into().unwrap());
    if checksum(payload) != stored {
        return Err(WireError::ChecksumMismatch);
    }
    Ok((kind, payload))
}

fn expect_kind(input: &[u8], expected: FrameKind) -> Result<Dec<'_>, WireError> {
    let (kind, payload) = open_frame(input)?;
    if kind != expected {
        return Err(WireError::WrongKind {
            expected,
            found: kind,
        });
    }
    Ok(Dec {
        buf: payload,
        pos: 0,
    })
}

fn finish<T>(d: Dec<'_>, v: T) -> Result<T, WireError> {
    if d.pos != d.buf.len() {
        return Err(WireError::TrailingBytes(d.buf.len() - d.pos));
    }
    Ok(v)
}

/// Decode a bare `ProgramIr` frame.
pub fn decode_program_ir(input: &[u8]) -> Result<ProgramIr, WireError> {
    let mut d = expect_kind(input, FrameKind::ProgramIr)?;
    let ir = d.program_ir()?;
    finish(d, ir)
}

/// Decode a single-submit frame.
pub fn decode_submit(input: &[u8]) -> Result<SubmitFrame, WireError> {
    let mut d = expect_kind(input, FrameKind::Submit)?;
    let f = d.submit()?;
    finish(d, f)
}

/// Decode a batch body into its submit frames (submission order preserved).
pub fn decode_submit_batch(input: &[u8]) -> Result<Vec<SubmitFrame>, WireError> {
    let mut d = expect_kind(input, FrameKind::SubmitBatch)?;
    let n = d.count("batch frames")?;
    if n > MAX_BATCH_FRAMES {
        return Err(WireError::TooManyItems {
            what: "batch frames",
            len: n,
            cap: MAX_BATCH_FRAMES,
        });
    }
    let mut frames = Vec::with_capacity(n);
    for _ in 0..n {
        frames.push(d.submit()?);
    }
    finish(d, frames)
}

/// Decode a task-id reply.
pub fn decode_task_id(input: &[u8]) -> Result<u64, WireError> {
    let mut d = expect_kind(input, FrameKind::TaskId)?;
    let id = d.u64()?;
    finish(d, id)
}

/// Decode a batch reply.
pub fn decode_batch_reply(input: &[u8]) -> Result<Vec<BatchSlot>, WireError> {
    let mut d = expect_kind(input, FrameKind::BatchReply)?;
    let n = d.count("batch reply slots")?;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        slots.push(match d.u8()? {
            0 => BatchSlot::Ok { task_id: d.u64()? },
            1 => BatchSlot::Err {
                status: d.u16()?,
                message: d.str()?,
            },
            b => return Err(WireError::BadTag("batch slot", b)),
        });
    }
    finish(d, slots)
}

/// Decode a status reply.
pub fn decode_status(input: &[u8]) -> Result<WireStatus, WireError> {
    let mut d = expect_kind(input, FrameKind::Status)?;
    let s = match d.u8()? {
        0 => WireStatus::Queued {
            position: d.u64()? as usize,
        },
        1 => WireStatus::Running,
        2 => WireStatus::Completed,
        3 => WireStatus::Failed(d.str()?),
        4 => WireStatus::Cancelled,
        b => return Err(WireError::BadTag("status", b)),
    };
    finish(d, s)
}

/// Decode a sampled-result reply.
pub fn decode_result(input: &[u8]) -> Result<SampleResult, WireError> {
    let mut d = expect_kind(input, FrameKind::Result)?;
    let n_qubits = d.u64()? as usize;
    let shots = d.u32()?;
    let n = d.count("counts entries")?;
    let mut counts = BTreeMap::new();
    for _ in 0..n {
        let bits = d.u64()?;
        let c = d.u32()?;
        counts.insert(bits, c);
    }
    let backend = d.str()?;
    let truncation_error = d.f64()?;
    let execution_secs = d.f64()?;
    finish(
        d,
        SampleResult {
            n_qubits,
            shots,
            counts,
            backend,
            truncation_error,
            execution_secs,
        },
    )
}

/// Decode a typed error body.
pub fn decode_error(input: &[u8]) -> Result<WireErrorBody, WireError> {
    let mut d = expect_kind(input, FrameKind::Error)?;
    let body = WireErrorBody {
        status: d.u16()?,
        message: d.str()?,
    };
    finish(d, body)
}

/// Peek the frame kind without decoding the payload (used by response
/// dispatch: a 2xx body may be `TaskId`/`Status`/..., an error body is
/// `Error`).
pub fn peek_kind(input: &[u8]) -> Result<FrameKind, WireError> {
    if input.len() < 4 {
        return Err(WireError::Truncated);
    }
    if input[..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if input[2] != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(input[2]));
    }
    FrameKind::from_u8(input[3]).ok_or(WireError::UnknownKind(input[3]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::SequenceBuilder;

    fn ir() -> ProgramIr {
        let reg = Register::linear(3, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(1.0, 5.0, -2.0, 0.25).unwrap());
        b.add_global_pulse(
            Pulse::new(
                Waveform::blackman(0.5, std::f64::consts::PI).unwrap(),
                Waveform::ramp(0.5, -5.0, 5.0).unwrap(),
                0.0,
            )
            .unwrap(),
        );
        ProgramIr::new(b.build().unwrap(), 500, "analog-sdk").with_validation_revision(7)
    }

    #[test]
    fn program_ir_roundtrip() {
        let p = ir();
        let bytes = encode_program_ir(&p);
        let back = decode_program_ir(&bytes).unwrap();
        assert_eq!(p, back);
        // and the re-encoding is byte-identical (canonical encoder)
        assert_eq!(bytes, encode_program_ir(&back));
    }

    #[test]
    fn submit_roundtrip_preserves_idempotency_key() {
        let f = SubmitFrame {
            token: "sess-1".into(),
            hint: Some("iterative".into()),
            idempotency_key: Some("idem-42".into()),
            ir: ir(),
        };
        let bytes = encode_submit(&f);
        assert_eq!(decode_submit(&bytes).unwrap(), f);
    }

    #[test]
    fn batch_roundtrip_preserves_order() {
        let frames: Vec<SubmitFrame> = (0..5)
            .map(|i| SubmitFrame {
                token: format!("sess-{i}"),
                hint: None,
                idempotency_key: (i % 2 == 0).then(|| format!("k{i}")),
                ir: ir(),
            })
            .collect();
        let bytes = encode_submit_batch(&frames);
        assert_eq!(decode_submit_batch(&bytes).unwrap(), frames);
    }

    #[test]
    fn reply_frames_roundtrip() {
        assert_eq!(decode_task_id(&encode_task_id(99)).unwrap(), 99);
        let slots = vec![
            BatchSlot::Ok { task_id: 1 },
            BatchSlot::Err {
                status: 422,
                message: "validation failed".into(),
            },
        ];
        assert_eq!(
            decode_batch_reply(&encode_batch_reply(&slots)).unwrap(),
            slots
        );
        for s in [
            WireStatus::Queued { position: 3 },
            WireStatus::Running,
            WireStatus::Completed,
            WireStatus::Failed("boom".into()),
            WireStatus::Cancelled,
        ] {
            assert_eq!(decode_status(&encode_status(&s)).unwrap(), s);
        }
        let r = SampleResult::from_shots(2, &[0, 1, 1, 3], "sv");
        assert_eq!(decode_result(&encode_result(&r)).unwrap(), r);
        let e = decode_error(&encode_error(503, "draining")).unwrap();
        assert_eq!((e.status, e.message.as_str()), (503, "draining"));
    }

    #[test]
    fn f64_bit_identity_including_negative_zero_and_nan() {
        let mut p = ir();
        p.classical_secs_estimate = Some(-0.0);
        let back = decode_program_ir(&encode_program_ir(&p)).unwrap();
        assert_eq!(
            back.classical_secs_estimate.unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        // a NaN phase is not constructible through the validated API but the
        // codec must still not corrupt it (fields are pub)
        p.sequence.pulses[0].pulse.phase = f64::from_bits(0x7ff8_dead_beef_0001);
        let back = decode_program_ir(&encode_program_ir(&p)).unwrap();
        assert_eq!(
            back.sequence.pulses[0].pulse.phase.to_bits(),
            0x7ff8_dead_beef_0001
        );
    }

    #[test]
    fn malformed_inputs_return_typed_errors() {
        assert_eq!(decode_program_ir(b""), Err(WireError::Truncated));
        assert_eq!(decode_program_ir(b"{\"json\":1}"), Err(WireError::BadMagic));
        assert_eq!(decode_program_ir(b"HQ"), Err(WireError::Truncated));
        assert_eq!(
            decode_program_ir(b"HQ\x02\x01\x00\x00\x00\x00"),
            Err(WireError::UnsupportedVersion(2))
        );
        assert_eq!(
            decode_program_ir(b"HQ\x01\xff\x00\x00\x00\x00"),
            Err(WireError::UnknownKind(0xff))
        );
        // announced length larger than the cap
        let mut huge = Vec::from(*b"HQ\x01\x01");
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            decode_program_ir(&huge),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn truncation_at_every_boundary_is_typed_never_panics() {
        let bytes = encode_submit(&SubmitFrame {
            token: "t".into(),
            hint: None,
            idempotency_key: Some("k".into()),
            ir: ir(),
        });
        for cut in 0..bytes.len() {
            let err = decode_submit(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::BadMagic),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn corruption_is_caught_by_the_checksum() {
        let bytes = encode_task_id(7);
        for i in HEADER_LEN..bytes.len() - TRAILER_LEN {
            for bit in 0..8 {
                let mut b = bytes.clone();
                b[i] ^= 1 << bit;
                assert!(
                    decode_task_id(&b).is_err(),
                    "payload corruption at byte {i} bit {bit} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_task_id(7);
        bytes.push(0);
        assert_eq!(decode_task_id(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn wrong_kind_rejected() {
        let bytes = encode_task_id(7);
        assert_eq!(
            decode_status(&bytes),
            Err(WireError::WrongKind {
                expected: FrameKind::Status,
                found: FrameKind::TaskId,
            })
        );
    }

    #[test]
    fn batch_cap_enforced() {
        // a count field over the cap must be rejected before allocation
        let mut e = Enc::with_capacity(8);
        e.u32((MAX_BATCH_FRAMES + 1) as u32);
        // pad so the count passes the bytes-remaining plausibility check
        e.buf.resize(e.buf.len() + MAX_BATCH_FRAMES + 2, 0);
        let bytes = frame(FrameKind::SubmitBatch, e.buf);
        assert!(matches!(
            decode_submit_batch(&bytes),
            Err(WireError::TooManyItems {
                what: "batch frames",
                ..
            })
        ));
    }

    #[test]
    fn hostile_collection_count_rejected_before_allocation() {
        // interpolated waveform announcing 2^20+ points in a tiny payload
        let mut e = Enc::with_capacity(32);
        e.u32(IR_VERSION); // ir version
        e.u32(1); // one site
        e.str("q0");
        e.f64(0.0);
        e.f64(0.0);
        e.u32(1); // one pulse
        e.str("ch");
        e.f64(0.0);
        e.u8(3); // Interpolated
        e.f64(1.0);
        e.u32(u32::MAX); // hostile count
        let bytes = frame(FrameKind::ProgramIr, e.buf);
        assert!(matches!(
            decode_program_ir(&bytes),
            Err(WireError::TooManyItems { .. } | WireError::Truncated)
        ));
    }

    #[test]
    fn deep_composite_nesting_rejected() {
        let mut e = Enc::with_capacity(256);
        e.u32(IR_VERSION);
        e.u32(1);
        e.str("q0");
        e.f64(0.0);
        e.f64(0.0);
        e.u32(1);
        e.str("ch");
        e.f64(0.0);
        for _ in 0..(MAX_WAVEFORM_DEPTH + 2) {
            e.u8(4); // Composite
            e.u32(1); // one part
        }
        e.u8(0); // innermost Constant
        e.f64(1.0);
        e.f64(1.0);
        let bytes = frame(FrameKind::ProgramIr, e.buf);
        assert_eq!(decode_program_ir(&bytes), Err(WireError::DepthExceeded));
    }

    #[test]
    fn invalid_register_rejected_with_domain_error() {
        // structurally valid frame, empty register: Register::new refuses
        let mut e = Enc::with_capacity(32);
        e.u32(IR_VERSION);
        e.u32(0); // zero sites
        let bytes = frame(FrameKind::ProgramIr, e.buf);
        assert!(matches!(
            decode_program_ir(&bytes),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn ir_version_gate_matches_json_path() {
        let mut p = ir();
        p.version = 42;
        let bytes = encode_program_ir(&p);
        assert!(matches!(
            decode_program_ir(&bytes),
            Err(WireError::Invalid(m)) if m.contains("42")
        ));
    }

    #[test]
    fn binary_body_is_smaller_than_json() {
        let p = ir();
        let json = serde_json::to_string(&p).unwrap();
        let bin = encode_program_ir(&p);
        assert!(
            bin.len() < json.len(),
            "binary {} >= json {}",
            bin.len(),
            json.len()
        );
    }
}
