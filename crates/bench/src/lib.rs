//! Shared utilities for the experiment harnesses.
//!
//! Each paper artifact (Table 1, Figure 1, Figure 2, the §2.5/§3.6
//! observability claims) has a binary in `src/bin/` that regenerates it and
//! prints the rows EXPERIMENTS.md records. These helpers keep the binaries
//! small: seeded statistics, fixed-width table rendering and a `--quick`
//! flag for smoke runs.

/// Mean and sample standard deviation.
pub fn mean_sd(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Nearest-rank percentile: `p` in [0, 1] over an ascending-sorted slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// `mean±sd` with fixed precision.
pub fn fmt_pm(xs: &[f64], precision: usize) -> String {
    let (m, s) = mean_sd(xs);
    format!("{m:.precision$}±{s:.precision$}")
}

/// Render a fixed-width table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Harness CLI: `--quick` shrinks the experiment for smoke testing;
/// `--seeds N` overrides the seed count.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    pub quick: bool,
    pub seeds: usize,
    /// Extra flags (experiment-specific).
    pub flags: Vec<String>,
}

impl HarnessArgs {
    /// Parse from an iterator of arguments (without the binary name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> HarnessArgs {
        let mut quick = false;
        let mut seeds = None;
        let mut flags = Vec::new();
        let mut iter = args.into_iter();
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--seeds" => {
                    seeds = iter.next().and_then(|v| v.parse().ok());
                }
                other => flags.push(other.to_string()),
            }
        }
        HarnessArgs {
            quick,
            seeds: seeds.unwrap_or(if quick { 2 } else { 5 }),
            flags,
        }
    }

    /// Parse from the process arguments.
    pub fn from_env() -> HarnessArgs {
        Self::parse(std::env::args().skip(1))
    }

    /// Scale a count down in quick mode.
    pub fn scaled(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_sd_basics() {
        let (m, s) = mean_sd(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.138089935).abs() < 1e-6, "sample sd, got {s}");
        assert_eq!(mean_sd(&[]), (0.0, 0.0));
        assert_eq!(mean_sd(&[3.0]), (3.0, 0.0));
    }

    #[test]
    fn fmt_pm_renders() {
        assert_eq!(fmt_pm(&[1.0, 1.0], 2), "1.00±0.00");
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["policy", "util"],
            &[
                vec!["fifo".into(), "0.42".into()],
                vec!["pattern-aware".into(), "0.91".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("policy"));
        assert!(lines[2].starts_with("fifo"));
        assert!(lines[3].starts_with("pattern-aware"));
        let col = lines[0].find("util").unwrap();
        assert_eq!(&lines[2][col..col + 4], "0.42");
    }

    #[test]
    fn args_parse() {
        let a = HarnessArgs::parse(["--quick".to_string(), "--gres".to_string()]);
        assert!(a.quick);
        assert_eq!(a.seeds, 2);
        assert_eq!(a.flags, vec!["--gres".to_string()]);
        let b = HarnessArgs::parse(["--seeds".to_string(), "9".to_string()]);
        assert!(!b.quick);
        assert_eq!(b.seeds, 9);
        assert_eq!(b.scaled(100, 5), 100);
        assert_eq!(a.scaled(100, 5), 5);
    }
}
