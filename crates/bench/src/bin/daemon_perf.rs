//! Experiment DP — daemon control-plane throughput.
//!
//! Drives N concurrent sessions submitting M tasks each through a journaled
//! `MiddlewareService` wired to a stub QRMI resource that completes every
//! task instantly. With device time out of the picture, the wall clock
//! measures only the control plane: submission (journal append under group
//! commit), queue maintenance, dispatch, and completion bookkeeping.
//!
//! The headline number is end-to-end tasks/sec at 64 sessions × 1000 tasks
//! with journaling on, recorded next to the pre-PR baseline (commit 0455682,
//! Vec-scan queue + one fsync per journal record, same adapted harness, same
//! machine class) and the resulting speedup. Per-submit latency percentiles
//! catch regressions that throughput alone would hide (e.g. a submitter
//! stalled behind the dispatcher on a coarse lock).
//!
//! Run: `cargo run --release -p hpcqc-bench --bin daemon_perf [--quick]
//!       [--out PATH]`
//!
//! `--quick` shrinks the fleet for the CI smoke job; the harness exits
//! non-zero if any measurement comes back non-finite or non-positive.

use hpcqc_bench::{render_table, HarnessArgs};
use hpcqc_emulator::{Emulator, SampleResult, SvBackend};
use hpcqc_middleware::{DaemonConfig, JournalConfig, MiddlewareService, PriorityClass};
use hpcqc_program::{DeviceSpec, ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc_qrmi::{AcquisitionToken, QrmiError, QuantumResource, ResourceType, TaskId};
use hpcqc_scheduler::PatternHint;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Pre-PR reference for the headline case, measured with the same harness
/// (adapted to the pre-batching API: `pump_once` dispatcher, per-record
/// fsync) at commit 0455682: 64 sessions × 1000 tasks, journaling on,
/// validation and analysis off.
const PRE_PR_TASKS_PER_SEC: f64 = 217.43;
const PRE_PR_SUBMIT_P50_US: f64 = 14250.6;
const PRE_PR_SUBMIT_P99_US: f64 = 47137.1;

/// A QRMI resource that completes every task instantly and statelessly: the
/// task id carries the shot count, status is always `Completed`, and the
/// result is deterministic. Zero device time, zero contention — every cycle
/// the benchmark observes belongs to the daemon.
struct InstantResource {
    spec: DeviceSpec,
}

impl QuantumResource for InstantResource {
    fn resource_id(&self) -> &str {
        "instant-qpu"
    }

    fn resource_type(&self) -> ResourceType {
        ResourceType::QpuDirect
    }

    fn acquire(&self) -> Result<AcquisitionToken, QrmiError> {
        Ok(AcquisitionToken("instant-lease".into()))
    }

    fn release(&self, _token: &AcquisitionToken) -> Result<(), QrmiError> {
        Ok(())
    }

    fn target(&self) -> Result<DeviceSpec, QrmiError> {
        Ok(self.spec.clone())
    }

    fn task_start(&self, _token: &AcquisitionToken, ir: &ProgramIr) -> Result<TaskId, QrmiError> {
        Ok(TaskId(format!("instant:{}", ir.shots)))
    }

    fn task_status(&self, _task: &TaskId) -> Result<hpcqc_qrmi::TaskStatus, QrmiError> {
        Ok(hpcqc_qrmi::TaskStatus::Completed)
    }

    fn task_stop(&self, _task: &TaskId) -> Result<(), QrmiError> {
        Ok(())
    }

    fn task_result(&self, task: &TaskId) -> Result<SampleResult, QrmiError> {
        let shots: usize = task
            .0
            .strip_prefix("instant:")
            .and_then(|s| s.parse().ok())
            .ok_or(QrmiError::UnknownTask)?;
        Ok(SampleResult::from_shots(2, &vec![0u64; shots], "instant"))
    }

    fn metadata(&self) -> BTreeMap<String, String> {
        BTreeMap::from([("vendor".into(), "bench".into())])
    }
}

#[derive(Debug, Serialize)]
struct CaseResult {
    sessions: usize,
    tasks_per_session: usize,
    total_tasks: usize,
    /// First submit → last task completed, seconds.
    wall_secs: f64,
    /// `total_tasks / wall_secs`: end-to-end submit→dispatch→complete rate.
    tasks_per_sec: f64,
    submit_p50_us: f64,
    submit_p90_us: f64,
    submit_p99_us: f64,
    submit_max_us: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: String,
    commit_note: String,
    quick: bool,
    unix_time_secs: u64,
    cases: Vec<CaseResult>,
    baseline_pre_pr: Baseline,
    /// Measured tasks/sec of the headline 64×1000 case over the pre-PR
    /// baseline; `null` in quick mode, where that case is skipped.
    speedup_vs_pre_pr: Option<f64>,
}

#[derive(Debug, Serialize)]
struct Baseline {
    commit: String,
    tasks_per_sec: f64,
    submit_p50_us: f64,
    submit_p99_us: f64,
}

fn bench_program(shots: u32) -> ProgramIr {
    let reg = Register::linear(2, 6.0).expect("valid register");
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).expect("valid pulse"));
    ProgramIr::new(b.build().expect("valid sequence"), shots, "bench")
}

/// `p` in [0, 1] over an ascending-sorted slice (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn run_case(sessions: usize, per_session: usize) -> CaseResult {
    let dir = std::env::temp_dir().join(format!(
        "hpcqc-daemon-perf-{}-{sessions}x{per_session}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create journal dir");

    // The control plane is the subject: no validation/analysis per submit,
    // journaling ON with a production-style group-commit window.
    let cfg = DaemonConfig {
        validate_on_submit: false,
        analyze_on_submit: false,
        journal: JournalConfig {
            fsync_every: 64,
            group_max_records: 64,
            compact_every: 0,
            ..JournalConfig::default()
        },
        ..DaemonConfig::default()
    };

    let resource = Arc::new(InstantResource {
        spec: SvBackend::default().spec(),
    });
    let svc = Arc::new(MiddlewareService::recover(&dir, resource, cfg).expect("daemon recovers"));

    let tokens: Vec<String> = (0..sessions)
        .map(|u| {
            svc.open_session(&format!("user-{u}"), PriorityClass::Production)
                .expect("session opens")
        })
        .collect();

    let total = sessions * per_session;
    let ir = bench_program(8);
    let done_submitting = Arc::new(AtomicBool::new(false));
    let executed = Arc::new(AtomicUsize::new(0));

    let t0 = Instant::now();

    // One dispatcher racing the submitters, as in the deployed daemon.
    let dispatcher = {
        let svc = Arc::clone(&svc);
        let done = Arc::clone(&done_submitting);
        let executed = Arc::clone(&executed);
        std::thread::spawn(move || loop {
            let n = svc.pump_batch(16);
            executed.fetch_add(n, Ordering::Relaxed);
            if n == 0 {
                if done.load(Ordering::Acquire) && svc.queue_depth() == 0 {
                    break;
                }
                std::thread::yield_now();
            }
        })
    };

    let submitters: Vec<_> = tokens
        .into_iter()
        .map(|tok| {
            let svc = Arc::clone(&svc);
            let ir = ir.clone();
            std::thread::spawn(move || {
                let mut lat_us = Vec::with_capacity(per_session);
                for _ in 0..per_session {
                    let program = ir.clone();
                    let t = Instant::now();
                    svc.submit(&tok, program, PatternHint::None)
                        .expect("submit succeeds");
                    lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                }
                lat_us
            })
        })
        .collect();

    let mut lat_us: Vec<f64> = Vec::with_capacity(total);
    for h in submitters {
        lat_us.extend(h.join().expect("submitter thread"));
    }
    done_submitting.store(true, Ordering::Release);
    dispatcher.join().expect("dispatcher thread");
    let wall_secs = t0.elapsed().as_secs_f64();

    assert_eq!(
        executed.load(Ordering::Relaxed),
        total,
        "every submitted task must be dispatched exactly once"
    );
    svc.sync_journal();
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);

    lat_us.sort_by(f64::total_cmp);
    CaseResult {
        sessions,
        tasks_per_session: per_session,
        total_tasks: total,
        wall_secs,
        tasks_per_sec: total as f64 / wall_secs,
        submit_p50_us: percentile(&lat_us, 0.50),
        submit_p90_us: percentile(&lat_us, 0.90),
        submit_p99_us: percentile(&lat_us, 0.99),
        submit_max_us: lat_us.last().copied().unwrap_or(f64::NAN),
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    let out_path = args
        .flags
        .iter()
        .position(|f| f == "--out")
        .and_then(|i| args.flags.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_daemon.json".to_string());

    let fleet: &[(usize, usize)] = if args.quick {
        &[(8, 50)]
    } else {
        &[(8, 125), (64, 1000)]
    };

    let mut cases = Vec::new();
    for &(sessions, per_session) in fleet {
        eprintln!("driving {sessions} sessions x {per_session} tasks ...");
        cases.push(run_case(sessions, per_session));
    }

    // Gate: every measurement must be finite and positive.
    for c in &cases {
        for (label, v) in [
            ("wall_secs", c.wall_secs),
            ("tasks_per_sec", c.tasks_per_sec),
            ("submit_p50_us", c.submit_p50_us),
            ("submit_p90_us", c.submit_p90_us),
            ("submit_p99_us", c.submit_p99_us),
            ("submit_max_us", c.submit_max_us),
        ] {
            if !v.is_finite() || v <= 0.0 {
                eprintln!(
                    "non-finite or non-positive measurement: {}x{} {label}={v}",
                    c.sessions, c.tasks_per_session
                );
                std::process::exit(1);
            }
        }
    }

    let speedup = cases
        .iter()
        .find(|c| c.sessions == 64 && c.tasks_per_session == 1000)
        .map(|c| c.tasks_per_sec / PRE_PR_TASKS_PER_SEC);

    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                format!("{}x{}", c.sessions, c.tasks_per_session),
                format!("{:.2}", c.wall_secs),
                format!("{:.0}", c.tasks_per_sec),
                format!("{:.1}", c.submit_p50_us),
                format!("{:.1}", c.submit_p90_us),
                format!("{:.1}", c.submit_p99_us),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["fleet", "wall(s)", "tasks/s", "p50(us)", "p90(us)", "p99(us)"],
            &rows
        )
    );
    if let Some(s) = speedup {
        println!("64x1000 tasks/sec vs pre-PR baseline {PRE_PR_TASKS_PER_SEC:.0}: {s:.2}x");
    }

    let report = BenchReport {
        benchmark: "daemon_perf".into(),
        commit_note: "lock audit fixes: deferred submit-path group commits, memoized fair-share \
                      penalties, compaction policy piggybacked on the append outcome"
            .into(),
        quick: args.quick,
        unix_time_secs: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        cases,
        baseline_pre_pr: Baseline {
            commit: "0455682".into(),
            tasks_per_sec: PRE_PR_TASKS_PER_SEC,
            submit_p50_us: PRE_PR_SUBMIT_P50_US,
            submit_p99_us: PRE_PR_SUBMIT_P99_US,
        },
        speedup_vs_pre_pr: speedup,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
