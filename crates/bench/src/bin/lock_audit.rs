//! Experiment LK — the per-lock hold-time/contention audit.
//!
//! Drives the same submit-heavy fleet as `daemon_perf` (concurrent
//! submitters racing one dispatcher over a journaled daemon on an instant
//! resource), then dumps every tracked lock's acquisition count, contention
//! ratio, and wait/hold-time quantiles from the always-on `hpcqc_sync`
//! histograms. This is the tool that localizes a tail-latency problem to a
//! specific lock *and* a specific critical section (long holds vs many
//! waiters), instead of guessing from end-to-end percentiles.
//!
//! Run: `cargo run --release -p hpcqc-bench --bin lock_audit [--quick]`

use hpcqc_bench::{render_table, HarnessArgs};
use hpcqc_emulator::{Emulator, SampleResult, SvBackend};
use hpcqc_middleware::{DaemonConfig, JournalConfig, MiddlewareService, PriorityClass};
use hpcqc_program::{DeviceSpec, ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc_qrmi::{AcquisitionToken, QrmiError, QuantumResource, ResourceType, TaskId};
use hpcqc_scheduler::PatternHint;
use hpcqc_sync::{all_lock_stats, histogram_quantile_ns};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct InstantResource {
    spec: DeviceSpec,
}

impl QuantumResource for InstantResource {
    fn resource_id(&self) -> &str {
        "instant-qpu"
    }
    fn resource_type(&self) -> ResourceType {
        ResourceType::QpuDirect
    }
    fn acquire(&self) -> Result<AcquisitionToken, QrmiError> {
        Ok(AcquisitionToken("instant-lease".into()))
    }
    fn release(&self, _token: &AcquisitionToken) -> Result<(), QrmiError> {
        Ok(())
    }
    fn target(&self) -> Result<DeviceSpec, QrmiError> {
        Ok(self.spec.clone())
    }
    fn task_start(&self, _token: &AcquisitionToken, ir: &ProgramIr) -> Result<TaskId, QrmiError> {
        Ok(TaskId(format!("instant:{}", ir.shots)))
    }
    fn task_status(&self, _task: &TaskId) -> Result<hpcqc_qrmi::TaskStatus, QrmiError> {
        Ok(hpcqc_qrmi::TaskStatus::Completed)
    }
    fn task_stop(&self, _task: &TaskId) -> Result<(), QrmiError> {
        Ok(())
    }
    fn task_result(&self, task: &TaskId) -> Result<SampleResult, QrmiError> {
        let shots: usize = task
            .0
            .strip_prefix("instant:")
            .and_then(|s| s.parse().ok())
            .ok_or(QrmiError::UnknownTask)?;
        Ok(SampleResult::from_shots(2, &vec![0u64; shots], "instant"))
    }
    fn metadata(&self) -> BTreeMap<String, String> {
        BTreeMap::from([("vendor".into(), "bench".into())])
    }
}

fn bench_program(shots: u32) -> ProgramIr {
    let reg = Register::linear(2, 6.0).expect("valid register");
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).expect("valid pulse"));
    ProgramIr::new(b.build().expect("valid sequence"), shots, "bench")
}

fn main() {
    let args = HarnessArgs::from_env();
    let (sessions, per_session) = if args.quick { (8, 50) } else { (64, 500) };

    let dir = std::env::temp_dir().join(format!("hpcqc-lock-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create journal dir");

    let cfg = DaemonConfig {
        validate_on_submit: false,
        analyze_on_submit: false,
        journal: JournalConfig {
            fsync_every: 64,
            group_max_records: 64,
            compact_every: 0,
            ..JournalConfig::default()
        },
        ..DaemonConfig::default()
    };
    let resource = Arc::new(InstantResource {
        spec: SvBackend::default().spec(),
    });
    let svc = Arc::new(MiddlewareService::recover(&dir, resource, cfg).expect("daemon recovers"));

    let done = Arc::new(AtomicBool::new(false));
    let dispatcher = {
        let (svc, done) = (Arc::clone(&svc), Arc::clone(&done));
        std::thread::spawn(move || loop {
            if svc.pump_batch(16) == 0 {
                if done.load(Ordering::Acquire) && svc.queue_depth() == 0 {
                    break;
                }
                std::thread::yield_now();
            }
        })
    };
    let submitters: Vec<_> = (0..sessions)
        .map(|u| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let tok = svc
                    .open_session(&format!("user-{u}"), PriorityClass::Production)
                    .expect("session opens");
                let ir = bench_program(8);
                for _ in 0..per_session {
                    svc.submit(&tok, ir.clone(), PatternHint::None)
                        .expect("submit succeeds");
                }
            })
        })
        .collect();
    for h in submitters {
        h.join().expect("submitter");
    }
    done.store(true, Ordering::Release);
    dispatcher.join().expect("dispatcher");
    svc.sync_journal();
    let _ = std::fs::remove_dir_all(&dir);

    // Aggregate per lock name and rank by where waiters actually burn time.
    struct Agg {
        acq: u64,
        cont: u64,
        wait: [u64; hpcqc_sync::BUCKETS],
        hold: [u64; hpcqc_sync::BUCKETS],
    }
    let mut by_name: BTreeMap<&'static str, Agg> = BTreeMap::new();
    for s in all_lock_stats() {
        let a = by_name.entry(s.name).or_insert(Agg {
            acq: 0,
            cont: 0,
            wait: [0; hpcqc_sync::BUCKETS],
            hold: [0; hpcqc_sync::BUCKETS],
        });
        a.acq += s.acquisitions();
        a.cont += s.contended();
        let (w, h) = (s.wait_histogram(), s.hold_histogram());
        for i in 0..hpcqc_sync::BUCKETS {
            a.wait[i] += w[i];
            a.hold[i] += h[i];
        }
    }
    let mut rows: Vec<(&str, Agg)> = by_name.into_iter().collect();
    rows.sort_by(|a, b| {
        let pa = histogram_quantile_ns(&a.1.wait, 0.99) * a.1.cont as f64;
        let pb = histogram_quantile_ns(&b.1.wait, 0.99) * b.1.cont as f64;
        pb.total_cmp(&pa)
    });

    println!("== lock audit: {sessions} sessions x {per_session} tasks, journaled daemon ==\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .filter(|(_, a)| a.acq > 0)
        .map(|(name, a)| {
            vec![
                name.to_string(),
                a.acq.to_string(),
                format!("{:.2}%", 100.0 * a.cont as f64 / a.acq as f64),
                format!("{:.1}", histogram_quantile_ns(&a.wait, 0.99) / 1_000.0),
                format!("{:.1}", histogram_quantile_ns(&a.hold, 0.50) / 1_000.0),
                format!("{:.1}", histogram_quantile_ns(&a.hold, 0.99) / 1_000.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "lock",
                "acquires",
                "contended",
                "wait p99(us)",
                "hold p50(us)",
                "hold p99(us)",
            ],
            &table
        )
    );
}
