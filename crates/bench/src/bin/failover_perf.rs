//! Experiment FP — replication overhead and failover time.
//!
//! Two questions about the replicated control plane:
//!
//! 1. **What does shipping cost?** The daemon_perf fleet (8 sessions, stub
//!    QRMI, journaling on) runs twice in one process — once bare, once with
//!    leader→follower journal shipping pumping continuously — and the report
//!    carries the throughput ratio. The bare case is the per-shard number
//!    comparable (within 10%) to BENCH_daemon.json; the shipping ratio is
//!    reported unvarnished but overstates the cost on this harness, because
//!    leader and standby are colocated in one process on one filesystem, so
//!    every WAL byte and every fsync is paid twice through the same ext4
//!    journal (and, on a single-core runner, the same CPU). A real standby
//!    does that work on its own node.
//!
//! 2. **How fast is failover, and does it lose anything?** A leader takes
//!    the fleet mid-run and is killed abruptly — no drain, no final ship
//!    flush, exactly what `kill -9` leaves: the follower holds whatever the
//!    shipping pump had applied, and the recorded `last_acked` bar is the
//!    durability promise. The follower is promoted (timed), the workload
//!    resumes on it with the same idempotency keys, and the harness asserts
//!    the exactly-once ledger: every acked task is still known, every
//!    logical task completes exactly once, no key resolves to two ids.
//!
//! Run: `cargo run --release -p hpcqc-bench --bin failover_perf [--quick]
//!       [--out PATH]`
//!
//! `--quick` shrinks the fleet for the CI smoke job; the harness exits
//! non-zero on a non-finite measurement, a lost acked task, a duplicated
//! key, or a quick-mode failover slower than 500 ms.

use hpcqc_bench::{render_table, HarnessArgs};
use hpcqc_emulator::{Emulator, SampleResult, SvBackend};
use hpcqc_middleware::journal::FollowerReplica;
use hpcqc_middleware::{
    DaemonConfig, DaemonTaskStatus, JournalConfig, MiddlewareService, PriorityClass,
};
use hpcqc_program::{DeviceSpec, ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc_qrmi::{AcquisitionToken, QrmiError, QuantumResource, ResourceType, TaskId};
use hpcqc_scheduler::PatternHint;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Stub QRMI that completes every task instantly (see daemon_perf): the
/// wall clock measures the control plane and the replication tap only.
struct InstantResource {
    spec: DeviceSpec,
}

impl QuantumResource for InstantResource {
    fn resource_id(&self) -> &str {
        "instant-qpu"
    }

    fn resource_type(&self) -> ResourceType {
        ResourceType::QpuDirect
    }

    fn acquire(&self) -> Result<AcquisitionToken, QrmiError> {
        Ok(AcquisitionToken("instant-lease".into()))
    }

    fn release(&self, _token: &AcquisitionToken) -> Result<(), QrmiError> {
        Ok(())
    }

    fn target(&self) -> Result<DeviceSpec, QrmiError> {
        Ok(self.spec.clone())
    }

    fn task_start(&self, _token: &AcquisitionToken, ir: &ProgramIr) -> Result<TaskId, QrmiError> {
        Ok(TaskId(format!("instant:{}", ir.shots)))
    }

    fn task_status(&self, _task: &TaskId) -> Result<hpcqc_qrmi::TaskStatus, QrmiError> {
        Ok(hpcqc_qrmi::TaskStatus::Completed)
    }

    fn task_stop(&self, _task: &TaskId) -> Result<(), QrmiError> {
        Ok(())
    }

    fn task_result(&self, task: &TaskId) -> Result<SampleResult, QrmiError> {
        let shots: usize = task
            .0
            .strip_prefix("instant:")
            .and_then(|s| s.parse().ok())
            .ok_or(QrmiError::UnknownTask)?;
        Ok(SampleResult::from_shots(2, &vec![0u64; shots], "instant"))
    }

    fn metadata(&self) -> BTreeMap<String, String> {
        BTreeMap::from([("vendor".into(), "bench".into())])
    }
}

fn bench_program(shots: u32) -> ProgramIr {
    let reg = Register::linear(2, 6.0).expect("valid register");
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).expect("valid pulse"));
    ProgramIr::new(b.build().expect("valid sequence"), shots, "bench")
}

fn bench_cfg() -> DaemonConfig {
    DaemonConfig {
        validate_on_submit: false,
        analyze_on_submit: false,
        journal: JournalConfig {
            fsync_every: 64,
            group_max_records: 64,
            compact_every: 0,
            ..JournalConfig::default()
        },
        ..DaemonConfig::default()
    }
}

fn resource() -> Arc<InstantResource> {
    Arc::new(InstantResource {
        spec: SvBackend::default().spec(),
    })
}

fn bench_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("hpcqc-failover-perf-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

/// A shipping pump with *no* final flush on stop — stopping it models the
/// pump dying with the leader, so whatever was applied is all there is.
struct HardStopShipper {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<FollowerReplica>,
}

fn spawn_hard_shipper(svc: &Arc<MiddlewareService>, replica: FollowerReplica) -> HardStopShipper {
    let svc = Arc::clone(svc);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::spawn(move || {
        let mut replica = replica;
        while !stop2.load(Ordering::Relaxed) {
            let _ = svc.ship_pending(&mut replica, "standby");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        replica
    });
    HardStopShipper { stop, thread }
}

impl HardStopShipper {
    fn kill(self) -> FollowerReplica {
        self.stop.store(true, Ordering::Relaxed);
        self.thread.join().expect("shipper thread")
    }
}

#[derive(Debug, Serialize)]
struct ThroughputCase {
    shipping: bool,
    sessions: usize,
    tasks_per_session: usize,
    wall_secs: f64,
    tasks_per_sec: f64,
}

/// The daemon_perf drive loop: concurrent sessions against one journaled
/// daemon with a racing dispatcher, optionally with a shipping pump running.
fn run_throughput(sessions: usize, per_session: usize, shipping: bool) -> ThroughputCase {
    let tag = if shipping { "ship" } else { "bare" };
    let dir = bench_dir(&format!("tp-{tag}-leader"));
    let svc = Arc::new(
        MiddlewareService::recover(&dir, resource(), bench_cfg()).expect("daemon recovers"),
    );
    let shipper = if shipping {
        let fdir = bench_dir(&format!("tp-{tag}-follower"));
        svc.enable_shipping().expect("shipping enables");
        Some(spawn_hard_shipper(
            &svc,
            FollowerReplica::open(&fdir).expect("replica opens"),
        ))
    } else {
        None
    };

    let tokens: Vec<String> = (0..sessions)
        .map(|u| {
            svc.open_session(&format!("user-{u}"), PriorityClass::Production)
                .expect("session opens")
        })
        .collect();
    let total = sessions * per_session;
    let ir = bench_program(8);
    let done_submitting = Arc::new(AtomicBool::new(false));
    let executed = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let dispatcher = {
        let svc = Arc::clone(&svc);
        let done = Arc::clone(&done_submitting);
        let executed = Arc::clone(&executed);
        std::thread::spawn(move || loop {
            let n = svc.pump_batch(16);
            executed.fetch_add(n, Ordering::Relaxed);
            if n == 0 {
                if done.load(Ordering::Acquire) && svc.queue_depth() == 0 {
                    break;
                }
                std::thread::yield_now();
            }
        })
    };
    let submitters: Vec<_> = tokens
        .into_iter()
        .map(|tok| {
            let svc = Arc::clone(&svc);
            let ir = ir.clone();
            std::thread::spawn(move || {
                for _ in 0..per_session {
                    svc.submit(&tok, ir.clone(), PatternHint::None)
                        .expect("submit succeeds");
                }
            })
        })
        .collect();
    for h in submitters {
        h.join().expect("submitter thread");
    }
    done_submitting.store(true, Ordering::Release);
    dispatcher.join().expect("dispatcher thread");
    let wall_secs = t0.elapsed().as_secs_f64();
    assert_eq!(executed.load(Ordering::Relaxed), total);
    if let Some(s) = shipper {
        drop(s.kill());
    }
    svc.sync_journal();
    drop(svc);
    ThroughputCase {
        shipping,
        sessions,
        tasks_per_session: per_session,
        wall_secs,
        tasks_per_sec: total as f64 / wall_secs,
    }
}

#[derive(Debug, Serialize)]
struct FailoverCase {
    sessions: usize,
    tasks_per_session: usize,
    /// Tasks submitted to the leader before it was killed.
    submitted_before_kill: usize,
    /// Tasks whose submit record had been applied by the follower at the kill.
    known_after_promotion: usize,
    /// `promote()` wall time: shipped-prefix replay → serving leader.
    failover_ms: f64,
    /// All `sessions × tasks_per_session` logical keys completed, each
    /// exactly once, counting both sides of the failover.
    zero_loss: bool,
}

/// Kill the leader mid-run, promote the follower, resume the workload with
/// the same idempotency keys, and account for every logical task.
fn run_failover(sessions: usize, per_session: usize) -> FailoverCase {
    let dir_l = bench_dir("fo-leader");
    let dir_f = bench_dir("fo-follower");
    let svc = Arc::new(
        MiddlewareService::recover(&dir_l, resource(), bench_cfg()).expect("daemon recovers"),
    );
    svc.enable_shipping().expect("shipping enables");

    let tokens: Vec<String> = (0..sessions)
        .map(|u| {
            svc.open_session(&format!("user-{u}"), PriorityClass::Production)
                .expect("session opens")
        })
        .collect();
    // Catch the standby up on the session-open prefix before the run: a
    // real standby has long since applied the control records for sessions
    // that predate the crash, so the tokens survive promotion. The opens
    // are still in the group-commit buffer, so force them to the WAL first.
    svc.sync_journal();
    let mut replica = FollowerReplica::open(&dir_f).expect("replica opens");
    svc.ship_pending(&mut replica, "standby")
        .expect("session prefix ships");
    let shipper = spawn_hard_shipper(&svc, replica);
    let ir = bench_program(8);
    let half = per_session / 2;

    // First half of the run on the leader, dispatcher racing the submitters.
    let stop_dispatch = Arc::new(AtomicBool::new(false));
    let dispatcher = {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop_dispatch);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if svc.pump_batch(16) == 0 {
                    std::thread::yield_now();
                }
            }
        })
    };
    let mut first_ids: Vec<u64> = Vec::with_capacity(sessions * half);
    let handles: Vec<_> = tokens
        .iter()
        .enumerate()
        .map(|(u, tok)| {
            let svc = Arc::clone(&svc);
            let tok = tok.clone();
            let ir = ir.clone();
            std::thread::spawn(move || {
                (0..half)
                    .map(|j| {
                        svc.submit_with_key(
                            &tok,
                            ir.clone(),
                            PatternHint::None,
                            Some(&format!("fo-{u}-{j}")),
                        )
                        .expect("submit succeeds")
                    })
                    .collect::<Vec<u64>>()
            })
        })
        .collect();
    for h in handles {
        first_ids.extend(h.join().expect("submitter thread"));
    }

    // kill -9: dispatcher and shipping pump die with the leader, no drain,
    // no final flush. The follower keeps what it applied; the bar is what
    // the leader had seen acked.
    stop_dispatch.store(true, Ordering::Relaxed);
    dispatcher.join().expect("dispatcher thread");
    drop(shipper.kill());
    let last_acked = svc.last_acked();
    drop(svc);

    let t_promote = Instant::now();
    let d2 = Arc::new(
        MiddlewareService::promote(&dir_f, resource(), bench_cfg(), last_acked)
            .expect("promotion succeeds"),
    );
    let failover_ms = t_promote.elapsed().as_secs_f64() * 1e3;

    let known_after_promotion = first_ids
        .iter()
        .filter(|&&id| d2.task_status(id).is_ok())
        .count();

    // Resume: replay the first half's keys (dedup or resubmit-lost) and
    // submit the second half fresh, then pump dry.
    let mut final_ids: Vec<u64> = Vec::with_capacity(sessions * per_session);
    for (u, tok) in tokens.iter().enumerate() {
        for j in 0..per_session {
            let id = d2
                .submit_with_key(
                    tok,
                    ir.clone(),
                    PatternHint::None,
                    Some(&format!("fo-{u}-{j}")),
                )
                .expect("resumed submit succeeds");
            final_ids.push(id);
        }
    }
    d2.pump();

    let distinct: std::collections::HashSet<u64> = final_ids.iter().copied().collect();
    let all_completed = final_ids
        .iter()
        .all(|&id| d2.task_status(id) == Ok(DaemonTaskStatus::Completed));
    let zero_loss = distinct.len() == sessions * per_session && all_completed;

    let _ = std::fs::remove_dir_all(&dir_l);
    let _ = std::fs::remove_dir_all(&dir_f);
    FailoverCase {
        sessions,
        tasks_per_session: per_session,
        submitted_before_kill: first_ids.len(),
        known_after_promotion,
        failover_ms,
        zero_loss,
    }
}

#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: String,
    commit_note: String,
    quick: bool,
    unix_time_secs: u64,
    throughput: Vec<ThroughputCase>,
    /// shipping-on tasks/sec over shipping-off (1.0 = free replication).
    shipping_throughput_ratio: f64,
    failover: FailoverCase,
}

fn main() {
    let args = HarnessArgs::from_env();
    let out_path = args
        .flags
        .iter()
        .position(|f| f == "--out")
        .and_then(|i| args.flags.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_replication.json".to_string());

    let (sessions, per_session) = if args.quick { (8, 200) } else { (8, 10_000) };

    eprintln!("throughput: {sessions} sessions x {per_session} tasks, shipping off ...");
    let bare = run_throughput(sessions, per_session, false);
    eprintln!("throughput: {sessions} sessions x {per_session} tasks, shipping on ...");
    let shipped = run_throughput(sessions, per_session, true);
    let ratio = shipped.tasks_per_sec / bare.tasks_per_sec;

    eprintln!("failover: kill -9 leader mid-run at {sessions} x {per_session} ...");
    let failover = run_failover(sessions, per_session);

    for (label, v) in [
        ("bare tasks/sec", bare.tasks_per_sec),
        ("shipped tasks/sec", shipped.tasks_per_sec),
        ("failover_ms", failover.failover_ms),
    ] {
        if !v.is_finite() || v <= 0.0 {
            eprintln!("non-finite or non-positive measurement: {label}={v}");
            std::process::exit(1);
        }
    }
    if !failover.zero_loss {
        eprintln!(
            "FAILED exactly-once ledger: {} submitted before kill, {} known after promotion",
            failover.submitted_before_kill, failover.known_after_promotion
        );
        std::process::exit(1);
    }
    if args.quick && failover.failover_ms >= 500.0 {
        eprintln!(
            "failover took {:.1} ms (quick-mode budget is 500 ms)",
            failover.failover_ms
        );
        std::process::exit(1);
    }

    println!(
        "{}",
        render_table(
            &["case", "tasks/s", "vs bare"],
            &[
                vec![
                    "bare".into(),
                    format!("{:.0}", bare.tasks_per_sec),
                    "1.00x".into()
                ],
                vec![
                    "shipping".into(),
                    format!("{:.0}", shipped.tasks_per_sec),
                    format!("{ratio:.2}x"),
                ],
            ]
        )
    );
    println!(
        "failover: {:.1} ms promote, {}/{} tasks applied at kill, zero_loss={}",
        failover.failover_ms,
        failover.known_after_promotion,
        failover.submitted_before_kill,
        failover.zero_loss
    );

    let report = BenchReport {
        benchmark: "failover_perf".into(),
        commit_note: "replicated control plane: journal shipping + follower promotion".into(),
        quick: args.quick,
        unix_time_secs: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        throughput: vec![bare, shipped],
        shipping_throughput_ratio: ratio,
        failover,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write report");
    eprintln!("wrote {out_path}");
}
