//! Experiment RP — REST front-end throughput and tail latency.
//!
//! Open-loop (arrival-rate-driven) load against the daemon's HTTP surface:
//! a single-threaded mio-multiplexed client drives N concurrent keep-alive
//! connections, each issuing `POST /v1/tasks` submits against an
//! instant-completion QRMI stub (validation/analysis off, journal off — the
//! wire and the HTTP layer are the subject, the control plane was measured
//! by `daemon_perf`). Arrivals follow a fixed global schedule at the target
//! rate; a connection that is still waiting for a response when its next
//! arrival fires accrues *debt*, and the replacement request's latency is
//! measured from the **scheduled** time, not the send time — the classic
//! open-loop correction for coordinated omission, so queueing delay shows
//! up in p99 instead of being silently absorbed by the load generator.
//!
//! Each rate case reports achieved RPS and latency percentiles; the
//! headline "sustained" figure is the highest rate where the achieved rate
//! stays within 3% of target and p99 < 10 ms. Connections reconnect
//! transparently when the server closes them (`connection: close`), so the
//! same harness measured the pre-PR thread-per-connection server — those
//! numbers are kept below as the baseline.
//!
//! # Codec and batch axes
//!
//! `--codec json|binary` selects the submit encoding (JSON bodies against
//! `POST /v1/tasks`, or `application/x-hpcqc-bin` wire frames), `--batch N`
//! packs N submits into one `POST /v1/tasks:batch` request. Rates are always
//! **submits**/s, so a batch case at the same rate issues 1/N as many HTTP
//! requests; latency percentiles are per *request* (i.e. per batch), still
//! measured from the scheduled arrival (coordinated-omission-corrected).
//! The default full ladder runs a matched JSON-vs-binary, single-vs-batch
//! matrix and reports the headline ingest comparison.
//!
//! `--shards K` serves the daemon on K SO_REUSEPORT event loops. On the
//! 1-core CI runner this is expected to measure ~1× (no spare cores to run
//! the extra loops); the flag exists so multi-core machines can reproduce
//! the scaling claim honestly.
//!
//! Run: `cargo run --release -p hpcqc-bench --bin rest_perf [--quick]
//!       [--codec json|binary] [--batch N] [--shards K] [--out PATH]`

use hpcqc_bench::{percentile, render_table, HarnessArgs};
use hpcqc_emulator::{Emulator, SampleResult, SvBackend};
use hpcqc_middleware::rest::serve_with;
use hpcqc_middleware::ServerConfig;
use hpcqc_middleware::{http_request, DaemonConfig, MiddlewareService};
use hpcqc_program::{DeviceSpec, ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc_qrmi::{AcquisitionToken, QrmiError, QuantumResource, ResourceType, TaskId};
use mio::{Events, Interest, Poll, Token};
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pre-PR reference, measured with this same harness against the
/// thread-per-connection `Connection: close` server at commit 29bbd49
/// (same machine class: 1 CPU). Every request paid a fresh TCP connect plus
/// an OS thread spawn: the legacy server held 6k submits/s at 1000
/// connections (p99 5.9 ms) and collapsed at 8k (p99 4.2 s, arrival debt
/// diverging).
const PRE_PR_SUSTAINED_RPS_1K: f64 = 6000.0;
const PRE_PR_BEST_RPS_1K: f64 = 6000.0;
const PRE_PR_P99_MS_AT_BEST: f64 = 5.94;

/// QRMI stub completing every task instantly (same shape as `daemon_perf`):
/// all measured cycles belong to the HTTP layer and the daemon bookkeeping.
struct InstantResource {
    spec: DeviceSpec,
}

impl QuantumResource for InstantResource {
    fn resource_id(&self) -> &str {
        "instant-qpu"
    }

    fn resource_type(&self) -> ResourceType {
        ResourceType::QpuDirect
    }

    fn acquire(&self) -> Result<AcquisitionToken, QrmiError> {
        Ok(AcquisitionToken("instant-lease".into()))
    }

    fn release(&self, _token: &AcquisitionToken) -> Result<(), QrmiError> {
        Ok(())
    }

    fn target(&self) -> Result<DeviceSpec, QrmiError> {
        Ok(self.spec.clone())
    }

    fn task_start(&self, _token: &AcquisitionToken, ir: &ProgramIr) -> Result<TaskId, QrmiError> {
        Ok(TaskId(format!("instant:{}", ir.shots)))
    }

    fn task_status(&self, _task: &TaskId) -> Result<hpcqc_qrmi::TaskStatus, QrmiError> {
        Ok(hpcqc_qrmi::TaskStatus::Completed)
    }

    fn task_stop(&self, _task: &TaskId) -> Result<(), QrmiError> {
        Ok(())
    }

    fn task_result(&self, task: &TaskId) -> Result<SampleResult, QrmiError> {
        let shots: usize = task
            .0
            .strip_prefix("instant:")
            .and_then(|s| s.parse().ok())
            .ok_or(QrmiError::UnknownTask)?;
        Ok(SampleResult::from_shots(2, &vec![0u64; shots], "instant"))
    }

    fn metadata(&self) -> BTreeMap<String, String> {
        BTreeMap::from([("vendor".into(), "bench".into())])
    }
}

/// Submit encoding for one case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Codec {
    Json,
    Binary,
}

impl Codec {
    fn as_str(self) -> &'static str {
        match self {
            Codec::Json => "json",
            Codec::Binary => "binary",
        }
    }

    fn parse(s: &str) -> Option<Codec> {
        match s {
            "json" => Some(Codec::Json),
            "binary" | "bin" => Some(Codec::Binary),
            _ => None,
        }
    }
}

/// One load case: `rate` is in **submits**/s; with `batch > 1` the request
/// arrival rate is `rate / batch`.
#[derive(Debug, Clone, Copy)]
struct CaseSpec {
    connections: usize,
    rate: f64,
    secs: f64,
    codec: Codec,
    batch: usize,
}

#[derive(Debug, Serialize)]
struct CaseResult {
    connections: usize,
    codec: &'static str,
    /// Submits per HTTP request (1 = single `POST /v1/tasks`).
    batch: usize,
    /// Target rate in submits/s.
    target_rps: f64,
    duration_secs: f64,
    /// Completed HTTP requests (each carrying `batch` submits).
    samples: usize,
    /// Achieved submits/s (`samples * batch / wall`).
    achieved_rps: f64,
    latency_p50_ms: f64,
    latency_p90_ms: f64,
    latency_p99_ms: f64,
    latency_max_ms: f64,
    /// Non-201 responses + transport failures (lost samples).
    errors: usize,
    /// Connections re-established mid-run: 0 on a keep-alive server.
    reconnects: usize,
    /// The case was aborted early: arrival debt exceeded two seconds of
    /// target load, i.e. the server cannot keep up at this rate.
    unsustainable: bool,
}

#[derive(Debug, Serialize)]
struct Baseline {
    commit: String,
    sustained_rps_1k_conns: f64,
    best_achieved_rps_1k_conns: f64,
    latency_p99_ms_at_best: f64,
}

/// The headline ingest comparison: matched JSON single-submit vs binary
/// batched cases from the same run (same harness, same CO correction).
#[derive(Debug, Serialize)]
struct IngestComparison {
    json_single_best_rps: f64,
    binary_single_best_rps: f64,
    json_batched_best_rps: f64,
    binary_batched_best_rps: f64,
    /// `binary_batched_best_rps / json_single_best_rps`.
    binary_batched_vs_json_single: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: String,
    commit_note: String,
    quick: bool,
    unix_time_secs: u64,
    /// SO_REUSEPORT event-loop shards the server ran with. Results in this
    /// file were measured with shards=1 on a 1-core runner; the sharded
    /// path is exercised (and its wiring benched) but cannot show scaling
    /// without spare cores.
    shards: usize,
    cases: Vec<CaseResult>,
    /// Highest probed rate at 1k connections (JSON, single-submit — the
    /// historical axis) with achieved ≥ 97% of target and p99 < 10 ms;
    /// `null` in quick mode.
    sustained_rps_1k_conns: Option<f64>,
    /// `null` when the run had no matched comparison cases (quick mode).
    ingest_comparison: Option<IngestComparison>,
    baseline_pre_pr: Baseline,
}

fn bench_program(shots: u32) -> ProgramIr {
    let reg = Register::linear(2, 6.0).expect("valid register");
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).expect("valid pulse"));
    ProgramIr::new(b.build().expect("valid sequence"), shots, "rest-bench")
}

/// One multiplexed keep-alive connection of the load generator.
struct Conn {
    stream: Option<TcpStream>,
    registered: bool,
    want_write: bool,
    rbuf: Vec<u8>,
    wbuf: Arc<Vec<u8>>,
    wpos: usize,
    /// Scheduled arrival time (secs since case start) of the in-flight
    /// request, if any.
    outstanding: Option<f64>,
    /// Arrivals that fired while a request was in flight.
    debt: VecDeque<f64>,
}

impl Conn {
    fn new(request: Arc<Vec<u8>>) -> Conn {
        Conn {
            stream: None,
            registered: false,
            want_write: false,
            rbuf: Vec::with_capacity(512),
            wbuf: request,
            wpos: usize::MAX, // nothing pending

            outstanding: None,
            debt: VecDeque::new(),
        }
    }
}

/// Scan an accumulated response buffer; returns
/// `Some((status, total_len, close))` once one full response is buffered.
fn try_parse_response(buf: &[u8]) -> Option<(u16, usize, bool)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().ok()?;
            } else if k.eq_ignore_ascii_case("connection") && v.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }
    let total = head_end + content_length;
    (buf.len() >= total).then_some((status, total, close))
}

struct CaseStats {
    latencies_ms: Vec<f64>,
    errors: usize,
    reconnects: usize,
}

/// Serialize one prebuilt submit request for `token` (the per-connection
/// request buffer the load generator replays).
fn build_request(codec: Codec, batch: usize, token: &str, ir: &ProgramIr) -> Vec<u8> {
    let (path, content_type, body): (&str, &str, Vec<u8>) = match (codec, batch) {
        (Codec::Json, 1) => {
            let ir_json = serde_json::to_string(ir).expect("ir serializes");
            (
                "/v1/tasks",
                "application/json",
                format!(r#"{{"token":"{token}","ir":{ir_json}}}"#).into_bytes(),
            )
        }
        (Codec::Json, n) => {
            let ir_json = serde_json::to_string(ir).expect("ir serializes");
            let one = format!(r#"{{"token":"{token}","ir":{ir_json}}}"#);
            (
                "/v1/tasks:batch",
                "application/json",
                format!("[{}]", vec![one; n].join(",")).into_bytes(),
            )
        }
        (Codec::Binary, n) => {
            let frame = hpcqc_wire::SubmitFrame {
                token: token.to_string(),
                hint: None,
                idempotency_key: None,
                ir: ir.clone(),
            };
            if n == 1 {
                (
                    "/v1/tasks",
                    hpcqc_wire::CONTENT_TYPE_BIN,
                    hpcqc_wire::encode_submit(&frame),
                )
            } else {
                (
                    "/v1/tasks:batch",
                    hpcqc_wire::CONTENT_TYPE_BIN,
                    hpcqc_wire::encode_submit_batch(&vec![frame; n]),
                )
            }
        }
    };
    let mut req = format!(
        "POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-type: {content_type}\r\n\
         content-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(&body);
    req
}

/// Drive `spec.connections` connections at aggregate `spec.rate` submits/s
/// for `spec.secs` (request arrivals fire at `rate / batch`).
fn run_case(addr: &str, spec: CaseSpec) -> CaseResult {
    let CaseSpec {
        connections,
        rate,
        secs,
        codec,
        batch,
    } = spec;
    // one session per 16 connections, capped — token reuse is realistic
    // (users hold sessions open) and keeps setup fast
    let n_sessions = (connections / 16).clamp(1, 256);
    let tokens: Vec<String> = (0..n_sessions)
        .map(|u| {
            let body = format!(r#"{{"user":"bench-{u}","class":"production"}}"#);
            let (st, body) = http_request(addr, "POST", "/v1/sessions", Some(&body))
                .expect("session opens over HTTP");
            assert_eq!(st, 201, "{body}");
            let v: serde_json::Value = serde_json::from_str(&body).expect("session json");
            v["token"].as_str().expect("token").to_string()
        })
        .collect();

    let ir = bench_program(1);
    let ok_status = if batch > 1 { 200 } else { 201 };
    let requests: Vec<Arc<Vec<u8>>> = (0..connections)
        .map(|i| Arc::new(build_request(codec, batch, &tokens[i % tokens.len()], &ir)))
        .collect();

    let mut poll = Poll::new().expect("poller");
    let mut events = Events::with_capacity(1024);
    let mut conns: Vec<Conn> = requests.into_iter().map(Conn::new).collect();

    // Arrivals are *requests*: a batch case at the same submit rate fires
    // 1/batch as many of them.
    let req_rate = rate / batch as f64;
    let mut stats = CaseStats {
        latencies_ms: Vec::with_capacity((req_rate * secs) as usize + 16),
        errors: 0,
        reconnects: 0,
    };
    let mut debt_total: usize = 0;
    let mut unsustainable = false;
    let debt_cap = ((req_rate * 2.0) as usize).max(1000);

    let t0 = Instant::now();
    let interval = 1.0 / req_rate;
    let mut next_k: u64 = 0; // arrival k fires at k * interval, on conn k % C

    macro_rules! teardown {
        ($conn:expr, $poll:expr) => {{
            if let Some(s) = $conn.stream.take() {
                if $conn.registered {
                    let _ = $poll.registry().deregister(&s);
                }
            }
            $conn.registered = false;
            $conn.want_write = false;
            $conn.rbuf.clear();
            $conn.wpos = usize::MAX;
        }};
    }

    // Start (or restart) the request whose arrival was scheduled at `sched`.
    fn start_request(
        conn: &mut Conn,
        idx: usize,
        sched: f64,
        addr: &str,
        poll: &Poll,
        stats: &mut CaseStats,
    ) {
        if conn.stream.is_none() {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    s.set_nonblocking(true).expect("nonblocking client socket");
                    poll.registry()
                        .register(&s, Token(idx), Interest::READABLE)
                        .expect("register client conn");
                    conn.stream = Some(s);
                    conn.registered = true;
                }
                Err(_) => {
                    stats.errors += 1;
                    conn.outstanding = None;
                    return;
                }
            }
        }
        conn.wpos = 0;
        conn.outstanding = Some(sched);
        conn.rbuf.clear();
        flush_write(conn, idx, poll, stats);
    }

    fn flush_write(conn: &mut Conn, idx: usize, poll: &Poll, stats: &mut CaseStats) {
        let Some(stream) = conn.stream.as_mut() else {
            return;
        };
        while conn.wpos < conn.wbuf.len() {
            match stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => break,
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => {
                    // connection died mid-send: drop the sample, reconnect
                    // lazily on the next arrival
                    stats.errors += 1;
                    stats.reconnects += 1;
                    if let Some(s) = conn.stream.take() {
                        let _ = poll.registry().deregister(&s);
                    }
                    conn.registered = false;
                    conn.want_write = false;
                    conn.outstanding = None;
                    conn.wpos = usize::MAX;
                    return;
                }
            }
        }
        let pending = conn.wpos < conn.wbuf.len();
        if pending != conn.want_write {
            conn.want_write = pending;
            let interest = if pending {
                Interest::READABLE | Interest::WRITABLE
            } else {
                Interest::READABLE
            };
            if let Some(s) = conn.stream.as_ref() {
                let _ = poll.registry().reregister(s, Token(idx), interest);
            }
        }
    }

    let mut scratch = [0u8; 16 << 10];
    let deadline_extra = Duration::from_secs_f64(secs) + Duration::from_secs(2);

    loop {
        let now = t0.elapsed().as_secs_f64();

        // fire due arrivals
        while (next_k as f64) * interval <= now {
            let sched = (next_k as f64) * interval;
            if sched >= secs {
                break;
            }
            let idx = (next_k as usize) % connections;
            next_k += 1;
            let conn = &mut conns[idx];
            if conn.outstanding.is_none() {
                start_request(conn, idx, sched, addr, &poll, &mut stats);
            } else {
                conn.debt.push_back(sched);
                debt_total += 1;
            }
        }
        if debt_total > debt_cap {
            unsustainable = true;
            break;
        }

        let done_scheduling = (next_k as f64) * interval >= secs;
        if done_scheduling
            && (conns
                .iter()
                .all(|c| c.outstanding.is_none() && c.debt.is_empty())
                || t0.elapsed() > deadline_extra)
        {
            break;
        }

        // sleep until the next arrival (bounded)
        let timeout = if done_scheduling {
            Duration::from_millis(50)
        } else {
            let next_due = (next_k as f64) * interval;
            Duration::from_secs_f64((next_due - t0.elapsed().as_secs_f64()).clamp(0.0, 0.05))
        };
        poll.poll(&mut events, Some(timeout)).expect("client poll");

        let mut ready: Vec<usize> = Vec::with_capacity(events.iter().count());
        for ev in &events {
            ready.push(ev.token().0);
        }
        for idx in ready {
            let conn = &mut conns[idx];
            if conn.stream.is_none() {
                continue;
            }
            if conn.want_write {
                flush_write(conn, idx, &poll, &mut stats);
            }
            // read everything available
            let mut eof = false;
            while let Some(stream) = conn.stream.as_mut() {
                match stream.read(&mut scratch) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => conn.rbuf.extend_from_slice(&scratch[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        eof = true;
                        break;
                    }
                }
            }
            // complete response?
            if let Some((status, total, close)) = try_parse_response(&conn.rbuf) {
                let now = t0.elapsed().as_secs_f64();
                if let Some(sched) = conn.outstanding.take() {
                    if status == ok_status {
                        stats.latencies_ms.push((now - sched) * 1e3);
                    } else {
                        stats.errors += 1;
                    }
                }
                conn.rbuf.drain(..total);
                if close {
                    teardown!(conn, poll);
                    stats.reconnects += 1;
                }
                if let Some(next_sched) = conn.debt.pop_front() {
                    debt_total -= 1;
                    start_request(conn, idx, next_sched, addr, &poll, &mut stats);
                }
            } else if eof {
                if conn.outstanding.take().is_some() {
                    stats.errors += 1;
                }
                teardown!(conn, poll);
                stats.reconnects += 1;
                if let Some(next_sched) = conn.debt.pop_front() {
                    debt_total -= 1;
                    start_request(conn, idx, next_sched, addr, &poll, &mut stats);
                }
            }
        }
    }

    let wall = t0.elapsed().as_secs_f64().min(secs.max(0.001));
    stats.latencies_ms.sort_by(f64::total_cmp);
    CaseResult {
        connections,
        codec: codec.as_str(),
        batch,
        target_rps: rate,
        duration_secs: secs,
        samples: stats.latencies_ms.len(),
        achieved_rps: stats.latencies_ms.len() as f64 * batch as f64 / wall,
        latency_p50_ms: percentile(&stats.latencies_ms, 0.50),
        latency_p90_ms: percentile(&stats.latencies_ms, 0.90),
        latency_p99_ms: percentile(&stats.latencies_ms, 0.99),
        latency_max_ms: stats.latencies_ms.last().copied().unwrap_or(f64::NAN),
        errors: stats.errors,
        reconnects: stats.reconnects,
        unsustainable,
    }
}

/// Clamp a connection count to what the fd limit allows (client + server
/// side of every connection live in this one process).
fn fd_clamped(conns: usize) -> usize {
    let soft_limit = std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Max open files"))?
                .split_whitespace()
                .nth(3)?
                .parse::<usize>()
                .ok()
        })
        .unwrap_or(1024);
    let max = soft_limit.saturating_sub(512) / 2;
    if conns > max {
        eprintln!("clamping {conns} connections to {max} (fd limit {soft_limit})");
    }
    conns.min(max)
}

fn main() {
    let args = HarnessArgs::from_env();
    let flag_val = |name: &str| {
        args.flags
            .iter()
            .position(|f| f == name)
            .and_then(|i| args.flags.get(i + 1).cloned())
    };
    let out_path = flag_val("--out").unwrap_or_else(|| "BENCH_rest.json".to_string());
    let codec_override = flag_val("--codec").map(|v| {
        Codec::parse(&v).unwrap_or_else(|| {
            eprintln!("--codec must be json|binary, got {v:?}");
            std::process::exit(2);
        })
    });
    let batch_override: Option<usize> = flag_val("--batch").map(|v| {
        v.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
            eprintln!("--batch must be a positive integer, got {v:?}");
            std::process::exit(2);
        })
    });
    let shards: usize = flag_val("--shards")
        .map(|v| {
            v.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                eprintln!("--shards must be a positive integer, got {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(1);

    // The wire is the subject: control-plane extras off, journal off.
    let cfg = DaemonConfig {
        validate_on_submit: false,
        analyze_on_submit: false,
        ..DaemonConfig::default()
    };
    let resource = Arc::new(InstantResource {
        spec: SvBackend::default().spec(),
    });
    let svc = Arc::new(MiddlewareService::new(resource, cfg));
    // Sized for the 10k-connection case: the default 4096-connection cap is
    // a DoS guard, not a bench subject — at 10k conns it would turn the run
    // into a 503/reconnect storm.
    let server = serve_with(
        Arc::clone(&svc),
        0,
        ServerConfig {
            max_connections: 16_384,
            shards,
            ..Default::default()
        },
    )
    .expect("REST server binds");
    let addr = server.addr();
    if shards > 1 {
        eprintln!(
            "serving on {} SO_REUSEPORT shard(s) (requested {shards})",
            server.shards()
        );
    }

    // dispatcher draining the queue, as deployed
    let stop = Arc::new(AtomicBool::new(false));
    let dispatcher = {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                if svc.pump_batch(64) == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        })
    };

    // REST_PERF_CASES="conns:rps:secs[:codec[:batch]],..." overrides the
    // ladder for exploratory runs; --codec/--batch override those axes on
    // whatever ladder is selected.
    let case = |connections: usize, rate: f64, codec: Codec, batch: usize| CaseSpec {
        connections,
        rate,
        secs: 4.0,
        codec,
        batch,
    };
    let mut cases_spec: Vec<CaseSpec> = if let Ok(spec) = std::env::var("REST_PERF_CASES") {
        spec.split(',')
            .filter_map(|c| {
                let mut it = c.split(':');
                Some(CaseSpec {
                    connections: it.next()?.parse().ok()?,
                    rate: it.next()?.parse().ok()?,
                    secs: it.next()?.parse().ok()?,
                    codec: it.next().map_or(Some(Codec::Json), Codec::parse)?,
                    batch: it.next().map_or(Some(1), |b| b.parse().ok())?,
                })
            })
            .collect()
    } else if args.quick {
        vec![CaseSpec {
            connections: 64,
            rate: 1000.0,
            secs: 2.0,
            codec: Codec::Json,
            batch: 1,
        }]
    } else {
        vec![
            // JSON single-submit ladder (historical axis; feeds `sustained`)
            case(1000, 10_000.0, Codec::Json, 1),
            case(1000, 15_000.0, Codec::Json, 1),
            case(1000, 20_000.0, Codec::Json, 1),
            case(1000, 25_000.0, Codec::Json, 1),
            case(1000, 30_000.0, Codec::Json, 1),
            case(1000, 40_000.0, Codec::Json, 1),
            case(1000, 50_000.0, Codec::Json, 1),
            // binary single-submit: same arrival pattern, cheaper parse
            case(1000, 20_000.0, Codec::Binary, 1),
            case(1000, 30_000.0, Codec::Binary, 1),
            case(1000, 40_000.0, Codec::Binary, 1),
            case(1000, 50_000.0, Codec::Binary, 1),
            // batched ingest: 16 submits per request, both codecs
            case(1000, 40_000.0, Codec::Json, 16),
            case(1000, 80_000.0, Codec::Json, 16),
            case(1000, 40_000.0, Codec::Binary, 16),
            case(1000, 80_000.0, Codec::Binary, 16),
            case(1000, 120_000.0, Codec::Binary, 16),
            case(1000, 160_000.0, Codec::Binary, 16),
            // high-connection case (historical)
            CaseSpec {
                connections: 10_000,
                rate: 10_000.0,
                secs: 4.0,
                codec: Codec::Json,
                batch: 1,
            },
        ]
    };
    if let Some(codec) = codec_override {
        for c in &mut cases_spec {
            c.codec = codec;
        }
    }
    if let Some(batch) = batch_override {
        for c in &mut cases_spec {
            c.batch = batch;
        }
    }

    // Discarded warmup: pre-faults lazy allocations (connection slab, page
    // cache, per-thread state) and absorbs the first connect storm so the
    // first measured case doesn't start with a cold-start debt spiral.
    {
        let first = cases_spec.first().copied().unwrap_or(CaseSpec {
            connections: 64,
            rate: 2_000.0,
            secs: 2.0,
            codec: Codec::Json,
            batch: 1,
        });
        let conns = fd_clamped(first.connections);
        eprintln!(
            "warmup: {conns} connections at 2000 submits/s ({}, batch {}) for 2s (discarded) ...",
            first.codec.as_str(),
            first.batch
        );
        let _ = run_case(
            &addr,
            CaseSpec {
                connections: conns,
                rate: 2_000.0,
                secs: 2.0,
                codec: first.codec,
                batch: first.batch,
            },
        );
    }

    // Inter-case barrier: an aborted case can leave seconds of queued
    // backlog; let the dispatcher drain it so the next rung starts clean
    // instead of competing with leftover work.
    let drain = |svc: &MiddlewareService| {
        let deadline = Instant::now() + Duration::from_secs(30);
        while svc.queue_depth() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
    };

    let mut cases = Vec::new();
    for spec in cases_spec {
        let spec = CaseSpec {
            connections: fd_clamped(spec.connections),
            ..spec
        };
        drain(&svc);
        eprintln!(
            "driving {} connections at {:.0} submits/s ({}, batch {}) for {:.0}s ...",
            spec.connections,
            spec.rate,
            spec.codec.as_str(),
            spec.batch,
            spec.secs
        );
        cases.push(run_case(&addr, spec));
    }

    // Gate: finite, positive measurements on every completed case.
    for c in &cases {
        if c.unsustainable {
            continue;
        }
        for (label, v) in [
            ("achieved_rps", c.achieved_rps),
            ("latency_p50_ms", c.latency_p50_ms),
            ("latency_p99_ms", c.latency_p99_ms),
        ] {
            if !v.is_finite() || v <= 0.0 {
                eprintln!(
                    "non-finite or non-positive measurement: {}c@{} {label}={v}",
                    c.connections, c.target_rps
                );
                std::process::exit(1);
            }
        }
    }

    // A case "qualifies" when it kept up with its target at sane tails —
    // the same bar the historical sustained figure uses.
    let qualifies = |c: &CaseResult| {
        !c.unsustainable && c.achieved_rps >= 0.97 * c.target_rps && c.latency_p99_ms < 10.0
    };
    let sustained = cases
        .iter()
        .filter(|c| c.connections == 1000 && c.codec == "json" && c.batch == 1 && qualifies(c))
        .map(|c| c.target_rps)
        .fold(None::<f64>, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))));

    // Headline comparison: best qualifying submits/s per (codec, batched)
    // axis, from this same run.
    let best = |codec: &str, batched: bool| {
        cases
            .iter()
            .filter(|c| c.codec == codec && (c.batch > 1) == batched && qualifies(c))
            .map(|c| c.achieved_rps)
            .fold(None::<f64>, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    };
    let ingest_comparison = match (best("json", false), best("binary", true)) {
        (Some(json_single), Some(binary_batched)) => Some(IngestComparison {
            json_single_best_rps: json_single,
            binary_single_best_rps: best("binary", false).unwrap_or(0.0),
            json_batched_best_rps: best("json", true).unwrap_or(0.0),
            binary_batched_best_rps: binary_batched,
            binary_batched_vs_json_single: binary_batched / json_single,
        }),
        _ => None,
    };

    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                format!("{}", c.connections),
                c.codec.to_string(),
                format!("{}", c.batch),
                format!("{:.0}", c.target_rps),
                if c.unsustainable {
                    "UNSUSTAINABLE".into()
                } else {
                    format!("{:.0}", c.achieved_rps)
                },
                format!("{:.2}", c.latency_p50_ms),
                format!("{:.2}", c.latency_p99_ms),
                format!("{}", c.errors),
                format!("{}", c.reconnects),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "conns",
                "codec",
                "batch",
                "target/s",
                "achieved/s",
                "p50(ms)",
                "p99(ms)",
                "errs",
                "reconn"
            ],
            &rows
        )
    );
    if let Some(s) = sustained {
        println!(
            "sustained at 1k conns (json, single): {s:.0} submits/s (p99 < 10 ms); pre-PR best {:.0}/s (sustained)",
            PRE_PR_BEST_RPS_1K
        );
    }
    if let Some(cmp) = &ingest_comparison {
        println!(
            "ingest: binary batched {:.0}/s vs json single {:.0}/s = {:.2}x",
            cmp.binary_batched_best_rps,
            cmp.json_single_best_rps,
            cmp.binary_batched_vs_json_single
        );
    }

    let report = BenchReport {
        benchmark: "rest_perf".into(),
        commit_note: "binary wire codec + batched ingest over the epoll keep-alive front end"
            .into(),
        quick: args.quick,
        unix_time_secs: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        shards: server.shards(),
        cases,
        sustained_rps_1k_conns: sustained,
        ingest_comparison,
        baseline_pre_pr: Baseline {
            commit: "29bbd49".into(),
            sustained_rps_1k_conns: PRE_PR_SUSTAINED_RPS_1K,
            best_achieved_rps_1k_conns: PRE_PR_BEST_RPS_1K,
            latency_p99_ms_at_best: PRE_PR_P99_MS_AT_BEST,
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write benchmark json");
    eprintln!("wrote {out_path}");

    stop.store(true, Ordering::Release);
    dispatcher.join().expect("dispatcher thread");
}
