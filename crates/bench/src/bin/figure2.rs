//! Experiment F2 — regenerates **Figure 2**: the daemon-mediated multi-user
//! architecture.
//!
//! Figure 2's claims, measured:
//! 1. **Full stack works over real sockets**: three users (production /
//!    test / development sessions) submit concurrently through the REST
//!    daemon to one virtual QPU; production preempts at shot boundaries.
//! 2. **The second scheduling layer pays off**: co-simulated site with and
//!    without the middleware layer at shot rates 1/10/100 Hz — the
//!    middleware's benefit is largest for today's slow (1 Hz) devices.
//! 3. **Telemetry flows**: the combined daemon+device Prometheus exposition
//!    is printed for inspection.
//!
//! Run: `cargo run -p hpcqc-bench --bin figure2 [--quick]`

use hpcqc_bench::{fmt_pm, render_table, HarnessArgs};
use hpcqc_core::{DaemonClient, DaemonSession};
use hpcqc_middleware::rest::serve;
use hpcqc_middleware::{
    AdmissionPolicy, Cosim, CosimConfig, DaemonConfig, MiddlewareService, PriorityClass, QpuPolicy,
};
use hpcqc_program::{ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc_qpu::VirtualQpu;
use hpcqc_qrmi::QpuDirectResource;
use hpcqc_scheduler::PatternHint;
use hpcqc_workloads::{generate_population, PatternGenConfig};
use std::sync::Arc;

fn probe_ir(shots: u32) -> ProgramIr {
    let reg = Register::linear(3, 6.0).expect("valid chain");
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.6, 6.0, -2.0, 0.0).expect("valid pulse"));
    ProgramIr::new(b.build().expect("non-empty"), shots, "figure2")
}

fn main() {
    let args = HarnessArgs::from_env();
    println!("== Figure 2 reproduction: daemon-mediated multi-user HPC-QC site ==\n");
    rest_stack_experiment(&args);
    middleware_value_experiment(&args);
}

/// Part 1: the live stack — REST daemon + QPU + 3 concurrent user sessions.
fn rest_stack_experiment(args: &HarnessArgs) {
    println!("-- live stack over 127.0.0.1 sockets --");
    let qpu = VirtualQpu::new("fresnel-1", 4242);
    let resource = Arc::new(QpuDirectResource::new("fresnel-1", qpu.clone(), 7));
    let svc = Arc::new(
        MiddlewareService::new(
            resource,
            DaemonConfig {
                preempt_chunk_shots: 5,
                dev_shot_cap: 40,
                ..DaemonConfig::default()
            },
        )
        .with_qpu_admin(qpu.clone()),
    );
    let server = serve(svc).expect("daemon binds localhost");
    let client = DaemonClient::new(server.addr());

    let spec = client.target().expect("daemon serves the device spec");
    println!(
        "daemon on {} fronting {} (spec rev {}, {} Hz shot rate)",
        server.addr(),
        spec.name,
        spec.revision,
        spec.shot_rate_hz
    );

    let users: Vec<(&str, PriorityClass, u32)> = vec![
        ("prod-team", PriorityClass::Production, 60),
        ("qa-team", PriorityClass::Test, 40),
        ("student", PriorityClass::Development, 200), // capped to 40 by policy
    ];
    let n_tasks = args.scaled(3, 2);
    let mut handles = Vec::new();
    for (user, class, shots) in users {
        let addr = server.addr();
        handles.push(std::thread::spawn(move || {
            let session: DaemonSession = DaemonClient::new(addr)
                .open_session(user, class)
                .expect("session opens");
            let mut done = Vec::new();
            for _ in 0..n_tasks {
                let res = session
                    .run(&probe_ir(shots), PatternHint::QcBalanced)
                    .expect("task completes");
                done.push(res.shots);
            }
            (user, class, done)
        }));
    }
    let mut rows = Vec::new();
    for h in handles {
        let (user, class, shots) = h.join().expect("worker thread");
        rows.push(vec![
            user.to_string(),
            class.as_str().to_string(),
            format!("{shots:?}"),
        ]);
    }
    println!(
        "{}",
        render_table(&["user", "class", "completed shot counts"], &rows)
    );
    let (jobs, shots) = qpu.stats();
    println!(
        "device: {jobs} executions, {shots} shots, utilization {:.2}\n",
        qpu.utilization()
    );
    let metrics = client.metrics().expect("metrics exposed");
    let wanted = [
        "daemon_tasks_completed_total",
        "daemon_task_wait_seconds",
        "daemon_preemptions_total",
        "qpu_busy_seconds_total",
        "qpu_rabi_scale",
    ];
    println!("-- prometheus exposition excerpt --");
    for line in metrics.lines() {
        if wanted.iter().any(|w| line.starts_with(w)) {
            println!("  {line}");
        }
    }
    println!();
}

/// Part 2: with/without the middleware layer, across shot rates.
fn middleware_value_experiment(args: &HarnessArgs) {
    println!("-- second-level scheduling value vs QPU speed (co-simulation) --");
    let n_jobs = args.scaled(150, 30);
    let seeds: Vec<u64> = (0..args.seeds as u64).map(|s| 500 + s).collect();
    // The shot rate scales quantum phase durations: a 100 Hz roadmap device
    // spends 100x less wall-clock per quantum phase than today's 1 Hz one.
    let mut rows = Vec::new();
    for &(rate_label, q_scale) in &[("1 Hz", 1.0), ("10 Hz", 0.1), ("100 Hz", 0.01)] {
        for (layer, admission, qpu_policy) in [
            ("slurm-only", AdmissionPolicy::Sequential, QpuPolicy::Fifo),
            (
                "with-middleware",
                AdmissionPolicy::PatternAware { target_duty: 1.2 },
                QpuPolicy::Priority { preemption: true },
            ),
        ] {
            let mut utils = Vec::new();
            let mut prod_waits = Vec::new();
            let mut makespans = Vec::new();
            for &seed in &seeds {
                let mut jobs = generate_population(
                    n_jobs,
                    (1.0, 1.0, 1.0),
                    &PatternGenConfig {
                        mean_total_secs: 600.0,
                        mean_interarrival_secs: 20.0,
                        ..PatternGenConfig::default()
                    },
                    seed,
                );
                for j in &mut jobs {
                    for p in &mut j.phases {
                        if let hpcqc_middleware::Phase::Quantum(s) = p {
                            *s *= q_scale;
                        }
                    }
                }
                let report = Cosim::new(
                    CosimConfig {
                        nodes: 32,
                        admission,
                        qpu_policy,
                        chunk_secs: 10.0 * q_scale,
                    },
                    jobs,
                )
                .run();
                utils.push(report.qpu_utilization);
                if let Some(w) = report.wait_by_class.get("production") {
                    prod_waits.push(w.p95_wait_secs);
                }
                makespans.push(report.makespan_secs);
            }
            rows.push(vec![
                rate_label.to_string(),
                layer.to_string(),
                fmt_pm(&utils, 3),
                if prod_waits.is_empty() {
                    "-".into()
                } else {
                    fmt_pm(&prod_waits, 0)
                },
                fmt_pm(&makespans, 0),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "shot-rate",
                "layer",
                "qpu-util",
                "prod-p95-wait(s)",
                "makespan(s)"
            ],
            &rows
        )
    );
    println!("Expected shape: the middleware layer cuts makespan and production wait at");
    println!("every speed; its *relative* QPU-utilization gain is largest at 1 Hz, where");
    println!("quantum phases dominate and idle gaps are most expensive (§2.2.1, §2.4).");
}
