//! Experiment F1 — regenerates **Figure 1**: the dev→HPC→QPU portability
//! workflow.
//!
//! Figure 1's claim: one unchanged program moves from local development
//! (laptop emulator) through HPC emulation (tensor network, larger χ) to the
//! QPU, switching only `--qpu=<resource>`; and the χ=1 product-state mock
//! validates programs against the *current* device state (footnote 3), so
//! calibration drift between validation and execution is caught, not
//! silently mis-executed.
//!
//! The harness measures: (1) total-variation distance of every backend
//! against the exact state-vector reference for the same unchanged program,
//! (2) MPS accuracy/χ trade-off, (3) the drift-validation scenario.
//!
//! Run: `cargo run -p hpcqc-bench --bin figure1 [--quick]`

use hpcqc_bench::{render_table, HarnessArgs};
use hpcqc_core::Runtime;
use hpcqc_emulator::SampleResult;
use hpcqc_program::{DeviceSpec, ProgramIr};
use hpcqc_qpu::VirtualQpu;
use hpcqc_qrmi::{QrmiConfig, ResourceConfig, ResourceFactory, ResourceType};
use hpcqc_workloads::{mis_program, MisSweep};

fn portability_registry(chis: &[usize], qpu_seed: u64) -> (Runtime, VirtualQpu) {
    let mut resources = vec![
        ResourceConfig {
            id: "laptop:emu-sv".into(),
            rtype: ResourceType::EmulatorLocal,
            params: [("backend".to_string(), "emu-sv".to_string())].into(),
        },
        ResourceConfig {
            id: "mock".into(),
            rtype: ResourceType::EmulatorLocal,
            params: [("backend".to_string(), "emu-mps-mock".to_string())].into(),
        },
        ResourceConfig {
            id: "cloud:emu-mps".into(),
            rtype: ResourceType::EmulatorCloud,
            params: [
                ("backend".to_string(), "emu-mps".to_string()),
                ("chi".to_string(), "16".to_string()),
                ("queue_polls".to_string(), "3".to_string()),
            ]
            .into(),
        },
        ResourceConfig {
            id: "qpu:fresnel".into(),
            rtype: ResourceType::QpuDirect,
            params: [("device".to_string(), "fresnel-1".to_string())].into(),
        },
    ];
    for &chi in chis {
        resources.push(ResourceConfig {
            id: format!("hpc:emu-mps-chi{chi}"),
            rtype: ResourceType::EmulatorLocal,
            params: [
                ("backend".to_string(), "emu-mps".to_string()),
                ("chi".to_string(), chi.to_string()),
            ]
            .into(),
        });
    }
    let cfg = QrmiConfig {
        resources,
        default_resource: Some("laptop:emu-sv".into()),
    };
    let qpu = VirtualQpu::new("fresnel-1", qpu_seed);
    let registry = ResourceFactory::new(17)
        .with_qpu("fresnel-1", qpu.clone())
        .build_registry(&cfg)
        .expect("valid configuration");
    (Runtime::new(registry), qpu)
}

fn main() {
    let args = HarnessArgs::from_env();
    let shots = args.scaled(2000, 400) as u32;
    let n_atoms = args.scaled(8, 5);
    let chis: Vec<usize> = if args.quick {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    };

    println!("== Figure 1 reproduction: one program, every environment ==");
    println!("program: MIS adiabatic sweep on a {n_atoms}-atom chain, {shots} shots\n");

    let register = hpcqc_program::Register::linear(n_atoms, 6.0).expect("valid chain");
    let program: ProgramIr = mis_program(&register, &MisSweep::default(), shots);

    let (rt, qpu) = portability_registry(&chis, 99);

    // --- part 1: unchanged program across backends -----------------------
    let mut targets: Vec<String> = vec!["laptop:emu-sv".into(), "cloud:emu-mps".into()];
    for &chi in &chis {
        targets.push(format!("hpc:emu-mps-chi{chi}"));
    }
    targets.push("qpu:fresnel".into());
    let target_refs: Vec<&str> = targets.iter().map(String::as_str).collect();
    let runs = rt.run_everywhere(&program, &target_refs);

    let reference: SampleResult = runs
        .iter()
        .find(|(id, _)| id == "laptop:emu-sv")
        .and_then(|(_, r)| r.as_ref().ok())
        .map(|r| r.result.clone())
        .expect("reference backend runs");

    let mut rows = Vec::new();
    for (id, run) in &runs {
        match run {
            Ok(report) => {
                let tv = reference.total_variation_distance(&report.result);
                rows.push(vec![
                    id.clone(),
                    format!("{:.4}", tv),
                    format!("{:.2e}", report.result.truncation_error),
                    format!("{:.3}", report.result.occupation(0)),
                    format!("rev{}", report.spec_revision),
                ]);
            }
            Err(e) => rows.push(vec![
                id.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("{e}"),
            ]),
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "resource",
                "TV-vs-exact",
                "trunc-err",
                "n0-occupation",
                "spec"
            ],
            &rows
        )
    );
    println!(
        "Expected shape: TV falls with χ toward shot-noise level (~{:.3});",
        tv_shot_noise(shots)
    );
    println!("the QPU row sits slightly above it (SPAM noise + calibration error);");
    println!("χ=1 runs but is inaccurate — it exists for end-to-end mocking, not physics.\n");

    // --- part 2: drift validation (footnote 3 / §2.1) --------------------
    println!("== Drift-validation scenario: validate, drift, re-validate ==");
    let spec_at_validation: DeviceSpec = qpu.current_spec();
    let v0 = hpcqc_program::validate(&program.sequence, &spec_at_validation);
    println!(
        "t0: program validated against spec rev {} -> {} violations",
        spec_at_validation.revision,
        v0.len()
    );
    // overnight drift + a laser-power fault
    qpu.advance_time(86_400.0);
    qpu.inject_rabi_fault(0.6);
    let spec_now = qpu.current_spec();
    let v1 = hpcqc_program::validate(&program.sequence, &spec_now);
    println!(
        "t1 (+24h, laser fault): live spec rev {} -> {} violations: {}",
        spec_now.revision,
        v1.len(),
        v1.first().map(|v| v.to_string()).unwrap_or_default()
    );
    assert!(
        !v1.is_empty(),
        "the drifted envelope must catch the now-invalid program"
    );
    // recalibration restores validity and bumps the revision
    qpu.recalibrate(1800.0);
    let spec_fixed = qpu.current_spec();
    let v2 = hpcqc_program::validate(&program.sequence, &spec_fixed);
    println!(
        "t2 (recalibrated): spec rev {} -> {} violations",
        spec_fixed.revision,
        v2.len()
    );
    println!("\nFigure-1 property demonstrated: identical ProgramIr ran on every");
    println!(
        "environment (fingerprint {:#018x}); only --qpu changed, and validation",
        program.fingerprint()
    );
    println!("against the live spec catches drift between development and execution.");
}

/// Rough expected TV distance from shot noise alone for two independent
/// sample sets: ~sqrt(k / (2*shots)) over k effective outcomes; we report a
/// conservative scale for the printout.
fn tv_shot_noise(shots: u32) -> f64 {
    (8.0 / shots as f64).sqrt()
}
