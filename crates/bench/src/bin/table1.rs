//! Experiment T1 — regenerates **Table 1** of the paper as a measured table.
//!
//! The paper's Table 1 is a *taxonomy with scheduler hints*: pattern A
//! (High-QC/Low-CC) wants a sequential QPU queue, pattern B (Low-QC/High-CC)
//! wants interleaving to kill QPU idle time, pattern C (balanced) wants
//! fine-grained orchestration. This harness turns each cell into numbers: it
//! runs every workload pattern under every second-level policy and reports
//! QPU utilization, wasted node time, and turnaround — confirming that the
//! hinted policy is (near-)optimal for its row.
//!
//! Also includes the §3.5 GRES-timeshare sub-experiment (`--gres`): ten
//! 10 %-units of QPU share enforced by the batch layer.
//!
//! Run: `cargo run -p hpcqc-bench --bin table1 [--quick] [--gres]`

use hpcqc_bench::{fmt_pm, render_table, HarnessArgs};
use hpcqc_middleware::{AdmissionPolicy, Cosim, CosimConfig, QpuPolicy};
use hpcqc_scheduler::{standard_partitions, Cluster, SchedPolicy, SlurmSim};
use hpcqc_workloads::{generate_population, to_batch_spec, PatternGenConfig};

struct PolicyDef {
    name: &'static str,
    admission: AdmissionPolicy,
    qpu: QpuPolicy,
}

fn policies() -> Vec<PolicyDef> {
    vec![
        PolicyDef {
            name: "sequential",
            admission: AdmissionPolicy::Sequential,
            qpu: QpuPolicy::Fifo,
        },
        PolicyDef {
            name: "fifo-interleave",
            admission: AdmissionPolicy::NodeLimited,
            qpu: QpuPolicy::Fifo,
        },
        PolicyDef {
            name: "priority-interleave",
            admission: AdmissionPolicy::NodeLimited,
            qpu: QpuPolicy::Priority { preemption: true },
        },
        PolicyDef {
            name: "pattern-aware",
            admission: AdmissionPolicy::PatternAware { target_duty: 1.2 },
            qpu: QpuPolicy::Priority { preemption: true },
        },
        PolicyDef {
            name: "sjf-interleave",
            admission: AdmissionPolicy::PatternAware { target_duty: 1.2 },
            qpu: QpuPolicy::ShortestFirst,
        },
    ]
}

fn mixes() -> Vec<(&'static str, (f64, f64, f64))> {
    vec![
        ("A (high-QC)", (1.0, 0.0, 0.0)),
        ("B (high-CC)", (0.0, 1.0, 0.0)),
        ("C (balanced)", (0.0, 0.0, 1.0)),
        ("mixed A/B/C", (1.0, 1.0, 1.0)),
    ]
}

fn main() {
    let args = HarnessArgs::from_env();
    let n_jobs = args.scaled(200, 30);
    let seeds: Vec<u64> = (0..args.seeds as u64).map(|s| 1000 + s).collect();
    println!("== Table 1 reproduction: workload patterns x second-level policies ==");
    println!(
        "jobs per run: {n_jobs}, seeds: {}, cluster: 32 nodes, 1 QPU\n",
        seeds.len()
    );

    let gen_cfg = PatternGenConfig {
        mean_total_secs: 600.0,
        balanced_rounds: 6,
        nodes: 1,
        mean_interarrival_secs: 30.0,
    };

    let mut rows = Vec::new();
    for (mix_name, mix) in mixes() {
        for p in policies() {
            let mut utils = Vec::new();
            let mut wastes = Vec::new();
            let mut turnarounds = Vec::new();
            let mut prod_p95 = Vec::new();
            let mut preemptions = Vec::new();
            for &seed in &seeds {
                let jobs = generate_population(n_jobs, mix, &gen_cfg, seed);
                let report = Cosim::new(
                    CosimConfig {
                        nodes: 32,
                        admission: p.admission,
                        qpu_policy: p.qpu,
                        chunk_secs: 10.0,
                    },
                    jobs,
                )
                .run();
                utils.push(report.qpu_utilization);
                wastes.push(report.node_waste_frac);
                let mean_turn: f64 = {
                    let v: Vec<f64> = report.turnaround_by_class.values().copied().collect();
                    v.iter().sum::<f64>() / v.len().max(1) as f64
                };
                turnarounds.push(mean_turn);
                if let Some(w) = report.wait_by_class.get("production") {
                    prod_p95.push(w.p95_wait_secs);
                }
                preemptions.push(report.preemptions as f64);
            }
            rows.push(vec![
                mix_name.to_string(),
                p.name.to_string(),
                fmt_pm(&utils, 3),
                fmt_pm(&wastes, 3),
                fmt_pm(&turnarounds, 0),
                if prod_p95.is_empty() {
                    "-".into()
                } else {
                    fmt_pm(&prod_p95, 0)
                },
                fmt_pm(&preemptions, 0),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "pattern",
                "policy",
                "qpu-util",
                "node-waste",
                "turnaround(s)",
                "prod-p95-wait(s)",
                "preempt",
            ],
            &rows,
        )
    );
    println!("Expected shape (paper Table 1 hints):");
    println!("  A: sequential ~ interleave (QPU is the bottleneck either way; pattern-aware");
    println!("     avoids parking jobs on the queue -> lowest node-waste)");
    println!("  B: interleaving rescues QPU utilization vs sequential");
    println!("  C: priority/pattern-aware interleaving wins on utilization + turnaround");

    if args.flags.iter().any(|f| f == "--gres") {
        gres_timeshare_experiment(&args);
    }
}

/// S1 — §3.5: QPU timeshares as 10 GRES units on the batch scheduler.
fn gres_timeshare_experiment(args: &HarnessArgs) {
    println!("\n== S1: GRES timeshare enforcement (10 x 10% QPU units, §3.5) ==");
    let n_jobs = args.scaled(300, 40);
    let mut rows = Vec::new();
    for &seed in &[1u64, 2, 3] {
        let cluster = Cluster::new(32).with_gres("qpu", 10);
        let mut sim = SlurmSim::new(cluster, standard_partitions(), SchedPolicy::default());
        let gen_cfg = PatternGenConfig::default();
        let jobs = generate_population(n_jobs, (1.0, 1.0, 1.0), &gen_cfg, seed);
        for j in &jobs {
            let spec = to_batch_spec(j, 10);
            sim.submit_at(spec, j.arrival).expect("valid spec");
        }
        sim.run_to_completion();
        let util = sim.gres_utilization("qpu").expect("qpu pool exists");
        let summary = hpcqc_scheduler::AccountingSummary::from_jobs(sim.jobs());
        rows.push(vec![
            format!("{seed}"),
            format!("{:.3}", util),
            format!("{:.3}", sim.node_utilization()),
            format!("{}", summary.completed),
            format!("{}", summary.preemptions),
            format!("{:.0}", summary.overall.mean_wait_secs),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "seed",
                "gres-util",
                "node-util",
                "completed",
                "preempt",
                "mean-wait(s)"
            ],
            &rows,
        )
    );
    println!("GRES units never oversubscribed (enforced by the allocator — see");
    println!("hpcqc-scheduler proptests); utilization < 1 reflects share fragmentation.");
}
