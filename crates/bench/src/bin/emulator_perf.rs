//! Experiment EP — emulator kernel performance trajectory.
//!
//! Times `evolve + sample` across qubit counts for both emulator backends,
//! plus batched parameter-sweep execution, and writes the results to
//! `BENCH_emulator.json`. The 16-qubit state-vector case is the headline
//! single-program number: the JSON records the measured time next to the
//! pre-PR baseline (commit b1b38e8, same harness, same machine class) and
//! the resulting speedup. The batch case times one `run_sweep` over a
//! QAOA-style point grid against the same points run as independent
//! sequential `run` calls — once with the current kernel and once with the
//! pre-SIMD scalar kernel, the honest "before this PR" comparator.
//!
//! Phase attribution comes from [`SvBackend::run_timed`]: both phases are
//! measured inside one instrumented run, so `total_ms = evolve_ms +
//! sample_ms` holds exactly. (An earlier revision min-timed a bare evolve
//! and a full run *independently* and subtracted; machine noise could land
//! the "total" below the "evolve", clamping the sample phase to 0.)
//!
//! Run: `cargo run --release -p hpcqc-bench --bin emulator_perf [--quick]
//!       [--out PATH]`
//!
//! `--quick` shrinks sizes/reps for the CI smoke job; the harness exits
//! non-zero if any timing comes back non-finite or non-positive, so a CI
//! run doubles as a panic/NaN gate for the kernels. The quick set still
//! includes the 20-qubit state-vector case (single rep) and a small batch
//! case, so CI exercises the largest dense register and the batched path.

use hpcqc_bench::{render_table, HarnessArgs};
use hpcqc_emulator::mps::evolve_sequence_mps;
use hpcqc_emulator::{
    Emulator, MpsBackend, MpsConfig, SvBackend, SvConfig, SvKernel, SvPhaseTimings, SweepPoint,
};
use hpcqc_program::{ProgramIr, Pulse, Register, Sequence, SequenceBuilder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;

/// Pre-PR reference for the headline case, measured with this same harness
/// at commit b1b38e8 (allocating serial kernels): 16 qubits, emu-sv,
/// 0.2 µs constant pulse, 1000 shots. Milliseconds. Note the baseline's
/// phase split was produced by the old subtract-two-runs method; only its
/// `total_ms` is load-bearing for the speedup.
const PRE_PR_SV16_EVOLVE_MS: f64 = 5731.86;
const PRE_PR_SV16_TOTAL_MS: f64 = 5984.33;

#[derive(Debug, Serialize)]
struct CaseResult {
    backend: String,
    qubits: usize,
    shots: u32,
    reps: usize,
    /// Evolution wall-clock of the best rep (by total), milliseconds.
    evolve_ms: f64,
    /// Full run of the same rep: `evolve_ms + sample_ms` exactly, ms.
    total_ms: f64,
    /// Sampling + counting wall-clock of the same rep, ms.
    sample_ms: f64,
}

#[derive(Debug, Serialize)]
struct BatchCaseResult {
    backend: String,
    qubits: usize,
    points: usize,
    shots: u32,
    reps: usize,
    /// One batched `run_sweep` over all points, ms (best of reps).
    batch_ms: f64,
    /// The same points as independent `run` calls with the pre-SIMD scalar
    /// kernel — the "before this PR" sequential comparator, ms.
    sequential_scalar_ms: f64,
    /// The same points as independent `run` calls with the current (SIMD)
    /// kernel — isolates the batching amortization alone, ms.
    sequential_auto_ms: f64,
    /// `sequential_scalar_ms / batch_ms`: batched + SIMD vs pre-PR serial.
    speedup_vs_sequential_scalar: f64,
    /// `sequential_auto_ms / batch_ms`: batching amortization alone.
    speedup_vs_sequential_auto: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: String,
    commit_note: String,
    quick: bool,
    unix_time_secs: u64,
    cases: Vec<CaseResult>,
    batch_cases: Vec<BatchCaseResult>,
    baseline_pre_pr: Baseline,
    /// Measured speedup of the headline 16q sv case vs the pre-PR baseline
    /// (`baseline total / measured total`); `null` in quick mode, where the
    /// 16-qubit case is skipped.
    speedup_sv16_vs_pre_pr: Option<f64>,
}

#[derive(Debug, Serialize)]
struct Baseline {
    commit: String,
    sv16_evolve_ms: f64,
    sv16_total_ms: f64,
}

fn bench_sequence(n: usize) -> Sequence {
    let reg = Register::linear(n, 10.0).expect("valid linear register");
    let mut b = SequenceBuilder::new(reg);
    // Non-zero phase exercises the general (complex-coefficient) kernel.
    b.add_global_pulse(Pulse::constant(0.2, 4.0, 1.0, 0.4).expect("valid pulse"));
    b.build().expect("valid sequence")
}

/// A p=2 QAOA-style alternation of driver (Ω on) and cost (δ on) layers —
/// all-constant waveforms, so the batch runner's shared-discretization fast
/// path applies, exactly as a parameter-sweep workload would hit it.
fn qaoa_template(n: usize, shots: u32) -> ProgramIr {
    let reg = Register::linear(n, 10.0).expect("valid linear register");
    let mut b = SequenceBuilder::new(reg);
    for &(omega, delta, phase) in &[
        (4.0, 0.0, 0.0),
        (0.0, 3.0, 0.0),
        (4.0, 0.0, 0.8),
        (0.0, 3.0, 0.0),
    ] {
        b.add_global_pulse(Pulse::constant(0.1, omega, delta, phase).expect("valid pulse"));
    }
    ProgramIr::new(b.build().expect("valid sequence"), shots, "bench-batch")
}

fn sweep_grid(count: usize) -> Vec<SweepPoint> {
    (0..count)
        .map(|k| {
            let f = k as f64 / count.max(2) as f64;
            SweepPoint {
                omega_scale: 0.75 + 0.5 * f,
                delta_scale: 0.8 + 0.4 * f,
                phase_offset: 0.05 * k as f64,
            }
        })
        .collect()
}

fn time_best<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn run_sv_case(n: usize, shots: u32, reps: usize) -> CaseResult {
    let backend = SvBackend::default();
    let ir = ProgramIr::new(bench_sequence(n), shots, "bench");
    let mut best: Option<SvPhaseTimings> = None;
    for _ in 0..reps {
        let (r, t) = backend.run_timed(&ir, 7).expect("sv run succeeds");
        assert_eq!(r.shots, shots);
        if best.is_none_or(|b| t.total_ms < b.total_ms) {
            best = Some(t);
        }
    }
    let t = best.expect("at least one rep");
    CaseResult {
        backend: "emu-sv".into(),
        qubits: n,
        shots,
        reps,
        evolve_ms: t.evolve_ms,
        total_ms: t.total_ms,
        sample_ms: t.sample_ms,
    }
}

fn run_mps_case(n: usize, shots: u32, reps: usize) -> CaseResult {
    let backend = MpsBackend {
        config: MpsConfig {
            chi_max: 8,
            ..MpsConfig::default()
        },
        ..MpsBackend::default()
    };
    let seq = bench_sequence(n);
    let spec = backend.spec();
    // Same single-rep phase split as the sv path: evolve and sample timed
    // back to back on the same evolved state, so the split is monotone.
    let mut best: Option<(f64, f64)> = None;
    for rep in 0..reps {
        let t0 = Instant::now();
        let mut mps = evolve_sequence_mps(&seq, spec.c6_coefficient, &backend.config);
        let evolve_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(mps.truncation_error.is_finite());
        let t1 = Instant::now();
        mps.prepare_sampling();
        let mut rng = ChaCha8Rng::seed_from_u64(7 + rep as u64);
        let mut acc = 0u64;
        for _ in 0..shots {
            acc ^= mps.sample_prepared(&mut rng);
        }
        std::hint::black_box(acc);
        let sample_ms = t1.elapsed().as_secs_f64() * 1e3;
        if best.is_none_or(|(e, s)| evolve_ms + sample_ms < e + s) {
            best = Some((evolve_ms, sample_ms));
        }
    }
    let (evolve_ms, sample_ms) = best.expect("at least one rep");
    CaseResult {
        backend: "emu-mps".into(),
        qubits: n,
        shots,
        reps,
        evolve_ms,
        total_ms: evolve_ms + sample_ms,
        sample_ms,
    }
}

fn run_batch_case(n: usize, point_count: usize, shots: u32, reps: usize) -> BatchCaseResult {
    let auto = SvBackend::default();
    let scalar = SvBackend {
        config: SvConfig {
            kernel: SvKernel::Scalar,
            ..SvConfig::default()
        },
        ..SvBackend::default()
    };
    let template = qaoa_template(n, shots);
    let points = sweep_grid(point_count);

    // Correctness gate before any timing: the batched sweep must be
    // bit-identical to independent sequential runs of each point.
    let batched = auto
        .run_sweep(&template, &points, 7)
        .expect("batched sweep succeeds");
    for (k, p) in points.iter().enumerate() {
        let mut ir = template.clone();
        ir.sequence = p.materialize(&template.sequence);
        let solo = auto
            .run(&ir, 7 + k as u64)
            .expect("sequential run succeeds");
        assert_eq!(batched[k], solo, "batch/sequential divergence at point {k}");
    }

    let batch_ms = time_best(reps, || {
        let t = Instant::now();
        let rs = auto
            .run_sweep(&template, &points, 7)
            .expect("batched sweep succeeds");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(rs.len(), points.len());
        ms
    });
    let sequential = |backend: &SvBackend| {
        time_best(reps, || {
            let t = Instant::now();
            for (k, p) in points.iter().enumerate() {
                let mut ir = template.clone();
                ir.sequence = p.materialize(&template.sequence);
                let r = backend
                    .run(&ir, 7 + k as u64)
                    .expect("sequential run succeeds");
                assert_eq!(r.shots, shots);
            }
            t.elapsed().as_secs_f64() * 1e3
        })
    };
    let sequential_auto_ms = sequential(&auto);
    let sequential_scalar_ms = sequential(&scalar);
    BatchCaseResult {
        backend: "emu-sv".into(),
        qubits: n,
        points: point_count,
        shots,
        reps,
        batch_ms,
        sequential_scalar_ms,
        sequential_auto_ms,
        speedup_vs_sequential_scalar: sequential_scalar_ms / batch_ms,
        speedup_vs_sequential_auto: sequential_auto_ms / batch_ms,
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    let out_path = args
        .flags
        .iter()
        .position(|f| f == "--out")
        .and_then(|i| args.flags.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_emulator.json".to_string());

    let shots: u32 = if args.quick { 200 } else { 1000 };
    let reps = args.scaled(3, 1);
    // The 20-qubit case stays in the quick set (one rep): CI must prove the
    // largest dense register completes, not just the small ones.
    let sv_sizes: &[usize] = if args.quick {
        &[8, 12, 20]
    } else {
        &[8, 12, 14, 16, 20]
    };
    let mps_sizes: &[usize] = if args.quick { &[8] } else { &[8, 12, 16] };
    let (batch_qubits, batch_points) = if args.quick { (8, 8) } else { (12, 32) };

    let mut cases = Vec::new();
    for &n in sv_sizes {
        eprintln!("timing emu-sv n={n} ...");
        cases.push(run_sv_case(n, shots, reps));
    }
    for &n in mps_sizes {
        eprintln!("timing emu-mps n={n} ...");
        cases.push(run_mps_case(n, shots, reps));
    }
    eprintln!("timing emu-sv batched sweep n={batch_qubits} points={batch_points} ...");
    let batch_cases = vec![run_batch_case(batch_qubits, batch_points, shots, reps)];

    // Gate: every timing must be finite and positive (a panic would have
    // aborted already; NaN/0 indicates a broken clock or kernel). The
    // sample phase is directly measured now, so it gets the same `> 0`
    // check as the others — no exemption.
    let mut gate_failures = 0usize;
    for c in &cases {
        for (label, v) in [
            ("evolve_ms", c.evolve_ms),
            ("total_ms", c.total_ms),
            ("sample_ms", c.sample_ms),
        ] {
            if !v.is_finite() || v <= 0.0 {
                eprintln!(
                    "non-finite or non-positive timing: {} n={} {label}={v}",
                    c.backend, c.qubits
                );
                gate_failures += 1;
            }
        }
    }
    for c in &batch_cases {
        for (label, v) in [
            ("batch_ms", c.batch_ms),
            ("sequential_scalar_ms", c.sequential_scalar_ms),
            ("sequential_auto_ms", c.sequential_auto_ms),
        ] {
            if !v.is_finite() || v <= 0.0 {
                eprintln!(
                    "non-finite or non-positive timing: batch n={} {label}={v}",
                    c.qubits
                );
                gate_failures += 1;
            }
        }
    }
    if gate_failures > 0 {
        eprintln!("{gate_failures} timing gate failure(s)");
        std::process::exit(1);
    }

    let speedup = cases
        .iter()
        .find(|c| c.backend == "emu-sv" && c.qubits == 16)
        .map(|c| PRE_PR_SV16_TOTAL_MS / c.total_ms);

    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                c.backend.clone(),
                c.qubits.to_string(),
                format!("{:.2}", c.evolve_ms),
                format!("{:.2}", c.sample_ms),
                format!("{:.2}", c.total_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["backend", "qubits", "evolve(ms)", "sample(ms)", "total(ms)"],
            &rows
        )
    );
    let batch_rows: Vec<Vec<String>> = batch_cases
        .iter()
        .map(|c| {
            vec![
                format!("{}x{}q", c.points, c.qubits),
                format!("{:.2}", c.batch_ms),
                format!("{:.2}", c.sequential_auto_ms),
                format!("{:.2}", c.sequential_scalar_ms),
                format!("{:.2}x", c.speedup_vs_sequential_scalar),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "sweep",
                "batch(ms)",
                "seq-simd(ms)",
                "seq-scalar(ms)",
                "vs scalar"
            ],
            &batch_rows
        )
    );
    if let Some(s) = speedup {
        println!("sv16 total vs pre-PR baseline {PRE_PR_SV16_TOTAL_MS:.2} ms: {s:.2}x");
    }

    let report = BenchReport {
        benchmark: "emulator_perf".into(),
        commit_note: "SIMD lane kernels + batched sweep execution; phase timings now from one \
                      instrumented run (total = evolve + sample exactly)"
            .into(),
        quick: args.quick,
        unix_time_secs: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        cases,
        batch_cases,
        baseline_pre_pr: Baseline {
            commit: "b1b38e8".into(),
            sv16_evolve_ms: PRE_PR_SV16_EVOLVE_MS,
            sv16_total_ms: PRE_PR_SV16_TOTAL_MS,
        },
        speedup_sv16_vs_pre_pr: speedup,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
