//! Experiment EP — emulator kernel performance trajectory.
//!
//! Times `evolve + sample` across qubit counts for both emulator backends
//! and writes the results to `BENCH_emulator.json`, the first entry of the
//! repo's performance trajectory. The 16-qubit state-vector case is the
//! headline number: the JSON records the measured time next to the pre-PR
//! baseline (commit b1b38e8, same harness, same machine class) and the
//! resulting speedup.
//!
//! Run: `cargo run --release -p hpcqc-bench --bin emulator_perf [--quick]
//!       [--out PATH]`
//!
//! `--quick` shrinks sizes/reps for the CI smoke job; the harness exits
//! non-zero if any timing comes back non-finite or non-positive, so a CI
//! run doubles as a panic/NaN gate for the kernels.

use hpcqc_bench::{render_table, HarnessArgs};
use hpcqc_emulator::mps::evolve_sequence_mps;
use hpcqc_emulator::statevector::evolve_sequence;
use hpcqc_emulator::{Emulator, MpsBackend, MpsConfig, SvBackend, SvConfig};
use hpcqc_program::{ProgramIr, Pulse, Register, Sequence, SequenceBuilder};
use serde::Serialize;
use std::time::Instant;

/// Pre-PR reference for the headline case, measured with this same harness
/// at commit b1b38e8 (allocating serial kernels): 16 qubits, emu-sv,
/// 0.2 µs constant pulse, 1000 shots. Milliseconds.
const PRE_PR_SV16_EVOLVE_MS: f64 = 5731.86;
const PRE_PR_SV16_TOTAL_MS: f64 = 5984.33;

#[derive(Debug, Serialize)]
struct CaseResult {
    backend: String,
    qubits: usize,
    shots: u32,
    reps: usize,
    /// Best-of-reps wall-clock of the pure evolution, milliseconds.
    evolve_ms: f64,
    /// Best-of-reps wall-clock of the full `run` (evolve + sample), ms.
    total_ms: f64,
    /// `total_ms - evolve_ms`, clamped at 0 (sampling + counting).
    sample_ms: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: String,
    commit_note: String,
    quick: bool,
    unix_time_secs: u64,
    cases: Vec<CaseResult>,
    baseline_pre_pr: Baseline,
    /// Measured speedup of the headline 16q sv case vs the pre-PR baseline
    /// (`baseline total / measured total`); `null` in quick mode, where the
    /// 16-qubit case is skipped.
    speedup_sv16_vs_pre_pr: Option<f64>,
}

#[derive(Debug, Serialize)]
struct Baseline {
    commit: String,
    sv16_evolve_ms: f64,
    sv16_total_ms: f64,
}

fn bench_sequence(n: usize) -> Sequence {
    let reg = Register::linear(n, 10.0).expect("valid linear register");
    let mut b = SequenceBuilder::new(reg);
    // Non-zero phase exercises the general (complex-coefficient) kernel.
    b.add_global_pulse(Pulse::constant(0.2, 4.0, 1.0, 0.4).expect("valid pulse"));
    b.build().expect("valid sequence")
}

fn time_best<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn run_sv_case(n: usize, shots: u32, reps: usize) -> CaseResult {
    let backend = SvBackend::default();
    let seq = bench_sequence(n);
    let ir = ProgramIr::new(seq.clone(), shots, "bench");
    let spec = backend.spec();
    let evolve_ms = time_best(reps, || {
        let t = Instant::now();
        let s = evolve_sequence(&seq, spec.c6_coefficient, &SvConfig::default());
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(s.norm_sqr().is_finite());
        ms
    });
    let total_ms = time_best(reps, || {
        let t = Instant::now();
        let r = backend.run(&ir, 7).expect("sv run succeeds");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r.shots, shots);
        ms
    });
    CaseResult {
        backend: "emu-sv".into(),
        qubits: n,
        shots,
        reps,
        evolve_ms,
        total_ms,
        sample_ms: (total_ms - evolve_ms).max(0.0),
    }
}

fn run_mps_case(n: usize, shots: u32, reps: usize) -> CaseResult {
    let backend = MpsBackend {
        config: MpsConfig {
            chi_max: 8,
            ..MpsConfig::default()
        },
        ..MpsBackend::default()
    };
    let seq = bench_sequence(n);
    let ir = ProgramIr::new(seq.clone(), shots, "bench");
    let spec = backend.spec();
    let evolve_ms = time_best(reps, || {
        let t = Instant::now();
        let m = evolve_sequence_mps(&seq, spec.c6_coefficient, &backend.config);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(m.truncation_error.is_finite());
        ms
    });
    let total_ms = time_best(reps, || {
        let t = Instant::now();
        let r = backend.run(&ir, 7).expect("mps run succeeds");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r.shots, shots);
        ms
    });
    CaseResult {
        backend: "emu-mps".into(),
        qubits: n,
        shots,
        reps,
        evolve_ms,
        total_ms,
        sample_ms: (total_ms - evolve_ms).max(0.0),
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    let out_path = args
        .flags
        .iter()
        .position(|f| f == "--out")
        .and_then(|i| args.flags.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_emulator.json".to_string());

    let shots: u32 = if args.quick { 200 } else { 1000 };
    let reps = args.scaled(3, 1);
    let sv_sizes: &[usize] = if args.quick {
        &[8, 12]
    } else {
        &[8, 12, 14, 16]
    };
    let mps_sizes: &[usize] = if args.quick { &[8] } else { &[8, 12, 16] };

    let mut cases = Vec::new();
    for &n in sv_sizes {
        eprintln!("timing emu-sv n={n} ...");
        cases.push(run_sv_case(n, shots, reps));
    }
    for &n in mps_sizes {
        eprintln!("timing emu-mps n={n} ...");
        cases.push(run_mps_case(n, shots, reps));
    }

    // Gate: every timing must be finite and positive (a panic would have
    // aborted already; NaN/0 indicates a broken clock or kernel).
    for c in &cases {
        for (label, v) in [
            ("evolve_ms", c.evolve_ms),
            ("total_ms", c.total_ms),
            ("sample_ms", c.sample_ms),
        ] {
            if !v.is_finite() || (label != "sample_ms" && v <= 0.0) {
                eprintln!(
                    "non-finite or non-positive timing: {} n={} {label}={v}",
                    c.backend, c.qubits
                );
                std::process::exit(1);
            }
        }
    }

    let speedup = cases
        .iter()
        .find(|c| c.backend == "emu-sv" && c.qubits == 16)
        .map(|c| PRE_PR_SV16_TOTAL_MS / c.total_ms);

    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                c.backend.clone(),
                c.qubits.to_string(),
                format!("{:.2}", c.evolve_ms),
                format!("{:.2}", c.sample_ms),
                format!("{:.2}", c.total_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["backend", "qubits", "evolve(ms)", "sample(ms)", "total(ms)"],
            &rows
        )
    );
    if let Some(s) = speedup {
        println!("sv16 total vs pre-PR baseline {PRE_PR_SV16_TOTAL_MS:.2} ms: {s:.2}x");
    }

    let report = BenchReport {
        benchmark: "emulator_perf".into(),
        commit_note: "allocation-free parallel emulator kernels".into(),
        quick: args.quick,
        unix_time_secs: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        cases,
        baseline_pre_pr: Baseline {
            commit: "b1b38e8".into(),
            sv16_evolve_ms: PRE_PR_SV16_EVOLVE_MS,
            sv16_total_ms: PRE_PR_SV16_TOTAL_MS,
        },
        speedup_sv16_vs_pre_pr: speedup,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
