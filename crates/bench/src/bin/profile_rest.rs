//! Scratch profiler for the REST submit path (not part of the benchmark
//! suite): times each layer of a POST /v1/tasks in isolation.

use hpcqc_emulator::{Emulator, SampleResult};
use hpcqc_middleware::http::parse_head_bytes;
use hpcqc_middleware::rest::serve;
use hpcqc_middleware::{DaemonConfig, MiddlewareService, PriorityClass};
use hpcqc_program::{DeviceSpec, ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc_qrmi::{AcquisitionToken, QrmiError, QuantumResource, ResourceType, TaskId};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Instant;

struct InstantResource {
    spec: DeviceSpec,
}

impl QuantumResource for InstantResource {
    fn resource_id(&self) -> &str {
        "instant-qpu"
    }
    fn resource_type(&self) -> ResourceType {
        ResourceType::QpuDirect
    }
    fn acquire(&self) -> Result<AcquisitionToken, QrmiError> {
        Ok(AcquisitionToken("p".into()))
    }
    fn release(&self, _t: &AcquisitionToken) -> Result<(), QrmiError> {
        Ok(())
    }
    fn target(&self) -> Result<DeviceSpec, QrmiError> {
        Ok(self.spec.clone())
    }
    fn task_start(&self, _t: &AcquisitionToken, ir: &ProgramIr) -> Result<TaskId, QrmiError> {
        Ok(TaskId(format!("instant:{}", ir.shots)))
    }
    fn task_status(&self, _t: &TaskId) -> Result<hpcqc_qrmi::TaskStatus, QrmiError> {
        Ok(hpcqc_qrmi::TaskStatus::Completed)
    }
    fn task_stop(&self, _t: &TaskId) -> Result<(), QrmiError> {
        Ok(())
    }
    fn task_result(&self, task: &TaskId) -> Result<SampleResult, QrmiError> {
        let shots: usize = task
            .0
            .strip_prefix("instant:")
            .and_then(|s| s.parse().ok())
            .ok_or(QrmiError::UnknownTask)?;
        Ok(SampleResult::from_shots(2, &vec![0u64; shots], "instant"))
    }
    fn metadata(&self) -> BTreeMap<String, String> {
        BTreeMap::from([("vendor".into(), "bench".into())])
    }
}

fn bench_program(shots: u32) -> ProgramIr {
    let reg = Register::linear(2, 6.0).expect("valid register");
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).expect("valid pulse"));
    ProgramIr::new(b.build().expect("valid sequence"), shots, "rest-bench")
}

fn time(label: &str, iters: u32, mut f: impl FnMut()) {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    eprintln!("{label:<44} {us:>10.2} us/iter");
}

fn main() {
    let spec = hpcqc_emulator::SvBackend::default().spec();
    let cfg = DaemonConfig {
        validate_on_submit: false,
        analyze_on_submit: false,
        ..DaemonConfig::default()
    };
    let svc = Arc::new(MiddlewareService::new(
        Arc::new(InstantResource { spec }),
        cfg,
    ));
    let token = svc
        .open_session("bench", PriorityClass::Production)
        .unwrap();
    let ir_json = serde_json::to_string(&bench_program(1)).unwrap();
    let body = format!(r#"{{"token":"{token}","ir":{ir_json}}}"#);
    let raw = format!(
        "POST /v1/tasks HTTP/1.1\r\nhost: bench\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    eprintln!("body bytes: {}", body.len());
    let head_end = raw.find("\r\n\r\n").unwrap() + 4;

    const N: u32 = 20_000;

    time("parse_head_bytes", N, || {
        let _ = parse_head_bytes(&raw.as_bytes()[..head_end]).unwrap();
    });
    time("serde_json::from_str::<Value>(body)", N, || {
        let _: serde_json::Value = serde_json::from_str(&body).unwrap();
    });
    time("Value -> ProgramIr deserialize", N, || {
        let v: serde_json::Value = serde_json::from_str(&ir_json).unwrap();
        let _: ProgramIr = serde_json::from_value(v).unwrap();
    });
    time("svc.submit (in-process)", N, || {
        let ir = bench_program(1);
        let _ = svc
            .submit(&token, ir, hpcqc_scheduler::PatternHint::None)
            .unwrap();
    });

    // Full handler through the router, no sockets.
    let parsed = parse_head_bytes(&raw.as_bytes()[..head_end]).unwrap();
    let mut req = parsed.request;
    req.body = body.clone().into_bytes();
    time("route() (parse body + submit + 201)", N, || {
        let resp = hpcqc_middleware::rest::route(&svc, &req);
        assert_eq!(resp.status, 201);
    });

    let metrics = hpcqc_telemetry::TransportMetrics::new(svc.registry().clone());
    time("TransportMetrics.request(201)", N, || {
        metrics.request(201);
    });

    // Dispatcher drain cost per task: submit a block, then pump it dry.
    for _ in 0..N {
        let _ = svc
            .submit(&token, bench_program(1), hpcqc_scheduler::PatternHint::None)
            .unwrap();
    }
    let t0 = Instant::now();
    let mut drained = 0usize;
    while drained < N as usize {
        let got = svc.pump_batch(64);
        if got == 0 {
            break;
        }
        drained += got;
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / drained.max(1) as f64;
    eprintln!(
        "{:<44} {us:>10.2} us/task ({drained} drained)",
        "pump_batch dispatch+complete"
    );

    // Serial closed-loop over a real socket: server+client on this core.
    let server = serve(Arc::clone(&svc)).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut buf = [0u8; 4096];
    let t0 = Instant::now();
    let m: u32 = 20_000;
    for _ in 0..m {
        stream.write_all(raw.as_bytes()).unwrap();
        let mut got = 0usize;
        loop {
            let n = stream.read(&mut buf[got..]).unwrap();
            got += n;
            if buf[..got].windows(4).any(|w| w == b"\r\n\r\n") {
                break;
            }
        }
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / m as f64;
    eprintln!(
        "{:<44} {us:>10.2} us/iter ({:.0}/s serial)",
        "socket round trip (closed loop, 1 conn)",
        1e6 / us
    );
}
