//! Experiment S2 — the §2.5/§3.6 observability claims, measured.
//!
//! 1. **Drift detection**: a laser-power degradation is injected into the
//!    virtual QPU mid-run; the z-score and CUSUM detectors watch the
//!    telemetry series and we report their detection latencies — plus the
//!    fact that QA-probe *results* lag the telemetry (monitoring beats
//!    waiting for bad science).
//! 2. **Alerting lifecycle**: a Prometheus-style threshold rule walks
//!    through inactive → pending → firing → resolved.
//! 3. **Exposition**: the device's metrics render in genuine Prometheus
//!    text format, ready for an existing site stack.
//!
//! Run: `cargo run -p hpcqc-bench --bin observability [--quick]`

use hpcqc_bench::{render_table, HarnessArgs};
use hpcqc_qpu::{run_qa, VirtualQpu};
use hpcqc_telemetry::{
    AlertManager, AlertRule, AlertState, Cmp, CusumDetector, Detection, ZScoreDetector,
};

fn main() {
    let args = HarnessArgs::from_env();
    println!("== Observability stack reproduction (paper §2.5 / §3.6) ==\n");
    drift_detection_experiment(&args);
    alert_lifecycle_experiment();
    exposition_sample();
}

fn drift_detection_experiment(args: &HarnessArgs) {
    println!("-- drift detection latency: injected 8% laser-power fade --");
    let ticks = args.scaled(600, 200);
    let fault_at = ticks / 2;
    let tick_secs = 60.0;

    let mut rows = Vec::new();
    for &seed in &[11u64, 12, 13] {
        let qpu = VirtualQpu::new("fresnel-1", seed);
        // warm telemetry + detectors on the healthy baseline; thresholds
        // sized to the servo's stationary wander (σ_stat ≈ 0.14%)
        let mut z = ZScoreDetector::new(60, 5.0).with_min_std(1e-3);
        let mut cusum = CusumDetector::new(60, 3e-3, 2e-2);
        let mut z_detect: Option<usize> = None;
        let mut cusum_detect: Option<usize> = None;
        let mut qa_flag: Option<usize> = None;
        for t in 0..ticks {
            // slow fade: ~8% laser-power loss spread over 40 ticks
            if t >= fault_at && t < fault_at + 40 {
                qpu.inject_rabi_fault(0.002);
            }
            qpu.advance_time(tick_secs);
            let v = qpu
                .tsdb()
                .last("qpu_rabi_scale")
                .expect("telemetry recorded")
                .value;
            if z_detect.is_none() {
                if let Detection::Drift { .. } = z.update(v) {
                    z_detect = Some(t);
                }
            }
            if cusum_detect.is_none() {
                if let Detection::Drift { .. } = cusum.update(v) {
                    cusum_detect = Some(t);
                }
            }
            // a QA probe every 50 ticks — the "wait for bad science" baseline
            if qa_flag.is_none() && t % 50 == 49 {
                let report =
                    run_qa(&qpu, 300, 0.03, seed * 1000 + t as u64).expect("device operational");
                if report.health < 0.97 {
                    qa_flag = Some(t);
                }
            }
        }
        // step fault on a fresh device: the z-score's home turf
        let qpu2 = VirtualQpu::new("fresnel-2", seed + 100);
        let mut z_step = ZScoreDetector::new(60, 5.0).with_min_std(1e-3);
        let mut z_step_detect: Option<usize> = None;
        for t in 0..ticks {
            if t == fault_at {
                qpu2.inject_rabi_fault(0.08); // abrupt 8% drop
            }
            qpu2.advance_time(tick_secs);
            let v = qpu2.tsdb().last("qpu_rabi_scale").expect("telemetry").value;
            if z_step_detect.is_none() {
                if let Detection::Drift { .. } = z_step.update(v) {
                    z_step_detect = Some(t);
                }
            }
        }

        let lat = |d: Option<usize>| -> String {
            match d {
                Some(t) if t >= fault_at => {
                    format!("{} min", (t - fault_at) as f64 * tick_secs / 60.0)
                }
                Some(t) => format!("FALSE ALARM at tick {t}"),
                None => "missed".into(),
            }
        };
        rows.push(vec![
            format!("{seed}"),
            lat(z_detect),
            lat(cusum_detect),
            lat(z_step_detect),
            lat(qa_flag),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "seed",
                "z-score (fade)",
                "CUSUM (fade)",
                "z-score (step)",
                "QA-probe (fade)"
            ],
            &rows
        )
    );
    println!("Expected shape: CUSUM catches the slow fade within minutes; the rolling");
    println!("z-score misses it (its baseline absorbs sub-threshold drift) but nails the");
    println!("abrupt step — the two detectors are complementary, which is why the stack");
    println!("runs both. The π-pulse QA probe is only *quadratically* sensitive to");
    println!("Rabi-scale error, so an 8% fade barely moves job results: results-level");
    println!("checks miss what telemetry catches (§3.6 telemetry-first monitoring).\n");
}

fn alert_lifecycle_experiment() {
    println!("-- alert rule lifecycle (Prometheus semantics) --");
    let qpu = VirtualQpu::new("fresnel-1", 77);
    let mut mgr = AlertManager::new(qpu.tsdb().clone());
    mgr.add_rule(AlertRule {
        name: "qpu_rabi_scale_low".into(),
        series: "qpu_rabi_scale".into(),
        window_secs: 600.0,
        cmp: Cmp::LessThan,
        threshold: 0.95,
        for_secs: 1200.0,
    });
    let mut transitions = Vec::new();
    for t in 0..120 {
        if t == 40 {
            qpu.inject_rabi_fault(0.10);
        }
        if t == 80 {
            qpu.recalibrate(60.0);
        }
        qpu.advance_time(60.0);
        for ev in mgr.evaluate(qpu.now()) {
            transitions.push(format!(
                "t={:>5.0}s  {}  -> {:?} (value {:.3})",
                ev.at, ev.rule, ev.state, ev.value
            ));
        }
    }
    for t in &transitions {
        println!("  {t}");
    }
    let states: Vec<&str> = transitions
        .iter()
        .map(|s| {
            if s.contains("Pending") {
                "Pending"
            } else if s.contains("Firing") {
                "Firing"
            } else {
                "Inactive"
            }
        })
        .collect();
    assert_eq!(
        states,
        vec!["Pending", "Firing", "Inactive"],
        "full pending→firing→resolved lifecycle observed"
    );
    assert_eq!(mgr.state("qpu_rabi_scale_low"), Some(AlertState::Inactive));
    println!("  lifecycle verified: Pending -> Firing -> Inactive (resolved)\n");
}

fn exposition_sample() {
    println!("-- /metrics exposition sample (scrapeable by a site Prometheus) --");
    let qpu = VirtualQpu::new("fresnel-1", 5);
    qpu.advance_time(60.0);
    run_qa(&qpu, 100, 0.03, 9).expect("operational");
    for line in qpu.registry().expose().lines().take(18) {
        println!("  {line}");
    }
}
