//! Ablation benches on the batch scheduler simulator (DESIGN.md §5).
//!
//! * event throughput (simulated jobs per wall second), which sizes the
//!   Table-1 sweeps,
//! * the cost of conservative backfill and preemption relative to plain
//!   FIFO — the scheduling features are cheap even in simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcqc_scheduler::{
    standard_partitions, Cluster, JobSpec, MalleableJob, MalleableSim, MalleableSpec, SchedPolicy,
    SlurmSim,
};
use hpcqc_workloads::{generate_population, to_batch_spec, PatternGenConfig};
use std::hint::black_box;

fn run_sim(n_jobs: usize, policy: SchedPolicy) -> usize {
    let cluster = Cluster::new(64).with_gres("qpu", 10);
    let mut sim = SlurmSim::new(cluster, standard_partitions(), policy);
    let jobs = generate_population(n_jobs, (1.0, 1.0, 1.0), &PatternGenConfig::default(), 3);
    for j in &jobs {
        sim.submit_at(to_batch_spec(j, 10), j.arrival)
            .expect("valid spec");
    }
    sim.run_to_completion();
    sim.jobs().filter(|j| j.end_time.is_some()).count()
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/jobs");
    group.sample_size(15);
    for &n in &[100usize, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(run_sim(n, SchedPolicy::default())))
        });
    }
    group.finish();
}

fn bench_policy_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/policy_ablation");
    group.sample_size(15);
    let cases = [
        (
            "fifo_only",
            SchedPolicy {
                backfill: false,
                preemption: false,
                ..SchedPolicy::default()
            },
        ),
        (
            "backfill",
            SchedPolicy {
                backfill: true,
                preemption: false,
                ..SchedPolicy::default()
            },
        ),
        (
            "backfill+preempt",
            SchedPolicy {
                backfill: true,
                preemption: true,
                ..SchedPolicy::default()
            },
        ),
    ];
    for (name, policy) in cases {
        group.bench_function(name, |b| b.iter(|| black_box(run_sim(200, policy))));
    }
    group.finish();
}

fn bench_burst_submission(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/burst");
    group.sample_size(15);
    group.bench_function("500_jobs_at_t0", |b| {
        b.iter(|| {
            let mut sim = SlurmSim::new(
                Cluster::new(64),
                standard_partitions(),
                SchedPolicy::default(),
            );
            for i in 0..500u32 {
                sim.submit_at(
                    JobSpec::classical(&format!("j{i}"), "u", "test", 1 + i % 4, 60.0),
                    0.0,
                )
                .expect("valid");
            }
            sim.run_to_completion();
            black_box(sim.now())
        })
    });
    group.finish();
}

fn bench_malleable_vs_rigid(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/malleable_ablation");
    group.sample_size(15);
    let build = |malleable: bool| {
        let mut sim = MalleableSim::new(16, malleable);
        for i in 0..40u64 {
            sim.submit(MalleableJob {
                name: format!("j{i}"),
                spec: MalleableSpec::new(1 + (i % 3) as u32, 8, 400.0 + 40.0 * (i % 7) as f64),
                arrival: 15.0 * i as f64,
            });
        }
        sim
    };
    group.bench_function("rigid", |b| {
        b.iter(|| black_box(build(false).run().makespan_secs))
    });
    group.bench_function("malleable", |b| {
        b.iter(|| black_box(build(true).run().makespan_secs))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_throughput,
    bench_policy_ablation,
    bench_burst_submission,
    bench_malleable_vs_rigid
);
criterion_main!(benches);
