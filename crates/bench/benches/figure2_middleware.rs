//! Criterion bench for the Figure-2 middleware path: daemon overhead.
//!
//! The paper argues the daemon indirection is affordable because device
//! shots are O(seconds). These benches quantify it: in-process
//! submit→dispatch→result cost, REST round-trip latency over localhost, and
//! session-open cost — all orders of magnitude below the 1 s/shot budget.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcqc_core::DaemonClient;
use hpcqc_emulator::SvBackend;
use hpcqc_middleware::rest::serve;
use hpcqc_middleware::{DaemonConfig, MiddlewareService, PriorityClass};
use hpcqc_program::{ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc_qrmi::LocalEmulatorResource;
use hpcqc_scheduler::PatternHint;
use std::hint::black_box;
use std::sync::Arc;

fn tiny_ir(shots: u32) -> ProgramIr {
    let reg = Register::from_coords(&[(0.0, 0.0)]).expect("single site");
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.1, 4.0, 0.0, 0.0).expect("valid pulse"));
    ProgramIr::new(b.build().expect("non-empty"), shots, "bench")
}

fn service() -> Arc<MiddlewareService> {
    let res = Arc::new(LocalEmulatorResource::new(
        "emu",
        Arc::new(SvBackend::default()),
        1,
    ));
    Arc::new(MiddlewareService::new(res, DaemonConfig::default()))
}

fn bench_inprocess_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2/inprocess");
    group.sample_size(30);
    let svc = service();
    let token = svc
        .open_session("bench", PriorityClass::Production)
        .expect("session");
    let ir = tiny_ir(10);
    group.bench_function("submit_dispatch_result", |b| {
        b.iter(|| {
            let id = svc
                .submit(&token, black_box(ir.clone()), PatternHint::None)
                .expect("submits");
            svc.pump();
            black_box(svc.task_result(id).expect("completed"))
        })
    });
    group.finish();
}

fn bench_rest_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2/rest");
    group.sample_size(30);
    let server = serve(service()).expect("binds");
    let client = DaemonClient::new(server.addr());
    group.bench_function("target_spec_get", |b| {
        b.iter(|| black_box(client.target().expect("target")))
    });
    group.bench_function("session_open_close", |b| {
        b.iter(|| {
            let s = client
                .open_session("bench", PriorityClass::Test)
                .expect("opens");
            s.close().expect("closes")
        })
    });
    let session = client
        .open_session("bench", PriorityClass::Production)
        .expect("session");
    let ir = tiny_ir(10);
    group.bench_function("full_task_over_rest", |b| {
        b.iter(|| {
            black_box(
                session
                    .run(black_box(&ir), PatternHint::None)
                    .expect("runs"),
            )
        })
    });
    group.finish();
}

fn bench_validation_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2/validation");
    let spec = hpcqc_program::DeviceSpec::analog_production();
    let reg = Register::linear(50, 6.0).expect("valid chain");
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(1.0, 6.0, -4.0, 0.0).expect("valid pulse"));
    let seq = b.build().expect("non-empty");
    group.bench_function("validate_50q_program", |bch| {
        bch.iter(|| black_box(hpcqc_program::validate(black_box(&seq), &spec)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_inprocess_path,
    bench_rest_roundtrip,
    bench_validation_cost
);
criterion_main!(benches);
