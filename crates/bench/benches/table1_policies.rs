//! Criterion bench for the Table-1 engine: co-simulation cost per policy.
//!
//! Measures how expensive one full co-simulated site run is under each
//! second-level policy, so the T1 harness's parameter sweeps can be sized —
//! and documents that pattern-aware admission adds no meaningful scheduler
//! overhead over plain FIFO (the policy logic is not the bottleneck).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcqc_middleware::{AdmissionPolicy, Cosim, CosimConfig, QpuPolicy};
use hpcqc_workloads::{generate_population, PatternGenConfig};
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/cosim_policies");
    group.sample_size(20);
    let jobs = generate_population(100, (1.0, 1.0, 1.0), &PatternGenConfig::default(), 7);
    let cases = [
        ("sequential", AdmissionPolicy::Sequential, QpuPolicy::Fifo),
        (
            "fifo-interleave",
            AdmissionPolicy::NodeLimited,
            QpuPolicy::Fifo,
        ),
        (
            "priority-interleave",
            AdmissionPolicy::NodeLimited,
            QpuPolicy::Priority { preemption: true },
        ),
        (
            "pattern-aware",
            AdmissionPolicy::PatternAware { target_duty: 1.2 },
            QpuPolicy::Priority { preemption: true },
        ),
    ];
    for (name, admission, qpu_policy) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let report = Cosim::new(
                    CosimConfig {
                        nodes: 32,
                        admission,
                        qpu_policy,
                        chunk_secs: 10.0,
                    },
                    black_box(jobs.clone()),
                )
                .run();
                black_box(report.qpu_utilization)
            })
        });
    }
    group.finish();
}

fn bench_population_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/population_scaling");
    group.sample_size(15);
    for &n in &[50usize, 200, 800] {
        let jobs = generate_population(n, (1.0, 1.0, 1.0), &PatternGenConfig::default(), 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                Cosim::new(CosimConfig::default(), black_box(jobs.clone()))
                    .run()
                    .completed
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_population_scaling);
criterion_main!(benches);
