//! Criterion bench for the Figure-1 backends: what each environment costs.
//!
//! The portability story has a compute side: the laptop state-vector
//! emulator is exact but exponential; the tensor-network emulator trades
//! accuracy (χ) for polynomial cost; the χ=1 mock is nearly free. These
//! benches chart that trade-off for the same unchanged program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcqc_emulator::{Emulator, MpsBackend, MpsConfig, SvBackend};
use hpcqc_program::{ProgramIr, Register};
use hpcqc_workloads::{mis_program, MisSweep};
use std::hint::black_box;

fn program(n_atoms: usize, shots: u32) -> ProgramIr {
    let reg = Register::linear(n_atoms, 6.0).expect("valid chain");
    let sweep = MisSweep {
        duration: 1.0,
        ..MisSweep::default()
    };
    mis_program(&reg, &sweep, shots)
}

fn bench_sv_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1/emu_sv_qubits");
    group.sample_size(10);
    for &n in &[4usize, 6, 8, 10] {
        let ir = program(n, 50);
        let backend = SvBackend::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(backend.run(black_box(&ir), 3).expect("runs")))
        });
    }
    group.finish();
}

fn bench_mps_chi(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1/emu_mps_chi");
    group.sample_size(10);
    let ir = program(8, 50);
    for &chi in &[1usize, 4, 16] {
        let backend = MpsBackend {
            config: MpsConfig {
                chi_max: chi,
                max_dt: 2e-3,
                ..MpsConfig::default()
            },
            ..MpsBackend::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(chi), &chi, |b, _| {
            b.iter(|| black_box(backend.run(black_box(&ir), 3).expect("runs")))
        });
    }
    group.finish();
}

fn bench_mock_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1/mock_vs_exact");
    group.sample_size(10);
    let ir = program(10, 50);
    let mock = MpsBackend::product_state_mock();
    let exact = SvBackend::default();
    group.bench_function("mock_chi1", |b| {
        b.iter(|| black_box(mock.run(black_box(&ir), 3).expect("runs")))
    });
    group.bench_function("exact_sv", |b| {
        b.iter(|| black_box(exact.run(black_box(&ir), 3).expect("runs")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sv_scaling,
    bench_mps_chi,
    bench_mock_vs_exact
);
criterion_main!(benches);
