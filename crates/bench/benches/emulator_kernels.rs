//! Ablation benches on the emulator kernels (DESIGN.md §5).
//!
//! * `apply_h` scaling with qubit count — the state-vector backend's
//!   exponential wall, motivating the MPS path for HPC-scale testing,
//! * MPS two-site gate cost vs bond dimension — the χ³ knee,
//! * sampling cost, which dominates high-shot emulator jobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcqc_emulator::hamiltonian::RydbergHamiltonian;
use hpcqc_emulator::linalg::expm_2x2_hermitian;
use hpcqc_emulator::mps::{drive_hamiltonian, interaction_gate, Mps, MpsConfig};
use hpcqc_emulator::statevector::{apply_h, StateVector};
use hpcqc_program::units::C6_COEFF;
use hpcqc_program::Register;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_apply_h(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/apply_h_qubits");
    for &n in &[8usize, 12, 16] {
        let reg = Register::linear(n, 6.0).expect("valid chain");
        let h = RydbergHamiltonian::new(&reg, C6_COEFF);
        let psi = StateVector::ground(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(apply_h(&h, black_box(&psi.amps), 4.0, -2.0, 0.0)))
        });
    }
    group.finish();
}

fn entangled_mps(n: usize, chi: usize) -> Mps {
    // build up entanglement with a few interaction layers
    let mut mps = Mps::ground(
        n,
        MpsConfig {
            chi_max: chi,
            ..MpsConfig::default()
        },
    );
    let u = expm_2x2_hermitian(&drive_hamiltonian(4.0, 0.0, 0.0), 0.2);
    let g = interaction_gate(50.0, 0.05);
    for _ in 0..4 {
        for i in 0..n {
            mps.apply_one_site(i, &u);
        }
        for i in 0..n - 1 {
            mps.apply_two_site(i, &g, true);
        }
    }
    mps
}

fn bench_mps_gate_vs_chi(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/mps_two_site_chi");
    group.sample_size(20);
    for &chi in &[4usize, 8, 16, 32] {
        let mps = entangled_mps(12, chi);
        let g = interaction_gate(50.0, 0.05);
        group.bench_with_input(BenchmarkId::from_parameter(chi), &chi, |b, _| {
            b.iter_batched(
                || mps.clone(),
                |mut m| {
                    m.apply_two_site(5, &g, true);
                    black_box(m.max_bond())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_mps_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/mps_sampling");
    group.sample_size(20);
    let mps = entangled_mps(16, 16);
    group.bench_function("sample_16q_chi16", |b| {
        b.iter_batched(
            || (mps.clone(), ChaCha8Rng::seed_from_u64(5)),
            |(mut m, mut rng)| {
                let mut acc = 0u64;
                for _ in 0..100 {
                    acc ^= m.sample(&mut rng);
                }
                black_box(acc)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_apply_h,
    bench_mps_gate_vs_chi,
    bench_mps_sampling
);
criterion_main!(benches);
