//! Instrumented resource decorator: simulated timing, fault injection and
//! profiling for emulator-backed development.
//!
//! The paper's discussion (§4, *Emulation and testability*) notes that plain
//! emulator modes are "best suited to functional validation, not performance
//! evaluation" and calls for "profiling, fault injection, or simulated QPU
//! timing to enable more realistic development". [`InstrumentedResource`]
//! wraps any [`QuantumResource`] and adds exactly that:
//!
//! * **simulated QPU timing** — results report the wall-clock the program
//!   *would* take on hardware (`shots / shot_rate + overhead`), so hybrid
//!   workflows can be performance-profiled on a laptop,
//! * **fault injection** — seeded, probabilistic task failures and
//!   acquisition rejections, so retry/fallback logic in runtimes and
//!   workflow engines can be exercised deterministically,
//! * **profiling** — a per-operation trace (counts + simulated durations)
//!   retrievable by the test harness.

use crate::resource::{
    AcquisitionToken, QrmiError, QuantumResource, ResourceType, TaskId, TaskStatus,
};
use hpcqc_emulator::SampleResult;
use hpcqc_program::{DeviceSpec, ProgramIr};
use hpcqc_sync::{rank, TrackedMutex as Mutex};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Fault-injection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a `task_start` fails with a backend error.
    pub task_failure_prob: f64,
    /// Probability an `acquire` is rejected (device busy).
    pub acquire_denial_prob: f64,
}

impl FaultConfig {
    /// No injected faults.
    pub fn none() -> Self {
        FaultConfig {
            task_failure_prob: 0.0,
            acquire_denial_prob: 0.0,
        }
    }

    pub fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.task_failure_prob)
            && (0.0..=1.0).contains(&self.acquire_denial_prob)
    }
}

/// Simulated-hardware timing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Simulated shot rate (Hz) stamped onto results.
    pub shot_rate_hz: f64,
    /// Fixed per-task overhead (register load, rearrangement), seconds.
    pub overhead_secs: f64,
}

impl TimingModel {
    /// Today's production profile: 1 Hz, 3 s overhead (§2.2.1).
    pub fn production_1hz() -> Self {
        TimingModel {
            shot_rate_hz: 1.0,
            overhead_secs: 3.0,
        }
    }

    /// Roadmap profile: 100 Hz.
    pub fn roadmap_100hz() -> Self {
        TimingModel {
            shot_rate_hz: 100.0,
            overhead_secs: 3.0,
        }
    }

    /// Simulated device seconds for a task.
    pub fn task_secs(&self, shots: u32) -> f64 {
        self.overhead_secs + shots as f64 / self.shot_rate_hz
    }
}

/// Wall-clock profile of *real* emulator kernel invocations — as opposed to
/// the simulated device timing of [`TimingModel`]. QRMI resources that run
/// an in-process emulator record how much host CPU each `Emulator::run`
/// consumed, so regressions in the classical kernels show up in resource
/// metadata without a dedicated benchmark run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Completed `Emulator::run` invocations (including failed ones — a
    /// rejected program still costs validation/evolution time).
    pub runs: u64,
    /// Accumulated wall-clock seconds across all runs.
    pub total_secs: f64,
    /// Wall-clock seconds of the most recent run.
    pub last_secs: f64,
}

impl KernelProfile {
    /// Fold one completed run into the profile.
    pub fn record(&mut self, secs: f64) {
        self.runs += 1;
        self.total_secs += secs;
        self.last_secs = secs;
    }

    /// Mean wall-clock seconds per run (0 before the first run).
    pub fn mean_secs(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.total_secs / self.runs as f64
        }
    }

    /// Render into resource metadata under `kernel_*` keys.
    pub fn to_metadata(self, m: &mut BTreeMap<String, String>) {
        m.insert("kernel_runs".into(), self.runs.to_string());
        m.insert(
            "kernel_secs_total".into(),
            format!("{:.6}", self.total_secs),
        );
        m.insert(
            "kernel_secs_mean".into(),
            format!("{:.6}", self.mean_secs()),
        );
    }
}

/// One profiled operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileEntry {
    pub op: String,
    pub count: u64,
    /// Accumulated *simulated* seconds (task executions only).
    pub simulated_secs: f64,
}

/// The decorator.
pub struct InstrumentedResource {
    inner: Arc<dyn QuantumResource>,
    timing: TimingModel,
    faults: FaultConfig,
    rng: Mutex<ChaCha8Rng>,
    profile: Mutex<BTreeMap<String, ProfileEntry>>,
    /// Remember per-task shot counts so `task_result` can stamp timing.
    task_shots: Mutex<BTreeMap<String, u32>>,
}

impl InstrumentedResource {
    pub fn new(
        inner: Arc<dyn QuantumResource>,
        timing: TimingModel,
        faults: FaultConfig,
        seed: u64,
    ) -> Self {
        assert!(faults.is_valid(), "fault probabilities must be in [0,1]");
        InstrumentedResource {
            inner,
            timing,
            faults,
            rng: Mutex::new(
                "qrmi.instrument.rng",
                rank::QRMI_RNG,
                ChaCha8Rng::seed_from_u64(seed),
            ),
            profile: Mutex::new(
                "qrmi.instrument.profile",
                rank::QRMI_PROFILE,
                BTreeMap::new(),
            ),
            task_shots: Mutex::new(
                "qrmi.instrument.task_shots",
                rank::QRMI_SHOTS,
                BTreeMap::new(),
            ),
        }
    }

    fn record(&self, op: &str, simulated_secs: f64) {
        let mut p = self.profile.lock();
        let e = p.entry(op.to_string()).or_insert_with(|| ProfileEntry {
            op: op.to_string(),
            count: 0,
            simulated_secs: 0.0,
        });
        e.count += 1;
        e.simulated_secs += simulated_secs;
    }

    /// The profiling trace, sorted by operation name.
    pub fn profile(&self) -> Vec<ProfileEntry> {
        self.profile.lock().values().cloned().collect()
    }

    /// Total simulated device seconds across completed tasks.
    pub fn simulated_device_secs(&self) -> f64 {
        self.profile.lock().values().map(|e| e.simulated_secs).sum()
    }
}

impl QuantumResource for InstrumentedResource {
    fn resource_id(&self) -> &str {
        self.inner.resource_id()
    }

    fn resource_type(&self) -> ResourceType {
        self.inner.resource_type()
    }

    fn acquire(&self) -> Result<AcquisitionToken, QrmiError> {
        self.record("acquire", 0.0);
        if self.faults.acquire_denial_prob > 0.0
            && self.rng.lock().gen::<f64>() < self.faults.acquire_denial_prob
        {
            return Err(QrmiError::AcquisitionDenied(
                "injected fault: device busy".into(),
            ));
        }
        self.inner.acquire()
    }

    fn release(&self, token: &AcquisitionToken) -> Result<(), QrmiError> {
        self.record("release", 0.0);
        self.inner.release(token)
    }

    fn target(&self) -> Result<DeviceSpec, QrmiError> {
        self.record("target", 0.0);
        // advertise the simulated shot rate so runtimes plan with it
        let mut spec = self.inner.target()?;
        spec.shot_rate_hz = self.timing.shot_rate_hz;
        Ok(spec)
    }

    fn task_start(&self, token: &AcquisitionToken, ir: &ProgramIr) -> Result<TaskId, QrmiError> {
        if self.faults.task_failure_prob > 0.0
            && self.rng.lock().gen::<f64>() < self.faults.task_failure_prob
        {
            self.record("task_start_injected_failure", 0.0);
            return Err(QrmiError::Backend("injected fault: task lost".into()));
        }
        let id = self.inner.task_start(token, ir)?;
        self.task_shots.lock().insert(id.0.clone(), ir.shots);
        self.record("task_start", 0.0);
        Ok(id)
    }

    fn task_status(&self, task: &TaskId) -> Result<TaskStatus, QrmiError> {
        self.inner.task_status(task)
    }

    fn task_stop(&self, task: &TaskId) -> Result<(), QrmiError> {
        self.record("task_stop", 0.0);
        self.inner.task_stop(task)
    }

    fn task_result(&self, task: &TaskId) -> Result<SampleResult, QrmiError> {
        let mut result = self.inner.task_result(task)?;
        let shots = self
            .task_shots
            .lock()
            .get(&task.0)
            .copied()
            .unwrap_or(result.shots);
        let secs = self.timing.task_secs(shots);
        result.execution_secs = secs;
        self.record("task_result", secs);
        Ok(result)
    }

    fn metadata(&self) -> BTreeMap<String, String> {
        let mut m = self.inner.metadata();
        m.insert("instrumented".into(), "true".into());
        m.insert(
            "simulated_shot_rate_hz".into(),
            self.timing.shot_rate_hz.to_string(),
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::LocalEmulatorResource;
    use crate::resource::run_to_completion;
    use hpcqc_emulator::SvBackend;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};

    fn ir(shots: u32) -> ProgramIr {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.2, 4.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "instr-test")
    }

    fn instrumented(faults: FaultConfig, timing: TimingModel) -> InstrumentedResource {
        let inner = Arc::new(LocalEmulatorResource::new(
            "emu",
            Arc::new(SvBackend::default()),
            1,
        ));
        InstrumentedResource::new(inner, timing, faults, 7)
    }

    #[test]
    fn simulated_timing_stamped_on_results() {
        let r = instrumented(FaultConfig::none(), TimingModel::production_1hz());
        let tok = r.acquire().unwrap();
        let res = run_to_completion(&r, &tok, &ir(120), 10).unwrap();
        assert!(
            (res.execution_secs - 123.0).abs() < 1e-9,
            "3s overhead + 120s shots"
        );
        // the advertised spec carries the simulated rate
        assert_eq!(r.target().unwrap().shot_rate_hz, 1.0);
        // roadmap profile is 100x faster
        let fast = instrumented(FaultConfig::none(), TimingModel::roadmap_100hz());
        let tok = fast.acquire().unwrap();
        let res = run_to_completion(&fast, &tok, &ir(120), 10).unwrap();
        assert!((res.execution_secs - 4.2).abs() < 1e-9);
    }

    #[test]
    fn profile_records_operations() {
        let r = instrumented(FaultConfig::none(), TimingModel::production_1hz());
        let tok = r.acquire().unwrap();
        for _ in 0..3 {
            run_to_completion(&r, &tok, &ir(10), 10).unwrap();
        }
        r.release(&tok).unwrap();
        let profile = r.profile();
        let find = |op: &str| profile.iter().find(|e| e.op == op).map(|e| e.count);
        assert_eq!(find("acquire"), Some(1));
        assert_eq!(find("release"), Some(1));
        assert_eq!(find("task_start"), Some(3));
        assert_eq!(find("task_result"), Some(3));
        assert!((r.simulated_device_secs() - 3.0 * 13.0).abs() < 1e-9);
    }

    #[test]
    fn injected_task_failures_are_seeded_and_bounded() {
        let r = instrumented(
            FaultConfig {
                task_failure_prob: 0.5,
                acquire_denial_prob: 0.0,
            },
            TimingModel::production_1hz(),
        );
        let tok = r.acquire().unwrap();
        let mut failures = 0;
        let trials = 200;
        for _ in 0..trials {
            if r.task_start(&tok, &ir(1)).is_err() {
                failures += 1;
            }
        }
        let rate = failures as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.12, "failure rate {rate}");
        // deterministic: same seed, same sequence
        let r2 = instrumented(
            FaultConfig {
                task_failure_prob: 0.5,
                acquire_denial_prob: 0.0,
            },
            TimingModel::production_1hz(),
        );
        let tok2 = r2.acquire().unwrap();
        let mut failures2 = 0;
        for _ in 0..trials {
            if r2.task_start(&tok2, &ir(1)).is_err() {
                failures2 += 1;
            }
        }
        assert_eq!(failures, failures2);
    }

    #[test]
    fn injected_acquire_denials() {
        let r = instrumented(
            FaultConfig {
                task_failure_prob: 0.0,
                acquire_denial_prob: 1.0,
            },
            TimingModel::production_1hz(),
        );
        assert!(matches!(r.acquire(), Err(QrmiError::AcquisitionDenied(_))));
    }

    #[test]
    fn metadata_marks_instrumentation() {
        let r = instrumented(FaultConfig::none(), TimingModel::roadmap_100hz());
        let m = r.metadata();
        assert_eq!(m["instrumented"], "true");
        assert_eq!(m["simulated_shot_rate_hz"], "100");
    }

    #[test]
    #[should_panic(expected = "fault probabilities")]
    fn invalid_fault_config_rejected() {
        instrumented(
            FaultConfig {
                task_failure_prob: 1.5,
                acquire_denial_prob: 0.0,
            },
            TimingModel::production_1hz(),
        );
    }
}
