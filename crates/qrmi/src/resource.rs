//! The Quantum Resource Management Interface (QRMI).
//!
//! Mirrors the vendor-neutral API surface proposed in paper ref [23]: a
//! resource is *acquired*, *tasks* are started/polled/stopped/fetched on it,
//! and its *target* (current device spec) and *metadata* are queryable. Every
//! backend in the stack — local emulator, cloud emulator, cloud QPU, on-prem
//! QPU — implements this one trait, which is what makes the runtime's
//! `--qpu=<resource>` switch possible without touching program source.

use hpcqc_emulator::{SampleResult, SweepPoint};
use hpcqc_program::{DeviceSpec, ProgramIr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The four resource flavors exposed to the scheduler (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResourceType {
    /// On-premises QPU reached directly from the quantum access node.
    QpuDirect,
    /// Vendor-cloud QPU reached over the WAN.
    QpuCloud,
    /// Vendor-cloud emulator (e.g. large tensor-network instances).
    EmulatorCloud,
    /// Emulator running locally in the user's environment.
    EmulatorLocal,
}

impl ResourceType {
    /// Parse the configuration string form (`"qpu:direct"`, ...).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "qpu:direct" => Some(ResourceType::QpuDirect),
            "qpu:cloud" => Some(ResourceType::QpuCloud),
            "emulator:cloud" => Some(ResourceType::EmulatorCloud),
            "emulator:local" => Some(ResourceType::EmulatorLocal),
            _ => None,
        }
    }

    /// The canonical configuration string.
    pub fn as_str(&self) -> &'static str {
        match self {
            ResourceType::QpuDirect => "qpu:direct",
            ResourceType::QpuCloud => "qpu:cloud",
            ResourceType::EmulatorCloud => "emulator:cloud",
            ResourceType::EmulatorLocal => "emulator:local",
        }
    }
}

/// Opaque lease handle returned by [`QuantumResource::acquire`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AcquisitionToken(pub String);

/// Opaque task identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskId(pub String);

/// Lifecycle of a task on a resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskStatus {
    /// Accepted, waiting for the backend.
    Queued,
    /// Executing.
    Running,
    /// Finished; result available via `task_result`.
    Completed,
    /// Failed; message describes why.
    Failed(String),
    /// Stopped by the client before completion.
    Cancelled,
}

/// Errors surfaced through the QRMI.
#[derive(Debug, Clone, PartialEq)]
pub enum QrmiError {
    /// Acquisition rejected (exclusive resource already leased, quota, ...).
    AcquisitionDenied(String),
    /// Token not recognized or already released.
    InvalidToken,
    /// Task id not recognized.
    UnknownTask,
    /// Task is not in a state where the operation applies.
    InvalidState(String),
    /// The backend rejected or failed the program.
    Backend(String),
}

impl std::fmt::Display for QrmiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QrmiError::AcquisitionDenied(m) => write!(f, "acquisition denied: {m}"),
            QrmiError::InvalidToken => write!(f, "invalid or released acquisition token"),
            QrmiError::UnknownTask => write!(f, "unknown task id"),
            QrmiError::InvalidState(m) => write!(f, "invalid task state: {m}"),
            QrmiError::Backend(m) => write!(f, "backend error: {m}"),
        }
    }
}

impl std::error::Error for QrmiError {}

/// The QRMI resource trait.
///
/// Implementations are thread-safe: the middleware daemon serves many
/// concurrent sessions over one resource.
pub trait QuantumResource: Send + Sync {
    /// Stable identifier used in configuration and scheduling (`"fresnel-1"`).
    fn resource_id(&self) -> &str;

    /// Which flavor of resource this is.
    fn resource_type(&self) -> ResourceType;

    /// Lease the resource. Exclusive resources reject concurrent leases.
    fn acquire(&self) -> Result<AcquisitionToken, QrmiError>;

    /// Return a lease.
    fn release(&self, token: &AcquisitionToken) -> Result<(), QrmiError>;

    /// The *current* target device specification (revision included), so
    /// clients re-validate against live calibration (paper §2.1).
    fn target(&self) -> Result<DeviceSpec, QrmiError>;

    /// Submit a program under a lease.
    fn task_start(&self, token: &AcquisitionToken, ir: &ProgramIr) -> Result<TaskId, QrmiError>;

    /// Submit a whole parameter sweep under a lease: one task per point, in
    /// point order. The default materializes each point and submits it as
    /// an independent task; resources wrapping a batched engine (the local
    /// emulator) override this to execute the sweep in one batch while
    /// returning the same per-point tasks — with identical seeds, and
    /// therefore identical results, to `points.len()` sequential
    /// `task_start` calls.
    fn task_start_sweep(
        &self,
        token: &AcquisitionToken,
        template: &ProgramIr,
        points: &[SweepPoint],
    ) -> Result<Vec<TaskId>, QrmiError> {
        points
            .iter()
            .map(|p| {
                let mut ir = template.clone();
                ir.sequence = p.materialize(&template.sequence);
                self.task_start(token, &ir)
            })
            .collect()
    }

    /// Poll task state. Polling may advance simulated backend queues.
    fn task_status(&self, task: &TaskId) -> Result<TaskStatus, QrmiError>;

    /// Cancel a queued or running task.
    fn task_stop(&self, task: &TaskId) -> Result<(), QrmiError>;

    /// Fetch the result of a completed task.
    fn task_result(&self, task: &TaskId) -> Result<SampleResult, QrmiError>;

    /// Static descriptive metadata (vendor, location, coupling model, ...).
    fn metadata(&self) -> BTreeMap<String, String>;
}

/// Convenience: run a task to completion with a bounded number of polls.
///
/// Returns the result or the first terminal error. `max_polls` bounds the
/// wait on simulated-queue backends.
pub fn run_to_completion(
    res: &dyn QuantumResource,
    token: &AcquisitionToken,
    ir: &ProgramIr,
    max_polls: usize,
) -> Result<SampleResult, QrmiError> {
    let task = res.task_start(token, ir)?;
    for _ in 0..max_polls {
        match res.task_status(&task)? {
            TaskStatus::Completed => return res.task_result(&task),
            TaskStatus::Failed(m) => return Err(QrmiError::Backend(m)),
            TaskStatus::Cancelled => {
                return Err(QrmiError::InvalidState("task was cancelled".into()))
            }
            TaskStatus::Queued | TaskStatus::Running => {}
        }
    }
    Err(QrmiError::InvalidState(format!(
        "task did not complete within {max_polls} polls"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_type_string_roundtrip() {
        for t in [
            ResourceType::QpuDirect,
            ResourceType::QpuCloud,
            ResourceType::EmulatorCloud,
            ResourceType::EmulatorLocal,
        ] {
            assert_eq!(ResourceType::parse(t.as_str()), Some(t));
        }
        assert_eq!(ResourceType::parse("fpga:local"), None);
    }

    #[test]
    fn error_display() {
        assert!(QrmiError::AcquisitionDenied("busy".into())
            .to_string()
            .contains("busy"));
        assert!(QrmiError::UnknownTask.to_string().contains("unknown"));
    }

    #[test]
    fn task_status_serde() {
        let s = TaskStatus::Failed("boom".into());
        let json = serde_json::to_string(&s).unwrap();
        let back: TaskStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
