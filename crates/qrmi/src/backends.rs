//! QRMI resource implementations for every backend flavor.
//!
//! * [`LocalEmulatorResource`] — wraps an in-process [`Emulator`]; unlimited
//!   concurrent leases, tasks complete synchronously.
//! * [`QpuDirectResource`] — wraps the on-prem [`VirtualQpu`]; the lease is
//!   **exclusive** (a physical device runs one program at a time), execution
//!   consumes simulated device seconds.
//! * [`CloudResource`] — wraps either backend behind a simulated WAN/cloud
//!   queue: tasks stay `Queued` for a configurable number of polls before
//!   running, modelling the loose-coupling latency of cloud access (§2.2.1).

use crate::instrument::KernelProfile;
use crate::resource::{
    AcquisitionToken, QrmiError, QuantumResource, ResourceType, TaskId, TaskStatus,
};
use hpcqc_emulator::{Emulator, SampleResult, SweepPoint};
use hpcqc_program::{DeviceSpec, ProgramIr};
use hpcqc_qpu::VirtualQpu;
use hpcqc_sync::{rank, TrackedMutex as Mutex};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn new_id(prefix: &str, counter: &AtomicU64) -> String {
    format!("{prefix}-{}", counter.fetch_add(1, Ordering::Relaxed))
}

#[derive(Debug, Clone)]
enum TaskState {
    Pending { ir: ProgramIr, polls_left: u32 },
    Done(SampleResult),
    Failed(String),
    Cancelled,
}

struct TaskTable {
    tasks: HashMap<String, TaskState>,
}

impl TaskTable {
    fn new() -> Self {
        TaskTable {
            tasks: HashMap::new(),
        }
    }
}

/// In-process emulator resource (`emulator:local`).
pub struct LocalEmulatorResource {
    id: String,
    emulator: Arc<dyn Emulator>,
    tasks: Mutex<TaskTable>,
    tokens: Mutex<HashSet<String>>,
    counter: AtomicU64,
    seed_counter: AtomicU64,
    kernel: Mutex<KernelProfile>,
}

impl LocalEmulatorResource {
    pub fn new(id: impl Into<String>, emulator: Arc<dyn Emulator>, seed: u64) -> Self {
        LocalEmulatorResource {
            id: id.into(),
            emulator,
            tasks: Mutex::new("qrmi.emulator.tasks", rank::QRMI_TASKS, TaskTable::new()),
            tokens: Mutex::new("qrmi.emulator.tokens", rank::QRMI_TOKENS, HashSet::new()),
            counter: AtomicU64::new(0),
            seed_counter: AtomicU64::new(seed),
            kernel: Mutex::new(
                "qrmi.emulator.kernel",
                rank::QRMI_KERNEL,
                KernelProfile::default(),
            ),
        }
    }

    /// Wall-clock profile of the emulator runs this resource performed.
    pub fn kernel_profile(&self) -> KernelProfile {
        *self.kernel.lock()
    }
}

impl QuantumResource for LocalEmulatorResource {
    fn resource_id(&self) -> &str {
        &self.id
    }

    fn resource_type(&self) -> ResourceType {
        ResourceType::EmulatorLocal
    }

    fn acquire(&self) -> Result<AcquisitionToken, QrmiError> {
        let tok = new_id("lease", &self.counter);
        self.tokens.lock().insert(tok.clone());
        Ok(AcquisitionToken(tok))
    }

    fn release(&self, token: &AcquisitionToken) -> Result<(), QrmiError> {
        if self.tokens.lock().remove(&token.0) {
            Ok(())
        } else {
            Err(QrmiError::InvalidToken)
        }
    }

    fn target(&self) -> Result<DeviceSpec, QrmiError> {
        Ok(self.emulator.spec())
    }

    fn task_start(&self, token: &AcquisitionToken, ir: &ProgramIr) -> Result<TaskId, QrmiError> {
        if !self.tokens.lock().contains(&token.0) {
            return Err(QrmiError::InvalidToken);
        }
        let seed = self.seed_counter.fetch_add(1, Ordering::Relaxed);
        let id = new_id("task", &self.counter);
        let t = std::time::Instant::now();
        let state = match self.emulator.run(ir, seed) {
            Ok(res) => TaskState::Done(res),
            Err(e) => TaskState::Failed(e.to_string()),
        };
        self.kernel.lock().record(t.elapsed().as_secs_f64());
        self.tasks.lock().tasks.insert(id.clone(), state);
        Ok(TaskId(id))
    }

    fn task_start_sweep(
        &self,
        token: &AcquisitionToken,
        template: &ProgramIr,
        points: &[SweepPoint],
    ) -> Result<Vec<TaskId>, QrmiError> {
        if !self.tokens.lock().contains(&token.0) {
            return Err(QrmiError::InvalidToken);
        }
        // One contiguous seed block, so the sweep draws exactly the seeds
        // that `points.len()` sequential `task_start` calls would have.
        let seed_base = self
            .seed_counter
            .fetch_add(points.len() as u64, Ordering::Relaxed);
        let t = std::time::Instant::now();
        let out = self.emulator.run_sweep(template, points, seed_base);
        self.kernel.lock().record(t.elapsed().as_secs_f64());
        let mut ids = Vec::with_capacity(points.len());
        let mut table = self.tasks.lock();
        match out {
            Ok(results) => {
                for res in results {
                    let id = new_id("task", &self.counter);
                    table.tasks.insert(id.clone(), TaskState::Done(res));
                    ids.push(TaskId(id));
                }
            }
            Err(e) => {
                // The sweep is atomic at this layer: one invalid point
                // fails the whole batch (fail-fast), and every task
                // records the same error.
                let msg = e.to_string();
                for _ in points {
                    let id = new_id("task", &self.counter);
                    table
                        .tasks
                        .insert(id.clone(), TaskState::Failed(msg.clone()));
                    ids.push(TaskId(id));
                }
            }
        }
        Ok(ids)
    }

    fn task_status(&self, task: &TaskId) -> Result<TaskStatus, QrmiError> {
        let t = self.tasks.lock();
        match t.tasks.get(&task.0) {
            None => Err(QrmiError::UnknownTask),
            Some(TaskState::Done(_)) => Ok(TaskStatus::Completed),
            Some(TaskState::Failed(m)) => Ok(TaskStatus::Failed(m.clone())),
            Some(TaskState::Cancelled) => Ok(TaskStatus::Cancelled),
            Some(TaskState::Pending { .. }) => Ok(TaskStatus::Queued),
        }
    }

    fn task_stop(&self, task: &TaskId) -> Result<(), QrmiError> {
        let mut t = self.tasks.lock();
        match t.tasks.get_mut(&task.0) {
            None => Err(QrmiError::UnknownTask),
            Some(s @ TaskState::Pending { .. }) => {
                *s = TaskState::Cancelled;
                Ok(())
            }
            Some(_) => Err(QrmiError::InvalidState("task already terminal".into())),
        }
    }

    fn task_result(&self, task: &TaskId) -> Result<SampleResult, QrmiError> {
        let t = self.tasks.lock();
        match t.tasks.get(&task.0) {
            None => Err(QrmiError::UnknownTask),
            Some(TaskState::Done(r)) => Ok(r.clone()),
            Some(TaskState::Failed(m)) => Err(QrmiError::Backend(m.clone())),
            Some(_) => Err(QrmiError::InvalidState("task not completed".into())),
        }
    }

    fn metadata(&self) -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        m.insert("vendor".into(), "hpcqc".into());
        m.insert("backend".into(), self.emulator.name().to_string());
        m.insert("coupling".into(), "local".into());
        self.kernel_profile().to_metadata(&mut m);
        m
    }
}

/// On-prem QPU resource (`qpu:direct`). The lease is exclusive.
pub struct QpuDirectResource {
    id: String,
    qpu: VirtualQpu,
    tasks: Mutex<TaskTable>,
    lease: Mutex<Option<String>>,
    counter: AtomicU64,
    seed_counter: AtomicU64,
}

impl QpuDirectResource {
    pub fn new(id: impl Into<String>, qpu: VirtualQpu, seed: u64) -> Self {
        QpuDirectResource {
            id: id.into(),
            qpu,
            tasks: Mutex::new("qrmi.qpu_direct.tasks", rank::QRMI_TASKS, TaskTable::new()),
            lease: Mutex::new("qrmi.qpu_direct.lease", rank::QRMI_LEASE, None),
            counter: AtomicU64::new(0),
            seed_counter: AtomicU64::new(seed),
        }
    }

    /// The wrapped device (the middleware daemon needs admin access to it).
    pub fn qpu(&self) -> &VirtualQpu {
        &self.qpu
    }
}

impl QuantumResource for QpuDirectResource {
    fn resource_id(&self) -> &str {
        &self.id
    }

    fn resource_type(&self) -> ResourceType {
        ResourceType::QpuDirect
    }

    fn acquire(&self) -> Result<AcquisitionToken, QrmiError> {
        let mut lease = self.lease.lock();
        if lease.is_some() {
            return Err(QrmiError::AcquisitionDenied(
                "QPU already leased; direct access is exclusive".into(),
            ));
        }
        let tok = new_id("lease", &self.counter);
        *lease = Some(tok.clone());
        Ok(AcquisitionToken(tok))
    }

    fn release(&self, token: &AcquisitionToken) -> Result<(), QrmiError> {
        let mut lease = self.lease.lock();
        if lease.as_deref() == Some(token.0.as_str()) {
            *lease = None;
            Ok(())
        } else {
            Err(QrmiError::InvalidToken)
        }
    }

    fn target(&self) -> Result<DeviceSpec, QrmiError> {
        Ok(self.qpu.current_spec())
    }

    fn task_start(&self, token: &AcquisitionToken, ir: &ProgramIr) -> Result<TaskId, QrmiError> {
        if self.lease.lock().as_deref() != Some(token.0.as_str()) {
            return Err(QrmiError::InvalidToken);
        }
        let seed = self.seed_counter.fetch_add(1, Ordering::Relaxed);
        let id = new_id("task", &self.counter);
        let state = match self.qpu.execute(ir, seed) {
            Ok(ex) => TaskState::Done(ex.result),
            Err(e) => TaskState::Failed(e.to_string()),
        };
        self.tasks.lock().tasks.insert(id.clone(), state);
        Ok(TaskId(id))
    }

    fn task_status(&self, task: &TaskId) -> Result<TaskStatus, QrmiError> {
        match self.tasks.lock().tasks.get(&task.0) {
            None => Err(QrmiError::UnknownTask),
            Some(TaskState::Done(_)) => Ok(TaskStatus::Completed),
            Some(TaskState::Failed(m)) => Ok(TaskStatus::Failed(m.clone())),
            Some(TaskState::Cancelled) => Ok(TaskStatus::Cancelled),
            Some(TaskState::Pending { .. }) => Ok(TaskStatus::Running),
        }
    }

    fn task_stop(&self, task: &TaskId) -> Result<(), QrmiError> {
        match self.tasks.lock().tasks.get(&task.0) {
            None => Err(QrmiError::UnknownTask),
            Some(_) => Err(QrmiError::InvalidState(
                "direct QPU tasks run synchronously and cannot be stopped".into(),
            )),
        }
    }

    fn task_result(&self, task: &TaskId) -> Result<SampleResult, QrmiError> {
        match self.tasks.lock().tasks.get(&task.0) {
            None => Err(QrmiError::UnknownTask),
            Some(TaskState::Done(r)) => Ok(r.clone()),
            Some(TaskState::Failed(m)) => Err(QrmiError::Backend(m.clone())),
            Some(_) => Err(QrmiError::InvalidState("task not completed".into())),
        }
    }

    fn metadata(&self) -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        m.insert("vendor".into(), "hpcqc".into());
        m.insert("backend".into(), self.qpu.name().to_string());
        m.insert("coupling".into(), "loose-onprem".into());
        m
    }
}

/// Which engine backs a cloud resource.
pub enum CloudEngine {
    Emulator(Arc<dyn Emulator>),
    Qpu(VirtualQpu),
}

/// Cloud-hosted resource (`qpu:cloud` / `emulator:cloud`): the same engines
/// behind a simulated submission queue. Tasks stay `Queued` for
/// `queue_polls` status polls (modelling WAN latency + shared cloud queues),
/// then execute on the first poll that finds them due.
pub struct CloudResource {
    id: String,
    engine: CloudEngine,
    rtype: ResourceType,
    /// Polls a task waits in the simulated cloud queue before running.
    pub queue_polls: u32,
    tasks: Mutex<TaskTable>,
    tokens: Mutex<HashSet<String>>,
    counter: AtomicU64,
    seed_counter: AtomicU64,
    kernel: Mutex<KernelProfile>,
}

impl CloudResource {
    pub fn new(id: impl Into<String>, engine: CloudEngine, queue_polls: u32, seed: u64) -> Self {
        let rtype = match &engine {
            CloudEngine::Emulator(_) => ResourceType::EmulatorCloud,
            CloudEngine::Qpu(_) => ResourceType::QpuCloud,
        };
        CloudResource {
            id: id.into(),
            engine,
            rtype,
            queue_polls,
            tasks: Mutex::new("qrmi.cloud.tasks", rank::QRMI_TASKS, TaskTable::new()),
            tokens: Mutex::new("qrmi.cloud.tokens", rank::QRMI_TOKENS, HashSet::new()),
            counter: AtomicU64::new(0),
            seed_counter: AtomicU64::new(seed),
            kernel: Mutex::new(
                "qrmi.cloud.kernel",
                rank::QRMI_KERNEL,
                KernelProfile::default(),
            ),
        }
    }

    /// Wall-clock profile of the engine executions this resource performed.
    pub fn kernel_profile(&self) -> KernelProfile {
        *self.kernel.lock()
    }

    fn execute(&self, ir: &ProgramIr, seed: u64) -> TaskState {
        let t = std::time::Instant::now();
        let state = match &self.engine {
            CloudEngine::Emulator(e) => match e.run(ir, seed) {
                Ok(r) => TaskState::Done(r),
                Err(e) => TaskState::Failed(e.to_string()),
            },
            CloudEngine::Qpu(q) => match q.execute(ir, seed) {
                Ok(ex) => TaskState::Done(ex.result),
                Err(e) => TaskState::Failed(e.to_string()),
            },
        };
        self.kernel.lock().record(t.elapsed().as_secs_f64());
        state
    }
}

impl QuantumResource for CloudResource {
    fn resource_id(&self) -> &str {
        &self.id
    }

    fn resource_type(&self) -> ResourceType {
        self.rtype
    }

    fn acquire(&self) -> Result<AcquisitionToken, QrmiError> {
        let tok = new_id("lease", &self.counter);
        self.tokens.lock().insert(tok.clone());
        Ok(AcquisitionToken(tok))
    }

    fn release(&self, token: &AcquisitionToken) -> Result<(), QrmiError> {
        if self.tokens.lock().remove(&token.0) {
            Ok(())
        } else {
            Err(QrmiError::InvalidToken)
        }
    }

    fn target(&self) -> Result<DeviceSpec, QrmiError> {
        match &self.engine {
            CloudEngine::Emulator(e) => Ok(e.spec()),
            CloudEngine::Qpu(q) => Ok(q.current_spec()),
        }
    }

    fn task_start(&self, token: &AcquisitionToken, ir: &ProgramIr) -> Result<TaskId, QrmiError> {
        if !self.tokens.lock().contains(&token.0) {
            return Err(QrmiError::InvalidToken);
        }
        let id = new_id("task", &self.counter);
        self.tasks.lock().tasks.insert(
            id.clone(),
            TaskState::Pending {
                ir: ir.clone(),
                polls_left: self.queue_polls,
            },
        );
        Ok(TaskId(id))
    }

    fn task_status(&self, task: &TaskId) -> Result<TaskStatus, QrmiError> {
        // fast path under the lock; execution happens outside it
        let due = {
            let mut t = self.tasks.lock();
            match t.tasks.get_mut(&task.0) {
                None => return Err(QrmiError::UnknownTask),
                Some(TaskState::Done(_)) => return Ok(TaskStatus::Completed),
                Some(TaskState::Failed(m)) => return Ok(TaskStatus::Failed(m.clone())),
                Some(TaskState::Cancelled) => return Ok(TaskStatus::Cancelled),
                Some(TaskState::Pending { ir, polls_left }) => {
                    if *polls_left > 0 {
                        *polls_left -= 1;
                        return Ok(TaskStatus::Queued);
                    }
                    ir.clone()
                }
            }
        };
        let seed = self.seed_counter.fetch_add(1, Ordering::Relaxed);
        let state = self.execute(&due, seed);
        let status = match &state {
            TaskState::Done(_) => TaskStatus::Completed,
            TaskState::Failed(m) => TaskStatus::Failed(m.clone()),
            _ => unreachable!("execute returns terminal states"),
        };
        // another poller may have raced us; terminal states are idempotent
        self.tasks.lock().tasks.insert(task.0.clone(), state);
        Ok(status)
    }

    fn task_stop(&self, task: &TaskId) -> Result<(), QrmiError> {
        let mut t = self.tasks.lock();
        match t.tasks.get_mut(&task.0) {
            None => Err(QrmiError::UnknownTask),
            Some(s @ TaskState::Pending { .. }) => {
                *s = TaskState::Cancelled;
                Ok(())
            }
            Some(_) => Err(QrmiError::InvalidState("task already terminal".into())),
        }
    }

    fn task_result(&self, task: &TaskId) -> Result<SampleResult, QrmiError> {
        match self.tasks.lock().tasks.get(&task.0) {
            None => Err(QrmiError::UnknownTask),
            Some(TaskState::Done(r)) => Ok(r.clone()),
            Some(TaskState::Failed(m)) => Err(QrmiError::Backend(m.clone())),
            Some(_) => Err(QrmiError::InvalidState("task not completed".into())),
        }
    }

    fn metadata(&self) -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        m.insert("vendor".into(), "hpcqc".into());
        m.insert("coupling".into(), "loose-cloud".into());
        m.insert(
            "backend".into(),
            match &self.engine {
                CloudEngine::Emulator(e) => e.name().to_string(),
                CloudEngine::Qpu(q) => q.name().to_string(),
            },
        );
        self.kernel_profile().to_metadata(&mut m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::run_to_completion;
    use hpcqc_emulator::SvBackend;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};

    fn ir(shots: u32) -> ProgramIr {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "test")
    }

    fn local() -> LocalEmulatorResource {
        LocalEmulatorResource::new("emu-local", Arc::new(SvBackend::default()), 1)
    }

    #[test]
    fn local_emulator_full_lifecycle() {
        let r = local();
        let tok = r.acquire().unwrap();
        let task = r.task_start(&tok, &ir(50)).unwrap();
        assert_eq!(r.task_status(&task).unwrap(), TaskStatus::Completed);
        let res = r.task_result(&task).unwrap();
        assert_eq!(res.shots, 50);
        r.release(&tok).unwrap();
        assert_eq!(
            r.release(&tok),
            Err(QrmiError::InvalidToken),
            "double release"
        );
    }

    #[test]
    fn local_allows_concurrent_leases() {
        let r = local();
        let t1 = r.acquire().unwrap();
        let t2 = r.acquire().unwrap();
        assert_ne!(t1, t2);
        assert!(r.task_start(&t1, &ir(5)).is_ok());
        assert!(r.task_start(&t2, &ir(5)).is_ok());
    }

    #[test]
    fn start_without_lease_rejected() {
        let r = local();
        let fake = AcquisitionToken("nope".into());
        assert_eq!(r.task_start(&fake, &ir(5)), Err(QrmiError::InvalidToken));
    }

    #[test]
    fn unknown_task_errors() {
        let r = local();
        let t = TaskId("ghost".into());
        assert_eq!(r.task_status(&t), Err(QrmiError::UnknownTask));
        assert_eq!(r.task_result(&t), Err(QrmiError::UnknownTask));
    }

    #[test]
    fn qpu_direct_lease_is_exclusive() {
        let qpu = VirtualQpu::new("fresnel-1", 3);
        let r = QpuDirectResource::new("fresnel-1", qpu, 1);
        let t1 = r.acquire().unwrap();
        assert!(matches!(r.acquire(), Err(QrmiError::AcquisitionDenied(_))));
        r.release(&t1).unwrap();
        assert!(r.acquire().is_ok(), "lease reusable after release");
    }

    #[test]
    fn qpu_direct_executes_and_consumes_device_time() {
        let qpu = VirtualQpu::new("fresnel-1", 3);
        let r = QpuDirectResource::new("fresnel-1", qpu.clone(), 1);
        let tok = r.acquire().unwrap();
        let task = r.task_start(&tok, &ir(10)).unwrap();
        assert_eq!(r.task_status(&task).unwrap(), TaskStatus::Completed);
        assert!(qpu.now() >= 13.0, "10 shots at 1 Hz + overhead");
        let res = r.task_result(&task).unwrap();
        assert_eq!(res.backend, "fresnel-1");
    }

    #[test]
    fn qpu_direct_target_reflects_calibration_revision() {
        let qpu = VirtualQpu::new("fresnel-1", 3);
        let r = QpuDirectResource::new("fresnel-1", qpu.clone(), 1);
        assert_eq!(r.target().unwrap().revision, 1);
        qpu.recalibrate(60.0);
        assert_eq!(r.target().unwrap().revision, 2);
    }

    #[test]
    fn cloud_resource_queues_then_completes() {
        let r = CloudResource::new(
            "emu-cloud",
            CloudEngine::Emulator(Arc::new(SvBackend::default())),
            3,
            1,
        );
        let tok = r.acquire().unwrap();
        let task = r.task_start(&tok, &ir(20)).unwrap();
        assert_eq!(r.task_status(&task).unwrap(), TaskStatus::Queued);
        assert_eq!(r.task_status(&task).unwrap(), TaskStatus::Queued);
        assert_eq!(r.task_status(&task).unwrap(), TaskStatus::Queued);
        assert_eq!(r.task_status(&task).unwrap(), TaskStatus::Completed);
        assert_eq!(r.task_result(&task).unwrap().shots, 20);
    }

    #[test]
    fn cloud_task_cancellable_while_queued() {
        let r = CloudResource::new(
            "emu-cloud",
            CloudEngine::Emulator(Arc::new(SvBackend::default())),
            10,
            1,
        );
        let tok = r.acquire().unwrap();
        let task = r.task_start(&tok, &ir(20)).unwrap();
        r.task_stop(&task).unwrap();
        assert_eq!(r.task_status(&task).unwrap(), TaskStatus::Cancelled);
        assert!(matches!(
            r.task_result(&task),
            Err(QrmiError::InvalidState(_))
        ));
    }

    #[test]
    fn cloud_qpu_flavor_reports_type() {
        let qpu = VirtualQpu::new("cloud-qpu", 3);
        let r = CloudResource::new("cloud-qpu", CloudEngine::Qpu(qpu), 1, 1);
        assert_eq!(r.resource_type(), ResourceType::QpuCloud);
        assert_eq!(r.metadata()["coupling"], "loose-cloud");
    }

    #[test]
    fn run_to_completion_helper_spans_queueing() {
        let r = CloudResource::new(
            "emu-cloud",
            CloudEngine::Emulator(Arc::new(SvBackend::default())),
            5,
            1,
        );
        let tok = r.acquire().unwrap();
        let res = run_to_completion(&r, &tok, &ir(10), 20).unwrap();
        assert_eq!(res.shots, 10);
        // and a poll budget that's too small errors out
        let task_ir = ir(10);
        let r2 = CloudResource::new(
            "emu-cloud-2",
            CloudEngine::Emulator(Arc::new(SvBackend::default())),
            50,
            1,
        );
        let tok2 = r2.acquire().unwrap();
        assert!(run_to_completion(&r2, &tok2, &task_ir, 3).is_err());
    }

    #[test]
    fn local_sweep_matches_sequential_task_starts() {
        // The sweep override must consume one contiguous seed block so its
        // results are exactly what sequential submissions of the
        // materialized points would have produced on a fresh resource.
        let points: Vec<SweepPoint> = (0..5)
            .map(|k| SweepPoint {
                omega_scale: 0.6 + 0.1 * k as f64,
                delta_scale: 1.0,
                phase_offset: 0.3 * k as f64,
            })
            .collect();
        let template = ir(80);

        let swept = local();
        let tok = swept.acquire().unwrap();
        let tasks = swept.task_start_sweep(&tok, &template, &points).unwrap();
        assert_eq!(tasks.len(), points.len());
        let batch_results: Vec<SampleResult> = tasks
            .iter()
            .map(|t| swept.task_result(t).unwrap())
            .collect();

        let seq_res = local(); // fresh resource, same initial seed
        let tok2 = seq_res.acquire().unwrap();
        for (k, p) in points.iter().enumerate() {
            let mut pir = template.clone();
            pir.sequence = p.materialize(&template.sequence);
            let t = seq_res.task_start(&tok2, &pir).unwrap();
            assert_eq!(
                seq_res.task_result(&t).unwrap(),
                batch_results[k],
                "point {k} differs from its sequential twin"
            );
        }
        // and the next plain submission on the swept resource continues the
        // seed counter past the block
        let t = swept.task_start(&tok, &template).unwrap();
        assert!(swept.task_result(&t).is_ok());
        assert_eq!(swept.kernel_profile().runs, 2, "sweep counts as one run");
    }

    #[test]
    fn local_sweep_invalid_point_fails_all_tasks() {
        let r = local();
        let tok = r.acquire().unwrap();
        let bad = [
            SweepPoint::identity(),
            SweepPoint {
                omega_scale: 1000.0, // blows past the emulator amplitude cap
                delta_scale: 1.0,
                phase_offset: 0.0,
            },
        ];
        let tasks = r.task_start_sweep(&tok, &ir(10), &bad).unwrap();
        assert_eq!(tasks.len(), 2);
        for t in &tasks {
            assert!(matches!(r.task_status(t).unwrap(), TaskStatus::Failed(_)));
        }
    }

    #[test]
    fn sweep_without_lease_rejected() {
        let r = local();
        let fake = AcquisitionToken("nope".into());
        assert_eq!(
            r.task_start_sweep(&fake, &ir(5), &[SweepPoint::identity()]),
            Err(QrmiError::InvalidToken)
        );
    }

    #[test]
    fn default_sweep_on_cloud_resource_submits_per_point_tasks() {
        // CloudResource keeps the trait default: every point becomes an
        // independently queued task.
        let r = CloudResource::new(
            "emu-cloud",
            CloudEngine::Emulator(Arc::new(SvBackend::default())),
            1,
            1,
        );
        let tok = r.acquire().unwrap();
        let points = [SweepPoint::identity(), SweepPoint::identity()];
        let tasks = r.task_start_sweep(&tok, &ir(10), &points).unwrap();
        assert_eq!(tasks.len(), 2);
        for t in &tasks {
            assert_eq!(r.task_status(t).unwrap(), TaskStatus::Queued);
            assert_eq!(r.task_status(t).unwrap(), TaskStatus::Completed);
            assert_eq!(r.task_result(t).unwrap().shots, 10);
        }
    }

    #[test]
    fn local_emulator_profiles_kernel_wall_clock() {
        let r = local();
        let tok = r.acquire().unwrap();
        assert_eq!(r.kernel_profile().runs, 0);
        r.task_start(&tok, &ir(10)).unwrap();
        r.task_start(&tok, &ir(10)).unwrap();
        let prof = r.kernel_profile();
        assert_eq!(prof.runs, 2);
        assert!(prof.total_secs > 0.0 && prof.total_secs.is_finite());
        assert!(prof.last_secs <= prof.total_secs);
        assert!((prof.mean_secs() - prof.total_secs / 2.0).abs() < 1e-12);
        let m = r.metadata();
        assert_eq!(m["kernel_runs"], "2");
        assert!(m["kernel_secs_total"].parse::<f64>().unwrap() > 0.0);
        assert!(m["kernel_secs_mean"].parse::<f64>().unwrap() > 0.0);
    }

    #[test]
    fn cloud_emulator_profiles_kernel_wall_clock() {
        let r = CloudResource::new(
            "emu-cloud",
            CloudEngine::Emulator(Arc::new(SvBackend::default())),
            1,
            1,
        );
        let tok = r.acquire().unwrap();
        let res = run_to_completion(&r, &tok, &ir(10), 10).unwrap();
        assert_eq!(res.shots, 10);
        let prof = r.kernel_profile();
        assert_eq!(prof.runs, 1, "queued polls must not count as kernel runs");
        assert!(prof.total_secs > 0.0);
        assert_eq!(r.metadata()["kernel_runs"], "1");
    }

    #[test]
    fn failed_backend_surfaces_as_failed_status() {
        let r = local();
        let tok = r.acquire().unwrap();
        // 25-qubit register exceeds emu-sv's limit → backend failure
        let reg = Register::linear(25, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.1, 1.0, 0.0, 0.0).unwrap());
        let bad = ProgramIr::new(b.build().unwrap(), 5, "test");
        let task = r.task_start(&tok, &bad).unwrap();
        assert!(matches!(
            r.task_status(&task).unwrap(),
            TaskStatus::Failed(_)
        ));
        assert!(matches!(r.task_result(&task), Err(QrmiError::Backend(_))));
    }
}
