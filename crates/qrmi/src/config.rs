//! Environment-variable configuration and the resource registry.
//!
//! QRMI is configured through environment variables (paper §3.4), which can
//! be set by the developer locally, by an IDE, or injected by the HPC
//! scheduler prolog. The scheme:
//!
//! ```text
//! QRMI_RESOURCES=fresnel-1,emu-local,emu-cloud     # comma-separated ids
//! QRMI_DEFAULT_RESOURCE=emu-local                  # used when -qpu is absent
//! QRMI_RESOURCE_<ID>_TYPE=qpu:direct|qpu:cloud|emulator:cloud|emulator:local
//! QRMI_RESOURCE_<ID>_BACKEND=emu-sv|emu-mps|emu-mps-mock   # emulators only
//! QRMI_RESOURCE_<ID>_CHI=16                        # emu-mps bond dimension
//! QRMI_RESOURCE_<ID>_QUEUE_POLLS=3                 # cloud resources only
//! QRMI_RESOURCE_<ID>_DEVICE=fresnel-1              # qpu resources: device name
//! ```
//!
//! `<ID>` is the resource id uppercased with `-` → `_`. Parsing works from
//! any key/value map so tests don't mutate process environment.

use crate::backends::{CloudEngine, CloudResource, LocalEmulatorResource, QpuDirectResource};
use crate::resource::{QuantumResource, ResourceType};
use hpcqc_emulator::{Emulator, MpsBackend, MpsConfig, SvBackend};
use hpcqc_qpu::VirtualQpu;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Parsed configuration of one resource.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceConfig {
    pub id: String,
    pub rtype: ResourceType,
    /// Extra parameters (backend, chi, queue_polls, device).
    pub params: BTreeMap<String, String>,
}

/// The full QRMI configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QrmiConfig {
    pub resources: Vec<ResourceConfig>,
    pub default_resource: Option<String>,
}

/// Errors produced while parsing or building configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    MissingKey(String),
    BadValue {
        key: String,
        value: String,
        expected: &'static str,
    },
    UnknownResource(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::MissingKey(k) => write!(f, "missing configuration key {k}"),
            ConfigError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "bad value {value:?} for {key}: expected {expected}")
            }
            ConfigError::UnknownResource(r) => write!(f, "unknown resource {r:?}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Resource id → environment-key fragment.
fn env_fragment(id: &str) -> String {
    id.to_uppercase().replace('-', "_")
}

impl QrmiConfig {
    /// Parse from an explicit key/value map (testable form).
    pub fn from_map(env: &BTreeMap<String, String>) -> Result<Self, ConfigError> {
        let list = env
            .get("QRMI_RESOURCES")
            .ok_or_else(|| ConfigError::MissingKey("QRMI_RESOURCES".into()))?;
        let mut resources = Vec::new();
        for id in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let frag = env_fragment(id);
            let tkey = format!("QRMI_RESOURCE_{frag}_TYPE");
            let tval = env
                .get(&tkey)
                .ok_or_else(|| ConfigError::MissingKey(tkey.clone()))?;
            let rtype = ResourceType::parse(tval).ok_or_else(|| ConfigError::BadValue {
                key: tkey,
                value: tval.clone(),
                expected: "qpu:direct | qpu:cloud | emulator:cloud | emulator:local",
            })?;
            let prefix = format!("QRMI_RESOURCE_{frag}_");
            let params: BTreeMap<String, String> = env
                .iter()
                .filter(|(k, _)| k.starts_with(&prefix) && !k.ends_with("_TYPE"))
                .map(|(k, v)| (k[prefix.len()..].to_lowercase(), v.clone()))
                .collect();
            resources.push(ResourceConfig {
                id: id.to_string(),
                rtype,
                params,
            });
        }
        let default_resource = env.get("QRMI_DEFAULT_RESOURCE").cloned();
        if let Some(d) = &default_resource {
            if !resources.iter().any(|r| &r.id == d) {
                return Err(ConfigError::UnknownResource(d.clone()));
            }
        }
        Ok(QrmiConfig {
            resources,
            default_resource,
        })
    }

    /// Parse from the process environment.
    pub fn from_process_env() -> Result<Self, ConfigError> {
        let map: BTreeMap<String, String> = std::env::vars().collect();
        Self::from_map(&map)
    }

    /// A ready-to-use development default: local SV emulator + product-state
    /// mock, defaulting to the SV emulator — the "works on a laptop with zero
    /// setup" experience §3.2 targets.
    pub fn development_default() -> Self {
        QrmiConfig {
            resources: vec![
                ResourceConfig {
                    id: "emu-local".into(),
                    rtype: ResourceType::EmulatorLocal,
                    params: [("backend".to_string(), "emu-sv".to_string())].into(),
                },
                ResourceConfig {
                    id: "mock".into(),
                    rtype: ResourceType::EmulatorLocal,
                    params: [("backend".to_string(), "emu-mps-mock".to_string())].into(),
                },
            ],
            default_resource: Some("emu-local".into()),
        }
    }
}

/// Builds live resources from configuration.
///
/// QPU-backed resource types need a device to wrap: register them with
/// [`ResourceFactory::with_qpu`] keyed by the `device` parameter.
pub struct ResourceFactory {
    qpus: HashMap<String, VirtualQpu>,
    seed: u64,
}

impl ResourceFactory {
    pub fn new(seed: u64) -> Self {
        ResourceFactory {
            qpus: HashMap::new(),
            seed,
        }
    }

    /// Provide a device for `qpu:*` resources referencing it by name.
    pub fn with_qpu(mut self, name: impl Into<String>, qpu: VirtualQpu) -> Self {
        self.qpus.insert(name.into(), qpu);
        self
    }

    fn build_emulator(&self, cfg: &ResourceConfig) -> Result<Arc<dyn Emulator>, ConfigError> {
        let backend = cfg
            .params
            .get("backend")
            .map(String::as_str)
            .unwrap_or("emu-sv");
        match backend {
            "emu-sv" => Ok(Arc::new(SvBackend::default())),
            "emu-mps" => {
                let chi = match cfg.params.get("chi") {
                    None => 16,
                    Some(v) => v.parse::<usize>().map_err(|_| ConfigError::BadValue {
                        key: format!("QRMI_RESOURCE_{}_CHI", env_fragment(&cfg.id)),
                        value: v.clone(),
                        expected: "positive integer",
                    })?,
                };
                Ok(Arc::new(MpsBackend {
                    config: MpsConfig {
                        chi_max: chi.max(1),
                        ..MpsConfig::default()
                    },
                    ..MpsBackend::default()
                }))
            }
            "emu-mps-mock" => Ok(Arc::new(MpsBackend::product_state_mock())),
            other => Err(ConfigError::BadValue {
                key: format!("QRMI_RESOURCE_{}_BACKEND", env_fragment(&cfg.id)),
                value: other.to_string(),
                expected: "emu-sv | emu-mps | emu-mps-mock",
            }),
        }
    }

    /// Build one resource.
    pub fn build(&self, cfg: &ResourceConfig) -> Result<Arc<dyn QuantumResource>, ConfigError> {
        match cfg.rtype {
            ResourceType::EmulatorLocal => {
                let emu = self.build_emulator(cfg)?;
                Ok(Arc::new(LocalEmulatorResource::new(
                    &cfg.id, emu, self.seed,
                )))
            }
            ResourceType::EmulatorCloud => {
                let emu = self.build_emulator(cfg)?;
                let polls = parse_u32(cfg, "queue_polls", 3)?;
                Ok(Arc::new(CloudResource::new(
                    &cfg.id,
                    CloudEngine::Emulator(emu),
                    polls,
                    self.seed,
                )))
            }
            ResourceType::QpuDirect => {
                let qpu = self.lookup_qpu(cfg)?;
                Ok(Arc::new(QpuDirectResource::new(&cfg.id, qpu, self.seed)))
            }
            ResourceType::QpuCloud => {
                let qpu = self.lookup_qpu(cfg)?;
                let polls = parse_u32(cfg, "queue_polls", 5)?;
                Ok(Arc::new(CloudResource::new(
                    &cfg.id,
                    CloudEngine::Qpu(qpu),
                    polls,
                    self.seed,
                )))
            }
        }
    }

    fn lookup_qpu(&self, cfg: &ResourceConfig) -> Result<VirtualQpu, ConfigError> {
        let device = cfg
            .params
            .get("device")
            .map(String::as_str)
            .unwrap_or(cfg.id.as_str());
        self.qpus
            .get(device)
            .cloned()
            .ok_or_else(|| ConfigError::UnknownResource(device.to_string()))
    }

    /// Build every configured resource into a registry.
    pub fn build_registry(&self, cfg: &QrmiConfig) -> Result<ResourceRegistry, ConfigError> {
        let mut reg = ResourceRegistry::new();
        for rc in &cfg.resources {
            reg.register(self.build(rc)?);
        }
        reg.default_resource = cfg.default_resource.clone();
        Ok(reg)
    }
}

fn parse_u32(cfg: &ResourceConfig, key: &str, default: u32) -> Result<u32, ConfigError> {
    match cfg.params.get(key) {
        None => Ok(default),
        Some(v) => v.parse::<u32>().map_err(|_| ConfigError::BadValue {
            key: format!(
                "QRMI_RESOURCE_{}_{}",
                env_fragment(&cfg.id),
                key.to_uppercase()
            ),
            value: v.clone(),
            expected: "non-negative integer",
        }),
    }
}

/// The set of resources a runtime / daemon can dispatch to.
#[derive(Default)]
pub struct ResourceRegistry {
    resources: HashMap<String, Arc<dyn QuantumResource>>,
    /// Resource used when the client doesn't pass `--qpu`.
    pub default_resource: Option<String>,
}

impl ResourceRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a resource (replaces an existing one with the same id).
    pub fn register(&mut self, res: Arc<dyn QuantumResource>) {
        self.resources.insert(res.resource_id().to_string(), res);
    }

    /// Look up by id.
    pub fn get(&self, id: &str) -> Option<Arc<dyn QuantumResource>> {
        self.resources.get(id).cloned()
    }

    /// Resolve an optional `--qpu` selection against the default.
    pub fn resolve(
        &self,
        selection: Option<&str>,
    ) -> Result<Arc<dyn QuantumResource>, ConfigError> {
        let id = selection
            .map(str::to_string)
            .or_else(|| self.default_resource.clone())
            .ok_or_else(|| ConfigError::MissingKey("QRMI_DEFAULT_RESOURCE".into()))?;
        self.get(&id).ok_or(ConfigError::UnknownResource(id))
    }

    /// Sorted resource ids.
    pub fn ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.resources.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> BTreeMap<String, String> {
        [
            ("QRMI_RESOURCES", "fresnel-1,emu-local,emu-cloud"),
            ("QRMI_DEFAULT_RESOURCE", "emu-local"),
            ("QRMI_RESOURCE_FRESNEL_1_TYPE", "qpu:direct"),
            ("QRMI_RESOURCE_FRESNEL_1_DEVICE", "fresnel-1"),
            ("QRMI_RESOURCE_EMU_LOCAL_TYPE", "emulator:local"),
            ("QRMI_RESOURCE_EMU_LOCAL_BACKEND", "emu-mps"),
            ("QRMI_RESOURCE_EMU_LOCAL_CHI", "8"),
            ("QRMI_RESOURCE_EMU_CLOUD_TYPE", "emulator:cloud"),
            ("QRMI_RESOURCE_EMU_CLOUD_QUEUE_POLLS", "2"),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
    }

    #[test]
    fn parses_full_configuration() {
        let cfg = QrmiConfig::from_map(&env()).unwrap();
        assert_eq!(cfg.resources.len(), 3);
        assert_eq!(cfg.default_resource.as_deref(), Some("emu-local"));
        let emu = cfg.resources.iter().find(|r| r.id == "emu-local").unwrap();
        assert_eq!(emu.rtype, ResourceType::EmulatorLocal);
        assert_eq!(emu.params["backend"], "emu-mps");
        assert_eq!(emu.params["chi"], "8");
    }

    #[test]
    fn missing_resources_key_fails() {
        let e = BTreeMap::new();
        assert!(matches!(
            QrmiConfig::from_map(&e),
            Err(ConfigError::MissingKey(_))
        ));
    }

    #[test]
    fn missing_type_fails() {
        let mut e = env();
        e.remove("QRMI_RESOURCE_EMU_LOCAL_TYPE");
        assert!(matches!(
            QrmiConfig::from_map(&e),
            Err(ConfigError::MissingKey(k)) if k.contains("EMU_LOCAL_TYPE")
        ));
    }

    #[test]
    fn bad_type_fails() {
        let mut e = env();
        e.insert("QRMI_RESOURCE_EMU_LOCAL_TYPE".into(), "abacus".into());
        assert!(matches!(
            QrmiConfig::from_map(&e),
            Err(ConfigError::BadValue { .. })
        ));
    }

    #[test]
    fn default_must_be_configured_resource() {
        let mut e = env();
        e.insert("QRMI_DEFAULT_RESOURCE".into(), "ghost".into());
        assert!(matches!(
            QrmiConfig::from_map(&e),
            Err(ConfigError::UnknownResource(r)) if r == "ghost"
        ));
    }

    #[test]
    fn factory_builds_all_types() {
        let cfg = QrmiConfig::from_map(&env()).unwrap();
        let factory =
            ResourceFactory::new(7).with_qpu("fresnel-1", VirtualQpu::new("fresnel-1", 3));
        let reg = factory.build_registry(&cfg).unwrap();
        assert_eq!(reg.len(), 3);
        assert_eq!(
            reg.get("fresnel-1").unwrap().resource_type(),
            ResourceType::QpuDirect
        );
        assert_eq!(
            reg.get("emu-cloud").unwrap().resource_type(),
            ResourceType::EmulatorCloud
        );
    }

    #[test]
    fn factory_fails_without_device() {
        let cfg = QrmiConfig::from_map(&env()).unwrap();
        let factory = ResourceFactory::new(7); // no QPU registered
        assert!(matches!(
            factory.build_registry(&cfg),
            Err(ConfigError::UnknownResource(_))
        ));
    }

    #[test]
    fn registry_resolution_uses_default_and_override() {
        let cfg = QrmiConfig::from_map(&env()).unwrap();
        let factory =
            ResourceFactory::new(7).with_qpu("fresnel-1", VirtualQpu::new("fresnel-1", 3));
        let reg = factory.build_registry(&cfg).unwrap();
        // default: emu-local
        assert_eq!(reg.resolve(None).unwrap().resource_id(), "emu-local");
        // explicit --qpu=fresnel-1: the single-switch backend change of §3.2
        assert_eq!(
            reg.resolve(Some("fresnel-1")).unwrap().resource_id(),
            "fresnel-1"
        );
        assert!(matches!(
            reg.resolve(Some("ghost")),
            Err(ConfigError::UnknownResource(_))
        ));
    }

    #[test]
    fn development_default_works_out_of_the_box() {
        let cfg = QrmiConfig::development_default();
        let reg = ResourceFactory::new(1).build_registry(&cfg).unwrap();
        assert!(reg.get("emu-local").is_some());
        assert!(reg.get("mock").is_some());
        let r = reg.resolve(None).unwrap();
        assert_eq!(r.resource_id(), "emu-local");
    }

    #[test]
    fn bad_chi_value_fails() {
        let mut e = env();
        e.insert("QRMI_RESOURCE_EMU_LOCAL_CHI".into(), "many".into());
        let cfg = QrmiConfig::from_map(&e).unwrap();
        let factory =
            ResourceFactory::new(7).with_qpu("fresnel-1", VirtualQpu::new("fresnel-1", 3));
        assert!(matches!(
            factory.build_registry(&cfg),
            Err(ConfigError::BadValue { .. })
        ));
    }
}
